// Capacity planning: monitoring-aware placement when hosts have finite
// resources (paper Section VII-A) and only a core subset of nodes matters
// (Section VII-B).
//
//   $ ./capacity_planning
//
// Sweeps the per-host capacity from tight to loose on the Tiscali stand-in
// and reports how the distinguishability objective degrades as services are
// forced apart or left unplaced, then re-runs the placement optimizing only
// the core (non-access) nodes of interest.
#include <algorithm>
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace splace;

  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  ProblemInstance instance = make_instance(entry, 1.0);

  std::cout << "Tiscali stand-in, " << instance.service_count()
            << " unit-demand services, alpha=1.0\n\n";

  // Unconstrained reference.
  const GreedyResult unconstrained =
      greedy_placement(instance, ObjectiveKind::Distinguishability);
  std::cout << "Unconstrained GD objective: "
            << unconstrained.objective_value << " distinguishable pairs\n\n";

  TablePrinter table({"per-host capacity", "placed services",
                      "distinct hosts", "distinguishable pairs"});
  for (double capacity : {0.5, 1.0, 2.0, 3.0}) {
    CapacityConstraints constraints;
    constraints.host_capacity.assign(instance.node_count(), capacity);
    const CapacityGreedyResult result = greedy_capacity_placement(
        instance, constraints, ObjectiveKind::Distinguishability);

    std::size_t placed = 0;
    std::vector<NodeId> hosts;
    for (NodeId h : result.placement) {
      if (h == kInvalidNode) continue;
      ++placed;
      if (std::find(hosts.begin(), hosts.end(), h) == hosts.end())
        hosts.push_back(h);
    }
    table.add_row({format_double(capacity, 1),
                   std::to_string(placed) + "/" +
                       std::to_string(instance.service_count()),
                   std::to_string(hosts.size()),
                   format_double(result.objective_value, 0)});
  }
  table.print(std::cout);
  std::cout << "(capacity 0.5 cannot place unit-demand services; capacity 1 "
               "forces one service per host.)\n\n";

  // Nodes-of-interest variant: only monitor the network core.
  DynamicBitset core(instance.node_count());
  std::size_t core_size = 0;
  for (NodeId v = 0; v < instance.node_count(); ++v) {
    if (instance.graph().degree(v) > 1) {
      core.set(v);
      ++core_size;
    }
  }
  auto state = make_interest_objective_state(
      ObjectiveKind::Distinguishability, instance.node_count(), 1, core);
  const GreedyResult focused = greedy_placement(instance, std::move(state));
  const PathSet paths = instance.paths_for_placement(focused.placement);
  std::cout << "Core-focused placement (" << core_size
            << " nodes of interest): " << focused.objective_value
            << " core-relevant distinguishable pairs, core coverage "
            << interest_coverage(paths, core) << "/" << core_size << "\n";
  return 0;
}
