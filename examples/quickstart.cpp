// Quickstart: place two services on a small network so that end-to-end
// client-server probes can detect and localize single-node failures.
//
//   $ ./quickstart
//
// Walks through the core API: build a graph, describe services (clients +
// QoS slack α), run the greedy distinguishability placement (the paper's GD,
// a 1/2-approximation), and compare it with the QoS-only placement — then
// serves the same computation through the engine via the fluent
// api::Request builder.
#include <iostream>
#include <memory>

#include "api/splace.hpp"

int main() {
  using namespace splace;

  // A 3x3 grid network: nodes 0..8, links between lattice neighbors.
  Graph g = grid_graph(3, 3);

  // Two services. Service A serves clients at the grid corners 0 and 8;
  // service B serves 2 and 6. alpha = 1 means any host is QoS-acceptable;
  // alpha = 0 would force the distance-optimal host.
  Service a;
  a.name = "web";
  a.clients = {0, 8};
  a.alpha = 1.0;
  Service b;
  b.name = "dns";
  b.clients = {2, 6};
  b.alpha = 1.0;

  const ProblemInstance instance(std::move(g), {a, b});

  std::cout << "Candidate hosts (alpha=1): web=" <<
      instance.candidate_hosts(0).size() << ", dns=" <<
      instance.candidate_hosts(1).size() << " of 9 nodes\n\n";

  // Baseline: place each service at the host minimizing the worst client
  // distance (classic QoS-driven placement).
  const Placement qos = best_qos_placement(instance);

  // Monitoring-aware: greedy maximum-distinguishability placement (GD).
  const GreedyResult gd =
      greedy_placement(instance, ObjectiveKind::Distinguishability);

  auto describe = [&](const char* label, const Placement& p) {
    const MetricReport m = evaluate_placement_k1(instance, p);
    std::cout << label << ": hosts={" << p[0] << "," << p[1] << "}"
              << "  coverage=" << m.coverage << "/9"
              << "  1-identifiable=" << m.identifiability
              << "  distinguishable-pairs=" << m.distinguishability
              << "/45\n";
  };
  describe("best-QoS placement      ", qos);
  describe("greedy-distinguishability", gd.placement);

  // Show what that buys during an outage: fail one node and localize it
  // from the binary path states alone.
  const PathSet paths = instance.paths_for_placement(gd.placement);
  const NodeId failed = 4;  // the grid center
  const LocalizationResult loc = localize(paths, observe(paths, {failed}), 1);
  std::cout << "\nInjected failure at node " << failed << ": "
            << loc.consistent_sets.size()
            << " consistent explanation(s) -> "
            << (loc.unique() ? "uniquely localized" : "ambiguous") << "\n";

  // The same placement, served: register the topology as a snapshot and
  // submit a request built with the fluent api::Request builder. The engine
  // response is bit-identical to the direct greedy_placement call above.
  auto registry = std::make_shared<api::SnapshotRegistry>();
  const auto snapshot =
      registry->add("quickstart", grid_graph(3, 3), {a, b});
  api::EngineConfig config;
  config.threads = 2;
  api::Engine engine(registry, config);
  const api::EngineResult served =
      engine.submit(api::Request::place(Algorithm::GD)
                        .snapshot(snapshot->hash())
                        .k(1)
                        .deadline(500)  // milliseconds
                        .build())
          .get();
  std::cout << "\nEngine-served GD placement matches direct call: "
            << (served.ok() && served.place.placement == gd.placement
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
