// Failure drill: quantify how much a monitoring-aware placement speeds up
// fault localization on the large AT&T-like topology.
//
//   $ ./failure_drill [num_drills]
//
// For each drill a random node fails; the operator sees only which
// client-server connections broke and runs Boolean tomography. We compare
// the best-QoS placement against the greedy distinguishability placement on
// (i) detection rate, (ii) unique-localization rate, (iii) mean number of
// candidate locations the operator must inspect.
#include <cstdlib>
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

struct DrillStats {
  std::size_t detected = 0;
  std::size_t unique = 0;
  double total_candidates = 0;   // consistent sets per detected failure
  double total_inspections = 0;  // node checks until the failure is confirmed
};

DrillStats run_drills(const splace::ProblemInstance& instance,
                      const splace::Placement& placement,
                      std::size_t drills) {
  using namespace splace;
  const PathSet paths = instance.paths_for_placement(placement);
  DrillStats stats;
  Rng rng(2016);
  for (std::size_t d = 0; d < drills; ++d) {
    const FailureScenario scenario = random_scenario(paths, 1, rng);
    if (scenario.failed_paths.none()) continue;  // failure invisible
    ++stats.detected;
    const LocalizationResult loc = localize(paths, scenario, 1);
    if (loc.unique()) ++stats.unique;
    stats.total_candidates +=
        static_cast<double>(loc.consistent_sets.size());
    stats.total_inspections += static_cast<double>(inspections_until_found(
        localization_inspection_order(loc), scenario.failed_nodes,
        paths.node_count()));
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace splace;

  std::size_t drills = 200;
  if (argc > 1) drills = static_cast<std::size_t>(std::atoll(argv[1]));

  const topology::CatalogEntry& entry = topology::catalog_entry("AT&T");
  const ProblemInstance instance = make_instance(entry, 0.6);
  std::cout << "AT&T stand-in: " << instance.node_count() << " nodes, "
            << instance.service_count() << " services, alpha=0.6, "
            << drills << " single-failure drills\n\n";

  const Placement qos = best_qos_placement(instance);
  const Placement gd =
      greedy_placement(instance, ObjectiveKind::Distinguishability).placement;

  TablePrinter table({"placement", "failures detected", "uniquely localized",
                      "mean candidate locations", "mean inspections"});
  for (const auto& [name, placement] :
       {std::pair<const char*, const Placement&>{"best-QoS", qos},
        {"greedy-distinguishability", gd}}) {
    const DrillStats stats = run_drills(instance, placement, drills);
    table.add_row(
        {name,
         std::to_string(stats.detected) + "/" + std::to_string(drills),
         std::to_string(stats.unique) + "/" + std::to_string(stats.detected),
         stats.detected == 0
             ? "-"
             : format_double(stats.total_candidates /
                                 static_cast<double>(stats.detected),
                             2),
         stats.detected == 0
             ? "-"
             : format_double(stats.total_inspections /
                                 static_cast<double>(stats.detected),
                             2)});
  }
  table.print(std::cout);

  std::cout << "\n(Each 'candidate location' is a failure hypothesis "
               "consistent with the observed path states; fewer means less "
               "manual troubleshooting.)\n";
  return 0;
}
