// splace_cli — command-line front end to the library.
//
// Compute a monitoring-aware placement for a named evaluation topology or a
// user-supplied edge-list file, print the placement and its monitoring
// metrics, and optionally emit machine-readable CSV or a Graphviz rendering.
//
// Usage:
//   splace_cli [--topology NAME|--file PATH|--scenario PATH] [--alpha A]
//              [--algorithm ALGO] [--services N] [--clients M] [--k K]
//              [--seed S] [--capacity R] [--csv] [--dot PATH]
//
//   --scenario   run a scenario file (see core/scenario.hpp for the format);
//                overrides every other problem-definition flag
//   --replay     fire a replay file of mixed place/evaluate/localize
//                requests through the concurrent serving engine (see
//                engine/replay.hpp for the format — including `shards N`
//                for a consistent-hash EngineGroup and `tenant` / `quota`
//                directives for multi-tenant isolation) and print the
//                outcome tally plus the engine metrics as JSON
//   --metrics-text PATH  with --replay: write the Prometheus-style text
//                exposition of the post-run engine/stream/bus metrics to
//                PATH ("-" for stdout); a `metrics` directive in the
//                replay file prints it to stdout as well
//   --trace-json PATH  with --replay: write the drained request traces
//                (one JSON array, all seven lifecycle spans per trace) to
//                PATH; requires a `trace` directive in the replay file
//   --sweep      run the full figure-style α sweep (0, 0.1, ..., 1) for the
//                chosen catalog topology and print it as CSV
//                (alpha,algorithm,coverage,identifiability,distinguishability)
//
//   --topology   abovenet | tiscali | att          (default tiscali)
//   --file       edge-list file (see graph/io.hpp); clients are the
//                degree-1 nodes of the loaded graph
//   --algorithm  gd | gc | gi | qos | rd | bf | bb (default gd), or any
//                name from the pluggable registry (--list-algorithms)
//   --list-algorithms  print every registered placement algorithm and exit
//   --alpha      QoS slack in [0,1]                (default 0.6)
//   --services   number of services                (default: catalog value
//                for named topologies, 3 for files)
//   --clients    clients per service               (default 3)
//   --k          failure bound for the metrics     (default 1)
//   --capacity   per-host capacity (enables the capacity-constrained
//                greedy; unit demand per service)
//   --csv        print one CSV row instead of tables
//   --dot PATH   write the topology as Graphviz DOT
#include <fstream>
#include <iostream>
#include <string>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace splace;

struct CliOptions {
  std::string topology = "tiscali";
  std::string file;
  std::string scenario;
  std::string replay;
  std::string algorithm = "gd";
  double alpha = 0.6;
  std::size_t services = 0;  // 0 = default
  std::size_t clients = 3;
  std::size_t k = 1;
  std::uint64_t seed = 42;
  double capacity = -1.0;  // <0 = unconstrained
  bool csv = false;
  bool sweep = false;
  bool report = false;
  std::string dot;
  std::string trace_json;
  std::string metrics_text;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "splace_cli: " << message
            << "\nRun with no arguments for defaults; see the header comment "
               "of examples/splace_cli.cpp for the full flag list.\n";
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opts;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--topology") opts.topology = next_value(i);
    else if (arg == "--file") opts.file = next_value(i);
    else if (arg == "--scenario") opts.scenario = next_value(i);
    else if (arg == "--replay") opts.replay = next_value(i);
    else if (arg == "--algorithm") opts.algorithm = next_value(i);
    else if (arg == "--alpha") opts.alpha = std::stod(next_value(i));
    else if (arg == "--services")
      opts.services = static_cast<std::size_t>(std::stoul(next_value(i)));
    else if (arg == "--clients")
      opts.clients = static_cast<std::size_t>(std::stoul(next_value(i)));
    else if (arg == "--k")
      opts.k = static_cast<std::size_t>(std::stoul(next_value(i)));
    else if (arg == "--seed")
      opts.seed = std::stoull(next_value(i));
    else if (arg == "--capacity") opts.capacity = std::stod(next_value(i));
    else if (arg == "--csv") opts.csv = true;
    else if (arg == "--sweep") opts.sweep = true;
    else if (arg == "--list-algorithms") {
      // Classic enum spellings first, then the full registry (which the
      // enum path is also re-registered into).
      std::cout << "enum:     gd gc gi qos rd bf bb\nregistry:";
      for (const std::string& name : algorithm_names())
        std::cout << ' ' << name;
      std::cout << '\n';
      std::exit(0);
    }
    else if (arg == "--report") opts.report = true;
    else if (arg == "--dot") opts.dot = next_value(i);
    else if (arg == "--trace-json") opts.trace_json = next_value(i);
    else if (arg == "--metrics-text") opts.metrics_text = next_value(i);
    else usage_error("unknown flag '" + arg + "'");
  }
  if (opts.alpha < 0.0 || opts.alpha > 1.0)
    usage_error("--alpha must be in [0,1]");
  if (opts.k < 1) usage_error("--k must be >= 1");
  if (opts.clients < 1) usage_error("--clients must be >= 1");
  if (!opts.metrics_text.empty() && opts.replay.empty())
    usage_error("--metrics-text requires --replay");
  return opts;
}

struct LoadedProblem {
  ProblemInstance instance;
  std::string label;
};

LoadedProblem load_problem(const CliOptions& opts) {
  Graph g;
  std::string label;
  std::vector<NodeId> candidate_clients;
  std::size_t services = opts.services;

  if (!opts.file.empty()) {
    std::ifstream in(opts.file);
    if (!in) usage_error("cannot open '" + opts.file + "'");
    g = read_edge_list(in);
    label = opts.file;
    candidate_clients = g.degree_one_nodes();
    if (candidate_clients.empty())
      // No access nodes: fall back to all nodes as potential clients.
      candidate_clients = g.nodes();
    if (services == 0) services = 3;
  } else {
    const topology::CatalogEntry& entry =
        topology::catalog_entry(opts.topology);
    g = topology::build(entry);
    label = entry.spec.name;
    candidate_clients = topology::candidate_clients(entry, g);
    if (services == 0) services = entry.services;
  }

  // Round-robin clients, as in the paper's evaluation protocol.
  std::vector<Service> service_list;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < services; ++s) {
    Service svc;
    svc.name = "svc" + std::to_string(s);
    svc.alpha = opts.alpha;
    for (std::size_t c = 0; c < opts.clients; ++c) {
      svc.clients.push_back(candidate_clients[cursor]);
      cursor = (cursor + 1) % candidate_clients.size();
    }
    service_list.push_back(std::move(svc));
  }
  return LoadedProblem{ProblemInstance(std::move(g), std::move(service_list)),
                       std::move(label)};
}

Placement compute(const CliOptions& opts, const ProblemInstance& instance) {
  Rng rng(opts.seed);
  if (opts.capacity >= 0.0) {
    CapacityConstraints constraints;
    constraints.host_capacity.assign(instance.node_count(), opts.capacity);
    const ObjectiveKind kind = opts.algorithm == "gc"
                                   ? ObjectiveKind::Coverage
                                   : opts.algorithm == "gi"
                                         ? ObjectiveKind::Identifiability
                                         : ObjectiveKind::Distinguishability;
    const CapacityGreedyResult result =
        greedy_capacity_placement(instance, constraints, kind, opts.k);
    if (!result.complete) {
      std::cerr << "warning: capacity too tight, some services unplaced\n";
      std::exit(3);
    }
    return result.placement;
  }
  if (opts.algorithm == "gd")
    return greedy_placement(instance, ObjectiveKind::Distinguishability,
                            opts.k)
        .placement;
  if (opts.algorithm == "gc")
    return greedy_placement(instance, ObjectiveKind::Coverage, opts.k)
        .placement;
  if (opts.algorithm == "gi")
    return greedy_placement(instance, ObjectiveKind::Identifiability, opts.k)
        .placement;
  if (opts.algorithm == "qos") return best_qos_placement(instance);
  if (opts.algorithm == "rd") return random_placement(instance, rng);
  if (opts.algorithm == "bf") {
    const auto bf = brute_force_k1(instance);
    if (!bf) usage_error("search space too large for --algorithm bf");
    return bf->distinguishability.placement;
  }
  if (opts.algorithm == "bb")
    return branch_and_bound(instance, ObjectiveKind::Distinguishability,
                            opts.k)
        .placement;
  if (is_registered_algorithm(opts.algorithm)) {
    // Any registry entry (--list-algorithms), maximizing GD's objective.
    AlgorithmSpec spec;
    spec.k = opts.k;
    spec.seed = opts.seed;
    return make_algorithm(opts.algorithm)->execute(instance, spec).placement;
  }
  usage_error("unknown --algorithm '" + opts.algorithm +
              "' (see --list-algorithms)");
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse(argc, argv);

  if (!opts.replay.empty()) {
    std::ifstream in(opts.replay);
    if (!in) usage_error("cannot open '" + opts.replay + "'");
    const engine::ReplaySpec spec = engine::parse_replay(in);
    const engine::ReplayReport report = engine::run_replay(spec);
    std::cout << "replay:    " << opts.replay << " ("
              << spec.snapshots.size() << " snapshot(s), "
              << spec.requests.size() << " request line(s) x "
              << spec.repeat << ")\n"
              << "engine:    threads "
              << (spec.threads == 0 ? std::string("hw")
                                    : std::to_string(spec.threads))
              << (spec.shards > 1
                      ? ", shards " + std::to_string(spec.shards)
                      : std::string())
              << ", queue depth " << spec.queue_depth << ", cache "
              << spec.cache_capacity << "\n"
              << "requests:  " << report.total << " total, " << report.ok
              << " ok (" << report.cache_hits << " cache hits), "
              << report.rejected_queue_full << " queue-full, "
              << report.rejected_deadline << " deadline, "
              << report.rejected_bad_request << " bad-request, "
              << report.rejected_tenant_quota << " tenant-quota\n"
              << "wall:      " << format_double(report.wall_seconds, 4)
              << " s (" << format_double(report.requests_per_second, 0)
              << " req/s)\n"
              << "metrics:   " << engine::to_json(report.metrics) << '\n';
    for (const auto& cascade : report.cascades)
      std::cout << "cascade:   snapshot " << cascade.snapshot << ": "
                << cascade.episodes << " episode(s), " << cascade.detected
                << " detected, top-1 " << cascade.top1 << ", top-3 "
                << cascade.top3 << ", mean blast "
                << format_double(cascade.mean_blast_services, 2)
                << (cascade.streamed_equals_batch
                        ? ""
                        : " [streamed != batch DIVERGENCE]")
                << '\n';
    if (spec.metrics_text) std::cout << report.metrics_text;
    if (!opts.metrics_text.empty()) {
      if (opts.metrics_text == "-") {
        if (!spec.metrics_text) std::cout << report.metrics_text;
      } else {
        std::ofstream out(opts.metrics_text);
        if (!out) usage_error("cannot write '" + opts.metrics_text + "'");
        out << report.metrics_text;
        std::cout << "metrics-text: written to " << opts.metrics_text << '\n';
      }
    }
    if (!opts.trace_json.empty()) {
      if (!spec.tracing)
        usage_error("--trace-json needs a `trace` directive in the replay "
                    "file");
      std::ofstream out(opts.trace_json);
      if (!out) usage_error("cannot write '" + opts.trace_json + "'");
      out << engine::to_json(report.traces) << '\n';
      std::cout << "traces:    " << report.traces.size() << " written to "
                << opts.trace_json << '\n';
    }
    return report.total == report.ok + report.rejected_queue_full +
                               report.rejected_deadline +
                               report.rejected_bad_request +
                               report.rejected_tenant_quota
               ? 0
               : 1;
  }

  if (!opts.scenario.empty()) {
    std::ifstream in(opts.scenario);
    if (!in) usage_error("cannot open '" + opts.scenario + "'");
    const Scenario scenario = parse_scenario(in);
    const ScenarioResult result = run_scenario(scenario);
    std::cout << "scenario:  " << opts.scenario << " (algorithm "
              << scenario.algorithm << ", alpha " << scenario.alpha
              << ", k " << scenario.k << ")\nplacement: ";
    for (std::size_t s = 0; s < result.placement.size(); ++s)
      std::cout << (s ? " " : "") << result.placement[s];
    std::cout << "\ncoverage " << result.metrics.coverage
              << ", identifiability " << result.metrics.identifiability
              << ", distinguishability "
              << result.metrics.distinguishability << '\n';
    return 0;
  }

  if (opts.sweep) {
    if (!opts.file.empty())
      usage_error("--sweep supports catalog topologies only");
    const topology::CatalogEntry& entry =
        topology::catalog_entry(opts.topology);
    SweepConfig config;
    config.alphas.clear();
    for (int i = 0; i <= 10; ++i)
      config.alphas.push_back(i == 10 ? 1.0 : 0.1 * i);
    config.rd_seed = opts.seed;
    sweep_to_csv(run_sweep(entry, config), std::cout);
    return 0;
  }

  const LoadedProblem problem = load_problem(opts);
  const ProblemInstance& instance = problem.instance;

  const Placement placement = compute(opts, instance);
  const PathSet paths = instance.paths_for_placement(placement);
  const MetricReport metrics = evaluate_paths(paths, opts.k);

  if (!opts.dot.empty()) {
    std::ofstream out(opts.dot);
    if (!out) usage_error("cannot write '" + opts.dot + "'");
    out << to_dot(instance.graph(), "splace");
  }

  if (opts.csv) {
    std::cout << "topology,algorithm,alpha,k,services,coverage,"
                 "identifiability,distinguishability\n"
              << problem.label << ',' << opts.algorithm << ','
              << format_double(opts.alpha, 2) << ',' << opts.k << ','
              << instance.service_count() << ',' << metrics.coverage << ','
              << metrics.identifiability << ','
              << metrics.distinguishability << '\n';
    return 0;
  }

  std::cout << "topology:  " << problem.label << " ("
            << instance.node_count() << " nodes, "
            << instance.graph().edge_count() << " links)\n"
            << "algorithm: " << opts.algorithm << "  alpha=" << opts.alpha
            << "  k=" << opts.k << "\n\n";

  TablePrinter table({"service", "host", "clients", "worst distance"});
  for (std::size_t s = 0; s < instance.service_count(); ++s) {
    std::vector<std::string> clients;
    for (NodeId c : instance.services()[s].clients)
      clients.push_back(std::to_string(c));
    table.add_row({instance.services()[s].name,
                   std::to_string(placement[s]), join(clients, " "),
                   std::to_string(
                       instance.worst_distance(s, placement[s]))});
  }
  table.print(std::cout);

  std::cout << "\ncoverage            " << metrics.coverage << " / "
            << instance.node_count() << " nodes\n"
            << "identifiability     " << metrics.identifiability
            << " nodes (k=" << opts.k << ")\n"
            << "distinguishability  " << metrics.distinguishability
            << " failure-set pairs\n";

  if (opts.report) {
    std::cout << '\n';
    print_assessment(assess(paths), std::cout);
  }
  return 0;
}
