// Monitoring link failures through the logical-node transform.
//
//   $ ./link_failures
//
// The paper assumes node failures only, noting that "link failures can be
// modeled by the failures of logical nodes that represent the links"
// (Section II-A). This example makes that concrete: subdivide every link of
// the Abovenet stand-in with a logical link node, run the same GD placement
// machinery on the augmented network, then break real links and localize
// them from end-to-end observations.
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace splace;

  const Graph original = topology::abovenet();
  const LinkNodeTransform transform(original);
  std::cout << "Abovenet stand-in: " << original.node_count() << " nodes + "
            << transform.link_count() << " links -> augmented network of "
            << transform.augmented().node_count() << " failure points\n\n";

  // Services as in the paper's Abovenet setup, but placed on the augmented
  // network so link states become first-class monitoring targets.
  const topology::CatalogEntry& entry = topology::catalog_entry("Abovenet");
  const std::vector<NodeId> clients =
      topology::candidate_clients(entry, original);
  std::vector<Service> services = make_services(entry, clients, 0.6);
  const ProblemInstance instance(transform.augmented(), services);

  const GreedyResult gd =
      greedy_placement(instance, ObjectiveKind::Distinguishability);
  const PathSet paths = instance.paths_for_placement(gd.placement);
  const MetricReport metrics = evaluate_paths_k1(paths);
  std::cout << "GD placement on the augmented network: coverage "
            << metrics.coverage << "/" << instance.node_count()
            << " failure points (nodes+links), |S_1| = "
            << metrics.identifiability << "\n\n";

  // Break each of the first few links and troubleshoot.
  TablePrinter table({"failed link", "paths broken", "candidates",
                      "verdict"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < transform.link_count() && shown < 8; ++i) {
    const NodeId link = transform.link_node(i);
    const FailureScenario scenario = observe(paths, {link});
    if (scenario.failed_paths.none()) continue;  // link unused by any path
    ++shown;
    const LocalizationResult loc = localize(paths, scenario, 1);
    const Edge e = transform.original_link(link);
    std::string verdict;
    if (loc.unique()) {
      verdict = "uniquely localized";
    } else {
      verdict = "narrowed to " +
                std::to_string(loc.consistent_sets.size()) + " candidates";
    }
    table.add_row({std::to_string(e.u) + "-" + std::to_string(e.v),
                   std::to_string(scenario.failed_paths.count()),
                   std::to_string(loc.consistent_sets.size()), verdict});
  }
  table.print(std::cout);

  std::cout << "\n(Candidates may be links or nodes — e.g. a link and the "
               "stub node behind it fail identically; the transform makes "
               "that ambiguity explicit instead of hiding it.)\n";
  return 0;
}
