// Adaptive monitoring loop: passive detection -> tomography -> targeted
// active probes -> confirmation.
//
//   $ ./adaptive_monitoring [num_incidents]
//
// The paper's placement maximizes what *passive* client-server observations
// reveal, and notes that residual ambiguity can be removed with a few
// active probes. This example runs that full loop on the Tiscali stand-in:
// for each simulated incident, localize from passive paths alone; when the
// answer is ambiguous, plan the fewest traceroute-style probes from the
// service hosts that would disambiguate, and report the measurement budget
// adaptivity saves versus probing everything.
#include <cstdlib>
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace splace;

  std::size_t incidents = 30;
  if (argc > 1) incidents = static_cast<std::size_t>(std::atoll(argv[1]));

  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance instance = make_instance(entry, 0.6);
  const GreedyResult gd =
      greedy_placement(instance, ObjectiveKind::Distinguishability);
  const PathSet passive = instance.paths_for_placement(gd.placement);

  // Probe vantages: the service hosts themselves (they already talk to the
  // network; no new monitoring nodes are deployed).
  std::vector<NodeId> vantages = gd.placement;
  std::sort(vantages.begin(), vantages.end());
  vantages.erase(std::unique(vantages.begin(), vantages.end()),
                 vantages.end());
  const std::vector<MeasurementPath> pool =
      probe_pool(instance.routing(), vantages);

  std::size_t detected = 0;
  std::size_t immediately_unique = 0;
  std::size_t resolved_by_probes = 0;
  std::size_t irreducible = 0;
  std::size_t probes_spent = 0;

  Rng rng(2016);
  for (std::size_t i = 0; i < incidents; ++i) {
    const FailureScenario scenario = random_scenario(passive, 1, rng);
    if (scenario.failed_paths.none()) continue;  // invisible incident
    ++detected;
    const LocalizationResult loc = localize(passive, scenario, 1);
    if (loc.unique()) {
      ++immediately_unique;
      continue;
    }
    const AugmentationPlan plan =
        plan_augmentation(pool, loc.consistent_sets);
    probes_spent += plan.probes.size();
    if (plan.fully_disambiguates)
      ++resolved_by_probes;
    else
      ++irreducible;
  }

  std::cout << "Adaptive monitoring on " << entry.spec.name
            << " (GD placement, " << incidents << " single-node incidents, "
            << vantages.size() << " probe vantages)\n\n";
  TablePrinter table({"stage", "incidents"});
  table.add_row({"visible to passive paths", std::to_string(detected)});
  table.add_row({"localized passively (no probes)",
                 std::to_string(immediately_unique)});
  table.add_row({"resolved by planned probes",
                 std::to_string(resolved_by_probes)});
  table.add_row({"irreducible ambiguity", std::to_string(irreducible)});
  table.print(std::cout);

  const std::size_t ambiguous = resolved_by_probes + irreducible;
  const double mean_probes =
      ambiguous == 0 ? 0.0
                     : static_cast<double>(probes_spent) /
                           static_cast<double>(ambiguous);
  std::cout << "\nmean probes per ambiguous incident: "
            << format_double(mean_probes, 2) << " (vs " << pool.size()
            << " for probing every vantage-target pair)\n"
            << "=> the placement already does most of the localization "
               "work; adaptive probing mops up the tail for a tiny "
               "measurement budget.\n";
  return 0;
}
