// Dedicated monitors vs. monitoring-aware service placement.
//
//   $ ./monitor_vs_service
//
// The paper's related-work discussion (Section I-B) contrasts its problem
// with classic monitor placement [9][10], where dedicated probing nodes are
// deployed solely to measure the network. This example quantifies the
// trade: on the Tiscali stand-in, how many dedicated round-trip monitors
// does it take to match the monitoring quality that a GD service placement
// obtains as a free byproduct of serving client traffic?
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace splace;

  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance instance = make_instance(entry, 0.6);
  const RoutingTable& routing = instance.routing();

  // What the service placement gets "for free".
  const GreedyResult gd =
      greedy_placement(instance, ObjectiveKind::Distinguishability);
  const MetricReport service_metrics =
      evaluate_placement_k1(instance, gd.placement);

  std::cout << "Tiscali stand-in, " << instance.service_count()
            << " services at alpha=0.6 (GD placement):\n"
            << "  coverage " << service_metrics.coverage << ", |S_1| "
            << service_metrics.identifiability << ", |D_1| "
            << service_metrics.distinguishability << "\n\n";

  // Budget curve for dedicated monitors (greedy max-distinguishability,
  // candidates = every node, one probe path per destination).
  std::cout << "Dedicated-monitor budget curve (greedy, round-trip "
               "probing):\n";
  const MonitorPlacementResult curve = greedy_monitor_placement(
      routing, /*budget=*/6, ObjectiveKind::Distinguishability);
  TablePrinter table({"monitors", "at node", "|D_1| achieved",
                      ">= GD service placement?"});
  for (std::size_t i = 0; i < curve.monitors.size(); ++i) {
    table.add_row(
        {std::to_string(i + 1), std::to_string(curve.monitors[i]),
         format_double(curve.value_curve[i], 0),
         curve.value_curve[i] >=
                 static_cast<double>(service_metrics.distinguishability)
             ? "yes"
             : "no"});
  }
  table.print(std::cout);

  const MonitorPlacementResult needed = monitors_to_reach(
      routing, instance.graph().nodes(),
      static_cast<double>(service_metrics.distinguishability),
      ObjectiveKind::Distinguishability);
  std::cout << "\n=> matching the service placement's |D_1| takes "
            << needed.monitors.size()
            << " dedicated monitor(s), each probing every node — "
               "active-probing load the service placement avoids entirely.\n"
            << "(Dedicated monitors control the probe *source*; service "
               "placement only steers existing client-server paths, which "
               "is the paper's harder setting.)\n";
  return 0;
}
