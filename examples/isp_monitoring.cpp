// ISP monitoring walkthrough: the paper's full evaluation protocol on the
// Tiscali-like topology.
//
//   $ ./isp_monitoring [alpha]
//
// Builds the 51-node Tiscali stand-in, forms 3 services with clients drawn
// round-robin from the dangling (access) nodes, and compares all five
// placement algorithms (QoS, RD, GC, GI, GD) on the three monitoring
// measures, then breaks down the equivalence classes of the winning
// placement.
#include <cstdlib>
#include <iostream>

#include "api/splace.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace splace;

  double alpha = 0.6;
  if (argc > 1) alpha = std::atof(argv[1]);
  if (alpha < 0.0 || alpha > 1.0) {
    std::cerr << "alpha must be in [0,1]\n";
    return 1;
  }

  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance instance = make_instance(entry, alpha);

  std::cout << "Tiscali stand-in: " << instance.node_count() << " nodes, "
            << instance.graph().edge_count() << " links, "
            << instance.graph().degree_one_nodes().size()
            << " access (dangling) nodes\n";
  std::cout << "Services: " << instance.service_count() << " x "
            << entry.clients_per_service << " clients, alpha=" << alpha
            << "\n\n";

  TablePrinter table({"algorithm", "coverage", "1-identifiable",
                      "distinguishable pairs"});
  Placement best_gd;
  for (Algorithm algo : standard_algorithms()) {
    Rng rng(42);
    MetricPoint point;
    if (algo == Algorithm::RD) {
      // Average the random baseline over 20 trials, like the paper.
      const std::size_t trials = 20;
      for (std::size_t t = 0; t < trials; ++t) {
        const MetricReport m = evaluate_placement_k1(
            instance, random_placement(instance, rng));
        point.coverage += static_cast<double>(m.coverage);
        point.identifiability += static_cast<double>(m.identifiability);
        point.distinguishability += static_cast<double>(m.distinguishability);
      }
      point.coverage /= static_cast<double>(trials);
      point.identifiability /= static_cast<double>(trials);
      point.distinguishability /= static_cast<double>(trials);
    } else {
      const Placement p = compute_placement(instance, algo, rng);
      if (algo == Algorithm::GD) best_gd = p;
      const MetricReport m = evaluate_placement_k1(instance, p);
      point = {static_cast<double>(m.coverage),
               static_cast<double>(m.identifiability),
               static_cast<double>(m.distinguishability)};
    }
    table.add_row({to_string(algo), format_double(point.coverage, 1),
                   format_double(point.identifiability, 1),
                   format_double(point.distinguishability, 1)});
  }
  table.print(std::cout);

  // Drill into the GD placement's ambiguity structure.
  EquivalenceClasses classes(instance.node_count());
  classes.add_paths(instance.paths_for_placement(best_gd));
  std::size_t ambiguous_classes = 0;
  std::size_t largest = 0;
  for (NodeId v = 0; v < instance.node_count(); ++v) {
    if (classes.class_of(v).front() != v) continue;  // count each class once
    if (classes.class_size(v) > 1) {
      ++ambiguous_classes;
      largest = std::max(largest, classes.class_size(v));
    }
  }
  std::cout << "\nGD placement ambiguity: " << ambiguous_classes
            << " ambiguous node group(s); largest group has " << largest
            << " nodes (a failure there narrows to that group).\n";
  return 0;
}
