#include "shard/group.hpp"

#include <sstream>
#include <utility>

#include "stream/exposition.hpp"
#include "util/error.hpp"

namespace splace::shard {

namespace {

EngineGroupConfig validated(EngineGroupConfig config) {
  const std::string error = config.validate();
  if (!error.empty()) throw InvalidInput("EngineGroupConfig: " + error);
  return config;
}

}  // namespace

std::string EngineGroupConfig::validate() const {
  if (shards < 1) return "shards must be >= 1 (engine shards)";
  const std::string shard_error = shard.validate();
  if (!shard_error.empty()) return "shard config: " + shard_error;
  return {};
}

EngineGroup::EngineGroup(std::shared_ptr<engine::SnapshotRegistry> registry,
                         EngineGroupConfig config)
    : registry_(std::move(registry)),
      config_(validated(std::move(config))),
      router_(config_.shards) {
  SPLACE_EXPECTS(registry_ != nullptr);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    shards_.push_back(
        std::make_unique<engine::Engine>(registry_, config_.shard));
}

std::size_t EngineGroup::route_key(std::string_view key) const {
  return router_.route(key);
}

std::size_t EngineGroup::route(const engine::Request& request) const {
  return route_key(engine::canonical_key(request));
}

std::vector<std::future<engine::EngineResult>> EngineGroup::submit(
    std::vector<engine::Request> batch) {
  // Scatter into per-shard sub-batches, preserving relative order so each
  // shard consumes admission slots in the order a single engine would; then
  // gather the futures back into the caller's positions.
  std::vector<std::vector<engine::Request>> per_shard(shards_.size());
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s = route(batch[i]);
    per_shard[s].push_back(std::move(batch[i]));
    positions[s].push_back(i);
  }
  std::vector<std::future<engine::EngineResult>> futures(batch.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    std::vector<std::future<engine::EngineResult>> shard_futures =
        shards_[s]->submit(std::move(per_shard[s]));
    for (std::size_t j = 0; j < shard_futures.size(); ++j)
      futures[positions[s][j]] = std::move(shard_futures[j]);
  }
  return futures;
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::Request request) {
  std::vector<engine::Request> batch;
  batch.push_back(std::move(request));
  std::vector<std::future<engine::EngineResult>> futures =
      submit(std::move(batch));
  return std::move(futures.front());
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::PlaceRequest request) {
  return submit(engine::Request{std::move(request)});
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::EvaluateRequest request) {
  return submit(engine::Request{std::move(request)});
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::LocalizeRequest request) {
  return submit(engine::Request{std::move(request)});
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::MutateRequest request) {
  return submit(engine::Request{std::move(request)});
}

std::future<engine::EngineResult> EngineGroup::submit(
    engine::PortfolioRequest request) {
  return submit(engine::Request{std::move(request)});
}

std::vector<engine::EngineMetricsSnapshot> EngineGroup::shard_metrics() const {
  std::vector<engine::EngineMetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) snapshots.push_back(shard->metrics());
  return snapshots;
}

engine::EngineMetricsSnapshot EngineGroup::metrics() const {
  return engine::merge_snapshots(shard_metrics());
}

std::string EngineGroup::metrics_text() const {
  std::vector<stream::EngineExposition> shards(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards[s].engine = shards_[s]->metrics();
    shards[s].stream = shards_[s]->stream_stats();
    shards[s].bus = shards_[s]->bus().stats();
    // One shard = the classic unlabeled page; several = shard="i" labels.
    if (shards_.size() > 1) shards[s].shard = std::to_string(s);
  }
  return stream::metrics_text(shards);
}

std::string EngineGroup::metrics_json() const {
  const std::vector<engine::EngineMetricsSnapshot> per_shard = shard_metrics();
  std::ostringstream os;
  os << "{\"shards\": " << per_shard.size()
     << ", \"group\": " << engine::to_json(engine::merge_snapshots(per_shard))
     << ", \"per_shard\": [";
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    if (s > 0) os << ", ";
    os << engine::to_json(per_shard[s]);
  }
  os << "]}";
  return os.str();
}

std::size_t EngineGroup::ingest_shard(std::uint64_t snapshot) const {
  // Streams pin to a shard by snapshot hash: all streams over one snapshot
  // share that shard's bus, so a subscriber sees a consistent event order.
  std::ostringstream key;
  key << "ingest|" << std::hex << snapshot;
  return route_key(key.str());
}

std::unique_ptr<stream::ObservationIngest> EngineGroup::open_ingest(
    std::uint64_t snapshot, Placement placement, std::size_t k) {
  const std::size_t s = ingest_shard(snapshot);
  return shards_[s]->open_ingest(snapshot, std::move(placement), k);
}

}  // namespace splace::shard
