// Consistent-hash routing of canonical request keys to engine shards.
//
// Rendezvous (highest-random-weight) hashing: every (key, shard) pair gets
// a pseudo-random score and the key routes to the arg-max shard. Properties
// the serving tier builds on:
//
//   * Deterministic — route(key) is a pure function of (key, shard_count);
//     two routers with the same count agree on every key, so any front end
//     can route without coordination.
//   * Stable under resharding — growing from N to N+1 shards only remaps
//     the keys whose new shard wins the arg-max: an expected 1/(N+1)
//     fraction. Keys that stay keep their shard (scores of existing shards
//     are unchanged), so a resize never reshuffles the whole cache.
//
// Routing by *canonical key* (not tenant, not snapshot alone) spreads one
// tenant's traffic across shards while keeping every repeat of the same
// request on the same shard — the shard's cache partition sees all repeats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace splace::shard {

class ShardRouter {
 public:
  /// Throws InvalidInput when shard_count is 0.
  explicit ShardRouter(std::size_t shard_count);

  std::size_t shard_count() const { return shard_count_; }

  /// The shard serving `key`: arg-max over per-shard rendezvous scores,
  /// ties broken toward the lower shard index. Always < shard_count().
  std::size_t route(std::string_view key) const;

  /// The rendezvous score of (key, shard) — exposed so tests can verify
  /// the arg-max property directly. `shard` may exceed shard_count().
  static std::uint64_t score(std::string_view key, std::size_t shard);

 private:
  std::size_t shard_count_;
};

}  // namespace splace::shard
