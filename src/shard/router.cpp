#include "shard/router.hpp"

#include "util/error.hpp"

namespace splace::shard {

namespace {

/// FNV-1a over the key bytes — same family the engine uses for content
/// hashes; collisions only make two keys share a shard, never an error.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  return hash;
}

/// splitmix64 finalizer: decorrelates the combined (key, shard) value so
/// per-shard scores behave like independent draws — the property rendezvous
/// hashing needs for its 1/(N+1) remap bound.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shard_count) : shard_count_(shard_count) {
  if (shard_count_ == 0)
    throw InvalidInput("ShardRouter: shard_count must be >= 1");
}

std::uint64_t ShardRouter::score(std::string_view key, std::size_t shard) {
  return mix(fnv1a(key) ^ mix(static_cast<std::uint64_t>(shard)));
}

std::size_t ShardRouter::route(std::string_view key) const {
  std::size_t best = 0;
  std::uint64_t best_score = score(key, 0);
  for (std::size_t shard = 1; shard < shard_count_; ++shard) {
    const std::uint64_t s = score(key, shard);
    // Strict >: ties stay on the lower index, keeping route() total-ordered
    // and deterministic even on (astronomically unlikely) score collisions.
    if (s > best_score) {
      best = shard;
      best_score = s;
    }
  }
  return best;
}

}  // namespace splace::shard
