// The sharded serving tier: one EngineGroup front end over N Engine shards.
//
// The group routes every request by its canonical cache key through a
// rendezvous-hash ShardRouter (shard/router.hpp), so repeats of the same
// request always land on the same shard — that shard's result cache sees
// every repeat, and no result is computed or cached twice across the group.
// All shards share one content-hashed SnapshotRegistry: a snapshot (or a
// derived instance) registered through any shard is instantly visible,
// deduplicated, to every other shard.
//
// Determinism carries over from the single engine: responses are
// bit-identical to submitting the same requests to one Engine (routing
// changes which shard computes, never what it computes). Per-tenant
// isolation (cache partitions, admission quotas) is enforced inside each
// shard — see engine/engine.hpp — and the group merges per-shard metrics
// into one aggregate snapshot and one Prometheus page with `shard` labels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "shard/router.hpp"

namespace splace::shard {

/// Group configuration: the shard count plus the EngineConfig applied to
/// every shard. Validated like EngineConfig — violations throw InvalidInput
/// from the constructor.
struct EngineGroupConfig {
  /// Engine shards (count; must be >= 1).
  std::size_t shards = 1;
  /// Per-shard engine configuration (threads, queue, cache, quotas — each
  /// shard gets its own queue and cache budget of this size).
  engine::EngineConfig shard;

  /// Empty string when valid; otherwise the first violated rule.
  std::string validate() const;
};

class EngineGroup {
 public:
  /// Throws InvalidInput when `config.validate()` reports a violation.
  explicit EngineGroup(std::shared_ptr<engine::SnapshotRegistry> registry,
                       EngineGroupConfig config = {});

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  engine::Engine& shard(std::size_t index) { return *shards_.at(index); }
  const engine::Engine& shard(std::size_t index) const {
    return *shards_.at(index);
  }
  const ShardRouter& router() const { return router_; }

  /// The shard this request routes to: route_key(canonical_key(request)).
  std::size_t route(const engine::Request& request) const;
  /// Deterministic key -> shard mapping (pure; any front end agrees).
  std::size_t route_key(std::string_view key) const;

  std::future<engine::EngineResult> submit(engine::PlaceRequest request);
  std::future<engine::EngineResult> submit(engine::EvaluateRequest request);
  std::future<engine::EngineResult> submit(engine::LocalizeRequest request);
  std::future<engine::EngineResult> submit(engine::MutateRequest request);
  std::future<engine::EngineResult> submit(engine::PortfolioRequest request);
  std::future<engine::EngineResult> submit(engine::Request request);

  /// Batched submission: the batch is split into per-shard sub-batches
  /// (preserving relative order, so each shard sees the same order a
  /// single engine would) and futures return in the original positions.
  std::vector<std::future<engine::EngineResult>> submit(
      std::vector<engine::Request> batch);

  /// Group-aggregated metrics (engine/metrics.hpp merge_snapshots).
  engine::EngineMetricsSnapshot metrics() const;

  /// One snapshot per shard, in shard order.
  std::vector<engine::EngineMetricsSnapshot> shard_metrics() const;

  /// One Prometheus page for the whole group: families declared once,
  /// samples labeled shard="0".."N-1". A single-shard group emits the
  /// classic unlabeled layout (identical to Engine::metrics_text).
  std::string metrics_text() const;

  /// Group JSON: {"shards": N, "group": <aggregate>, "per_shard": [...]}.
  std::string metrics_json() const;

  /// Opens a live observation stream on the shard the snapshot's ingest
  /// key routes to. Same contract as Engine::open_ingest.
  std::unique_ptr<stream::ObservationIngest> open_ingest(
      std::uint64_t snapshot, Placement placement, std::size_t k);

  /// The shard open_ingest(snapshot, ...) pins its streams (and thus their
  /// events' bus) to. Lets callers subscribe to the right shard's bus.
  std::size_t ingest_shard(std::uint64_t snapshot) const;

  engine::SnapshotRegistry& registry() { return *registry_; }
  const engine::SnapshotRegistry& registry() const { return *registry_; }
  const EngineGroupConfig& config() const { return config_; }

 private:
  std::shared_ptr<engine::SnapshotRegistry> registry_;
  EngineGroupConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<engine::Engine>> shards_;
};

}  // namespace splace::shard
