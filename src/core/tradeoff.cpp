#include "core/tradeoff.hpp"

#include <algorithm>

#include "placement/candidates.hpp"
#include "util/error.hpp"

namespace splace {

QosCost qos_cost(const ProblemInstance& instance,
                 const Placement& placement) {
  SPLACE_EXPECTS(placement.size() == instance.service_count());
  QosCost cost;
  for (std::size_t s = 0; s < placement.size(); ++s) {
    const NodeId host = placement[s];
    // Reconstruct d_min/d_max over all hosts for this service's clients.
    std::uint32_t d_min = kUnreachable;
    std::uint32_t d_max = 0;
    for (NodeId h = 0; h < instance.node_count(); ++h) {
      const std::uint32_t d = instance.worst_distance(s, h);
      if (d == kUnreachable) continue;
      d_min = std::min(d_min, d);
      d_max = std::max(d_max, d);
    }
    const std::uint32_t d = instance.worst_distance(s, host);
    SPLACE_EXPECTS(d != kUnreachable);
    const double relative =
        d_max == d_min ? 0.0
                       : static_cast<double>(d - d_min) /
                             static_cast<double>(d_max - d_min);
    cost.mean_relative_distance += relative;
    cost.max_relative_distance =
        std::max(cost.max_relative_distance, relative);
    cost.mean_extra_hops += static_cast<double>(d - d_min);
  }
  const auto services = static_cast<double>(placement.size());
  cost.mean_relative_distance /= services;
  cost.mean_extra_hops /= services;
  return cost;
}

std::vector<TradeoffPoint> qos_tradeoff(const topology::CatalogEntry& entry,
                                        Algorithm algo,
                                        const std::vector<double>& alphas,
                                        std::uint64_t rd_seed) {
  std::vector<TradeoffPoint> frontier;
  frontier.reserve(alphas.size());
  for (double alpha : alphas) {
    const ProblemInstance instance = make_instance(entry, alpha);
    Rng rng(rd_seed);
    const Placement placement = compute_placement(instance, algo, rng);
    TradeoffPoint point;
    point.alpha = alpha;
    point.cost = qos_cost(instance, placement);
    point.metrics = evaluate_placement_k1(instance, placement);
    frontier.push_back(point);
  }
  return frontier;
}

}  // namespace splace
