// Experiment harness reproducing the paper's evaluation protocol
// (Section VI-A): build a catalog topology, draw candidate clients, assign
// clients round-robin to services, sweep the QoS slack α, and score every
// algorithm (QoS / RD / GC / GI / GD, optionally BF) on all three measures.
// The benches for Figs. 4-8 are thin printers over this module.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics_report.hpp"
#include "placement/service.hpp"
#include "topology/catalog.hpp"

namespace splace {

/// The algorithms compared in the paper's figures.
enum class Algorithm { QoS, RD, GC, GI, GD, BF };

/// Paper's abbreviation ("QoS", "RD", "GC", "GI", "GD", "BF").
std::string to_string(Algorithm algo);

/// The five heuristic/baseline algorithms (BF excluded).
const std::vector<Algorithm>& standard_algorithms();

/// Builds the paper's service list for one network at a given α: services
/// with `clients_per_service` clients each, assigned round-robin over the
/// candidate clients.
std::vector<Service> make_services(const topology::CatalogEntry& entry,
                                   const std::vector<NodeId>& clients,
                                   double alpha);

/// Builds the full problem instance for a catalog entry at a given α.
ProblemInstance make_instance(const topology::CatalogEntry& entry,
                              double alpha);

/// Computes the placement an algorithm produces. RD uses `rng` (one trial);
/// BF requires an affordable search space and throws InvalidInput otherwise.
Placement compute_placement(const ProblemInstance& instance, Algorithm algo,
                            Rng& rng, std::uint64_t bf_budget = 50'000'000);

/// Sweep configuration (defaults mirror Section VI-A).
struct SweepConfig {
  std::vector<double> alphas = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::size_t rd_trials = 20;     ///< RD metrics are averaged over trials
  std::uint64_t rd_seed = 42;
  bool include_bf = false;        ///< paper: BF for the smallest network only
  std::uint64_t bf_budget = 50'000'000;
};

/// Metric triple as doubles (RD is an average).
struct MetricPoint {
  double coverage = 0;
  double identifiability = 0;
  double distinguishability = 0;
};

/// One algorithm's series over the α grid.
using AlgorithmSeries = std::vector<MetricPoint>;

struct SweepResult {
  std::vector<double> alphas;
  std::map<Algorithm, AlgorithmSeries> series;
};

/// Runs the full Fig. 5/6/7 sweep for one network.
SweepResult run_sweep(const topology::CatalogEntry& entry,
                      const SweepConfig& config);

/// Fig. 4 data: per-α box statistics of |H_s| across services.
struct CandidateHostsPoint {
  double alpha = 0;
  BoxStats stats;
};

std::vector<CandidateHostsPoint> candidate_hosts_sweep(
    const topology::CatalogEntry& entry, const std::vector<double>& alphas);

/// Multi-seed robustness: re-runs a sweep over `topology_seeds` independent
/// realizations of the entry's topology generator (same Table-I statistics,
/// different wiring) and aggregates each (algorithm, α, metric) across
/// seeds. Answers "are the reproduced orderings specific to one synthetic
/// topology?" — see bench_seeds.
struct AggregatedPoint {
  Summary coverage;
  Summary identifiability;
  Summary distinguishability;
};

struct MultiSeedResult {
  std::vector<double> alphas;
  std::map<Algorithm, std::vector<AggregatedPoint>> series;
  std::size_t seeds = 0;
};

MultiSeedResult run_multi_seed_sweep(const topology::CatalogEntry& entry,
                                     const SweepConfig& config,
                                     std::size_t topology_seeds);

}  // namespace splace
