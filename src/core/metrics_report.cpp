#include "core/metrics_report.hpp"

#include "monitoring/coverage.hpp"
#include "monitoring/distinguishability.hpp"
#include "monitoring/equivalence_classes.hpp"
#include "monitoring/identifiability.hpp"

namespace splace {

MetricReport evaluate_paths_k1(const PathSet& paths) {
  EquivalenceClasses classes(paths.node_count());
  classes.add_paths(paths);
  MetricReport report;
  report.coverage = coverage(paths);
  report.identifiability = classes.identifiable_count();
  report.distinguishability = classes.distinguishable_pairs();
  return report;
}

MetricReport evaluate_paths(const PathSet& paths, std::size_t k) {
  if (k == 1) return evaluate_paths_k1(paths);
  const SignatureGroups groups(paths, k);
  MetricReport report;
  report.coverage = coverage(paths);
  report.identifiability =
      identifiable_nodes(groups, paths.node_count()).count();
  report.distinguishability = distinguishability(groups);
  return report;
}

MetricReport evaluate_placement_k1(const ProblemInstance& instance,
                                   const Placement& placement) {
  return evaluate_paths_k1(instance.paths_for_placement(placement));
}

Histogram uncertainty_distribution_k1(const ProblemInstance& instance,
                                      const Placement& placement) {
  EquivalenceClasses classes(instance.node_count());
  classes.add_paths(instance.paths_for_placement(placement));
  return classes.uncertainty_distribution();
}

}  // namespace splace
