// Umbrella header for the splace library: monitoring-aware service placement
// after He et al., "Service Placement for Detecting and Localizing Failures
// Using End-to-End Observations" (ICDCS 2016).
//
// Typical use:
//
//   #include "core/splace.hpp"
//
//   splace::Graph g = splace::topology::tiscali();
//   splace::ProblemInstance inst(std::move(g), services);
//   auto gd = splace::greedy_placement(
//       inst, splace::ObjectiveKind::Distinguishability);
//   splace::MetricReport m = splace::evaluate_placement_k1(inst, gd.placement);
#pragma once

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "core/scenario.hpp"
#include "core/tradeoff.hpp"
#include "core/metrics_report.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/link_transform.hpp"
#include "graph/routing.hpp"
#include "graph/shortest_path.hpp"
#include "graph/stats.hpp"
#include "graph/weighted_routing.hpp"
#include "localization/augmentation.hpp"
#include "localization/fusion.hpp"
#include "localization/inspection.hpp"
#include "localization/localizer.hpp"
#include "localization/observation.hpp"
#include "localization/probabilistic.hpp"
#include "monitoring/composite.hpp"
#include "monitoring/coverage.hpp"
#include "monitoring/distinguishability.hpp"
#include "monitoring/equivalence_classes.hpp"
#include "monitoring/equivalence_graph.hpp"
#include "monitoring/failure_partition.hpp"
#include "monitoring/failure_sets.hpp"
#include "monitoring/fast_eval.hpp"
#include "monitoring/identifiability.hpp"
#include "monitoring/objective.hpp"
#include "monitoring/path.hpp"
#include "monitoring/report.hpp"
#include "monitoring/sampling.hpp"
#include "monitoring/set_cover.hpp"
#include "placement/baselines.hpp"
#include "placement/branch_bound.hpp"
#include "placement/brute_force.hpp"
#include "placement/candidates.hpp"
#include "placement/capacity.hpp"
#include "placement/greedy.hpp"
#include "placement/interest.hpp"
#include "placement/lazy_greedy.hpp"
#include "placement/local_search.hpp"
#include "placement/monitor_placement.hpp"
#include "placement/online.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "topology/catalog.hpp"
#include "topology/hierarchical.hpp"
#include "topology/isp_generator.hpp"
#include "topology/rocketfuel.hpp"
#include "topology/rocketfuel_parser.hpp"
