#include "core/experiment.hpp"

#include "placement/baselines.hpp"
#include "placement/brute_force.hpp"
#include "placement/greedy.hpp"
#include "util/error.hpp"

namespace splace {

std::string to_string(Algorithm algo) {
  switch (algo) {
    case Algorithm::QoS: return "QoS";
    case Algorithm::RD: return "RD";
    case Algorithm::GC: return "GC";
    case Algorithm::GI: return "GI";
    case Algorithm::GD: return "GD";
    case Algorithm::BF: return "BF";
  }
  return "?";
}

const std::vector<Algorithm>& standard_algorithms() {
  static const std::vector<Algorithm> algos = {
      Algorithm::QoS, Algorithm::RD, Algorithm::GC, Algorithm::GI,
      Algorithm::GD};
  return algos;
}

std::vector<Service> make_services(const topology::CatalogEntry& entry,
                                   const std::vector<NodeId>& clients,
                                   double alpha) {
  SPLACE_EXPECTS(!clients.empty());
  std::vector<Service> services;
  services.reserve(entry.services);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < entry.services; ++s) {
    Service svc;
    svc.name = "svc" + std::to_string(s);
    svc.alpha = alpha;
    for (std::size_t j = 0; j < entry.clients_per_service; ++j) {
      svc.clients.push_back(clients[cursor]);
      cursor = (cursor + 1) % clients.size();
    }
    services.push_back(std::move(svc));
  }
  return services;
}

ProblemInstance make_instance(const topology::CatalogEntry& entry,
                              double alpha) {
  Graph g = topology::build(entry);
  const std::vector<NodeId> clients = topology::candidate_clients(entry, g);
  return ProblemInstance(std::move(g), make_services(entry, clients, alpha));
}

Placement compute_placement(const ProblemInstance& instance, Algorithm algo,
                            Rng& rng, std::uint64_t bf_budget) {
  switch (algo) {
    case Algorithm::QoS:
      return best_qos_placement(instance);
    case Algorithm::RD:
      return random_placement(instance, rng);
    case Algorithm::GC:
      return greedy_placement(instance, ObjectiveKind::Coverage).placement;
    case Algorithm::GI:
      return greedy_placement(instance, ObjectiveKind::Identifiability)
          .placement;
    case Algorithm::GD:
      return greedy_placement(instance, ObjectiveKind::Distinguishability)
          .placement;
    case Algorithm::BF: {
      // BF is per-measure; expose the distinguishability optimum here. Use
      // brute_force_k1 directly when all three optima are needed.
      const auto result = brute_force_k1(instance, bf_budget);
      if (!result)
        throw InvalidInput("BF search space exceeds the configured budget");
      return result->distinguishability.placement;
    }
  }
  throw ContractViolation("unknown algorithm");
}

namespace {
MetricPoint to_point(const MetricReport& report) {
  return MetricPoint{static_cast<double>(report.coverage),
                     static_cast<double>(report.identifiability),
                     static_cast<double>(report.distinguishability)};
}
}  // namespace

SweepResult run_sweep(const topology::CatalogEntry& entry,
                      const SweepConfig& config) {
  SweepResult result;
  result.alphas = config.alphas;

  std::vector<Algorithm> algos = standard_algorithms();
  if (config.include_bf) algos.push_back(Algorithm::BF);
  for (Algorithm algo : algos) result.series[algo] = {};

  for (double alpha : config.alphas) {
    const ProblemInstance instance = make_instance(entry, alpha);

    for (Algorithm algo : algos) {
      MetricPoint point;
      if (algo == Algorithm::RD) {
        Rng rng(config.rd_seed);
        for (std::size_t t = 0; t < config.rd_trials; ++t) {
          const MetricReport report = evaluate_placement_k1(
              instance, random_placement(instance, rng));
          point.coverage += static_cast<double>(report.coverage);
          point.identifiability +=
              static_cast<double>(report.identifiability);
          point.distinguishability +=
              static_cast<double>(report.distinguishability);
        }
        const auto trials = static_cast<double>(config.rd_trials);
        point.coverage /= trials;
        point.identifiability /= trials;
        point.distinguishability /= trials;
      } else if (algo == Algorithm::BF) {
        const auto bf = brute_force_k1(instance, config.bf_budget);
        if (!bf)
          throw InvalidInput(
              "BF requested but the search space exceeds the budget for "
              "alpha=" + std::to_string(alpha));
        // The paper computes the optimum separately per measure.
        point.coverage = static_cast<double>(bf->coverage.value);
        point.identifiability =
            static_cast<double>(bf->identifiability.value);
        point.distinguishability =
            static_cast<double>(bf->distinguishability.value);
      } else {
        Rng rng(config.rd_seed);
        const Placement placement = compute_placement(instance, algo, rng);
        point = to_point(evaluate_placement_k1(instance, placement));
      }
      result.series[algo].push_back(point);
    }
  }
  return result;
}

MultiSeedResult run_multi_seed_sweep(const topology::CatalogEntry& entry,
                                     const SweepConfig& config,
                                     std::size_t topology_seeds) {
  SPLACE_EXPECTS(topology_seeds >= 1);
  MultiSeedResult result;
  result.alphas = config.alphas;
  result.seeds = topology_seeds;

  // Collect the per-seed sweeps, then aggregate pointwise.
  std::vector<SweepResult> sweeps;
  sweeps.reserve(topology_seeds);
  for (std::size_t seed_index = 0; seed_index < topology_seeds;
       ++seed_index) {
    topology::CatalogEntry variant = entry;
    variant.spec.seed = entry.spec.seed + 7919 * (seed_index + 1);
    sweeps.push_back(run_sweep(variant, config));
  }

  for (const auto& [algo, series] : sweeps.front().series) {
    std::vector<AggregatedPoint> aggregated(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      std::vector<double> cov;
      std::vector<double> ident;
      std::vector<double> dist;
      for (const SweepResult& sweep : sweeps) {
        const MetricPoint& p = sweep.series.at(algo)[i];
        cov.push_back(p.coverage);
        ident.push_back(p.identifiability);
        dist.push_back(p.distinguishability);
      }
      aggregated[i] = AggregatedPoint{summarize(cov), summarize(ident),
                                      summarize(dist)};
    }
    result.series[algo] = std::move(aggregated);
  }
  return result;
}

std::vector<CandidateHostsPoint> candidate_hosts_sweep(
    const topology::CatalogEntry& entry, const std::vector<double>& alphas) {
  std::vector<CandidateHostsPoint> out;
  out.reserve(alphas.size());
  for (double alpha : alphas) {
    const ProblemInstance instance = make_instance(entry, alpha);
    std::vector<double> counts;
    counts.reserve(instance.service_count());
    for (std::size_t s = 0; s < instance.service_count(); ++s)
      counts.push_back(
          static_cast<double>(instance.candidate_hosts(s).size()));
    out.push_back(CandidateHostsPoint{alpha, box_stats(std::move(counts))});
  }
  return out;
}

}  // namespace splace
