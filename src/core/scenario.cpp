#include "core/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "core/experiment.hpp"
#include "placement/baselines.hpp"
#include "placement/branch_bound.hpp"
#include "placement/brute_force.hpp"
#include "placement/capacity.hpp"
#include "placement/greedy.hpp"
#include "topology/catalog.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace splace {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidInput("scenario line " + std::to_string(line) + ": " +
                     message);
}

double parse_double(std::size_t line, const std::string& token) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, "trailing junk in '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

std::uint64_t parse_uint(std::size_t line, const std::string& token) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(token, &used);
    if (used != token.size() || token.front() == '-')
      fail(line, "expected a non-negative integer, got '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "expected a non-negative integer, got '" + token + "'");
  }
}

Edge parse_edge(std::size_t line, const std::string& token) {
  const auto dash = token.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 == token.size())
    fail(line, "edge must look like U-V, got '" + token + "'");
  Edge e;
  e.u = static_cast<NodeId>(parse_uint(line, token.substr(0, dash)));
  e.v = static_cast<NodeId>(parse_uint(line, token.substr(dash + 1)));
  if (e.u == e.v) fail(line, "self-loop edge '" + token + "'");
  return e;
}

}  // namespace

Scenario parse_scenario(std::istream& in) {
  Scenario scenario;
  bool saw_topology = false;
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string_view content = trim(line);
    if (content.empty()) continue;

    std::istringstream fields{std::string(content)};
    std::string key;
    fields >> key;
    std::vector<std::string> args;
    for (std::string token; fields >> token;) args.push_back(token);
    auto expect_args = [&](std::size_t n) {
      if (args.size() != n)
        fail(line_number, "'" + key + "' expects " + std::to_string(n) +
                              " argument(s), got " +
                              std::to_string(args.size()));
    };

    if (key == "topology") {
      expect_args(1);
      if (saw_topology) fail(line_number, "duplicate topology");
      scenario.topology = args[0];
      saw_topology = true;
    } else if (key == "edges") {
      if (args.empty()) fail(line_number, "'edges' needs at least one U-V");
      if (saw_topology) fail(line_number, "duplicate topology");
      for (const std::string& token : args)
        scenario.edges.push_back(parse_edge(line_number, token));
      saw_topology = true;
    } else if (key == "alpha") {
      expect_args(1);
      scenario.alpha = parse_double(line_number, args[0]);
      if (scenario.alpha < 0.0 || scenario.alpha > 1.0)
        fail(line_number, "alpha must be in [0,1]");
    } else if (key == "k") {
      expect_args(1);
      scenario.k = parse_uint(line_number, args[0]);
      if (scenario.k < 1) fail(line_number, "k must be >= 1");
    } else if (key == "algorithm") {
      expect_args(1);
      static const std::vector<std::string> known = {"gd", "gc", "gi",
                                                     "qos", "rd", "bf", "bb"};
      if (std::find(known.begin(), known.end(), args[0]) == known.end())
        fail(line_number, "unknown algorithm '" + args[0] + "'");
      scenario.algorithm = args[0];
    } else if (key == "seed") {
      expect_args(1);
      scenario.seed = parse_uint(line_number, args[0]);
    } else if (key == "capacity") {
      expect_args(1);
      const double value = parse_double(line_number, args[0]);
      if (value < 0.0) fail(line_number, "capacity must be >= 0");
      scenario.capacity = value;
    } else if (key == "service") {
      if (args.size() < 2)
        fail(line_number, "'service' needs a name and >=1 client id");
      Service svc;
      svc.name = args[0];
      for (std::size_t i = 1; i < args.size(); ++i)
        svc.clients.push_back(
            static_cast<NodeId>(parse_uint(line_number, args[i])));
      scenario.services.push_back(std::move(svc));
    } else if (key == "services") {
      expect_args(1);
      scenario.auto_services = parse_uint(line_number, args[0]);
      if (scenario.auto_services == 0)
        fail(line_number, "'services' must be >= 1");
    } else if (key == "clients-per-service") {
      expect_args(1);
      scenario.clients_per_service = parse_uint(line_number, args[0]);
      if (scenario.clients_per_service == 0)
        fail(line_number, "'clients-per-service' must be >= 1");
    } else {
      fail(line_number, "unknown key '" + key + "'");
    }
  }

  if (!saw_topology) throw InvalidInput("scenario: missing topology");
  if (!scenario.services.empty() && scenario.auto_services > 0)
    throw InvalidInput(
        "scenario: explicit 'service' lines and auto 'services' are "
        "mutually exclusive");
  if (scenario.services.empty() && scenario.auto_services == 0)
    throw InvalidInput("scenario: no services declared");
  return scenario;
}

Scenario parse_scenario(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

ProblemInstance build_scenario_instance(const Scenario& scenario) {
  Graph g;
  std::vector<NodeId> candidate_clients;
  if (!scenario.topology.empty()) {
    const topology::CatalogEntry& entry =
        topology::catalog_entry(scenario.topology);
    g = topology::build(entry);
    candidate_clients = topology::candidate_clients(entry, g);
  } else {
    NodeId max_id = 0;
    for (const Edge& e : scenario.edges)
      max_id = std::max({max_id, e.u, e.v});
    g = Graph(max_id + std::size_t{1});
    for (const Edge& e : scenario.edges) {
      if (g.has_edge(e.u, e.v))
        throw InvalidInput("scenario: duplicate edge " +
                           std::to_string(e.u) + "-" + std::to_string(e.v));
      g.add_edge(e.u, e.v);
    }
    candidate_clients = g.degree_one_nodes();
    if (candidate_clients.empty()) candidate_clients = g.nodes();
  }

  std::vector<Service> services;
  if (!scenario.services.empty()) {
    services = scenario.services;
    for (Service& svc : services) {
      svc.alpha = scenario.alpha;
      for (NodeId c : svc.clients)
        if (!g.is_valid_node(c))
          throw InvalidInput("scenario: client id " + std::to_string(c) +
                             " outside the topology");
    }
  } else {
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < scenario.auto_services; ++s) {
      Service svc;
      svc.name = "svc" + std::to_string(s);
      svc.alpha = scenario.alpha;
      for (std::size_t c = 0; c < scenario.clients_per_service; ++c) {
        svc.clients.push_back(candidate_clients[cursor]);
        cursor = (cursor + 1) % candidate_clients.size();
      }
      services.push_back(std::move(svc));
    }
  }
  return ProblemInstance(std::move(g), std::move(services));
}

ScenarioResult run_scenario(const Scenario& scenario) {
  const ProblemInstance instance = build_scenario_instance(scenario);
  Rng rng(scenario.seed);

  ScenarioResult result;
  if (scenario.capacity.has_value()) {
    CapacityConstraints constraints;
    constraints.host_capacity.assign(instance.node_count(),
                                     *scenario.capacity);
    const ObjectiveKind kind =
        scenario.algorithm == "gc"   ? ObjectiveKind::Coverage
        : scenario.algorithm == "gi" ? ObjectiveKind::Identifiability
                                     : ObjectiveKind::Distinguishability;
    const CapacityGreedyResult capped =
        greedy_capacity_placement(instance, constraints, kind, scenario.k);
    if (!capped.complete)
      throw InvalidInput("scenario: capacity too tight to place all services");
    result.placement = capped.placement;
  } else if (scenario.algorithm == "gd") {
    result.placement =
        greedy_placement(instance, ObjectiveKind::Distinguishability,
                         scenario.k)
            .placement;
  } else if (scenario.algorithm == "gc") {
    result.placement =
        greedy_placement(instance, ObjectiveKind::Coverage, scenario.k)
            .placement;
  } else if (scenario.algorithm == "gi") {
    result.placement =
        greedy_placement(instance, ObjectiveKind::Identifiability, scenario.k)
            .placement;
  } else if (scenario.algorithm == "qos") {
    result.placement = best_qos_placement(instance);
  } else if (scenario.algorithm == "rd") {
    result.placement = random_placement(instance, rng);
  } else if (scenario.algorithm == "bf") {
    const auto bf = brute_force_k1(instance);
    if (!bf) throw InvalidInput("scenario: bf search space too large");
    result.placement = bf->distinguishability.placement;
  } else {  // bb (validated at parse time)
    result.placement =
        branch_and_bound(instance, ObjectiveKind::Distinguishability,
                         scenario.k)
            .placement;
  }

  result.metrics =
      evaluate_paths(instance.paths_for_placement(result.placement),
                     scenario.k);
  return result;
}

}  // namespace splace
