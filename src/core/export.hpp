// Machine-readable exports of experiment results, so the bench output can
// feed plotting pipelines (gnuplot/matplotlib) without scraping the ASCII
// tables.
#pragma once

#include <ostream>

#include "core/experiment.hpp"

namespace splace {

/// CSV: header `alpha,algorithm,coverage,identifiability,distinguishability`
/// followed by one row per (α, algorithm), algorithms in map order.
void sweep_to_csv(const SweepResult& sweep, std::ostream& os);

/// Compact JSON:
/// {"alphas":[...],"series":{"GC":{"coverage":[...],...},...}}
/// Numbers use up to 6 significant digits; key order is deterministic.
void sweep_to_json(const SweepResult& sweep, std::ostream& os);

/// CSV for a Fig. 4-style candidate-host sweep:
/// `alpha,min,q1,median,q3,max`.
void candidate_hosts_to_csv(const std::vector<CandidateHostsPoint>& points,
                            std::ostream& os);

}  // namespace splace
