#include "core/export.hpp"

#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace splace {

void sweep_to_csv(const SweepResult& sweep, std::ostream& os) {
  CsvWriter csv(os);
  csv.write_row({"alpha", "algorithm", "coverage", "identifiability",
                 "distinguishability"});
  for (const auto& [algo, series] : sweep.series) {
    for (std::size_t i = 0; i < sweep.alphas.size(); ++i) {
      csv.write_row({format_double(sweep.alphas[i], 2), to_string(algo),
                     format_double(series[i].coverage, 4),
                     format_double(series[i].identifiability, 4),
                     format_double(series[i].distinguishability, 4)});
    }
  }
}

namespace {
void write_number_array(std::ostream& os, const std::vector<double>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << format_double(values[i], 4);
  }
  os << ']';
}
}  // namespace

void sweep_to_json(const SweepResult& sweep, std::ostream& os) {
  os << "{\"alphas\":";
  write_number_array(os, sweep.alphas);
  os << ",\"series\":{";
  bool first_algo = true;
  for (const auto& [algo, series] : sweep.series) {
    if (!first_algo) os << ',';
    first_algo = false;
    os << '"' << to_string(algo) << "\":{";
    const auto emit = [&os, &series](const char* name,
                                     double MetricPoint::* member,
                                     bool trailing_comma) {
      os << '"' << name << "\":";
      std::vector<double> values;
      values.reserve(series.size());
      for (const MetricPoint& p : series) values.push_back(p.*member);
      write_number_array(os, values);
      if (trailing_comma) os << ',';
    };
    emit("coverage", &MetricPoint::coverage, true);
    emit("identifiability", &MetricPoint::identifiability, true);
    emit("distinguishability", &MetricPoint::distinguishability, false);
    os << '}';
  }
  os << "}}";
}

void candidate_hosts_to_csv(const std::vector<CandidateHostsPoint>& points,
                            std::ostream& os) {
  CsvWriter csv(os);
  csv.write_row({"alpha", "min", "q1", "median", "q3", "max"});
  for (const CandidateHostsPoint& p : points) {
    csv.write_row_values({p.alpha, p.stats.min, p.stats.q1, p.stats.median,
                          p.stats.q3, p.stats.max},
                         4);
  }
}

}  // namespace splace
