// Scenario files: describe a complete placement experiment in a small
// line-oriented text format so runs are shareable and replayable without
// recompiling (consumed by splace_cli --scenario).
//
// Format (one directive per line, '#' comments, case-sensitive keys):
//
//   topology tiscali            # catalog name (abovenet | tiscali | att)
//   # or an explicit inline topology:
//   # edges 0-1 1-2 2-3 ...     # builds the graph from the link list
//   alpha 0.6                   # QoS slack in [0, 1]
//   k 1                         # failure bound for the metrics
//   algorithm gd                # gd | gc | gi | qos | rd | bf | bb
//   seed 42                     # RNG seed (rd baseline)
//   capacity 2.0                # optional uniform per-host capacity
//   service web 3 10 12         # explicit service: name + client node ids
//   service dns 20 21 22
//   # or auto mode instead of explicit services:
//   # services 3                # round-robin clients over access nodes
//   # clients-per-service 3
//
// Explicit `service` lines and auto mode (`services`) are mutually
// exclusive. Unknown keys, malformed values, and out-of-range ids are
// rejected with line-numbered InvalidInput errors.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics_report.hpp"
#include "graph/graph.hpp"
#include "placement/service.hpp"

namespace splace {

struct Scenario {
  std::string topology;                 ///< catalog name; empty if inline
  std::vector<Edge> edges;              ///< inline topology (empty if named)
  double alpha = 0.6;
  std::size_t k = 1;
  std::string algorithm = "gd";
  std::uint64_t seed = 42;
  std::optional<double> capacity;       ///< uniform host capacity
  /// Explicit services (name + clients); empty when auto mode is used.
  std::vector<Service> services;
  /// Auto mode: generate this many services round-robin (0 = off).
  std::size_t auto_services = 0;
  std::size_t clients_per_service = 3;
};

/// Parses a scenario document. Throws InvalidInput with line numbers.
Scenario parse_scenario(std::istream& in);

/// Convenience overload over a string.
Scenario parse_scenario(const std::string& text);

/// Materializes the problem instance a scenario describes (building the
/// catalog or inline topology and, in auto mode, the round-robin services).
ProblemInstance build_scenario_instance(const Scenario& scenario);

/// Runs the scenario end to end: build, place, evaluate.
struct ScenarioResult {
  Placement placement;
  MetricReport metrics;
};

ScenarioResult run_scenario(const Scenario& scenario);

}  // namespace splace
