// Joint evaluation of the three monitoring measures for a placement or a
// path set — the quantity triple every figure in the paper plots.
#pragma once

#include <cstddef>

#include "monitoring/path.hpp"
#include "placement/service.hpp"
#include "util/stats.hpp"

namespace splace {

struct MetricReport {
  std::size_t coverage = 0;             ///< |C(P)|
  std::size_t identifiability = 0;      ///< |S_k(P)|
  std::size_t distinguishability = 0;   ///< |D_k(P)|
};

/// All three k = 1 measures in one pass over an equivalence partition.
MetricReport evaluate_paths_k1(const PathSet& paths);

/// Exact general-k evaluation (enumeration; small instances).
MetricReport evaluate_paths(const PathSet& paths, std::size_t k);

/// Evaluates a placement's measurement paths at k = 1.
MetricReport evaluate_placement_k1(const ProblemInstance& instance,
                                   const Placement& placement);

/// The Fig. 8 quantity: distribution of equivalence-graph degrees
/// ("degree of uncertainty") over N ∪ {v0} for a placement, at k = 1.
Histogram uncertainty_distribution_k1(const ProblemInstance& instance,
                                      const Placement& placement);

}  // namespace splace
