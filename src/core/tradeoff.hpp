// QoS ↔ monitoring tradeoff analysis — the paper's introductory question
// (iii): "What is the tradeoff between the QoS and the monitoring
// performance?"
//
// For a placement h, the QoS price actually paid is the relative distance
// d̄(C_s, h_s) per service (0 = distance-optimal host, 1 = worst allowed
// anywhere). Sweeping the budget α and recording (paid QoS, achieved
// monitoring) yields the tradeoff frontier: how much latency headroom buys
// how much failure-monitoring capability.
#pragma once

#include <vector>

#include "core/experiment.hpp"
#include "core/metrics_report.hpp"
#include "placement/service.hpp"

namespace splace {

/// The QoS degradation a concrete placement incurs.
struct QosCost {
  double mean_relative_distance = 0;  ///< mean over services of d̄(C_s,h_s)
  double max_relative_distance = 0;   ///< worst service
  double mean_extra_hops = 0;         ///< mean (d(C_s,h_s) − d_min(C_s))
};

/// Computes the QoS cost of a placement on its instance.
QosCost qos_cost(const ProblemInstance& instance, const Placement& placement);

/// One point of the tradeoff frontier.
struct TradeoffPoint {
  double alpha = 0;        ///< QoS budget offered
  QosCost cost;            ///< QoS actually spent by the placement
  MetricReport metrics;    ///< monitoring achieved (k = 1)
};

/// Sweeps α for one algorithm on a catalog network and returns the
/// (spent QoS, achieved monitoring) frontier. RD uses `rd_seed` (single
/// deterministic draw per α).
std::vector<TradeoffPoint> qos_tradeoff(const topology::CatalogEntry& entry,
                                        Algorithm algo,
                                        const std::vector<double>& alphas,
                                        std::uint64_t rd_seed = 42);

}  // namespace splace
