#include "api/request_builder.hpp"

#include <type_traits>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace splace::api {

Request::Request(engine::Request request) : request_(std::move(request)) {}

Request Request::place(Algorithm algorithm) {
  engine::PlaceRequest request;
  request.algorithm = algorithm;
  return Request(engine::Request{std::move(request)});
}

Request Request::evaluate(Placement placement) {
  engine::EvaluateRequest request;
  request.placement = std::move(placement);
  return Request(engine::Request{std::move(request)});
}

Request Request::localize(Placement placement,
                          std::vector<std::uint32_t> failed_paths) {
  engine::LocalizeRequest request;
  request.placement = std::move(placement);
  request.failed_paths = std::move(failed_paths);
  return Request(engine::Request{std::move(request)});
}

Request Request::mutate(TopologyDelta delta) {
  engine::MutateRequest request;
  request.delta = std::move(delta);
  return Request(engine::Request{std::move(request)});
}

Request& Request::snapshot(std::uint64_t content_hash) {
  std::visit([&](auto& request) { request.snapshot = content_hash; },
             request_);
  snapshot_set_ = true;
  return *this;
}

Request& Request::k(std::size_t failure_bound) {
  if (failure_bound < 1)
    throw InvalidInput("Request::k: failure bound must be >= 1");
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::MutateRequest>)
          throw InvalidInput("Request::k does not apply to mutate requests");
        else
          request.k = failure_bound;
      },
      request_);
  return *this;
}

Request& Request::deadline(double milliseconds) {
  if (milliseconds < 0)
    throw InvalidInput("Request::deadline: milliseconds must be >= 0");
  std::visit(
      [&](auto& request) { request.deadline_seconds = milliseconds / 1000.0; },
      request_);
  return *this;
}

Request& Request::seed(std::uint64_t rng_seed) {
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest>)
          request.seed = rng_seed;
        else
          throw InvalidInput(
              "Request::seed applies only to place requests");
      },
      request_);
  return *this;
}

Request& Request::threads(std::size_t count) {
  if (count < 1)
    throw InvalidInput("Request::threads: count must be >= 1");
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest>)
          request.threads = count;
        else
          throw InvalidInput(
              "Request::threads applies only to place requests");
      },
      request_);
  return *this;
}

Request& Request::tenant(std::string tenant_id) {
  std::visit(
      [&](auto& request) { request.tenant = std::move(tenant_id); },
      request_);
  return *this;
}

engine::Request Request::build() const {
  if (!snapshot_set_)
    throw InvalidInput(
        "Request::build: no snapshot set — call .snapshot(hash) first");
  return request_;
}

}  // namespace splace::api
