#include "api/request_builder.hpp"

#include <type_traits>
#include <utility>
#include <variant>

#include "placement/algorithm.hpp"
#include "util/error.hpp"

namespace splace::api {

Request::Request(engine::Request request) : request_(std::move(request)) {}

Request Request::place(Algorithm algorithm) {
  engine::PlaceRequest request;
  request.algorithm = algorithm;
  return Request(engine::Request{std::move(request)});
}

Request Request::evaluate(Placement placement) {
  engine::EvaluateRequest request;
  request.placement = std::move(placement);
  return Request(engine::Request{std::move(request)});
}

Request Request::localize(Placement placement,
                          std::vector<std::uint32_t> failed_paths) {
  engine::LocalizeRequest request;
  request.placement = std::move(placement);
  request.failed_paths = std::move(failed_paths);
  return Request(engine::Request{std::move(request)});
}

Request Request::mutate(TopologyDelta delta) {
  engine::MutateRequest request;
  request.delta = std::move(delta);
  return Request(engine::Request{std::move(request)});
}

namespace {

/// Eager registry validation shared by portfolio() and algorithm(): throws
/// InvalidInput listing every registered name on a miss.
void require_registered(const std::string& name) {
  if (!is_registered_algorithm(name))
    (void)make_algorithm(name);  // throws with the known-names list
}

}  // namespace

Request Request::portfolio(std::vector<std::string> algorithms) {
  for (const std::string& name : algorithms) require_registered(name);
  engine::PortfolioRequest request;
  request.algorithms = std::move(algorithms);
  return Request(engine::Request{std::move(request)});
}

Request& Request::snapshot(std::uint64_t content_hash) {
  std::visit([&](auto& request) { request.snapshot = content_hash; },
             request_);
  snapshot_set_ = true;
  return *this;
}

Request& Request::k(std::size_t failure_bound) {
  if (failure_bound < 1)
    throw InvalidInput("Request::k: failure bound must be >= 1");
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::MutateRequest>)
          throw InvalidInput("Request::k does not apply to mutate requests");
        else
          request.k = failure_bound;
      },
      request_);
  return *this;
}

Request& Request::deadline(double milliseconds) {
  if (milliseconds < 0)
    throw InvalidInput("Request::deadline: milliseconds must be >= 0");
  std::visit(
      [&](auto& request) { request.deadline_seconds = milliseconds / 1000.0; },
      request_);
  return *this;
}

Request& Request::seed(std::uint64_t rng_seed) {
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest> ||
                      std::is_same_v<T, engine::PortfolioRequest>)
          request.seed = rng_seed;
        else
          throw InvalidInput(
              "Request::seed applies only to place and portfolio requests");
      },
      request_);
  return *this;
}

Request& Request::threads(std::size_t count) {
  if (count < 1)
    throw InvalidInput("Request::threads: count must be >= 1");
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest> ||
                      std::is_same_v<T, engine::PortfolioRequest>)
          request.threads = count;
        else
          throw InvalidInput(
              "Request::threads applies only to place and portfolio "
              "requests");
      },
      request_);
  return *this;
}

Request& Request::algorithm(std::string name) {
  require_registered(name);
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest>)
          request.algorithm_name = std::move(name);
        else if constexpr (std::is_same_v<T, engine::PortfolioRequest>)
          request.algorithms.push_back(std::move(name));
        else
          throw InvalidInput(
              "Request::algorithm applies only to place and portfolio "
              "requests");
      },
      request_);
  return *this;
}

Request& Request::objective(ObjectiveKind kind) {
  std::visit(
      [&](auto& request) {
        using T = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<T, engine::PlaceRequest> ||
                      std::is_same_v<T, engine::PortfolioRequest>)
          request.objective = kind;
        else
          throw InvalidInput(
              "Request::objective applies only to place and portfolio "
              "requests");
      },
      request_);
  return *this;
}

Request& Request::tenant(std::string tenant_id) {
  std::visit(
      [&](auto& request) { request.tenant = std::move(tenant_id); },
      request_);
  return *this;
}

engine::Request Request::build() const {
  if (!snapshot_set_)
    throw InvalidInput(
        "Request::build: no snapshot set — call .snapshot(hash) first");
  return request_;
}

}  // namespace splace::api
