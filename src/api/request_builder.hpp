// Fluent request builder for the serving engine's public API.
//
// Engine requests are plain aggregate structs (engine/request.hpp) — easy to
// construct in bulk, but easy to half-fill: a PlaceRequest with a forgotten
// snapshot hash is only caught at execution time as RejectedBadRequest. The
// builder makes the required field explicit and the optional ones readable:
//
//   engine::Request request = api::Request::place(Algorithm::GD)
//                                 .snapshot(hash)
//                                 .k(2)
//                                 .deadline(50)   // milliseconds
//                                 .build();
//
// build() validates eagerly: a missing snapshot or a setter that does not
// apply to the request's type (seed on an evaluate, k on a mutate) throws
// InvalidInput at the call site instead of surfacing later as a rejected
// response. The aggregate structs remain fully supported — the builder only
// produces them, it never replaces them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/request.hpp"

namespace splace::api {

class Request {
 public:
  /// Starts a placement request running `algorithm` on a snapshot.
  static Request place(Algorithm algorithm = Algorithm::GD);
  /// Starts an evaluation of `placement`'s metric triple.
  static Request evaluate(Placement placement);
  /// Starts a localization from failed path indices under `placement`.
  static Request localize(Placement placement,
                          std::vector<std::uint32_t> failed_paths);
  /// Starts a snapshot derivation applying `delta` to a parent snapshot.
  static Request mutate(TopologyDelta delta);
  /// Starts a portfolio run racing `algorithms` (registry names, validated
  /// eagerly; empty = every registered algorithm) on a snapshot.
  static Request portfolio(std::vector<std::string> algorithms = {});

  /// Target snapshot content hash (parent hash for mutate). Required.
  Request& snapshot(std::uint64_t content_hash);
  /// Failure bound k >= 1 (place / evaluate / localize only).
  Request& k(std::size_t failure_bound);
  /// Deadline in milliseconds (>= 0; 0 = none). Applies to every type.
  Request& deadline(double milliseconds);
  /// RNG seed (place / portfolio; consumed by seed-taking algorithms only).
  Request& seed(std::uint64_t rng_seed);
  /// Intra-request worker threads >= 1 (place / portfolio; never changes
  /// results).
  Request& threads(std::size_t count);
  /// Routes a place request through the pluggable algorithm registry under
  /// `name` (placement/algorithm.hpp), or appends `name` to a portfolio's
  /// algorithm list. Validated eagerly: an unregistered name throws
  /// InvalidInput listing every known name.
  Request& algorithm(std::string name);
  /// Objective a registry algorithm (or portfolio) maximizes. Applies to
  /// place and portfolio requests; the classic enum algorithms imply their
  /// objectives and ignore it.
  Request& objective(ObjectiveKind kind);
  /// Tenant id (applies to every type; empty = the default tenant). Routes
  /// the request to its tenant's cache partition and admission quota.
  Request& tenant(std::string tenant_id);

  /// The finished engine request. Throws InvalidInput when no snapshot was
  /// set. May be called repeatedly (the builder is not consumed).
  engine::Request build() const;

 private:
  explicit Request(engine::Request request);

  engine::Request request_;
  bool snapshot_set_ = false;
};

}  // namespace splace::api
