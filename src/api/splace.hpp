// Stable public API of the splace library.
//
// Include this one header from applications (CLI tools, replay drivers,
// services embedding the engine). It pulls in the full library umbrella and
// re-exports the serving surface under `splace::api`, which follows a
// stability contract the internal headers do not:
//
//   * names aliased here keep their meaning across refactors — internal
//     headers may move or split, `splace::api` spellings stay valid;
//   * everything needed to drive the engine end to end is reachable from
//     this header alone: snapshots, requests (aggregate structs or the
//     fluent api::Request builder), the engine, metrics / trace export,
//     and the replay driver.
//
// Internal headers remain includable — existing code using the aggregate
// request structs directly keeps compiling; the facade adds names, it
// removes none.
#pragma once

#include "api/request_builder.hpp"
#include "api/stream_builder.hpp"
#include "core/splace.hpp"

namespace splace::api {

// --- Snapshots: immutable topologies the engine serves against. ---
using splace::engine::SnapshotRegistry;
using splace::engine::TopologySnapshot;

// --- Requests and responses (aggregate structs; api::Request builds them).
using splace::engine::EvaluateRequest;
using splace::engine::LocalizeRequest;
using splace::engine::MutateRequest;
using splace::engine::PlaceRequest;
using splace::engine::PortfolioRequest;

using splace::engine::EngineResult;
using splace::engine::LocalizeResult;
using splace::engine::MutateResult;
using splace::engine::Outcome;
using splace::engine::PlaceResult;
using splace::engine::PortfolioEntryResult;
using splace::engine::PortfolioResult;
using splace::engine::RequestType;

// --- The engine itself, its configuration, and observability. ---
using splace::engine::Engine;
using splace::engine::EngineConfig;
using splace::engine::EngineMetricsSnapshot;
using splace::engine::TenantCounters;
using splace::engine::TenantQuota;

// --- Sharded serving tier: consistent-hash groups of engine shards. ---
using splace::shard::EngineGroup;
using splace::shard::EngineGroupConfig;
using splace::shard::ShardRouter;

using splace::engine::AdaptiveCacheStats;
using splace::engine::RequestTrace;
using splace::engine::ResizeEvent;
using splace::engine::Stage;
using splace::engine::TraceStats;

// --- Streaming observability plane (push-based surface). ---
//
// MIGRATION — Engine::drain_traces(): the pull-only trace export is
// deprecated (kept working indefinitely). It is now a thin tail over the
// event bus: the engine publishes a TraceEvent per finished request and
// drain_traces() polls an internal Trace-kind ring of capacity
// `trace_capacity`. New code should subscribe instead:
//
//   auto tail = api::Subscribe(engine).traces().capacity(4096).attach();
//   ...
//   for (const auto& ev : tail->poll())
//     use(std::get<stream::TraceEvent>(*ev).trace);
//
// Subscribing also delivers detection / localization / ambiguity events
// from live observation streams (api::Ingest / Engine::open_ingest),
// which the pull path never carried.
using splace::stream::AmbiguityEvent;
using splace::stream::BusStats;
using splace::stream::CascadeStartEvent;
using splace::stream::DetectionEvent;
using splace::stream::DropPolicy;
using splace::stream::EventBus;
using splace::stream::EventKind;
using splace::stream::LocalizationEvent;
using splace::stream::ObservationIngest;
using splace::stream::PathState;
using splace::stream::PortfolioEvent;
using splace::stream::PropagationEvent;
using splace::stream::RootCauseEvent;
using splace::stream::StreamEvent;
using splace::stream::StreamStats;
using splace::stream::Subscription;
using splace::stream::TraceEvent;

// --- Cascade & correlated-failure subsystem (cascade/*.hpp). ---
using splace::cascade::CascadeConfig;
using splace::cascade::CascadeEngine;
using splace::cascade::CascadeEpisode;
using splace::cascade::CascadeRecord;
using splace::cascade::CascadeReport;
using splace::cascade::CascadeRun;
using splace::cascade::DependencyEdge;
using splace::cascade::DependencyGraph;
using splace::cascade::RootCauseAnalyzer;
using splace::cascade::RootCauseConfig;
using splace::cascade::RootCauseReport;

// --- Replay driver (workload files -> engine traffic). ---
using splace::engine::ReplayReport;

// --- Algorithm portfolio: pluggable placement strategies + certificates. ---
//
// The registry (placement/algorithm.hpp) maps string names to strategy
// factories; register_algorithm() adds custom strategies, make_algorithm()
// constructs by name, and api::Request::place(...).algorithm("name") or a
// PortfolioRequest route engine traffic through them. MIS certificates
// (portfolio/mis.hpp) bound what localize() can distinguish under any of
// the produced placements.
using splace::AlgorithmFactory;
using splace::AlgorithmResult;
using splace::AlgorithmSpec;
using splace::PlacementAlgorithm;
using splace::algorithm_names;
using splace::is_registered_algorithm;
using splace::make_algorithm;
using splace::register_algorithm;
using splace::PairCoverResult;
using splace::pair_cover_placement;
using splace::pair_covered_count;
using splace::portfolio::MisCertificate;
using splace::portfolio::PortfolioEntry;
using splace::portfolio::PortfolioReport;
using splace::portfolio::PortfolioSpec;
using splace::portfolio::mis_certificate;
using splace::portfolio::run_portfolio;

// --- Core domain types that appear in requests and results. ---
using splace::Algorithm;
using splace::Graph;
using splace::MetricReport;
using splace::ObjectiveKind;
using splace::Placement;
using splace::ProblemInstance;
using splace::TopologyDelta;

// --- Errors thrown by api::Request and Engine construction. ---
using splace::ContractViolation;
using splace::InvalidInput;

}  // namespace splace::api
