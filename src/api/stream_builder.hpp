// Fluent builders for the streaming observability plane.
//
// Subscribing to the event bus and opening an observation stream each take
// a handful of options that are easy to mis-order as positional arguments.
// The builders make them readable and validate eagerly:
//
//   auto live = api::Subscribe(engine)
//                   .detections()
//                   .localizations()
//                   .capacity(256)
//                   .attach();              // ring subscription -> poll()
//
//   auto tap = api::Subscribe(engine)
//                  .all()
//                  .on_event([](const stream::StreamEvent& e) { ... });
//
//   auto ingest = api::Ingest(engine)
//                     .snapshot(hash)
//                     .placement(p)
//                     .k(2)
//                     .open();              // ObservationIngest
//
// Like api::Request, the builders only produce the underlying objects
// (stream::Subscription, stream::ObservationIngest); the direct engine
// calls remain fully supported.
#pragma once

#include <cstdint>
#include <memory>

#include "engine/engine.hpp"
#include "stream/bus.hpp"
#include "stream/ingest.hpp"

namespace splace::api {

class Subscribe {
 public:
  /// Starts a subscription builder against `engine`'s bus. No event kind
  /// is selected initially; pick at least one before attaching.
  explicit Subscribe(engine::Engine& engine);

  Subscribe& detections();
  Subscribe& localizations();
  Subscribe& ambiguity();
  Subscribe& traces();
  Subscribe& all();

  /// Ring capacity in events (>= 1; default 1024).
  Subscribe& capacity(std::size_t events);
  /// On overflow, evict the oldest buffered event instead of dropping the
  /// incoming one (default keeps the oldest: DropPolicy::DropNew).
  Subscribe& drop_oldest();

  /// Attaches a bounded ring subscription (poll() to drain). Throws
  /// InvalidInput when no event kind was selected.
  std::shared_ptr<stream::Subscription> attach() const;

  /// Registers `callback` as a synchronous sink instead of a ring; returns
  /// the handle for EventBus::remove_callback. Throws InvalidInput when no
  /// event kind was selected or the callback is empty.
  std::uint64_t on_event(stream::EventBus::Callback callback) const;

 private:
  engine::Engine* engine_;
  stream::SubscribeOptions options_;
};

class Ingest {
 public:
  explicit Ingest(engine::Engine& engine);

  /// Content hash of the registered snapshot to observe. Required.
  Ingest& snapshot(std::uint64_t content_hash);
  /// Service placement whose measurement paths are being probed. Required.
  Ingest& placement(Placement services);
  /// Failure bound k >= 1 (default 1).
  Ingest& k(std::size_t failure_bound);
  /// Episode epoch in stream microseconds (default 0): the zero point of
  /// time-to-detect / time-to-localize latencies.
  Ingest& epoch(std::uint64_t epoch_us);

  /// Opens the stream (Engine::open_ingest) and begins the first episode.
  /// Throws InvalidInput when snapshot/placement were not set, the
  /// snapshot is unknown, or the placement does not match it.
  std::unique_ptr<stream::ObservationIngest> open() const;

 private:
  engine::Engine* engine_;
  std::uint64_t snapshot_ = 0;
  bool snapshot_set_ = false;
  Placement placement_;
  bool placement_set_ = false;
  std::size_t k_ = 1;
  std::uint64_t epoch_us_ = 0;
};

}  // namespace splace::api
