#include "api/stream_builder.hpp"

#include <utility>

#include "util/error.hpp"

namespace splace::api {

Subscribe::Subscribe(engine::Engine& engine) : engine_(&engine) {
  options_.mask = 0;  // explicit opt-in per kind
}

Subscribe& Subscribe::detections() {
  options_.mask |= stream::event_bit(stream::EventKind::Detection);
  return *this;
}

Subscribe& Subscribe::localizations() {
  options_.mask |= stream::event_bit(stream::EventKind::Localization);
  return *this;
}

Subscribe& Subscribe::ambiguity() {
  options_.mask |= stream::event_bit(stream::EventKind::Ambiguity);
  return *this;
}

Subscribe& Subscribe::traces() {
  options_.mask |= stream::event_bit(stream::EventKind::Trace);
  return *this;
}

Subscribe& Subscribe::all() {
  options_.mask = stream::kAllEvents;
  return *this;
}

Subscribe& Subscribe::capacity(std::size_t events) {
  if (events < 1) throw InvalidInput("subscription capacity must be >= 1");
  options_.capacity = events;
  return *this;
}

Subscribe& Subscribe::drop_oldest() {
  options_.policy = stream::DropPolicy::DropOld;
  return *this;
}

std::shared_ptr<stream::Subscription> Subscribe::attach() const {
  if (options_.mask == 0) {
    throw InvalidInput("select at least one event kind before attach()");
  }
  return engine_->bus().subscribe(options_);
}

std::uint64_t Subscribe::on_event(stream::EventBus::Callback callback) const {
  if (options_.mask == 0) {
    throw InvalidInput("select at least one event kind before on_event()");
  }
  return engine_->bus().add_callback(options_.mask, std::move(callback));
}

Ingest::Ingest(engine::Engine& engine) : engine_(&engine) {}

Ingest& Ingest::snapshot(std::uint64_t content_hash) {
  snapshot_ = content_hash;
  snapshot_set_ = true;
  return *this;
}

Ingest& Ingest::placement(Placement services) {
  placement_ = std::move(services);
  placement_set_ = true;
  return *this;
}

Ingest& Ingest::k(std::size_t failure_bound) {
  if (failure_bound < 1) throw InvalidInput("k must be >= 1");
  k_ = failure_bound;
  return *this;
}

Ingest& Ingest::epoch(std::uint64_t epoch_us) {
  epoch_us_ = epoch_us;
  return *this;
}

std::unique_ptr<stream::ObservationIngest> Ingest::open() const {
  if (!snapshot_set_) throw InvalidInput("ingest requires a snapshot hash");
  if (!placement_set_) throw InvalidInput("ingest requires a placement");
  auto ingest = engine_->open_ingest(snapshot_, placement_, k_);
  ingest->begin_episode(epoch_us_);
  return ingest;
}

}  // namespace splace::api
