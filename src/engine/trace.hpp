// Request-lifecycle tracing for the serving engine.
//
// The paper's premise is that a system is diagnosed from end-to-end
// observations of its paths; the engine applies the same posture to itself.
// Every request (when tracing is enabled) carries a trace id and accumulates
// one span per lifecycle stage:
//
//   admission        time spent acquiring the admission lock and taking a
//                    queue slot (shared by every request of one batch — the
//                    batch takes the lock once)
//   queue_wait       admission to worker pickup
//   snapshot_resolve registry lookup of the request's content hash
//   cache_probe      canonical-key lookups in the result cache (submit-time
//                    probe plus the second, post-queue checkpoint)
//   compute          the library call itself (resolve excluded)
//   cache_insert     publishing the result into the LRU cache
//   future_delivery  post-compute bookkeeping until the result is handed to
//                    the promise (metrics recording, slot release)
//
// Spans that a request never reaches (a submit-time cache hit never queues;
// a rejection never computes) stay 0 — every exported trace carries all
// seven, so a reader never has to guess which stages existed.
//
// Recording is lock-cheap: traces land in one of a fixed set of sharded
// buffers (shard picked by thread id), each with its own mutex, so worker
// threads almost never contend. Buffers are bounded; overflow drops the
// newest trace and counts it. drain() moves everything out in trace-id
// order. Tracing observes — it never reorders execution or changes results.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/request.hpp"
#include "placement/options.hpp"

namespace splace::engine {

/// Lifecycle stages of one request, in the order a request passes them.
enum class Stage {
  Admission,
  QueueWait,
  SnapshotResolve,
  CacheProbe,
  Compute,
  CacheInsert,
  FutureDelivery,
};

/// Number of Stage values (span arrays are indexed by Stage).
inline constexpr std::size_t kStageCount = 7;

std::string to_string(Stage stage);

constexpr std::size_t stage_index(Stage stage) {
  return static_cast<std::size_t>(stage);
}

/// One request's end-to-end record: identity, outcome, and where the time
/// went. `greedy_rounds` is filled only for traced Place requests that ran a
/// greedy search (per-round candidate-evaluation timings via the
/// PlacementOptions::profile_round hook).
struct RequestTrace {
  std::uint64_t id = 0;             ///< per-engine, monotonically increasing
  RequestType type = RequestType::Place;
  Outcome outcome = Outcome::Ok;
  bool cache_hit = false;
  double submitted_seconds = 0;     ///< offset from engine construction (s)
  double total_seconds = 0;         ///< submit-to-response latency (s)
  std::array<double, kStageCount> stage_seconds{};  ///< per-stage wall time
  std::vector<GreedyRoundProfile> greedy_rounds;

  double stage(Stage s) const { return stage_seconds[stage_index(s)]; }
};

/// Counters describing the recorder's own state, exported with the metrics.
struct TraceStats {
  bool enabled = false;
  std::uint64_t recorded = 0;  ///< traces currently buffered
  std::uint64_t drained = 0;   ///< traces handed out by drain() so far
  std::uint64_t dropped = 0;   ///< traces lost to buffer overflow
  std::size_t capacity = 0;    ///< total buffered-trace bound
};

/// Sharded, bounded trace sink. All methods are thread-safe; record() takes
/// exactly one uncontended-in-practice mutex. A disabled recorder never
/// allocates and record() is never called on it (callers gate on enabled()).
class TraceRecorder {
 public:
  /// `capacity` bounds the number of buffered traces across all shards
  /// (rounded up to a multiple of the shard count). Ignored when disabled.
  TraceRecorder(bool enabled, std::size_t capacity);

  bool enabled() const { return enabled_; }

  /// Next trace id (atomic; ids are unique per recorder).
  std::uint64_t next_id() { return next_id_.fetch_add(1) + 1; }

  /// Buffers one finished trace; drops it (counted) when the shard is full.
  void record(RequestTrace trace);

  /// Moves every buffered trace out, sorted by ascending id.
  std::vector<RequestTrace> drain();

  TraceStats stats() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::vector<RequestTrace> traces;
  };

  bool enabled_;
  std::size_t shard_capacity_ = 0;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::array<Shard, kShards> shards_;
};

/// Deterministic-key-order JSON for one trace / a drained trace list. Every
/// trace object carries all seven stage spans by name.
std::string to_json(const RequestTrace& trace);
std::string to_json(const std::vector<RequestTrace>& traces);

}  // namespace splace::engine
