#include "engine/cache.hpp"

#include <algorithm>

namespace splace::engine {

std::size_t estimate_bytes(const EngineResult& result) {
  std::size_t bytes = sizeof(EngineResult) + result.message.size();
  bytes += result.place.placement.size() * sizeof(NodeId);
  bytes += result.localization.suspects.size() * sizeof(NodeId);
  bytes += result.localization.exonerated.size() * sizeof(NodeId);
  bytes += result.localization.minimal_explanation.size() * sizeof(NodeId);
  for (const auto& set : result.localization.consistent_sets)
    bytes += sizeof(set) + set.size() * sizeof(NodeId);
  return bytes;
}

std::shared_ptr<const EngineResult> ResultCache::find(const std::string& key) {
  if (!enabled()) return nullptr;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const EngineResult> value) {
  if (!enabled()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_.load(std::memory_order_relaxed))
    evict_back();
}

void ResultCache::evict_back() {
  const Entry& victim = lru_.back();
  ++stats_.evictions;
  ++stats_.evictions_by_type[static_cast<std::size_t>(victim.second->type)];
  stats_.evicted_bytes_estimate +=
      victim.first.size() + estimate_bytes(*victim.second);
  index_.erase(victim.first);
  lru_.pop_back();
}

void ResultCache::set_capacity(std::size_t capacity) {
  std::unique_lock<std::mutex> lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  while (lru_.size() > capacity) evict_back();
}

CacheStats ResultCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_.load(std::memory_order_relaxed);
  return snapshot;
}

void ResultCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = CacheStats{};
}

TenantCacheMap::TenantCacheMap(std::size_t total_capacity)
    : total_capacity_(total_capacity) {
  // The default tenant exists from the start with the full budget, so a
  // tenant-free workload behaves byte-identically to a plain ResultCache.
  partitions_.emplace("", std::make_unique<ResultCache>(total_capacity));
}

ResultCache& TenantCacheMap::partition(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = partitions_.find(tenant);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(tenant, std::make_unique<ResultCache>(std::size_t{0}))
             .first;
    resplit_locked(nullptr);
  }
  return *it->second;
}

void TenantCacheMap::set_split(
    const std::vector<std::pair<std::string, std::size_t>>& weights,
    std::size_t total) {
  std::unique_lock<std::mutex> lock(mutex_);
  total_capacity_.store(total, std::memory_order_relaxed);
  resplit_locked(&weights);
}

void TenantCacheMap::resplit_locked(
    const std::vector<std::pair<std::string, std::size_t>>* weights) {
  const std::size_t total = total_capacity_.load(std::memory_order_relaxed);
  if (total == 0) {
    for (auto& [tenant, cache] : partitions_) cache->set_capacity(0);
    return;
  }
  // Deterministic split order: tenants sorted by name (default "" first).
  std::vector<const std::string*> names;
  names.reserve(partitions_.size());
  for (const auto& [tenant, cache] : partitions_) names.push_back(&tenant);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::size_t weight_sum = 0;
  auto weight_of = [&](const std::string& tenant) -> std::size_t {
    if (weights == nullptr) return 1;  // equal shares
    for (const auto& [name, w] : *weights)
      if (name == tenant) return w;
    return 0;
  };
  std::vector<std::size_t> share(names.size(), 0);
  for (std::size_t i = 0; i < names.size(); ++i) {
    share[i] = weight_of(*names[i]);
    weight_sum += share[i];
  }
  if (weight_sum == 0) {
    for (std::size_t& s : share) s = 1;
    weight_sum = share.size();
  }
  // Proportional shares with a floor of 1: no tenant's partition can be
  // zeroed by another tenant's weight. The floor may push the sum slightly
  // over `total` when total < #partitions — isolation beats exact budgets.
  std::size_t assigned = 0;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::size_t exact = total * share[i] / weight_sum;
    share[i] = exact > 0 ? exact : 1;
    assigned += share[i];
    if (share[i] > share[largest]) largest = i;
  }
  // Rounding leftover goes to the heaviest partition (ties: first by name).
  if (assigned < total) share[largest] += total - assigned;
  for (std::size_t i = 0; i < names.size(); ++i)
    partitions_.at(*names[i])->set_capacity(share[i]);
}

CacheStats TenantCacheMap::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  CacheStats total;
  for (const auto& [tenant, cache] : partitions_) {
    const CacheStats part = cache->stats();
    total.hits += part.hits;
    total.misses += part.misses;
    total.evictions += part.evictions;
    for (std::size_t t = 0; t < kRequestTypeCount; ++t)
      total.evictions_by_type[t] += part.evictions_by_type[t];
    total.evicted_bytes_estimate += part.evicted_bytes_estimate;
    total.size += part.size;
    total.capacity += part.capacity;
  }
  return total;
}

std::vector<std::pair<std::string, CacheStats>> TenantCacheMap::partition_stats()
    const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, CacheStats>> out;
  out.reserve(partitions_.size());
  for (const auto& [tenant, cache] : partitions_)
    out.emplace_back(tenant, cache->stats());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t TenantCacheMap::partition_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return partitions_.size();
}

void TenantCacheMap::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& [tenant, cache] : partitions_) cache->clear();
}

}  // namespace splace::engine
