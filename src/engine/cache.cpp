#include "engine/cache.hpp"

namespace splace::engine {

std::size_t estimate_bytes(const EngineResult& result) {
  std::size_t bytes = sizeof(EngineResult) + result.message.size();
  bytes += result.place.placement.size() * sizeof(NodeId);
  bytes += result.localization.suspects.size() * sizeof(NodeId);
  bytes += result.localization.exonerated.size() * sizeof(NodeId);
  bytes += result.localization.minimal_explanation.size() * sizeof(NodeId);
  for (const auto& set : result.localization.consistent_sets)
    bytes += sizeof(set) + set.size() * sizeof(NodeId);
  return bytes;
}

std::shared_ptr<const EngineResult> ResultCache::find(const std::string& key) {
  if (!enabled()) return nullptr;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const EngineResult> value) {
  if (!enabled()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_.load(std::memory_order_relaxed))
    evict_back();
}

void ResultCache::evict_back() {
  const Entry& victim = lru_.back();
  ++stats_.evictions;
  ++stats_.evictions_by_type[static_cast<std::size_t>(victim.second->type)];
  stats_.evicted_bytes_estimate +=
      victim.first.size() + estimate_bytes(*victim.second);
  index_.erase(victim.first);
  lru_.pop_back();
}

void ResultCache::set_capacity(std::size_t capacity) {
  std::unique_lock<std::mutex> lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  while (lru_.size() > capacity) evict_back();
}

CacheStats ResultCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_.load(std::memory_order_relaxed);
  return snapshot;
}

void ResultCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = CacheStats{};
}

}  // namespace splace::engine
