#include "engine/cache.hpp"

namespace splace::engine {

std::shared_ptr<const EngineResult> ResultCache::find(const std::string& key) {
  if (!enabled()) return nullptr;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const EngineResult> value) {
  if (!enabled()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

void ResultCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = CacheStats{};
}

}  // namespace splace::engine
