// Immutable topology snapshots for the serving engine.
//
// Building a ProblemInstance is the expensive part of answering any
// placement/evaluation/localization request: it runs all-pairs BFS routing
// and materializes every candidate path set. A TopologySnapshot freezes one
// such instance behind a shared_ptr so an arbitrary number of concurrent
// requests can read it without recomputing routing, and the SnapshotRegistry
// deduplicates snapshots by a content hash of (graph, services) — two
// tenants registering the same topology share one instance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "placement/service.hpp"

namespace splace::engine {

/// FNV-1a content hash of a topology + service list: node count, every edge,
/// and every service's (name, clients, alpha, demand). Two inputs that hash
/// equal are treated as the same snapshot, so the hash covers every field
/// that influences placement/evaluation results.
std::uint64_t topology_content_hash(const Graph& graph,
                                    const std::vector<Service>& services);

/// One immutable, shareable problem instance. All accessors are const and
/// safe to call from any number of threads concurrently.
class TopologySnapshot {
 public:
  /// Builds routing and candidate paths once (the expensive step).
  /// Validation mirrors ProblemInstance's constructor preconditions.
  TopologySnapshot(std::string name, Graph graph,
                   std::vector<Service> services);

  const std::string& name() const { return name_; }
  std::uint64_t hash() const { return hash_; }
  const ProblemInstance& instance() const { return *instance_; }
  std::shared_ptr<const ProblemInstance> instance_ptr() const {
    return instance_;
  }

 private:
  std::string name_;
  std::uint64_t hash_;
  std::shared_ptr<const ProblemInstance> instance_;
};

/// Thread-safe registry of snapshots keyed by content hash. Registration is
/// idempotent: adding content that hashes to an existing snapshot returns
/// the existing one without rebuilding routing.
class SnapshotRegistry {
 public:
  /// Registers (or re-finds) a snapshot. The expensive instance build runs
  /// outside the registry lock, so lookups never block behind it; if two
  /// threads race to add the same content, the first insert wins and the
  /// loser's instance is discarded.
  std::shared_ptr<const TopologySnapshot> add(std::string name, Graph graph,
                                              std::vector<Service> services);

  /// Snapshot by content hash, or nullptr when absent.
  std::shared_ptr<const TopologySnapshot> find(std::uint64_t hash) const;

  /// Snapshot by registration name (latest registration wins), or nullptr.
  std::shared_ptr<const TopologySnapshot> find_by_name(
      const std::string& name) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const TopologySnapshot>> by_hash_;
  std::map<std::string, std::uint64_t> by_name_;
};

}  // namespace splace::engine
