// Immutable topology snapshots for the serving engine.
//
// Building a ProblemInstance is the expensive part of answering any
// placement/evaluation/localization request: it runs all-pairs BFS routing
// and materializes every candidate path set. A TopologySnapshot freezes one
// such instance behind a shared_ptr so an arbitrary number of concurrent
// requests can read it without recomputing routing, and the SnapshotRegistry
// deduplicates snapshots by a content hash of (graph, services) — two
// tenants registering the same topology share one instance.
//
// Snapshots may also be *derived*: SnapshotRegistry::derive applies a
// TopologyDelta to a registered parent, building the child instance through
// dynamic/delta's structural-sharing path (unchanged BFS trees and path sets
// are shared with the parent) and recording the parent hash plus reuse
// telemetry. A derive that lands on already-registered content dedups like
// any other registration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dynamic/delta.hpp"
#include "graph/graph.hpp"
#include "placement/service.hpp"

namespace splace::engine {

/// FNV-1a content hash of a topology + service list: node count, every edge
/// (in sorted order, so link-churn histories that reach the same topology
/// hash equal), and every service's (name, clients, alpha, demand). Two
/// inputs that hash equal are treated as the same snapshot, so the hash
/// covers every field that influences placement/evaluation results.
std::uint64_t topology_content_hash(const Graph& graph,
                                    const std::vector<Service>& services);

/// One immutable, shareable problem instance. All accessors are const and
/// safe to call from any number of threads concurrently.
class TopologySnapshot {
 public:
  /// Builds routing and candidate paths once (the expensive step).
  /// Validation mirrors ProblemInstance's constructor preconditions.
  TopologySnapshot(std::string name, Graph graph,
                   std::vector<Service> services);

  /// Wraps an instance derived from `parent_hash` (see derive_instance);
  /// `hash` must be the content hash of the instance's graph + services.
  TopologySnapshot(std::string name, std::uint64_t hash,
                   std::shared_ptr<const ProblemInstance> instance,
                   std::uint64_t parent_hash, DeriveStats stats);

  const std::string& name() const { return name_; }
  std::uint64_t hash() const { return hash_; }
  const ProblemInstance& instance() const { return *instance_; }
  std::shared_ptr<const ProblemInstance> instance_ptr() const {
    return instance_;
  }

  /// Lineage: true when this snapshot was built by derive().
  bool is_derived() const { return derived_; }
  /// Content hash of the parent snapshot (meaningful only when derived).
  std::uint64_t parent_hash() const { return parent_hash_; }
  /// Structural-reuse telemetry of the derive (zeros when not derived).
  const DeriveStats& derive_stats() const { return derive_stats_; }

 private:
  std::string name_;
  std::uint64_t hash_;
  std::shared_ptr<const ProblemInstance> instance_;
  bool derived_ = false;
  std::uint64_t parent_hash_ = 0;
  DeriveStats derive_stats_{};
};

/// Thread-safe registry of snapshots keyed by content hash. Registration is
/// idempotent: adding content that hashes to an existing snapshot returns
/// the existing one without rebuilding routing.
class SnapshotRegistry {
 public:
  /// Registers (or re-finds) a snapshot. The expensive instance build runs
  /// outside the registry lock, so lookups never block behind it; if two
  /// threads race to add the same content, the first insert wins and the
  /// loser's instance is discarded.
  std::shared_ptr<const TopologySnapshot> add(std::string name, Graph graph,
                                              std::vector<Service> services);

  /// Result of a derive: the child snapshot, and whether it already existed
  /// (content dedup — including losing a first-insert race).
  struct DeriveOutcome {
    std::shared_ptr<const TopologySnapshot> snapshot;
    bool existed = false;
  };

  /// Registers the snapshot `parent_hash` becomes under `delta`, reusing
  /// the parent's unchanged routing trees and path sets (derive_instance).
  /// With an empty `name` the child is named "<parent-name>~<child-hash>".
  /// Throws InvalidInput for an unknown parent or an invalid/empty delta.
  /// Racing derives of the same content yield one shared child
  /// (first-insert-wins, like add()).
  DeriveOutcome derive(std::uint64_t parent_hash, const TopologyDelta& delta,
                       std::string name = "");

  /// Snapshot by content hash, or nullptr when absent.
  std::shared_ptr<const TopologySnapshot> find(std::uint64_t hash) const;

  /// Snapshot by registration name (latest registration wins), or nullptr.
  std::shared_ptr<const TopologySnapshot> find_by_name(
      const std::string& name) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const TopologySnapshot>> by_hash_;
  std::map<std::string, std::uint64_t> by_name_;
};

}  // namespace splace::engine
