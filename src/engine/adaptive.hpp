// Adaptive result-cache capacity driven by the observed working set.
//
// The engine's result cache is only useful when it holds roughly one entry
// per *distinct* request the traffic keeps repeating — its working set. A
// fixed capacity either wastes memory (capacity >> working set) or thrashes
// (capacity << working set). This controller watches the stream of completed
// responses — the same instrumentation points that feed the request-trace
// stream — and keeps a sliding window of the last W canonical keys. The
// number of distinct keys in that window (total and per request type) is the
// working-set estimate; every `interval` observations the controller
// computes
//
//   target = clamp(ceil(working_set * headroom), min_capacity, max_capacity)
//
// and resizes the cache when the target differs from the current capacity by
// at least 1/8 of the current capacity (hysteresis, so a working set
// oscillating by a few keys does not flap the capacity). Every resize is
// recorded as a ResizeEvent and exported with the engine metrics.
//
// Adaptation changes *capacity* only. Cached lookups are keyed by full
// canonical keys and results are deterministic, so a resize can change
// hit rates and latency, never a response payload — and results already
// handed out survive eviction (shared_ptr; see ResultCache::set_capacity).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache.hpp"
#include "engine/request.hpp"

namespace splace::engine {

/// One capacity change made by the controller.
struct ResizeEvent {
  std::uint64_t at_observation = 0;  ///< ordinal of the triggering response
  std::size_t old_capacity = 0;      ///< entries
  std::size_t new_capacity = 0;      ///< entries
  std::size_t working_set = 0;       ///< distinct keys in window at decision
};

/// Point-in-time view of the controller, exported in the metrics JSON.
struct AdaptiveCacheStats {
  bool enabled = false;
  std::size_t window = 0;       ///< sliding-window length (observations)
  std::uint64_t observed = 0;   ///< responses observed so far
  std::size_t working_set = 0;  ///< distinct canonical keys in the window
  std::array<std::size_t, kRequestTypeCount> working_set_by_type{};
  /// Distinct keys in the window per tenant, sorted by tenant name (empty
  /// default tenant first). This is the signal that seeds per-tenant cache
  /// partition splits in the sharded serving tier.
  std::vector<std::pair<std::string, std::size_t>> working_set_by_tenant;
  std::size_t min_capacity = 0;  ///< entries
  std::size_t max_capacity = 0;  ///< entries
  std::vector<ResizeEvent> resizes;
};

/// Internally synchronized; observe() is called once per completed Ok
/// response from whichever worker finished it.
class AdaptiveCacheController {
 public:
  /// A disabled controller (enabled = false) ignores every observe() call.
  /// Parameters mirror EngineConfig's adaptive fields and must already be
  /// validated (EngineConfig::validate()).
  AdaptiveCacheController(bool enabled, std::size_t min_capacity,
                          std::size_t max_capacity, std::size_t window,
                          double headroom, std::size_t interval);

  bool enabled() const { return enabled_; }

  /// Feeds one completed response's canonical key into the window; every
  /// `interval` observations, re-targets `cache`'s capacity.
  void observe(const std::string& key, RequestType type, ResultCache& cache);

  /// Tenant-aware variant for partitioned caches: same window and total
  /// re-target policy, but the new total is split across `tenants`'
  /// partitions proportionally to each tenant's distinct-key count in the
  /// window (TenantCacheMap::set_split) instead of resizing one cache.
  void observe(const std::string& key, RequestType type,
               const std::string& tenant, TenantCacheMap& tenants);

  AdaptiveCacheStats stats() const;

 private:
  struct WindowEntry {
    std::size_t count = 0;
    RequestType type = RequestType::Place;
    std::string tenant;
  };

  /// Shared window bookkeeping. Returns the target capacity when this
  /// observation triggers a re-target past the hysteresis band (given the
  /// aggregate `current` capacity), or 0 when no resize should happen.
  /// Caller holds mutex_.
  std::size_t observe_locked(const std::string& key, RequestType type,
                             const std::string& tenant, std::size_t current);

  bool enabled_;
  std::size_t min_capacity_;
  std::size_t max_capacity_;
  std::size_t window_;
  double headroom_;
  std::size_t interval_;

  mutable std::mutex mutex_;
  std::uint64_t observed_ = 0;
  std::vector<std::uint64_t> ring_;  ///< last `window_` key hashes
  std::size_t ring_next_ = 0;
  bool ring_full_ = false;
  /// key hash -> occurrences in the window (+ the key's request type).
  /// Distinct-per-type counters derive from 0<->1 transitions.
  std::unordered_map<std::uint64_t, WindowEntry> in_window_;
  std::array<std::size_t, kRequestTypeCount> distinct_by_type_{};
  /// tenant -> distinct keys currently in the window.
  std::unordered_map<std::string, std::size_t> distinct_by_tenant_;
  std::vector<ResizeEvent> resizes_;
};

}  // namespace splace::engine
