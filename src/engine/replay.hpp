// Replay scenarios: a line-oriented description of a mixed request stream
// fired through the serving engine (consumed by `splace_cli --replay` and
// bench_engine). The format mirrors core/scenario.hpp's style:
//
//   # engine configuration
//   threads 4                 # engine workers (0 = hardware concurrency)
//   shards 4                  # engine shards (1 = plain single engine;
//                             # > 1 runs an EngineGroup — threads, queue
//                             # and cache are per shard)
//   queue-depth 256           # admission limit
//   cache 1024                # LRU capacity in entries (0 = off)
//   repeat 50                 # fire the request list this many times
//   trace 4096                # request tracing, retaining up to N traces
//   adaptive 64 4096          # adaptive cache capacity in [min, max] entries
//   adaptive-window 256       # working-set window (completed responses)
//   adaptive-interval 64      # responses between resize decisions
//
//   # one or more named snapshots (catalog topologies)
//   snapshot net1 topology tiscali alpha 0.6 services 5 clients 3
//
//   # the request mix, each line one request per repeat iteration
//   place net1 gd             # algorithm: gd|gc|gi|qos|rd|bf
//   place net1 gc k 1
//   evaluate net1 qos         # evaluates that algorithm's placement
//   localize net1 2           # inject 2 random failures (deterministic
//                             # per-line, per-iteration seeds)
//   portfolio net1 greedy pair_cover k 1
//                             # run a PortfolioRequest over the named
//                             # registry algorithms (none listed = every
//                             # registered algorithm); names are validated
//                             # against the registry at parse time
//
//   # request-state directives, applying to every request line below them
//   seed 7                    # RNG seed for subsequent rd placements
//   deadline 250              # per-request deadline in ms (0 = none)
//   tenant acme               # tag subsequent requests with a tenant id
//   tenant -                  # ... back to the default tenant
//   algo pair_cover           # route subsequent `place` lines through the
//                             # pluggable algorithm registry
//                             # (placement/algorithm.hpp) under that name,
//                             # overriding the line's enum token; validated
//                             # at parse time. Only `place` lines are
//                             # affected. `algo -` returns to the classic
//                             # enum path
//
//   # per-tenant admission quotas (engine-level; `-` = the default tenant).
//   # keys (all optional): inflight (max in-flight requests), rate
//   # (token-bucket refill per second), burst (bucket capacity)
//   quota acme inflight 4 rate 100 burst 8
//
//   # observability: ask the driver for the Prometheus-style text export
//   metrics                   # fill ReplayReport::metrics_text after the
//                             # run (splace_cli prints / writes it)
//
//   # topology churn: mutate lines accumulate a pending delta against a
//   # named snapshot; derive fires one MutateRequest with that delta and
//   # rebinds the name to the derived snapshot for later request lines
//   mutate net1 addlink 3 9
//   mutate net1 rmlink 0 4
//   derive net1
//
//   # correlated failures: run root-cause cascade episodes against a named
//   # snapshot AFTER the request phase (so derived snapshots are live).
//   # keys (all optional): algorithm, strength (per-tick propagation
//   # probability), density (random dependency-DAG edge probability),
//   # episodes, ticks, k
//   cascade net1 gd strength 0.6 density 0.3 episodes 4 ticks 4 k 2
//
// Place/evaluate lines repeat identically across iterations (exercising the
// result cache); localize lines draw fresh failure sets every iteration
// (cache-resistant work). Derive lines act as barriers: the replay driver
// waits for the derived snapshot to register before submitting later lines
// that may target it. Unknown keys and malformed values are rejected with
// line-numbered InvalidInput errors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cascade/root_cause.hpp"
#include "engine/engine.hpp"

namespace splace::shard {
struct EngineGroupConfig;
}  // namespace splace::shard

namespace splace::engine {

struct ReplaySnapshotSpec {
  std::string name;
  std::string topology;  ///< catalog entry name
  double alpha = 0.6;
  std::size_t services = 0;  ///< 0 = the catalog entry's default
  std::size_t clients_per_service = 3;
};

struct ReplayRequestSpec {
  RequestType type = RequestType::Place;
  std::string snapshot;
  std::string algorithm = "gd";  ///< place: algorithm; evaluate: placement
  /// Registry algorithm name for `place` lines (from the `algo` directive;
  /// empty = the classic enum path). Routes the PlaceRequest through
  /// placement/algorithm.hpp.
  std::string registry_algorithm;
  /// `portfolio` lines: the registry names to race (empty = all registered).
  std::vector<std::string> portfolio_algorithms;
  std::size_t k = 1;
  std::size_t failures = 1;      ///< localize only
  std::uint64_t seed = 42;       ///< rd placements (from `seed`)
  double deadline_seconds = 0;   ///< from `deadline <ms>`; 0 = none
  std::string tenant;            ///< from `tenant <id>`; empty = default
  TopologyDelta delta;           ///< mutate requests only (from `derive`)
};

/// One `cascade` line: correlated-failure episodes against a snapshot,
/// executed after the request phase through Engine::open_ingest and the
/// cascade root-cause analyzer.
struct ReplayCascadeSpec {
  std::string snapshot;
  std::string algorithm = "gd";
  double strength = 0.5;     ///< per-tick propagation probability, (0, 1]
  double density = 0.2;      ///< dependency-DAG edge probability, [0, 1]
  std::size_t episodes = 4;
  std::size_t ticks = 4;
  std::size_t k = 2;
  std::uint64_t seed = 42;   ///< from the `seed` state directive
};

struct ReplaySpec {
  std::size_t threads = 0;
  std::size_t shards = 1;             ///< from `shards <N>`; > 1 = group
  std::size_t queue_depth = 256;
  std::size_t cache_capacity = 1024;
  std::size_t repeat = 1;
  bool tracing = false;               ///< from `trace <N>`
  std::size_t trace_capacity = 4096;
  bool adaptive_cache = false;        ///< from `adaptive <min> <max>`
  std::size_t cache_min_capacity = 64;
  std::size_t cache_max_capacity = 4096;
  std::size_t working_set_window = 256;
  std::size_t adaptation_interval = 64;
  bool metrics_text = false;          ///< from `metrics`
  std::vector<TenantQuota> tenant_quotas;  ///< from `quota <tenant> ...`
  std::vector<ReplaySnapshotSpec> snapshots;
  std::vector<ReplayRequestSpec> requests;
  std::vector<ReplayCascadeSpec> cascades;

  EngineConfig engine_config() const {
    EngineConfig config;
    config.threads = threads;
    config.max_queue_depth = queue_depth;
    config.cache_capacity = cache_capacity;
    config.adaptive_cache = adaptive_cache;
    config.cache_min_capacity = cache_min_capacity;
    config.cache_max_capacity = cache_max_capacity;
    config.working_set_window = working_set_window;
    config.adaptation_interval = adaptation_interval;
    config.tracing = tracing;
    config.trace_capacity = trace_capacity;
    config.tenant_quotas = tenant_quotas;
    return config;
  }

  /// The `shards`-wide EngineGroup configuration (shard = engine_config()).
  /// Defined in replay.cpp to keep shard/group.hpp out of this header.
  shard::EngineGroupConfig group_config() const;
};

ReplaySpec parse_replay(std::istream& in);
ReplaySpec parse_replay(const std::string& text);

/// "gd"/"gc"/"gi"/"qos"/"rd"/"bf" (case-insensitive) -> Algorithm.
Algorithm parse_algorithm(const std::string& name);

/// A materialized workload: the registry with every named *base* snapshot
/// built, plus the full request list (repeat iterations expanded,
/// evaluate/localize placements precomputed by direct library calls,
/// localize failure draws seeded deterministically per line and iteration).
/// Derived snapshots are NOT pre-registered: the builder computes them
/// locally to resolve later lines' hashes and placements, but registration
/// happens when the engine executes the MutateRequest — replay genuinely
/// exercises the derive path.
/// One materialized `cascade` line: the resolved snapshot hash and
/// placement plus the generated dependency DAG, ready to drive through
/// Engine::open_ingest after the request phase.
struct ReplayCascadeJob {
  std::uint64_t snapshot = 0;
  Placement placement;
  cascade::DependencyGraph deps;
  std::size_t episodes = 4;
  std::size_t ticks = 4;
  std::size_t k = 2;
  std::uint64_t seed = 42;
};

struct ReplayWorkload {
  std::shared_ptr<SnapshotRegistry> registry;
  std::vector<Request> requests;
  std::vector<ReplayCascadeJob> cascades;
};

ReplayWorkload build_replay_workload(const ReplaySpec& spec);

/// Outcome tally of one replay run. `total == ok + rejected counters` by
/// construction — a lost response would break that invariant.
struct ReplayReport {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t cache_hits = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_bad_request = 0;
  std::size_t rejected_tenant_quota = 0;
  double wall_seconds = 0;
  double requests_per_second = 0;
  /// Order-sensitive FNV-1a fold over every response payload (type,
  /// outcome, and the Ok result fields; excludes message text, cache_hit
  /// and latency). Two runs of the same workload that produce bit-identical
  /// responses in order produce equal digests — the gate that a shard group
  /// answers exactly like a single engine.
  std::uint64_t response_digest = 0;
  EngineMetricsSnapshot metrics;  ///< engine state after the run
  /// Prometheus-style text exposition of the same post-run state
  /// (Engine::metrics_text), captured before the trace drain.
  std::string metrics_text;
  /// Event-bus counters after the run (trace publishes land here).
  stream::BusStats bus;
  /// Per-request traces drained after the run (empty unless `trace` was
  /// configured), in submission (trace-id) order.
  std::vector<RequestTrace> traces;
  /// Per-`cascade`-line outcome tallies (episodes run after the request
  /// phase, events on the engine bus). `bus` above is captured after them.
  struct CascadeSummary {
    std::uint64_t snapshot = 0;
    std::size_t episodes = 0;
    std::size_t detected = 0;
    std::size_t top1 = 0;
    std::size_t top3 = 0;
    double mean_blast_services = 0;
    bool streamed_equals_batch = true;  ///< held on every episode
  };
  std::vector<CascadeSummary> cascades;
};

/// Fires the workload through a fresh engine with `config` and waits for
/// every response.
ReplayReport run_replay(const ReplayWorkload& workload, EngineConfig config);

/// Fires the workload through a fresh EngineGroup (shard/group.hpp). The
/// report aggregates across shards: `metrics` via merge_snapshots, `bus`
/// counters summed, `metrics_text` the group page with shard labels, and
/// `traces` concatenated in shard order (ids are per shard).
ReplayReport run_replay(const ReplayWorkload& workload,
                        const shard::EngineGroupConfig& config);

/// Convenience: build the workload and run it with the spec's own
/// configuration — a single engine when `shards <= 1`, an EngineGroup
/// otherwise.
ReplayReport run_replay(const ReplaySpec& spec);

}  // namespace splace::engine
