#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "localization/localizer.hpp"
#include "placement/baselines.hpp"
#include "placement/brute_force.hpp"
#include "placement/greedy.hpp"
#include "placement/options.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace::engine {
namespace {

EngineResult rejected(RequestType type, Outcome outcome,
                      std::string message) {
  EngineResult result;
  result.type = type;
  result.outcome = outcome;
  result.message = std::move(message);
  return result;
}

std::future<EngineResult> ready_future(EngineResult result) {
  std::promise<EngineResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::vector<NodeId> bitset_nodes(const DynamicBitset& bits) {
  std::vector<NodeId> nodes;
  for (std::size_t i : bits.to_indices())
    nodes.push_back(static_cast<NodeId>(i));
  return nodes;
}

}  // namespace

Engine::Engine(std::shared_ptr<SnapshotRegistry> registry, EngineConfig config)
    : registry_(std::move(registry)),
      config_(config),
      cache_(config.cache_capacity),
      start_(Clock::now()),
      pool_(config.threads) {
  SPLACE_EXPECTS(registry_ != nullptr);
  SPLACE_EXPECTS(config_.max_queue_depth >= 1);
}

template <typename Request>
std::future<EngineResult> Engine::submit_impl(RequestType type,
                                              Request request) {
  const Clock::time_point submitted = Clock::now();
  metrics_.record_submitted();

  std::string key = canonical_key(request);
  if (std::shared_ptr<const EngineResult> hit = cache_.find(key)) {
    // Serve from cache without consuming a queue slot: the payload is the
    // cached computation, only the bookkeeping fields are per-response.
    EngineResult result = *hit;
    result.cache_hit = true;
    result.latency_seconds =
        std::chrono::duration<double>(Clock::now() - submitted).count();
    metrics_.record_response(type, result.outcome, true,
                             result.latency_seconds);
    return ready_future(std::move(result));
  }

  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    if (pending_ >= config_.max_queue_depth) {
      lock.unlock();
      EngineResult result =
          rejected(type, Outcome::RejectedQueueFull,
                   "queue depth limit " +
                       std::to_string(config_.max_queue_depth) + " reached");
      result.latency_seconds =
          std::chrono::duration<double>(Clock::now() - submitted).count();
      metrics_.record_response(type, result.outcome, false,
                               result.latency_seconds);
      return ready_future(std::move(result));
    }
    ++pending_;
    metrics_.record_admitted(pending_);
  }

  return pool_.submit_with_result(
      [this, type, request = std::move(request), key = std::move(key),
       submitted]() mutable {
        EngineResult result;
        const double queued =
            std::chrono::duration<double>(Clock::now() - submitted).count();
        if (request.deadline_seconds > 0 &&
            queued > request.deadline_seconds) {
          result = rejected(type, Outcome::RejectedDeadline,
                            "deadline expired after queueing");
        } else if (std::shared_ptr<const EngineResult> hit =
                       cache_.find(key)) {
          // Second cache checkpoint: an identical request submitted in the
          // same burst may have completed while this one waited in the
          // queue. Identical keys guarantee identical results, so serving
          // the cached payload is indistinguishable from recomputing.
          result = *hit;
          result.cache_hit = true;
        } else {
          result = execute(request);
        }
        result.latency_seconds =
            std::chrono::duration<double>(Clock::now() - submitted).count();
        if (result.ok() && !result.cache_hit)
          cache_.insert(key, std::make_shared<const EngineResult>(result));
        metrics_.record_response(type, result.outcome, result.cache_hit,
                                 result.latency_seconds);
        {
          std::unique_lock<std::mutex> lock(admission_mutex_);
          --pending_;
        }
        return result;
      });
}

std::future<EngineResult> Engine::submit(PlaceRequest request) {
  return submit_impl(RequestType::Place, std::move(request));
}

std::future<EngineResult> Engine::submit(EvaluateRequest request) {
  return submit_impl(RequestType::Evaluate, std::move(request));
}

std::future<EngineResult> Engine::submit(LocalizeRequest request) {
  return submit_impl(RequestType::Localize, std::move(request));
}

std::shared_ptr<const TopologySnapshot> Engine::resolve(
    std::uint64_t hash, EngineResult& result) const {
  std::shared_ptr<const TopologySnapshot> snapshot = registry_->find(hash);
  if (!snapshot) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "unknown snapshot hash";
  }
  return snapshot;
}

EngineResult Engine::execute(const PlaceRequest& request) const {
  EngineResult result;
  result.type = RequestType::Place;
  const auto snapshot = resolve(request.snapshot, result);
  if (!snapshot) return result;
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  const ProblemInstance& instance = snapshot->instance();
  try {
    PlacementOptions options;
    options.threads = std::max<std::size_t>(1, request.threads);
    switch (request.algorithm) {
      case Algorithm::QoS:
        result.place.placement = best_qos_placement(instance);
        break;
      case Algorithm::RD: {
        Rng rng(request.seed);
        result.place.placement = random_placement(instance, rng);
        break;
      }
      case Algorithm::GC:
      case Algorithm::GI:
      case Algorithm::GD: {
        const ObjectiveKind kind =
            request.algorithm == Algorithm::GC
                ? ObjectiveKind::Coverage
                : request.algorithm == Algorithm::GI
                      ? ObjectiveKind::Identifiability
                      : ObjectiveKind::Distinguishability;
        GreedyResult greedy =
            greedy_placement(instance, kind, request.k, options);
        result.place.placement = std::move(greedy.placement);
        result.place.objective_value = greedy.objective_value;
        break;
      }
      case Algorithm::BF: {
        const auto bf = brute_force_k1(instance);
        if (!bf) {
          result.outcome = Outcome::RejectedBadRequest;
          result.message = "BF search space exceeds the budget";
          return result;
        }
        result.place.placement = bf->distinguishability.placement;
        result.place.objective_value =
            static_cast<double>(bf->distinguishability.value);
        break;
      }
    }
    result.place.metrics = evaluate_paths(
        instance.paths_for_placement(result.place.placement), request.k);
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const EvaluateRequest& request) const {
  EngineResult result;
  result.type = RequestType::Evaluate;
  const auto snapshot = resolve(request.snapshot, result);
  if (!snapshot) return result;
  const ProblemInstance& instance = snapshot->instance();
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  if (request.placement.size() != instance.service_count()) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "placement size does not match service count";
    return result;
  }
  try {
    result.metrics = evaluate_paths(
        instance.paths_for_placement(request.placement), request.k);
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const LocalizeRequest& request) const {
  EngineResult result;
  result.type = RequestType::Localize;
  const auto snapshot = resolve(request.snapshot, result);
  if (!snapshot) return result;
  const ProblemInstance& instance = snapshot->instance();
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  if (request.placement.size() != instance.service_count()) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "placement size does not match service count";
    return result;
  }
  try {
    const PathSet paths = instance.paths_for_placement(request.placement);
    DynamicBitset failed(paths.size());
    for (std::uint32_t index : request.failed_paths) {
      if (index >= paths.size()) {
        result.outcome = Outcome::RejectedBadRequest;
        result.message = "failed path index out of range";
        return result;
      }
      failed.set(index);
    }
    const LocalizationResult localization = localize(paths, failed, request.k);
    result.localization.suspects = bitset_nodes(localization.suspects);
    result.localization.exonerated = bitset_nodes(localization.exonerated);
    result.localization.consistent_sets = localization.consistent_sets;
    result.localization.minimal_explanation =
        localization.minimal_explanation;
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineMetricsSnapshot Engine::metrics() const {
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    depth = pending_;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start_).count();
  return metrics_.snapshot(depth, elapsed, cache_.stats());
}

}  // namespace splace::engine
