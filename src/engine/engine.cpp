#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "localization/localizer.hpp"
#include "placement/algorithm.hpp"
#include "placement/baselines.hpp"
#include "placement/brute_force.hpp"
#include "placement/greedy.hpp"
#include "placement/options.hpp"
#include "portfolio/portfolio.hpp"
#include "stream/exposition.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace::engine {
namespace {

EngineResult rejected(RequestType type, Outcome outcome,
                      std::string message) {
  EngineResult result;
  result.type = type;
  result.outcome = outcome;
  result.message = std::move(message);
  return result;
}

std::future<EngineResult> ready_future(EngineResult result) {
  std::promise<EngineResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::vector<NodeId> bitset_nodes(const DynamicBitset& bits) {
  std::vector<NodeId> nodes;
  for (std::size_t i : bits.to_indices())
    nodes.push_back(static_cast<NodeId>(i));
  return nodes;
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

EngineConfig validated(EngineConfig config) {
  const std::string error = config.validate();
  if (!error.empty()) throw InvalidInput("EngineConfig: " + error);
  return config;
}

}  // namespace

std::string EngineConfig::validate() const {
  if (max_queue_depth < 1)
    return "max_queue_depth must be >= 1 (requests)";
  if (adaptive_cache) {
    if (cache_min_capacity < 1)
      return "cache_min_capacity must be >= 1 (entries) when adaptive_cache "
             "is on";
    if (cache_max_capacity < cache_min_capacity)
      return "cache_max_capacity must be >= cache_min_capacity (entries)";
    if (cache_capacity < cache_min_capacity ||
        cache_capacity > cache_max_capacity)
      return "cache_capacity must start inside [cache_min_capacity, "
             "cache_max_capacity] (entries)";
    if (working_set_window < 1)
      return "working_set_window must be >= 1 (completed responses)";
    if (working_set_headroom < 1.0)
      return "working_set_headroom must be >= 1.0 (ratio)";
    if (adaptation_interval < 1)
      return "adaptation_interval must be >= 1 (completed responses)";
  }
  if (tracing && trace_capacity < 1)
    return "trace_capacity must be >= 1 (traces) when tracing is on";
  for (std::size_t i = 0; i < tenant_quotas.size(); ++i) {
    const TenantQuota& quota = tenant_quotas[i];
    if (quota.rate_per_second < 0)
      return "tenant quota rate_per_second must be >= 0 (requests/second)";
    if (quota.burst < 0) return "tenant quota burst must be >= 0 (requests)";
    if (quota.burst > 0 && quota.rate_per_second <= 0)
      return "tenant quota burst requires rate_per_second > 0";
    for (std::size_t j = 0; j < i; ++j)
      if (tenant_quotas[j].tenant == quota.tenant)
        return "duplicate tenant quota for tenant '" + quota.tenant + "'";
  }
  return {};
}

Engine::Engine(std::shared_ptr<SnapshotRegistry> registry, EngineConfig config)
    : registry_(std::move(registry)),
      config_(validated(std::move(config))),
      cache_(config_.cache_capacity),
      adaptive_(config_.adaptive_cache, config_.cache_min_capacity,
                config_.cache_max_capacity, config_.working_set_window,
                config_.working_set_headroom, config_.adaptation_interval),
      start_(Clock::now()),
      pool_(config_.threads) {
  SPLACE_EXPECTS(registry_ != nullptr);
  for (const TenantQuota& quota : config_.tenant_quotas) {
    TenantState state;
    state.quota = &quota;
    // Buckets start full: a tenant gets its burst immediately, then refills
    // at rate_per_second.
    state.tokens = quota.burst > 0 ? quota.burst
                                   : std::max(1.0, quota.rate_per_second);
    state.refilled_at = start_;
    tenant_states_.emplace(quota.tenant, std::move(state));
  }
  if (config_.tracing) {
    // drain_traces() compatibility: buffer finished traces on a bounded
    // Trace-kind tail so pull-style consumers keep working unchanged.
    stream::SubscribeOptions options;
    options.mask = stream::event_bit(stream::EventKind::Trace);
    options.capacity = config_.trace_capacity;
    options.policy = stream::DropPolicy::DropNew;
    trace_tail_ = bus_.subscribe(options);
  }
}

double Engine::since_start(Clock::time_point at) const {
  return seconds_between(start_, at);
}

bool Engine::admit_tenant(const std::string& tenant, Clock::time_point now) {
  const auto it = tenant_states_.find(tenant);
  if (it == tenant_states_.end()) return true;  // no quota: always admit
  TenantState& state = it->second;
  const TenantQuota& quota = *state.quota;
  if (quota.max_in_flight > 0 && state.in_flight >= quota.max_in_flight)
    return false;
  if (quota.rate_per_second > 0) {
    // Lazy token-bucket refill, clamped to the burst size. The clock only
    // moves forward, so the refill amount is never negative.
    const double cap =
        quota.burst > 0 ? quota.burst : std::max(1.0, quota.rate_per_second);
    state.tokens =
        std::min(cap, state.tokens + seconds_between(state.refilled_at, now) *
                                         quota.rate_per_second);
    state.refilled_at = now;
    if (state.tokens < 1.0) return false;
    state.tokens -= 1.0;
  }
  ++state.in_flight;
  return true;
}

void Engine::release_tenant(const std::string& tenant) {
  const auto it = tenant_states_.find(tenant);
  if (it == tenant_states_.end()) return;
  SPLACE_ENSURES(it->second.in_flight > 0);
  --it->second.in_flight;
}

std::vector<std::future<EngineResult>> Engine::submit(
    std::vector<Request> batch) {
  const bool tracing = config_.tracing;
  const Clock::time_point submitted = Clock::now();
  std::vector<std::future<EngineResult>> futures(batch.size());

  // Per-request bookkeeping and cache probe; cache hits answer immediately
  // without consuming a queue slot (the payload is the cached computation,
  // only the bookkeeping fields are per-response).
  struct Candidate {
    std::size_t index;
    RequestType type;
    std::string key;
    RequestTrace trace;  ///< id != 0 iff this request is traced
  };
  std::vector<Candidate> candidates;
  candidates.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::string& tenant = tenant_of(batch[i]);
    metrics_.record_submitted(tenant);
    const RequestType type = request_type(batch[i]);
    std::string key = canonical_key(batch[i]);
    RequestTrace trace;
    if (tracing) {
      trace.id = next_trace_id_.fetch_add(1) + 1;
      trace.type = type;
      trace.submitted_seconds = since_start(submitted);
    }
    const Clock::time_point probe_start =
        tracing ? Clock::now() : Clock::time_point{};
    // Each tenant probes (and later fills) its own cache partition, so one
    // tenant's churn can never evict another's results. Cache hits answer
    // before admission — they consume neither a queue slot nor a quota
    // token (quotas protect compute, and a hit costs none).
    std::shared_ptr<const EngineResult> hit =
        cache_.partition(tenant).find(key);
    if (tracing)
      trace.stage_seconds[stage_index(Stage::CacheProbe)] +=
          seconds_between(probe_start, Clock::now());
    if (hit) {
      EngineResult result = *hit;
      result.cache_hit = true;
      result.latency_seconds = seconds_between(submitted, Clock::now());
      adaptive_.observe(key, type, tenant, cache_);
      metrics_.record_response(type, tenant, result.outcome, true,
                               result.latency_seconds);
      if (tracing) {
        trace.outcome = result.outcome;
        trace.cache_hit = true;
        trace.total_seconds = result.latency_seconds;
        bus_.publish(stream::TraceEvent{std::move(trace)});
      }
      futures[i] = ready_future(std::move(result));
      continue;
    }
    candidates.push_back(
        Candidate{i, type, std::move(key), std::move(trace)});
  }

  // One admission decision for the whole batch: the lock is taken once and
  // slots are consumed in batch order, so a batch behaves exactly like the
  // equivalent loop of single submissions minus the per-request lock trips.
  // Traced requests all charge the same span to admission — the lock really
  // was taken once on their behalf.
  // Taken unconditionally (not only when tracing): token-bucket refill
  // needs a real admission timestamp.
  const Clock::time_point admission_start = Clock::now();
  // Per-candidate admission verdict. Quota checks run before the global
  // queue-depth check and a quota rejection consumes nothing — in
  // particular it can never take a queue slot away from another tenant.
  std::vector<Outcome> admitted(candidates.size(),
                                Outcome::RejectedQueueFull);
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const std::string& tenant = tenant_of(batch[candidates[c].index]);
      if (!admit_tenant(tenant, admission_start)) {
        admitted[c] = Outcome::RejectedTenantQuota;
        continue;
      }
      if (pending_ >= config_.max_queue_depth) {
        // The quota slot was consumed above; give it back — this request
        // never entered the queue.
        release_tenant(tenant);
        continue;
      }
      admitted[c] = Outcome::Ok;
      ++pending_;
      metrics_.record_admitted(pending_);
    }
  }
  const Clock::time_point dispatched = Clock::now();
  const double admission_seconds =
      tracing ? seconds_between(admission_start, dispatched) : 0.0;

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    Candidate& item = candidates[c];
    if (tracing)
      item.trace.stage_seconds[stage_index(Stage::Admission)] =
          admission_seconds;
    if (admitted[c] != Outcome::Ok) {
      const std::string& tenant = tenant_of(batch[item.index]);
      EngineResult result =
          admitted[c] == Outcome::RejectedTenantQuota
              ? rejected(item.type, Outcome::RejectedTenantQuota,
                         "tenant '" + (tenant.empty() ? "default" : tenant) +
                             "' admission quota exceeded")
              : rejected(item.type, Outcome::RejectedQueueFull,
                         "queue depth limit " +
                             std::to_string(config_.max_queue_depth) +
                             " reached");
      result.latency_seconds = seconds_between(submitted, Clock::now());
      metrics_.record_response(item.type, tenant, result.outcome, false,
                               result.latency_seconds);
      if (tracing) {
        item.trace.outcome = result.outcome;
        item.trace.total_seconds = result.latency_seconds;
        bus_.publish(stream::TraceEvent{std::move(item.trace)});
      }
      futures[item.index] = ready_future(std::move(result));
      continue;
    }
    futures[item.index] =
        dispatch(item.type, std::move(batch[item.index]), std::move(item.key),
                 submitted, dispatched, std::move(item.trace));
  }
  return futures;
}

std::future<EngineResult> Engine::dispatch(RequestType type, Request request,
                                           std::string key,
                                           Clock::time_point submitted,
                                           Clock::time_point dispatched,
                                           RequestTrace trace) {
  return pool_.submit_with_result(
      [this, type, request = std::move(request), key = std::move(key),
       submitted, dispatched, trace = std::move(trace)]() mutable {
        const bool traced = trace.id != 0;
        const std::string& tenant = tenant_of(request);
        ResultCache& cache = cache_.partition(tenant);
        const Clock::time_point picked_up = Clock::now();
        if (traced)
          trace.stage_seconds[stage_index(Stage::QueueWait)] =
              seconds_between(dispatched, picked_up);
        EngineResult result;
        const double queued = seconds_between(submitted, picked_up);
        const double deadline = deadline_of(request);
        if (deadline > 0 && queued > deadline) {
          result = rejected(type, Outcome::RejectedDeadline,
                            "deadline expired after queueing");
        } else {
          const Clock::time_point probe_start =
              traced ? Clock::now() : Clock::time_point{};
          std::shared_ptr<const EngineResult> hit = cache.find(key);
          if (traced)
            trace.stage_seconds[stage_index(Stage::CacheProbe)] +=
                seconds_between(probe_start, Clock::now());
          if (hit) {
            // Second cache checkpoint: an identical request submitted in the
            // same burst may have completed while this one waited in the
            // queue. Identical keys guarantee identical results, so serving
            // the cached payload is indistinguishable from recomputing.
            result = *hit;
            result.cache_hit = true;
          } else {
            RequestTrace* trace_ptr = traced ? &trace : nullptr;
            const Clock::time_point compute_start =
                traced ? Clock::now() : Clock::time_point{};
            result = std::visit(
                [this, trace_ptr](const auto& typed) {
                  return execute(typed, trace_ptr);
                },
                request);
            if (traced) {
              // Compute is the library call net of the registry lookup,
              // which execute() charged to SnapshotResolve.
              trace.stage_seconds[stage_index(Stage::Compute)] =
                  seconds_between(compute_start, Clock::now()) -
                  trace.stage_seconds[stage_index(Stage::SnapshotResolve)];
            }
          }
        }
        result.latency_seconds = seconds_between(submitted, Clock::now());
        if (result.ok() && !result.cache_hit) {
          const Clock::time_point insert_start =
              traced ? Clock::now() : Clock::time_point{};
          cache.insert(key, std::make_shared<const EngineResult>(result));
          if (traced)
            trace.stage_seconds[stage_index(Stage::CacheInsert)] =
                seconds_between(insert_start, Clock::now());
        }
        const Clock::time_point delivery_start =
            traced ? Clock::now() : Clock::time_point{};
        if (result.ok()) adaptive_.observe(key, type, tenant, cache_);
        metrics_.record_response(type, tenant, result.outcome,
                                 result.cache_hit, result.latency_seconds);
        {
          std::unique_lock<std::mutex> lock(admission_mutex_);
          --pending_;
          release_tenant(tenant);
        }
        if (traced) {
          trace.outcome = result.outcome;
          trace.cache_hit = result.cache_hit;
          trace.total_seconds = result.latency_seconds;
          trace.stage_seconds[stage_index(Stage::FutureDelivery)] =
              seconds_between(delivery_start, Clock::now());
          bus_.publish(stream::TraceEvent{std::move(trace)});
        }
        return result;
      });
}

std::future<EngineResult> Engine::submit(Request request) {
  std::vector<Request> batch;
  batch.push_back(std::move(request));
  std::vector<std::future<EngineResult>> futures = submit(std::move(batch));
  return std::move(futures.front());
}

std::future<EngineResult> Engine::submit(PlaceRequest request) {
  return submit(Request{std::move(request)});
}

std::future<EngineResult> Engine::submit(EvaluateRequest request) {
  return submit(Request{std::move(request)});
}

std::future<EngineResult> Engine::submit(LocalizeRequest request) {
  return submit(Request{std::move(request)});
}

std::future<EngineResult> Engine::submit(MutateRequest request) {
  return submit(Request{std::move(request)});
}

std::future<EngineResult> Engine::submit(PortfolioRequest request) {
  return submit(Request{std::move(request)});
}

std::shared_ptr<const TopologySnapshot> Engine::resolve(
    std::uint64_t hash, EngineResult& result, RequestTrace* trace) const {
  const Clock::time_point start =
      trace ? Clock::now() : Clock::time_point{};
  std::shared_ptr<const TopologySnapshot> snapshot = registry_->find(hash);
  if (trace)
    trace->stage_seconds[stage_index(Stage::SnapshotResolve)] +=
        seconds_between(start, Clock::now());
  if (!snapshot) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "unknown snapshot hash";
  }
  return snapshot;
}

EngineResult Engine::execute(const PlaceRequest& request,
                             RequestTrace* trace) const {
  EngineResult result;
  result.type = RequestType::Place;
  const auto snapshot = resolve(request.snapshot, result, trace);
  if (!snapshot) return result;
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  const ProblemInstance& instance = snapshot->instance();
  try {
    PlacementOptions options;
    options.threads = std::max<std::size_t>(1, request.threads);
    if (trace != nullptr)
      options.profile_round = [trace](const GreedyRoundProfile& profile) {
        trace->greedy_rounds.push_back(profile);
      };
    if (!request.algorithm_name.empty()) {
      // Registry path: any strategy from placement/algorithm.hpp, scored
      // under the request's objective. An unknown name throws InvalidInput
      // (listing every registered name), caught below as a bad request.
      AlgorithmSpec spec;
      spec.objective = request.objective;
      spec.k = request.k;
      spec.seed = request.seed;
      spec.options = options;
      const AlgorithmResult run =
          make_algorithm(request.algorithm_name)->execute(instance, spec);
      result.place.placement = run.placement;
      result.place.objective_value = run.reported_value;
      result.place.metrics = evaluate_paths(
          instance.paths_for_placement(result.place.placement), request.k);
      return result;
    }
    switch (request.algorithm) {
      case Algorithm::QoS:
        result.place.placement = best_qos_placement(instance);
        break;
      case Algorithm::RD: {
        Rng rng(request.seed);
        result.place.placement = random_placement(instance, rng);
        break;
      }
      case Algorithm::GC:
      case Algorithm::GI:
      case Algorithm::GD: {
        const ObjectiveKind kind =
            request.algorithm == Algorithm::GC
                ? ObjectiveKind::Coverage
                : request.algorithm == Algorithm::GI
                      ? ObjectiveKind::Identifiability
                      : ObjectiveKind::Distinguishability;
        GreedyResult greedy =
            greedy_placement(instance, kind, request.k, options);
        result.place.placement = std::move(greedy.placement);
        result.place.objective_value = greedy.objective_value;
        break;
      }
      case Algorithm::BF: {
        const auto bf = brute_force_k1(instance);
        if (!bf) {
          result.outcome = Outcome::RejectedBadRequest;
          result.message = "BF search space exceeds the budget";
          return result;
        }
        result.place.placement = bf->distinguishability.placement;
        result.place.objective_value =
            static_cast<double>(bf->distinguishability.value);
        break;
      }
    }
    result.place.metrics = evaluate_paths(
        instance.paths_for_placement(result.place.placement), request.k);
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const EvaluateRequest& request,
                             RequestTrace* trace) const {
  EngineResult result;
  result.type = RequestType::Evaluate;
  const auto snapshot = resolve(request.snapshot, result, trace);
  if (!snapshot) return result;
  const ProblemInstance& instance = snapshot->instance();
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  if (request.placement.size() != instance.service_count()) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "placement size does not match service count";
    return result;
  }
  try {
    result.metrics = evaluate_paths(
        instance.paths_for_placement(request.placement), request.k);
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const LocalizeRequest& request,
                             RequestTrace* trace) const {
  EngineResult result;
  result.type = RequestType::Localize;
  const auto snapshot = resolve(request.snapshot, result, trace);
  if (!snapshot) return result;
  const ProblemInstance& instance = snapshot->instance();
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  if (request.placement.size() != instance.service_count()) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "placement size does not match service count";
    return result;
  }
  try {
    const PathSet paths = instance.paths_for_placement(request.placement);
    DynamicBitset failed(paths.size());
    for (std::uint32_t index : request.failed_paths) {
      if (index >= paths.size()) {
        result.outcome = Outcome::RejectedBadRequest;
        result.message = "failed path index out of range";
        return result;
      }
      failed.set(index);
    }
    const LocalizationResult localization = localize(paths, failed, request.k);
    result.localization.suspects = bitset_nodes(localization.suspects);
    result.localization.exonerated = bitset_nodes(localization.exonerated);
    result.localization.consistent_sets = localization.consistent_sets;
    result.localization.minimal_explanation =
        localization.minimal_explanation;
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const MutateRequest& request,
                             RequestTrace* trace) const {
  EngineResult result;
  result.type = RequestType::Mutate;
  // Derivation looks up the parent and builds the child in one registry
  // call, so the whole span is compute; SnapshotResolve stays 0.
  (void)trace;
  try {
    const SnapshotRegistry::DeriveOutcome outcome =
        registry_->derive(request.snapshot, request.delta);
    const TopologySnapshot& child = *outcome.snapshot;
    result.mutate.derived_snapshot = child.hash();
    result.mutate.deduplicated = outcome.existed;
    if (child.is_derived()) {
      const DeriveStats& stats = child.derive_stats();
      result.mutate.trees_reused = stats.trees_reused;
      result.mutate.trees_recomputed = stats.trees_total - stats.trees_reused;
      result.mutate.services_reused = stats.services_reused;
      result.mutate.services_recomputed =
          stats.services_total - stats.services_reused;
      result.mutate.path_sets_reused = stats.path_sets_reused;
      result.mutate.path_sets_rebuilt = stats.path_sets_rebuilt;
    }
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

EngineResult Engine::execute(const PortfolioRequest& request,
                             RequestTrace* trace) {
  EngineResult result;
  result.type = RequestType::Portfolio;
  const auto snapshot = resolve(request.snapshot, result, trace);
  if (!snapshot) return result;
  if (request.k < 1) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = "k must be >= 1";
    return result;
  }
  const ProblemInstance& instance = snapshot->instance();
  try {
    portfolio::PortfolioSpec spec;
    spec.algorithms = request.algorithms;
    spec.objective = request.objective;
    spec.k = request.k;
    spec.seed = request.seed;
    spec.options.threads = std::max<std::size_t>(1, request.threads);
    spec.certificate_k = request.k;
    // No external pool: this already runs on an engine worker, and waiting
    // on sibling tasks of the same pool from inside a worker deadlocks.
    // Sequential execution is also what keeps entry order == spec order.
    const portfolio::PortfolioReport report =
        portfolio::run_portfolio(instance, spec, nullptr);
    for (const portfolio::PortfolioEntry& entry : report.entries) {
      PortfolioEntryResult out;
      out.algorithm = entry.algorithm;
      out.error = entry.error;
      out.placement = entry.placement;
      out.objective_value = entry.objective_value;
      out.reported_value = entry.reported_value;
      out.evaluations = entry.evaluations;
      if (entry.certificate)
        out.max_identifiable_failures =
            entry.certificate->max_identifiable_failures;
      result.portfolio.entries.push_back(std::move(out));
    }
    const portfolio::PortfolioEntry& best = report.best();
    result.portfolio.winner = best.algorithm;
    result.portfolio.placement = best.placement;
    result.portfolio.objective_value = best.objective_value;
    result.portfolio.max_identifiable_failures =
        result.portfolio.entries[report.winner].max_identifiable_failures;
    result.portfolio.metrics = evaluate_paths(
        instance.paths_for_placement(best.placement), request.k);
    stream::PortfolioEvent event;
    event.header.snapshot = request.snapshot;
    event.winner = result.portfolio.winner;
    event.algorithms = result.portfolio.entries.size();
    event.objective_value = result.portfolio.objective_value;
    event.max_identifiable_failures =
        result.portfolio.max_identifiable_failures;
    bus_.publish(std::move(event));
  } catch (const std::exception& error) {
    result.outcome = Outcome::RejectedBadRequest;
    result.message = error.what();
  }
  return result;
}

TraceStats Engine::trace_stats() const {
  TraceStats stats;
  stats.enabled = config_.tracing;
  if (trace_tail_ != nullptr) {
    const stream::SubscriptionStats tail = trace_tail_->stats();
    stats.recorded = tail.buffered;
    stats.drained = tail.drained;
    stats.dropped = tail.dropped;
    stats.capacity = tail.capacity;
  }
  return stats;
}

std::vector<RequestTrace> Engine::drain_traces() {
  if (trace_tail_ == nullptr) return {};
  std::vector<RequestTrace> traces;
  for (const auto& event : trace_tail_->poll()) {
    traces.push_back(std::get<stream::TraceEvent>(*event).trace);
  }
  // Worker threads publish completion-ordered; restore trace-id order.
  std::sort(traces.begin(), traces.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.id < b.id;
            });
  return traces;
}

std::unique_ptr<stream::ObservationIngest> Engine::open_ingest(
    std::uint64_t snapshot, Placement placement, std::size_t k) {
  std::shared_ptr<const TopologySnapshot> found = registry_->find(snapshot);
  if (!found) throw InvalidInput("unknown snapshot hash");
  auto ingest = std::make_unique<stream::ObservationIngest>(
      next_stream_id_.fetch_add(1) + 1, std::move(found), std::move(placement),
      k, &bus_, &stream_metrics_);
  stream_metrics_.record_stream_opened();
  return ingest;
}

stream::StreamStats Engine::stream_stats() const {
  return stream_metrics_.snapshot();
}

std::string Engine::metrics_text() const {
  return stream::metrics_text(metrics(), stream_metrics_.snapshot(),
                              bus_.stats());
}

EngineMetricsSnapshot Engine::metrics() const {
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    depth = pending_;
  }
  const double elapsed = since_start(Clock::now());
  // Per-tenant cache sections only once the cache is actually partitioned
  // (a second tenant appeared); a single-tenant engine exports the classic
  // undivided cache block.
  std::vector<std::pair<std::string, CacheStats>> tenant_caches;
  if (cache_.partition_count() > 1) tenant_caches = cache_.partition_stats();
  return metrics_.snapshot(depth, elapsed, cache_.stats(),
                           std::move(tenant_caches), adaptive_.stats(),
                           trace_stats());
}

}  // namespace splace::engine
