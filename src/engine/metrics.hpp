// Operational metrics for the serving engine: per-request-type latency
// histograms (log2-microsecond buckets over util/stats' Histogram), queue
// depth high-water mark, admission/rejection counters, cache statistics,
// and throughput — exportable as JSON for dashboards and the bench harness.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/adaptive.hpp"
#include "engine/cache.hpp"
#include "engine/request.hpp"
#include "engine/trace.hpp"
#include "util/stats.hpp"

namespace splace::engine {

/// Latency accumulator: count / total / extremes plus a histogram over
/// ceil(log2(microseconds)) buckets (bucket b covers (2^(b-1), 2^b] µs), so
/// tail behavior is visible without storing samples.
struct LatencyStats {
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  Histogram log2_us;

  void record(double seconds);
  /// Folds another accumulator in (shard aggregation): counts and totals
  /// add, extremes widen, histograms sum bucket-wise.
  void merge(const LatencyStats& other);
  double mean_seconds() const {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
  }
};

/// Per-tenant request counters (admission view; cache partition stats are
/// tracked by TenantCacheMap). Keyed by the raw tenant id — the empty
/// default tenant renders as "default" in exports.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected_quota = 0;  ///< RejectedTenantQuota responses
};

/// Point-in-time copy of every engine counter.
struct EngineMetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< Ok responses (cache hits included)
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_tenant_quota = 0;
  std::size_t queue_depth = 0;       ///< in-flight right now
  std::size_t queue_high_water = 0;  ///< max in-flight ever observed
  double elapsed_seconds = 0;        ///< since engine construction
  CacheStats cache;
  /// Per-tenant admission counters, sorted by tenant id ("" = default).
  std::vector<std::pair<std::string, TenantCounters>> tenants;
  /// Per-tenant cache partition stats (empty when the engine serves one
  /// undivided cache, i.e. no tenant ever appeared).
  std::vector<std::pair<std::string, CacheStats>> tenant_caches;
  AdaptiveCacheStats adaptive;       ///< adaptive-capacity controller state
  TraceStats tracing;                ///< trace-recorder state
  LatencyStats place;
  LatencyStats evaluate;
  LatencyStats localize;
  LatencyStats mutate;
  LatencyStats portfolio;

  std::uint64_t rejected_total() const {
    return rejected_queue_full + rejected_deadline + rejected_bad_request +
           rejected_tenant_quota;
  }
  /// Ok responses per second of engine lifetime.
  double throughput() const {
    return elapsed_seconds <= 0
               ? 0.0
               : static_cast<double>(completed) / elapsed_seconds;
  }
};

/// Deterministic-key-order JSON rendering of a snapshot.
std::string to_json(const EngineMetricsSnapshot& snapshot);

/// Group-level aggregation across engine shards: counters, caches, and
/// per-tenant entries sum; latency accumulators merge; elapsed takes the
/// max (shards share one wall clock); queue_high_water sums, making it an
/// upper bound on simultaneous group-wide in-flight. Adaptive/tracing
/// scalars sum and resize events concatenate in shard order.
EngineMetricsSnapshot merge_snapshots(
    const std::vector<EngineMetricsSnapshot>& shards);

/// Mutable, internally synchronized metrics sink used by the engine.
class EngineMetrics {
 public:
  void record_submitted(const std::string& tenant);
  /// Tracks admission: depth after admit, updating the high-water mark.
  void record_admitted(std::size_t depth_now);
  void record_response(RequestType type, const std::string& tenant,
                       Outcome outcome, bool cache_hit,
                       double latency_seconds);

  /// Copies every counter; `queue_depth`, `elapsed_seconds`, and the cache /
  /// adaptive / tracing sections are supplied by the engine (it owns the
  /// pending counter, the start clock, and those subsystems).
  EngineMetricsSnapshot snapshot(
      std::size_t queue_depth, double elapsed_seconds,
      const CacheStats& cache,
      std::vector<std::pair<std::string, CacheStats>> tenant_caches,
      AdaptiveCacheStats adaptive, const TraceStats& tracing) const;

 private:
  mutable std::mutex mutex_;
  EngineMetricsSnapshot counters_;
  /// Ordered so snapshots list tenants deterministically.
  std::map<std::string, TenantCounters> tenants_;
};

}  // namespace splace::engine
