#include "engine/trace.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace splace::engine {

std::string to_string(Stage stage) {
  switch (stage) {
    case Stage::Admission: return "admission";
    case Stage::QueueWait: return "queue_wait";
    case Stage::SnapshotResolve: return "snapshot_resolve";
    case Stage::CacheProbe: return "cache_probe";
    case Stage::Compute: return "compute";
    case Stage::CacheInsert: return "cache_insert";
    case Stage::FutureDelivery: return "future_delivery";
  }
  throw ContractViolation("unknown stage");
}

TraceRecorder::TraceRecorder(bool enabled, std::size_t capacity)
    : enabled_(enabled) {
  if (!enabled_) return;
  SPLACE_EXPECTS(capacity >= 1);
  shard_capacity_ = (capacity + kShards - 1) / kShards;
  for (Shard& shard : shards_) shard.traces.reserve(shard_capacity_);
}

void TraceRecorder::record(RequestTrace trace) {
  SPLACE_EXPECTS(enabled_);
  const std::size_t shard_id =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  Shard& shard = shards_[shard_id];
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (shard.traces.size() >= shard_capacity_) {
    dropped_.fetch_add(1);
    return;
  }
  shard.traces.push_back(std::move(trace));
}

std::vector<RequestTrace> TraceRecorder::drain() {
  std::vector<RequestTrace> all;
  if (!enabled_) return all;
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (RequestTrace& trace : shard.traces) all.push_back(std::move(trace));
    shard.traces.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.id < b.id;
            });
  drained_.fetch_add(all.size());
  return all;
}

TraceStats TraceRecorder::stats() const {
  TraceStats stats;
  stats.enabled = enabled_;
  stats.dropped = dropped_.load();
  stats.drained = drained_.load();
  stats.capacity = enabled_ ? shard_capacity_ * kShards : 0;
  if (enabled_) {
    for (const Shard& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard.mutex);
      stats.recorded += shard.traces.size();
    }
  }
  return stats;
}

std::string to_json(const RequestTrace& trace) {
  std::ostringstream os;
  os << "{\"id\": " << trace.id << ", \"type\": \"" << to_string(trace.type)
     << "\", \"outcome\": \"" << to_string(trace.outcome)
     << "\", \"cache_hit\": " << (trace.cache_hit ? "true" : "false")
     << ", \"submitted_seconds\": " << trace.submitted_seconds
     << ", \"total_seconds\": " << trace.total_seconds << ", \"stages\": {";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (s > 0) os << ", ";
    os << "\"" << to_string(static_cast<Stage>(s))
       << "\": " << trace.stage_seconds[s];
  }
  os << "}";
  if (!trace.greedy_rounds.empty()) {
    os << ", \"greedy_rounds\": [";
    for (std::size_t r = 0; r < trace.greedy_rounds.size(); ++r) {
      const GreedyRoundProfile& round = trace.greedy_rounds[r];
      if (r > 0) os << ", ";
      os << "{\"round\": " << round.round
         << ", \"candidates\": " << round.candidates
         << ", \"evaluations\": " << round.evaluations
         << ", \"seconds\": " << round.seconds
         << ", \"service\": " << round.service
         << ", \"host\": " << round.host << ", \"gain\": " << round.gain
         << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string to_json(const std::vector<RequestTrace>& traces) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) os << ", ";
    os << to_json(traces[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace splace::engine
