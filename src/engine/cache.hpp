// Thread-safe LRU cache of engine results keyed by canonical request keys.
//
// Because every cacheable operation is deterministic (the engine's contract
// with the library), a cached response is exactly what re-executing the
// request would produce — caching changes latency, never results. Keys are
// compared in full (no hash-collision exposure); values are shared_ptr so a
// hit costs one refcount, not a payload copy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/request.hpp"

namespace splace::engine {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Evictions split by the evicted result's request type (index by
  /// static_cast<std::size_t>(RequestType)) — the signal the adaptive-
  /// capacity policy needs to see *which* traffic the cache is shedding.
  std::array<std::uint64_t, kRequestTypeCount> evictions_by_type{};
  /// Approximate bytes released by evictions (key + estimate_bytes of the
  /// payload).
  std::uint64_t evicted_bytes_estimate = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Rough heap footprint of one cached result: the struct itself plus its
/// dynamically sized payloads. An estimate for telemetry, not an allocator
/// audit.
std::size_t estimate_bytes(const EngineResult& result);

class ResultCache {
 public:
  /// Capacity 0 disables the cache: find() always misses, insert() drops.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_.load(std::memory_order_relaxed) > 0; }

  /// Looks a key up, counting a hit (and promoting the entry to
  /// most-recently-used) or a miss. Returns nullptr on miss.
  std::shared_ptr<const EngineResult> find(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity.
  void insert(const std::string& key,
              std::shared_ptr<const EngineResult> value);

  /// Resizes the cache at runtime (the adaptive-capacity policy's lever).
  /// Shrinking evicts least-recently-used entries down to the new capacity,
  /// counted like any other eviction. Results already handed out by find()
  /// stay valid regardless — values are shared_ptr, so eviction drops the
  /// cache's reference, never a requester's.
  void set_capacity(std::size_t capacity);

  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  CacheStats stats() const;

  void clear();

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const EngineResult>>;

  /// Pops the LRU entry, charging stats_. Caller holds mutex_.
  void evict_back();

  mutable std::mutex mutex_;
  /// Atomic so enabled()/capacity() stay lock-free while set_capacity()
  /// runs; all writes happen under mutex_.
  std::atomic<std::size_t> capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

/// Per-tenant result-cache partitions sharing one total capacity budget.
///
/// Each tenant gets its own ResultCache, so a churning tenant can only evict
/// its own entries — the isolation contract of the sharded serving tier. The
/// default tenant (empty string) owns the whole budget until a second tenant
/// appears, which keeps single-tenant behavior byte-identical to a plain
/// ResultCache. When partitions exist, every one keeps capacity >= 1
/// (whenever the budget is non-zero), so no split can zero out a quiet
/// tenant. Splits are re-computed on partition creation (equal shares) and
/// by set_split() (proportional shares from the adaptive working-set
/// signal).
class TenantCacheMap {
 public:
  /// Capacity 0 disables every partition.
  explicit TenantCacheMap(std::size_t total_capacity);

  bool enabled() const {
    return total_capacity_.load(std::memory_order_relaxed) > 0;
  }

  std::size_t total_capacity() const {
    return total_capacity_.load(std::memory_order_relaxed);
  }

  /// The partition serving `tenant`, created on first use (which re-splits
  /// the budget equally across all partitions). The reference stays valid
  /// for the map's lifetime — partitions are never destroyed.
  ResultCache& partition(const std::string& tenant);

  /// Re-splits the budget `total` proportionally to `weights` (tenant ->
  /// weight, e.g. per-tenant working-set estimates). Partitions missing
  /// from `weights` and zero-weight partitions keep a floor of 1 entry.
  /// Unknown tenants in `weights` are ignored (no partition is created).
  void set_split(
      const std::vector<std::pair<std::string, std::size_t>>& weights,
      std::size_t total);

  /// Aggregate stats across all partitions (sizes/capacities summed).
  CacheStats stats() const;

  /// Per-partition stats, sorted by tenant name (empty tenant first).
  std::vector<std::pair<std::string, CacheStats>> partition_stats() const;

  std::size_t partition_count() const;

  void clear();

 private:
  /// Re-splits total_capacity_ across existing partitions. Caller holds
  /// mutex_. Equal shares when `weights` is null, else proportional with a
  /// floor of 1.
  void resplit_locked(
      const std::vector<std::pair<std::string, std::size_t>>* weights);

  mutable std::mutex mutex_;
  std::atomic<std::size_t> total_capacity_;
  /// tenant -> partition. unique_ptr keeps partition addresses stable
  /// across rehashes, so partition() references never dangle.
  std::unordered_map<std::string, std::unique_ptr<ResultCache>> partitions_;
};

}  // namespace splace::engine
