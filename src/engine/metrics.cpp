#include "engine/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace splace::engine {

void LatencyStats::record(double seconds) {
  SPLACE_EXPECTS(seconds >= 0);
  if (count == 0) {
    min_seconds = seconds;
    max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  ++count;
  total_seconds += seconds;
  log2_us.add(log2_us_bucket(seconds));
}

void LatencyStats::merge(const LatencyStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_seconds = other.min_seconds;
    max_seconds = other.max_seconds;
  } else {
    min_seconds = std::min(min_seconds, other.min_seconds);
    max_seconds = std::max(max_seconds, other.max_seconds);
  }
  count += other.count;
  total_seconds += other.total_seconds;
  for (const auto& [bucket, n] : other.log2_us.counts())
    log2_us.add(bucket, n);
}

namespace {

/// Minimal JSON string escaping for tenant ids (quote, backslash, control
/// characters).
std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// Empty tenant id = the default tenant; exports name it explicitly.
std::string tenant_label(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

void append_latency(std::ostringstream& os, const std::string& name,
                    const LatencyStats& stats) {
  os << "\"" << name << "\": {\"count\": " << stats.count
     << ", \"mean_seconds\": " << stats.mean_seconds()
     << ", \"min_seconds\": " << stats.min_seconds
     << ", \"max_seconds\": " << stats.max_seconds << ", \"log2_us\": {";
  bool first = true;
  for (const auto& [bucket, count] : stats.log2_us.counts()) {
    if (!first) os << ", ";
    os << "\"" << bucket << "\": " << count;
    first = false;
  }
  os << "}}";
}

}  // namespace

std::string to_json(const EngineMetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"submitted\": " << snapshot.submitted
     << ", \"completed\": " << snapshot.completed
     << ", \"cache_hits\": " << snapshot.cache_hits
     << ", \"rejected\": {\"queue_full\": " << snapshot.rejected_queue_full
     << ", \"deadline\": " << snapshot.rejected_deadline
     << ", \"bad_request\": " << snapshot.rejected_bad_request
     << ", \"tenant_quota\": " << snapshot.rejected_tenant_quota
     << ", \"total\": " << snapshot.rejected_total() << "}"
     << ", \"queue_depth\": " << snapshot.queue_depth
     << ", \"queue_high_water\": " << snapshot.queue_high_water
     << ", \"elapsed_seconds\": " << snapshot.elapsed_seconds
     << ", \"throughput_rps\": " << snapshot.throughput()
     << ", \"cache\": {\"hits\": " << snapshot.cache.hits
     << ", \"misses\": " << snapshot.cache.misses
     << ", \"evictions\": " << snapshot.cache.evictions
     << ", \"evictions_by_type\": {";
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    if (t > 0) os << ", ";
    os << "\"" << to_string(static_cast<RequestType>(t))
       << "\": " << snapshot.cache.evictions_by_type[t];
  }
  os << "}, \"evicted_bytes_estimate\": "
     << snapshot.cache.evicted_bytes_estimate
     << ", \"size\": " << snapshot.cache.size
     << ", \"capacity\": " << snapshot.cache.capacity
     << ", \"hit_rate\": " << snapshot.cache.hit_rate() << "}"
     << ", \"tenants\": {";
  for (std::size_t i = 0; i < snapshot.tenants.size(); ++i) {
    const auto& [tenant, counters] = snapshot.tenants[i];
    if (i > 0) os << ", ";
    os << "\"" << json_escape(tenant_label(tenant))
       << "\": {\"submitted\": " << counters.submitted
       << ", \"completed\": " << counters.completed
       << ", \"cache_hits\": " << counters.cache_hits
       << ", \"rejected_quota\": " << counters.rejected_quota;
    // The matching cache partition, when the cache is tenant-partitioned.
    for (const auto& [name, cache] : snapshot.tenant_caches) {
      if (name != tenant) continue;
      os << ", \"cache\": {\"hits\": " << cache.hits
         << ", \"misses\": " << cache.misses
         << ", \"evictions\": " << cache.evictions
         << ", \"size\": " << cache.size
         << ", \"capacity\": " << cache.capacity
         << ", \"hit_rate\": " << cache.hit_rate() << "}";
      break;
    }
    os << "}";
  }
  os << "}"
     << ", \"adaptive_cache\": {\"enabled\": "
     << (snapshot.adaptive.enabled ? "true" : "false")
     << ", \"window\": " << snapshot.adaptive.window
     << ", \"observed\": " << snapshot.adaptive.observed
     << ", \"working_set\": " << snapshot.adaptive.working_set
     << ", \"working_set_by_type\": {";
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    if (t > 0) os << ", ";
    os << "\"" << to_string(static_cast<RequestType>(t))
       << "\": " << snapshot.adaptive.working_set_by_type[t];
  }
  os << "}, \"min_capacity\": " << snapshot.adaptive.min_capacity
     << ", \"max_capacity\": " << snapshot.adaptive.max_capacity
     << ", \"final_capacity\": " << snapshot.cache.capacity
     << ", \"resize_events\": [";
  for (std::size_t r = 0; r < snapshot.adaptive.resizes.size(); ++r) {
    const ResizeEvent& event = snapshot.adaptive.resizes[r];
    if (r > 0) os << ", ";
    os << "{\"at_observation\": " << event.at_observation
       << ", \"from\": " << event.old_capacity
       << ", \"to\": " << event.new_capacity
       << ", \"working_set\": " << event.working_set << "}";
  }
  os << "]}"
     << ", \"tracing\": {\"enabled\": "
     << (snapshot.tracing.enabled ? "true" : "false")
     << ", \"recorded\": " << snapshot.tracing.recorded
     << ", \"drained\": " << snapshot.tracing.drained
     << ", \"dropped\": " << snapshot.tracing.dropped
     << ", \"capacity\": " << snapshot.tracing.capacity << "}"
     << ", \"latency\": {";
  append_latency(os, "place", snapshot.place);
  os << ", ";
  append_latency(os, "evaluate", snapshot.evaluate);
  os << ", ";
  append_latency(os, "localize", snapshot.localize);
  os << ", ";
  append_latency(os, "mutate", snapshot.mutate);
  os << ", ";
  append_latency(os, "portfolio", snapshot.portfolio);
  os << "}}";
  return os.str();
}

EngineMetricsSnapshot merge_snapshots(
    const std::vector<EngineMetricsSnapshot>& shards) {
  EngineMetricsSnapshot total;
  std::map<std::string, TenantCounters> tenants;
  std::map<std::string, CacheStats> tenant_caches;
  for (const EngineMetricsSnapshot& s : shards) {
    total.submitted += s.submitted;
    total.completed += s.completed;
    total.cache_hits += s.cache_hits;
    total.rejected_queue_full += s.rejected_queue_full;
    total.rejected_deadline += s.rejected_deadline;
    total.rejected_bad_request += s.rejected_bad_request;
    total.rejected_tenant_quota += s.rejected_tenant_quota;
    total.queue_depth += s.queue_depth;
    total.queue_high_water += s.queue_high_water;
    total.elapsed_seconds = std::max(total.elapsed_seconds, s.elapsed_seconds);
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.evictions += s.cache.evictions;
    for (std::size_t t = 0; t < kRequestTypeCount; ++t)
      total.cache.evictions_by_type[t] += s.cache.evictions_by_type[t];
    total.cache.evicted_bytes_estimate += s.cache.evicted_bytes_estimate;
    total.cache.size += s.cache.size;
    total.cache.capacity += s.cache.capacity;
    for (const auto& [tenant, counters] : s.tenants) {
      TenantCounters& into = tenants[tenant];
      into.submitted += counters.submitted;
      into.completed += counters.completed;
      into.cache_hits += counters.cache_hits;
      into.rejected_quota += counters.rejected_quota;
    }
    for (const auto& [tenant, cache] : s.tenant_caches) {
      CacheStats& into = tenant_caches[tenant];
      into.hits += cache.hits;
      into.misses += cache.misses;
      into.evictions += cache.evictions;
      into.size += cache.size;
      into.capacity += cache.capacity;
    }
    total.adaptive.enabled = total.adaptive.enabled || s.adaptive.enabled;
    total.adaptive.window = std::max(total.adaptive.window, s.adaptive.window);
    total.adaptive.observed += s.adaptive.observed;
    total.adaptive.working_set += s.adaptive.working_set;
    total.adaptive.min_capacity += s.adaptive.min_capacity;
    total.adaptive.max_capacity += s.adaptive.max_capacity;
    for (std::size_t t = 0; t < kRequestTypeCount; ++t)
      total.adaptive.working_set_by_type[t] +=
          s.adaptive.working_set_by_type[t];
    total.adaptive.resizes.insert(total.adaptive.resizes.end(),
                                  s.adaptive.resizes.begin(),
                                  s.adaptive.resizes.end());
    total.tracing.enabled = total.tracing.enabled || s.tracing.enabled;
    total.tracing.recorded += s.tracing.recorded;
    total.tracing.drained += s.tracing.drained;
    total.tracing.dropped += s.tracing.dropped;
    total.tracing.capacity += s.tracing.capacity;
    total.place.merge(s.place);
    total.evaluate.merge(s.evaluate);
    total.localize.merge(s.localize);
    total.mutate.merge(s.mutate);
    total.portfolio.merge(s.portfolio);
  }
  total.tenants.assign(tenants.begin(), tenants.end());
  total.tenant_caches.assign(tenant_caches.begin(), tenant_caches.end());
  return total;
}

void EngineMetrics::record_submitted(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.submitted;
  ++tenants_[tenant].submitted;
}

void EngineMetrics::record_admitted(std::size_t depth_now) {
  std::unique_lock<std::mutex> lock(mutex_);
  counters_.queue_high_water =
      std::max(counters_.queue_high_water, depth_now);
}

void EngineMetrics::record_response(RequestType type,
                                    const std::string& tenant, Outcome outcome,
                                    bool cache_hit, double latency_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  TenantCounters& by_tenant = tenants_[tenant];
  switch (outcome) {
    case Outcome::Ok:
      ++counters_.completed;
      ++by_tenant.completed;
      break;
    case Outcome::RejectedQueueFull:
      ++counters_.rejected_queue_full;
      break;
    case Outcome::RejectedDeadline:
      ++counters_.rejected_deadline;
      break;
    case Outcome::RejectedBadRequest:
      ++counters_.rejected_bad_request;
      break;
    case Outcome::RejectedTenantQuota:
      ++counters_.rejected_tenant_quota;
      ++by_tenant.rejected_quota;
      break;
  }
  if (cache_hit) {
    ++counters_.cache_hits;
    ++by_tenant.cache_hits;
  }
  if (outcome != Outcome::Ok) return;
  switch (type) {
    case RequestType::Place:
      counters_.place.record(latency_seconds);
      break;
    case RequestType::Evaluate:
      counters_.evaluate.record(latency_seconds);
      break;
    case RequestType::Localize:
      counters_.localize.record(latency_seconds);
      break;
    case RequestType::Mutate:
      counters_.mutate.record(latency_seconds);
      break;
    case RequestType::Portfolio:
      counters_.portfolio.record(latency_seconds);
      break;
  }
}

EngineMetricsSnapshot EngineMetrics::snapshot(
    std::size_t queue_depth, double elapsed_seconds, const CacheStats& cache,
    std::vector<std::pair<std::string, CacheStats>> tenant_caches,
    AdaptiveCacheStats adaptive, const TraceStats& tracing) const {
  std::unique_lock<std::mutex> lock(mutex_);
  EngineMetricsSnapshot copy = counters_;
  copy.queue_depth = queue_depth;
  copy.elapsed_seconds = elapsed_seconds;
  copy.cache = cache;
  copy.tenants.assign(tenants_.begin(), tenants_.end());
  copy.tenant_caches = std::move(tenant_caches);
  copy.adaptive = std::move(adaptive);
  copy.tracing = tracing;
  return copy;
}

}  // namespace splace::engine
