#include "engine/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace splace::engine {

void LatencyStats::record(double seconds) {
  SPLACE_EXPECTS(seconds >= 0);
  if (count == 0) {
    min_seconds = seconds;
    max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  ++count;
  total_seconds += seconds;
  const double micros = seconds * 1e6;
  const std::size_t bucket =
      micros <= 1.0 ? 0
                    : static_cast<std::size_t>(std::ceil(std::log2(micros)));
  log2_us.add(bucket);
}

namespace {

void append_latency(std::ostringstream& os, const std::string& name,
                    const LatencyStats& stats) {
  os << "\"" << name << "\": {\"count\": " << stats.count
     << ", \"mean_seconds\": " << stats.mean_seconds()
     << ", \"min_seconds\": " << stats.min_seconds
     << ", \"max_seconds\": " << stats.max_seconds << ", \"log2_us\": {";
  bool first = true;
  for (const auto& [bucket, count] : stats.log2_us.counts()) {
    if (!first) os << ", ";
    os << "\"" << bucket << "\": " << count;
    first = false;
  }
  os << "}}";
}

}  // namespace

std::string to_json(const EngineMetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"submitted\": " << snapshot.submitted
     << ", \"completed\": " << snapshot.completed
     << ", \"cache_hits\": " << snapshot.cache_hits
     << ", \"rejected\": {\"queue_full\": " << snapshot.rejected_queue_full
     << ", \"deadline\": " << snapshot.rejected_deadline
     << ", \"bad_request\": " << snapshot.rejected_bad_request
     << ", \"total\": " << snapshot.rejected_total() << "}"
     << ", \"queue_depth\": " << snapshot.queue_depth
     << ", \"queue_high_water\": " << snapshot.queue_high_water
     << ", \"elapsed_seconds\": " << snapshot.elapsed_seconds
     << ", \"throughput_rps\": " << snapshot.throughput()
     << ", \"cache\": {\"hits\": " << snapshot.cache.hits
     << ", \"misses\": " << snapshot.cache.misses
     << ", \"evictions\": " << snapshot.cache.evictions
     << ", \"evictions_by_type\": {";
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    if (t > 0) os << ", ";
    os << "\"" << to_string(static_cast<RequestType>(t))
       << "\": " << snapshot.cache.evictions_by_type[t];
  }
  os << "}, \"evicted_bytes_estimate\": "
     << snapshot.cache.evicted_bytes_estimate
     << ", \"size\": " << snapshot.cache.size
     << ", \"capacity\": " << snapshot.cache.capacity
     << ", \"hit_rate\": " << snapshot.cache.hit_rate() << "}, \"latency\": {";
  append_latency(os, "place", snapshot.place);
  os << ", ";
  append_latency(os, "evaluate", snapshot.evaluate);
  os << ", ";
  append_latency(os, "localize", snapshot.localize);
  os << ", ";
  append_latency(os, "mutate", snapshot.mutate);
  os << "}}";
  return os.str();
}

void EngineMetrics::record_submitted() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.submitted;
}

void EngineMetrics::record_admitted(std::size_t depth_now) {
  std::unique_lock<std::mutex> lock(mutex_);
  counters_.queue_high_water =
      std::max(counters_.queue_high_water, depth_now);
}

void EngineMetrics::record_response(RequestType type, Outcome outcome,
                                    bool cache_hit, double latency_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  switch (outcome) {
    case Outcome::Ok:
      ++counters_.completed;
      break;
    case Outcome::RejectedQueueFull:
      ++counters_.rejected_queue_full;
      break;
    case Outcome::RejectedDeadline:
      ++counters_.rejected_deadline;
      break;
    case Outcome::RejectedBadRequest:
      ++counters_.rejected_bad_request;
      break;
  }
  if (cache_hit) ++counters_.cache_hits;
  if (outcome != Outcome::Ok) return;
  switch (type) {
    case RequestType::Place:
      counters_.place.record(latency_seconds);
      break;
    case RequestType::Evaluate:
      counters_.evaluate.record(latency_seconds);
      break;
    case RequestType::Localize:
      counters_.localize.record(latency_seconds);
      break;
    case RequestType::Mutate:
      counters_.mutate.record(latency_seconds);
      break;
  }
}

EngineMetricsSnapshot EngineMetrics::snapshot(std::size_t queue_depth,
                                              double elapsed_seconds,
                                              const CacheStats& cache) const {
  std::unique_lock<std::mutex> lock(mutex_);
  EngineMetricsSnapshot copy = counters_;
  copy.queue_depth = queue_depth;
  copy.elapsed_seconds = elapsed_seconds;
  copy.cache = cache;
  return copy;
}

}  // namespace splace::engine
