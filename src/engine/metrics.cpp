#include "engine/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace splace::engine {

void LatencyStats::record(double seconds) {
  SPLACE_EXPECTS(seconds >= 0);
  if (count == 0) {
    min_seconds = seconds;
    max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  ++count;
  total_seconds += seconds;
  log2_us.add(log2_us_bucket(seconds));
}

namespace {

void append_latency(std::ostringstream& os, const std::string& name,
                    const LatencyStats& stats) {
  os << "\"" << name << "\": {\"count\": " << stats.count
     << ", \"mean_seconds\": " << stats.mean_seconds()
     << ", \"min_seconds\": " << stats.min_seconds
     << ", \"max_seconds\": " << stats.max_seconds << ", \"log2_us\": {";
  bool first = true;
  for (const auto& [bucket, count] : stats.log2_us.counts()) {
    if (!first) os << ", ";
    os << "\"" << bucket << "\": " << count;
    first = false;
  }
  os << "}}";
}

}  // namespace

std::string to_json(const EngineMetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"submitted\": " << snapshot.submitted
     << ", \"completed\": " << snapshot.completed
     << ", \"cache_hits\": " << snapshot.cache_hits
     << ", \"rejected\": {\"queue_full\": " << snapshot.rejected_queue_full
     << ", \"deadline\": " << snapshot.rejected_deadline
     << ", \"bad_request\": " << snapshot.rejected_bad_request
     << ", \"total\": " << snapshot.rejected_total() << "}"
     << ", \"queue_depth\": " << snapshot.queue_depth
     << ", \"queue_high_water\": " << snapshot.queue_high_water
     << ", \"elapsed_seconds\": " << snapshot.elapsed_seconds
     << ", \"throughput_rps\": " << snapshot.throughput()
     << ", \"cache\": {\"hits\": " << snapshot.cache.hits
     << ", \"misses\": " << snapshot.cache.misses
     << ", \"evictions\": " << snapshot.cache.evictions
     << ", \"evictions_by_type\": {";
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    if (t > 0) os << ", ";
    os << "\"" << to_string(static_cast<RequestType>(t))
       << "\": " << snapshot.cache.evictions_by_type[t];
  }
  os << "}, \"evicted_bytes_estimate\": "
     << snapshot.cache.evicted_bytes_estimate
     << ", \"size\": " << snapshot.cache.size
     << ", \"capacity\": " << snapshot.cache.capacity
     << ", \"hit_rate\": " << snapshot.cache.hit_rate() << "}"
     << ", \"adaptive_cache\": {\"enabled\": "
     << (snapshot.adaptive.enabled ? "true" : "false")
     << ", \"window\": " << snapshot.adaptive.window
     << ", \"observed\": " << snapshot.adaptive.observed
     << ", \"working_set\": " << snapshot.adaptive.working_set
     << ", \"working_set_by_type\": {";
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    if (t > 0) os << ", ";
    os << "\"" << to_string(static_cast<RequestType>(t))
       << "\": " << snapshot.adaptive.working_set_by_type[t];
  }
  os << "}, \"min_capacity\": " << snapshot.adaptive.min_capacity
     << ", \"max_capacity\": " << snapshot.adaptive.max_capacity
     << ", \"final_capacity\": " << snapshot.cache.capacity
     << ", \"resize_events\": [";
  for (std::size_t r = 0; r < snapshot.adaptive.resizes.size(); ++r) {
    const ResizeEvent& event = snapshot.adaptive.resizes[r];
    if (r > 0) os << ", ";
    os << "{\"at_observation\": " << event.at_observation
       << ", \"from\": " << event.old_capacity
       << ", \"to\": " << event.new_capacity
       << ", \"working_set\": " << event.working_set << "}";
  }
  os << "]}"
     << ", \"tracing\": {\"enabled\": "
     << (snapshot.tracing.enabled ? "true" : "false")
     << ", \"recorded\": " << snapshot.tracing.recorded
     << ", \"drained\": " << snapshot.tracing.drained
     << ", \"dropped\": " << snapshot.tracing.dropped
     << ", \"capacity\": " << snapshot.tracing.capacity << "}"
     << ", \"latency\": {";
  append_latency(os, "place", snapshot.place);
  os << ", ";
  append_latency(os, "evaluate", snapshot.evaluate);
  os << ", ";
  append_latency(os, "localize", snapshot.localize);
  os << ", ";
  append_latency(os, "mutate", snapshot.mutate);
  os << "}}";
  return os.str();
}

void EngineMetrics::record_submitted() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.submitted;
}

void EngineMetrics::record_admitted(std::size_t depth_now) {
  std::unique_lock<std::mutex> lock(mutex_);
  counters_.queue_high_water =
      std::max(counters_.queue_high_water, depth_now);
}

void EngineMetrics::record_response(RequestType type, Outcome outcome,
                                    bool cache_hit, double latency_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  switch (outcome) {
    case Outcome::Ok:
      ++counters_.completed;
      break;
    case Outcome::RejectedQueueFull:
      ++counters_.rejected_queue_full;
      break;
    case Outcome::RejectedDeadline:
      ++counters_.rejected_deadline;
      break;
    case Outcome::RejectedBadRequest:
      ++counters_.rejected_bad_request;
      break;
  }
  if (cache_hit) ++counters_.cache_hits;
  if (outcome != Outcome::Ok) return;
  switch (type) {
    case RequestType::Place:
      counters_.place.record(latency_seconds);
      break;
    case RequestType::Evaluate:
      counters_.evaluate.record(latency_seconds);
      break;
    case RequestType::Localize:
      counters_.localize.record(latency_seconds);
      break;
    case RequestType::Mutate:
      counters_.mutate.record(latency_seconds);
      break;
  }
}

EngineMetricsSnapshot EngineMetrics::snapshot(
    std::size_t queue_depth, double elapsed_seconds, const CacheStats& cache,
    AdaptiveCacheStats adaptive, const TraceStats& tracing) const {
  std::unique_lock<std::mutex> lock(mutex_);
  EngineMetricsSnapshot copy = counters_;
  copy.queue_depth = queue_depth;
  copy.elapsed_seconds = elapsed_seconds;
  copy.cache = cache;
  copy.adaptive = std::move(adaptive);
  copy.tracing = tracing;
  return copy;
}

}  // namespace splace::engine
