#include "engine/request.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace splace::engine {

std::string to_string(RequestType type) {
  switch (type) {
    case RequestType::Place: return "place";
    case RequestType::Evaluate: return "evaluate";
    case RequestType::Localize: return "localize";
    case RequestType::Mutate: return "mutate";
    case RequestType::Portfolio: return "portfolio";
  }
  throw ContractViolation("unknown request type");
}

std::string to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::Ok: return "ok";
    case Outcome::RejectedQueueFull: return "rejected_queue_full";
    case Outcome::RejectedDeadline: return "rejected_deadline";
    case Outcome::RejectedBadRequest: return "rejected_bad_request";
    case Outcome::RejectedTenantQuota: return "rejected_tenant_quota";
  }
  throw ContractViolation("unknown outcome");
}

bool is_rejected(Outcome outcome) { return outcome != Outcome::Ok; }

namespace {

void append_placement(std::ostringstream& key, const Placement& placement) {
  key << "|p=";
  for (std::size_t s = 0; s < placement.size(); ++s) {
    if (s > 0) key << ',';
    key << placement[s];
  }
}

// The empty default tenant adds nothing so every pre-tenant key stays
// byte-identical; non-empty tenants get a `|t=` suffix as the last field.
void append_tenant(std::ostringstream& key, const std::string& tenant) {
  if (!tenant.empty()) key << "|t=" << tenant;
}

}  // namespace

std::string canonical_key(const PlaceRequest& request) {
  std::ostringstream key;
  if (!request.algorithm_name.empty()) {
    // Registry path: the name, the objective the algorithm maximizes, and
    // the seed (which algorithms consume it is registry state, so the key —
    // a pure function of the request — always encodes it).
    key << "place|" << std::hex << request.snapshot << std::dec
        << "|a=" << request.algorithm_name << '|'
        << to_string(request.objective) << "|k=" << request.k
        << "|seed=" << request.seed;
    append_tenant(key, request.tenant);
    return key.str();
  }
  key << "place|" << std::hex << request.snapshot << std::dec << '|'
      << to_string(request.algorithm) << "|k=" << request.k;
  // Only RD consumes randomness; a seed on any other algorithm is noise
  // that must not split the cache.
  if (request.algorithm == Algorithm::RD) key << "|seed=" << request.seed;
  append_tenant(key, request.tenant);
  return key.str();
}

std::string canonical_key(const PortfolioRequest& request) {
  std::ostringstream key;
  key << "portfolio|" << std::hex << request.snapshot << std::dec << '|'
      << to_string(request.objective) << "|k=" << request.k << "|a=";
  for (std::size_t i = 0; i < request.algorithms.size(); ++i) {
    if (i > 0) key << ',';
    key << request.algorithms[i];
  }
  key << "|seed=" << request.seed;
  append_tenant(key, request.tenant);
  return key.str();
}

std::string canonical_key(const EvaluateRequest& request) {
  std::ostringstream key;
  key << "evaluate|" << std::hex << request.snapshot << std::dec
      << "|k=" << request.k;
  append_placement(key, request.placement);
  append_tenant(key, request.tenant);
  return key.str();
}

std::string canonical_key(const LocalizeRequest& request) {
  std::ostringstream key;
  key << "localize|" << std::hex << request.snapshot << std::dec
      << "|k=" << request.k;
  append_placement(key, request.placement);
  key << "|f=";
  // Observations are sets of path indices: order and duplicates do not
  // change the observed binary vector, so the key sorts and dedupes.
  std::vector<std::uint32_t> failed = request.failed_paths;
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i > 0) key << ',';
    key << failed[i];
  }
  append_tenant(key, request.tenant);
  return key.str();
}

namespace {

void append_links(std::ostringstream& key, std::vector<Edge> links) {
  for (Edge& e : links)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(links.begin(), links.end());
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i > 0) key << ',';
    key << links[i].u << '-' << links[i].v;
  }
}

void append_clients(std::ostringstream& key,
                    const std::vector<ClientMutation>& clients) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (i > 0) key << ',';
    key << clients[i].service << ':' << clients[i].client;
  }
}

}  // namespace

std::string canonical_key(const MutateRequest& request) {
  std::ostringstream key;
  key << "mutate|" << std::hex << request.snapshot << std::dec << "|al=";
  append_links(key, request.delta.add_links);
  key << "|rl=";
  append_links(key, request.delta.remove_links);
  key << "|ac=";
  append_clients(key, request.delta.add_clients);
  key << "|rc=";
  std::vector<ClientMutation> removes = request.delta.remove_clients;
  std::sort(removes.begin(), removes.end(),
            [](const ClientMutation& a, const ClientMutation& b) {
              return a.service != b.service ? a.service < b.service
                                            : a.client < b.client;
            });
  append_clients(key, removes);
  append_tenant(key, request.tenant);
  return key.str();
}

std::string canonical_key(const Request& request) {
  return std::visit([](const auto& r) { return canonical_key(r); }, request);
}

RequestType request_type(const Request& request) {
  struct Visitor {
    RequestType operator()(const PlaceRequest&) const {
      return RequestType::Place;
    }
    RequestType operator()(const EvaluateRequest&) const {
      return RequestType::Evaluate;
    }
    RequestType operator()(const LocalizeRequest&) const {
      return RequestType::Localize;
    }
    RequestType operator()(const MutateRequest&) const {
      return RequestType::Mutate;
    }
    RequestType operator()(const PortfolioRequest&) const {
      return RequestType::Portfolio;
    }
  };
  return std::visit(Visitor{}, request);
}

double deadline_of(const Request& request) {
  return std::visit([](const auto& r) { return r.deadline_seconds; }, request);
}

const std::string& tenant_of(const Request& request) {
  return std::visit(
      [](const auto& r) -> const std::string& { return r.tenant; }, request);
}

}  // namespace splace::engine
