// Typed requests and responses for the serving engine.
//
// A request names a snapshot by content hash plus the normalized parameters
// of one library operation; the response carries either the operation's
// result (bit-identical to the direct library call — the engine adds no
// numeric processing of its own) or an explicit rejection. Rejections are
// data, not exceptions: an overloaded or misused engine degrades gracefully
// instead of crashing a serving process.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics_report.hpp"
#include "dynamic/delta.hpp"
#include "monitoring/objective.hpp"
#include "placement/service.hpp"

namespace splace::engine {

enum class RequestType { Place, Evaluate, Localize, Mutate, Portfolio };

/// Number of RequestType values (for per-type counter arrays).
inline constexpr std::size_t kRequestTypeCount = 5;

/// Why a request produced no result. Ok is the only success outcome.
enum class Outcome {
  Ok,
  RejectedQueueFull,    ///< admission control: queue depth limit reached
  RejectedDeadline,     ///< request's deadline expired before execution
  RejectedBadRequest,   ///< unknown snapshot / malformed parameters
  RejectedTenantQuota,  ///< per-tenant in-flight or rate limit exceeded
};

std::string to_string(RequestType type);
std::string to_string(Outcome outcome);
bool is_rejected(Outcome outcome);

/// Compute a placement on a snapshot with one of the paper's algorithms —
/// or, when `algorithm_name` is non-empty, with any algorithm from the
/// pluggable registry (placement/algorithm.hpp), scored under `objective`.
struct PlaceRequest {
  std::uint64_t snapshot = 0;          ///< SnapshotRegistry content hash
  Algorithm algorithm = Algorithm::GD;
  /// Registry algorithm name (e.g. "pair_cover"). Empty = use the classic
  /// `algorithm` enum above. An unknown name is RejectedBadRequest listing
  /// every registered name.
  std::string algorithm_name;
  /// Objective a registry algorithm maximizes; ignored on the enum path
  /// (GC/GI/GD imply their objectives).
  ObjectiveKind objective = ObjectiveKind::Distinguishability;
  std::size_t k = 1;                   ///< failure bound (greedy objectives)
  std::uint64_t seed = 42;             ///< RNG seed (RD / "random" only)
  /// Intra-request worker threads for the greedy arg-max (1 = sequential).
  /// NOT part of the cache key: placements are bit-identical across thread
  /// counts (PR 2's determinism contract), so thread count is purely speed.
  std::size_t threads = 1;
  double deadline_seconds = 0;         ///< 0 = no deadline
  std::string tenant;                  ///< empty = default tenant
};

/// Evaluate the metric triple of a given placement at failure bound k.
struct EvaluateRequest {
  std::uint64_t snapshot = 0;
  Placement placement;
  std::size_t k = 1;
  double deadline_seconds = 0;
  std::string tenant;
};

/// Localize failures from a binary path observation: `failed_paths` are
/// indices into paths_for_placement(placement) (deterministic order).
struct LocalizeRequest {
  std::uint64_t snapshot = 0;
  Placement placement;
  std::vector<std::uint32_t> failed_paths;
  std::size_t k = 1;
  double deadline_seconds = 0;
  std::string tenant;
};

/// Derive a new snapshot by mutating a registered one: the delta is applied
/// to the parent and the child instance is registered under its own content
/// hash, sharing unchanged routing trees and path sets with the parent.
struct MutateRequest {
  std::uint64_t snapshot = 0;  ///< parent snapshot content hash
  TopologyDelta delta;
  double deadline_seconds = 0;
  std::string tenant;
};

/// Run a set of registered placement algorithms on one snapshot and pick
/// the winner under a common objective, with MIS certificates attached
/// (portfolio/portfolio.hpp behind the engine's caching/metrics/stream
/// surface). Algorithms execute sequentially on the engine worker — each
/// algorithm's own intra-run parallelism comes from `threads`.
struct PortfolioRequest {
  std::uint64_t snapshot = 0;
  /// Registry names in tie-break priority order; empty = every registered
  /// algorithm. Unknown names are RejectedBadRequest listing the registry.
  std::vector<std::string> algorithms;
  ObjectiveKind objective = ObjectiveKind::Distinguishability;
  std::size_t k = 1;          ///< failure bound (objective + certificates)
  std::uint64_t seed = 42;    ///< forwarded to seed-consuming algorithms
  /// Intra-algorithm worker threads (NOT part of the cache key; results are
  /// bit-identical across thread counts).
  std::size_t threads = 1;
  double deadline_seconds = 0;
  std::string tenant;
};

struct PlaceResult {
  Placement placement;
  /// f(P) reported by the greedy search (0 for QoS/RD/BF placements).
  double objective_value = 0;
  MetricReport metrics;  ///< the placement's metric triple at the request's k
};

/// One algorithm's entry in a portfolio response. Wall-clock timings are
/// deliberately absent: the payload is cacheable, so every field must be a
/// deterministic function of (snapshot, request parameters).
struct PortfolioEntryResult {
  std::string algorithm;
  std::string error;            ///< non-empty = this entry failed (and lost)
  Placement placement;
  double objective_value = 0;   ///< common-objective score (the ranking key)
  double reported_value = 0;    ///< the algorithm's own reported value
  std::size_t evaluations = 0;
  /// MIS certificate bound of this placement (portfolio/mis.hpp): localize()
  /// is guaranteed unique for every true failure set of size <= this.
  std::size_t max_identifiable_failures = 0;

  bool ok() const { return error.empty(); }
};

struct PortfolioResult {
  std::string winner;           ///< winning algorithm name
  Placement placement;          ///< the winning placement
  double objective_value = 0;   ///< winner's common-objective score
  MetricReport metrics;         ///< winner's metric triple at the request's k
  std::size_t max_identifiable_failures = 0;  ///< winner's certificate bound
  std::vector<PortfolioEntryResult> entries;  ///< request order
};

struct LocalizeResult {
  std::vector<NodeId> suspects;                     ///< ascending ids
  std::vector<NodeId> exonerated;                   ///< ascending ids
  std::vector<std::vector<NodeId>> consistent_sets; ///< sorted member lists
  std::vector<NodeId> minimal_explanation;
};

struct MutateResult {
  std::uint64_t derived_snapshot = 0;  ///< child content hash (registered)
  bool deduplicated = false;           ///< child content already registered
  std::size_t trees_reused = 0;        ///< BFS trees shared with the parent
  std::size_t trees_recomputed = 0;
  std::size_t services_reused = 0;     ///< whole service plans shared
  std::size_t services_recomputed = 0;
  std::size_t path_sets_reused = 0;
  std::size_t path_sets_rebuilt = 0;
};

/// One response. Exactly one payload field is meaningful, selected by
/// `type`, and only when `outcome == Ok`.
struct EngineResult {
  RequestType type = RequestType::Place;
  Outcome outcome = Outcome::Ok;
  std::string message;          ///< rejection detail (empty on Ok)
  bool cache_hit = false;
  double latency_seconds = 0;   ///< submit-to-completion, queue wait included
  PlaceResult place;
  MetricReport metrics;
  LocalizeResult localization;
  MutateResult mutate;
  PortfolioResult portfolio;

  bool ok() const { return outcome == Outcome::Ok; }
};

/// Any engine request, for batched submission and uniform dispatch.
using Request = std::variant<PlaceRequest, EvaluateRequest, LocalizeRequest,
                             MutateRequest, PortfolioRequest>;

RequestType request_type(const Request& request);
double deadline_of(const Request& request);
/// The request's tenant id (empty string = the default tenant).
const std::string& tenant_of(const Request& request);

/// Canonical cache keys: a request's normalized field encoding prefixed by
/// the snapshot hash. Two requests with equal keys are guaranteed equal
/// results (determinism contract), so the result cache compares full keys —
/// a 64-bit hash collision can never serve a wrong result. Normalization
/// drops fields that cannot change the result: `threads`, deadlines, and
/// the seed for every algorithm except RD. A non-empty tenant appends a
/// `|t=<tenant>` suffix (tenant caches are partitioned, so two tenants never
/// share an entry); the empty default tenant adds nothing, keeping every
/// pre-tenant key byte-identical.
std::string canonical_key(const PlaceRequest& request);
std::string canonical_key(const EvaluateRequest& request);
std::string canonical_key(const LocalizeRequest& request);
/// The algorithm list keeps its order (it decides winner tie-breaks). The
/// seed is always encoded: whether any listed algorithm consumes it would
/// depend on registry state, and a canonical key must be a pure function of
/// the request.
std::string canonical_key(const PortfolioRequest& request);
/// Link lists are normalized ({u < v}, sorted) and client removals sorted —
/// none of those orders can change the derived topology. Client *additions*
/// keep their order: it decides where new clients append, which shapes the
/// derived snapshot's path sets.
std::string canonical_key(const MutateRequest& request);
std::string canonical_key(const Request& request);

}  // namespace splace::engine
