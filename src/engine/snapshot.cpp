#include "engine/snapshot.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace splace::engine {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) {
  // Hash every byte of the value so adjacent small fields cannot alias.
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, const std::string& text) {
  mix(h, text.size());
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::string hex_hash(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex << hash;
  return os.str();
}

}  // namespace

std::uint64_t topology_content_hash(const Graph& graph,
                                    const std::vector<Service>& services) {
  std::uint64_t h = kFnvOffset;
  mix(h, graph.node_count());
  mix(h, graph.edge_count());
  // Sorted, not insertion order: a graph reached by add/remove churn must
  // hash equal to the same graph built directly.
  std::vector<Edge> edges = graph.edges();
  std::sort(edges.begin(), edges.end());
  for (const Edge& e : edges) {
    mix(h, e.u);
    mix(h, e.v);
  }
  mix(h, services.size());
  for (const Service& s : services) {
    mix(h, s.name);
    mix(h, s.clients.size());
    for (NodeId c : s.clients) mix(h, c);
    mix(h, double_bits(s.alpha));
    mix(h, double_bits(s.demand));
  }
  return h;
}

TopologySnapshot::TopologySnapshot(std::string name, Graph graph,
                                   std::vector<Service> services)
    : name_(std::move(name)),
      hash_(topology_content_hash(graph, services)) {
  instance_ = std::make_shared<const ProblemInstance>(std::move(graph),
                                                      std::move(services));
}

TopologySnapshot::TopologySnapshot(
    std::string name, std::uint64_t hash,
    std::shared_ptr<const ProblemInstance> instance,
    std::uint64_t parent_hash, DeriveStats stats)
    : name_(std::move(name)),
      hash_(hash),
      instance_(std::move(instance)),
      derived_(true),
      parent_hash_(parent_hash),
      derive_stats_(stats) {
  SPLACE_EXPECTS(instance_ != nullptr);
  SPLACE_EXPECTS(hash_ == topology_content_hash(instance_->graph(),
                                                instance_->services()));
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::add(
    std::string name, Graph graph, std::vector<Service> services) {
  const std::uint64_t hash = topology_content_hash(graph, services);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      by_name_[std::move(name)] = hash;
      return it->second;
    }
  }
  auto snapshot = std::make_shared<const TopologySnapshot>(
      name, std::move(graph), std::move(services));
  std::unique_lock<std::mutex> lock(mutex_);
  auto [it, inserted] = by_hash_.emplace(hash, snapshot);
  by_name_[std::move(name)] = hash;
  return inserted ? snapshot : it->second;
}

SnapshotRegistry::DeriveOutcome SnapshotRegistry::derive(
    std::uint64_t parent_hash, const TopologyDelta& delta, std::string name) {
  const std::shared_ptr<const TopologySnapshot> parent = find(parent_hash);
  if (!parent) throw InvalidInput("derive: unknown parent snapshot hash");
  if (delta.empty()) throw InvalidInput("topology delta: empty delta");

  // Applying the delta is cheap; hash the child content first so a derive
  // landing on known content skips the instance build entirely.
  const ProblemInstance& base = parent->instance();
  Graph graph = apply_delta(base.graph(), delta);
  std::vector<Service> services =
      apply_delta(base.services(), delta, graph.node_count());
  const std::uint64_t hash = topology_content_hash(graph, services);
  if (name.empty()) name = parent->name() + "~" + hex_hash(hash);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      by_name_[std::move(name)] = hash;
      return DeriveOutcome{it->second, true};
    }
  }

  // Like add(): the build runs outside the lock; first insert wins.
  DeriveStats stats;
  std::shared_ptr<const ProblemInstance> instance = derive_instance(
      base, delta, std::move(graph), std::move(services), &stats);
  auto snapshot = std::make_shared<const TopologySnapshot>(
      name, hash, std::move(instance), parent_hash, stats);
  std::unique_lock<std::mutex> lock(mutex_);
  auto [it, inserted] = by_hash_.emplace(hash, snapshot);
  by_name_[std::move(name)] = hash;
  return DeriveOutcome{inserted ? snapshot : it->second, !inserted};
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::find(
    std::uint64_t hash) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : it->second;
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::find_by_name(
    const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  auto hash_it = by_hash_.find(it->second);
  return hash_it == by_hash_.end() ? nullptr : hash_it->second;
}

std::size_t SnapshotRegistry::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return by_hash_.size();
}

}  // namespace splace::engine
