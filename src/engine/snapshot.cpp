#include "engine/snapshot.hpp"

#include <utility>

namespace splace::engine {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) {
  // Hash every byte of the value so adjacent small fields cannot alias.
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, const std::string& text) {
  mix(h, text.size());
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t topology_content_hash(const Graph& graph,
                                    const std::vector<Service>& services) {
  std::uint64_t h = kFnvOffset;
  mix(h, graph.node_count());
  mix(h, graph.edge_count());
  for (const Edge& e : graph.edges()) {
    mix(h, e.u);
    mix(h, e.v);
  }
  mix(h, services.size());
  for (const Service& s : services) {
    mix(h, s.name);
    mix(h, s.clients.size());
    for (NodeId c : s.clients) mix(h, c);
    mix(h, double_bits(s.alpha));
    mix(h, double_bits(s.demand));
  }
  return h;
}

TopologySnapshot::TopologySnapshot(std::string name, Graph graph,
                                   std::vector<Service> services)
    : name_(std::move(name)),
      hash_(topology_content_hash(graph, services)) {
  instance_ = std::make_shared<const ProblemInstance>(std::move(graph),
                                                      std::move(services));
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::add(
    std::string name, Graph graph, std::vector<Service> services) {
  const std::uint64_t hash = topology_content_hash(graph, services);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      by_name_[std::move(name)] = hash;
      return it->second;
    }
  }
  auto snapshot = std::make_shared<const TopologySnapshot>(
      name, std::move(graph), std::move(services));
  std::unique_lock<std::mutex> lock(mutex_);
  auto [it, inserted] = by_hash_.emplace(hash, snapshot);
  by_name_[std::move(name)] = hash;
  return inserted ? snapshot : it->second;
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::find(
    std::uint64_t hash) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : it->second;
}

std::shared_ptr<const TopologySnapshot> SnapshotRegistry::find_by_name(
    const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  auto hash_it = by_hash_.find(it->second);
  return hash_it == by_hash_.end() ? nullptr : hash_it->second;
}

std::size_t SnapshotRegistry::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return by_hash_.size();
}

}  // namespace splace::engine
