// The serving engine: concurrent, multi-tenant request processing over
// immutable topology snapshots.
//
// Clients submit typed requests (place / evaluate / localize) and receive
// futures; execution runs on a shared ThreadPool via submit_with_result so
// many independent requests proceed concurrently against shared snapshots.
// Three properties define the engine:
//
//   * Determinism — an Ok response is bit-identical to the direct library
//     call it wraps, for every thread count and cache configuration. The
//     engine schedules and caches; it never recomputes differently.
//   * Graceful degradation — a full queue, an expired deadline, or a
//     malformed request yields an explicit Rejected outcome, never a block,
//     a throw across the future boundary, or a crash.
//   * Observability — every submission, rejection, cache hit, and latency
//     lands in EngineMetrics, exportable as JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/adaptive.hpp"
#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "engine/request.hpp"
#include "engine/snapshot.hpp"
#include "engine/trace.hpp"
#include "stream/bus.hpp"
#include "stream/ingest.hpp"
#include "stream/metrics.hpp"
#include "util/thread_pool.hpp"

namespace splace::engine {

/// Admission quota for one tenant. Zero means "unlimited" for each limit;
/// a tenant with no TenantQuota entry is never quota-rejected. Quotas bound
/// *compute* admission — cache hits are served without consuming a slot or
/// token (a hit costs no worker time, and serving it cannot crowd out any
/// other tenant).
struct TenantQuota {
  /// Tenant id this quota applies to (empty = the default tenant).
  std::string tenant;
  /// Max requests in flight for this tenant (requests; 0 = unlimited).
  std::size_t max_in_flight = 0;
  /// Token-bucket refill rate (requests/second; 0 = no rate limit).
  double rate_per_second = 0;
  /// Token-bucket size (requests; 0 = max(1, rate_per_second)). Only
  /// meaningful when rate_per_second > 0.
  double burst = 0;
};

/// Engine configuration. Validated, not clamped: a config that violates any
/// rule below is a bad request — Engine's constructor throws InvalidInput
/// with the message validate() returns, instead of silently adjusting
/// values. Every field states its unit.
struct EngineConfig {
  /// Worker threads (count; 0 = one per hardware thread).
  std::size_t threads = 0;
  /// Admission limit (requests; must be >= 1): requests beyond this many in
  /// flight are rejected with RejectedQueueFull instead of queued
  /// unboundedly.
  std::size_t max_queue_depth = 256;
  /// Initial LRU result-cache capacity (entries; 0 disables caching —
  /// invalid when adaptive_cache is on).
  std::size_t cache_capacity = 1024;

  /// Adaptive capacity (bool): when true the engine tracks the working set
  /// of completed responses and resizes the cache between
  /// [cache_min_capacity, cache_max_capacity]. See engine/adaptive.hpp for
  /// the policy.
  bool adaptive_cache = false;
  /// Lower resize bound (entries; >= 1 when adaptive_cache is on).
  std::size_t cache_min_capacity = 64;
  /// Upper resize bound (entries; >= cache_min_capacity). cache_capacity
  /// must start inside [cache_min_capacity, cache_max_capacity].
  std::size_t cache_max_capacity = 4096;
  /// Sliding-window length (completed responses; >= 1) over which distinct
  /// canonical keys are counted as the working-set estimate.
  std::size_t working_set_window = 256;
  /// Capacity target as a multiple of the working set (ratio; >= 1.0).
  double working_set_headroom = 1.25;
  /// Completed responses between resize decisions (count; >= 1).
  std::size_t adaptation_interval = 64;

  /// Request-lifecycle tracing (bool): when true every request records a
  /// RequestTrace (engine/trace.hpp). Off = zero tracing work on the
  /// request path.
  bool tracing = false;
  /// Retained-trace bound (traces; >= 1 when tracing is on). Overflow drops
  /// new traces, counted in TraceStats::dropped.
  std::size_t trace_capacity = 4096;

  /// Per-tenant admission quotas (at most one entry per tenant; tenants
  /// without an entry are unlimited). Quota violations produce
  /// RejectedTenantQuota and never consume a global queue slot.
  std::vector<TenantQuota> tenant_quotas{};

  /// Empty string when the config is valid; otherwise a human-readable
  /// description of the first violated rule.
  std::string validate() const;
};

class Engine {
 public:
  /// Throws InvalidInput when `config.validate()` reports a violation.
  explicit Engine(std::shared_ptr<SnapshotRegistry> registry,
                  EngineConfig config = {});

  /// Drains in-flight requests (every issued future becomes ready).
  ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::future<EngineResult> submit(PlaceRequest request);
  std::future<EngineResult> submit(EvaluateRequest request);
  std::future<EngineResult> submit(LocalizeRequest request);
  std::future<EngineResult> submit(MutateRequest request);
  std::future<EngineResult> submit(PortfolioRequest request);
  std::future<EngineResult> submit(Request request);

  /// Batched submission: cache probes and dispatch per request, but one
  /// admission-lock acquisition for the whole batch, with slots consumed in
  /// batch order. Responses are identical to submitting the requests one by
  /// one (under equal queue availability) — batching changes lock traffic,
  /// never results.
  std::vector<std::future<EngineResult>> submit(std::vector<Request> batch);

  EngineMetricsSnapshot metrics() const;

  /// Prometheus-style text exposition of the engine, stream, and event-bus
  /// counters (stream/exposition.hpp). One self-describing string —
  /// suitable for a scrape endpoint or `splace_cli --metrics-text`.
  std::string metrics_text() const;

  /// Counters of the streaming plane (every ingest opened on this engine).
  stream::StreamStats stream_stats() const;

  /// The engine's event bus. Subscribe for DetectionEvent /
  /// LocalizationEvent / AmbiguityEvent / TraceEvent pushes; publishing
  /// with no subscriber attached costs nothing on the request path.
  stream::EventBus& bus() { return bus_; }

  /// Opens a live observation stream against a registered snapshot:
  /// per-path up/down reports narrow the candidate failure sets online and
  /// publish detection/localization events on bus(). Throws InvalidInput
  /// for an unknown snapshot hash, a placement/service-count mismatch, or
  /// k < 1. The stream may outlive neither the engine nor the registry.
  std::unique_ptr<stream::ObservationIngest> open_ingest(
      std::uint64_t snapshot, Placement placement, std::size_t k);

  /// Whether per-request tracing is active (config.tracing).
  bool tracing_enabled() const { return config_.tracing; }

  /// DEPRECATED pull path, kept for compatibility: prefer subscribing to
  /// TraceEvent on bus(). Implemented as an internal Trace-kind tail
  /// subscription — push and pull share one event path (see api/splace.hpp
  /// for the migration note). Moves every buffered request trace out, in
  /// trace-id order. Traces of in-flight requests land in a later drain.
  /// Empty when tracing is off.
  std::vector<RequestTrace> drain_traces();

  SnapshotRegistry& registry() { return *registry_; }
  const SnapshotRegistry& registry() const { return *registry_; }
  std::size_t thread_count() const { return pool_.thread_count(); }
  const EngineConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Hands one admitted request to the worker pool (deadline check, second
  /// cache checkpoint, execution, bookkeeping). `trace.id != 0` marks an
  /// active trace; `dispatched` is the admission-exit timestamp the queue-
  /// wait span is measured from.
  std::future<EngineResult> dispatch(RequestType type, Request request,
                                     std::string key,
                                     Clock::time_point submitted,
                                     Clock::time_point dispatched,
                                     RequestTrace trace);

  /// Executes one admitted request; never throws (library errors become
  /// RejectedBadRequest). A non-null `trace` receives the snapshot-resolve
  /// span and (for greedy place requests) per-round profiles.
  EngineResult execute(const PlaceRequest& request, RequestTrace* trace) const;
  EngineResult execute(const EvaluateRequest& request,
                       RequestTrace* trace) const;
  EngineResult execute(const LocalizeRequest& request,
                       RequestTrace* trace) const;
  EngineResult execute(const MutateRequest& request, RequestTrace* trace) const;
  /// Non-const: a served portfolio publishes a PortfolioEvent on bus_.
  /// Algorithms run sequentially on this worker (driving the engine's own
  /// pool from inside a worker would deadlock); intra-algorithm parallelism
  /// comes from request.threads.
  EngineResult execute(const PortfolioRequest& request, RequestTrace* trace);

  std::shared_ptr<const TopologySnapshot> resolve(std::uint64_t hash,
                                                  EngineResult& result,
                                                  RequestTrace* trace) const;

  /// Seconds since engine construction.
  double since_start(Clock::time_point at) const;

  /// Engine-level trace counters synthesized from the internal tail
  /// subscription (TraceRecorder-compatible shape for the metrics export).
  TraceStats trace_stats() const;

  /// Per-tenant token-bucket / in-flight accounting. Guarded by
  /// admission_mutex_ (quota decisions are part of admission).
  struct TenantState {
    const TenantQuota* quota = nullptr;  ///< points into config_.tenant_quotas
    std::size_t in_flight = 0;
    double tokens = 0;
    Clock::time_point refilled_at;
  };

  /// Quota check + slot consumption for one tenant at admission time.
  /// Returns true (consuming a token / in-flight slot) or false (quota
  /// exceeded; nothing consumed — in particular no global queue slot).
  /// Caller holds admission_mutex_. Tenants without quotas always admit.
  bool admit_tenant(const std::string& tenant, Clock::time_point now);

  /// Releases the tenant's in-flight slot on response completion. Caller
  /// holds admission_mutex_.
  void release_tenant(const std::string& tenant);

  std::shared_ptr<SnapshotRegistry> registry_;
  EngineConfig config_;
  TenantCacheMap cache_;  ///< per-tenant LRU partitions, one shared budget
  AdaptiveCacheController adaptive_;
  EngineMetrics metrics_;
  Clock::time_point start_;
  stream::EventBus bus_;
  stream::StreamMetrics stream_metrics_;
  /// drain_traces() compatibility tail: a Trace-kind ring subscription with
  /// the configured trace_capacity; null when tracing is off.
  std::shared_ptr<stream::Subscription> trace_tail_;
  std::atomic<std::uint64_t> next_trace_id_{0};
  std::atomic<std::uint64_t> next_stream_id_{0};
  mutable std::mutex admission_mutex_;
  std::size_t pending_ = 0;  ///< admitted, not yet responded
  /// tenant -> quota state; populated at construction (only quota'd tenants
  /// have state). Guarded by admission_mutex_.
  std::unordered_map<std::string, TenantState> tenant_states_;
  ThreadPool pool_;          ///< last member: joins before the rest dies
};

}  // namespace splace::engine
