// The serving engine: concurrent, multi-tenant request processing over
// immutable topology snapshots.
//
// Clients submit typed requests (place / evaluate / localize) and receive
// futures; execution runs on a shared ThreadPool via submit_with_result so
// many independent requests proceed concurrently against shared snapshots.
// Three properties define the engine:
//
//   * Determinism — an Ok response is bit-identical to the direct library
//     call it wraps, for every thread count and cache configuration. The
//     engine schedules and caches; it never recomputes differently.
//   * Graceful degradation — a full queue, an expired deadline, or a
//     malformed request yields an explicit Rejected outcome, never a block,
//     a throw across the future boundary, or a crash.
//   * Observability — every submission, rejection, cache hit, and latency
//     lands in EngineMetrics, exportable as JSON.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "engine/request.hpp"
#include "engine/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace splace::engine {

struct EngineConfig {
  /// Worker threads: 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Admission limit: requests beyond this many in flight are rejected
  /// with RejectedQueueFull instead of queued unboundedly.
  std::size_t max_queue_depth = 256;
  /// LRU result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
};

class Engine {
 public:
  explicit Engine(std::shared_ptr<SnapshotRegistry> registry,
                  EngineConfig config = {});

  /// Drains in-flight requests (every issued future becomes ready).
  ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::future<EngineResult> submit(PlaceRequest request);
  std::future<EngineResult> submit(EvaluateRequest request);
  std::future<EngineResult> submit(LocalizeRequest request);
  std::future<EngineResult> submit(MutateRequest request);
  std::future<EngineResult> submit(Request request);

  /// Batched submission: cache probes and dispatch per request, but one
  /// admission-lock acquisition for the whole batch, with slots consumed in
  /// batch order. Responses are identical to submitting the requests one by
  /// one (under equal queue availability) — batching changes lock traffic,
  /// never results.
  std::vector<std::future<EngineResult>> submit(std::vector<Request> batch);

  EngineMetricsSnapshot metrics() const;

  SnapshotRegistry& registry() { return *registry_; }
  const SnapshotRegistry& registry() const { return *registry_; }
  std::size_t thread_count() const { return pool_.thread_count(); }
  const EngineConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Hands one admitted request to the worker pool (deadline check, second
  /// cache checkpoint, execution, bookkeeping).
  std::future<EngineResult> dispatch(RequestType type, Request request,
                                     std::string key,
                                     Clock::time_point submitted);

  /// Executes one admitted request; never throws (library errors become
  /// RejectedBadRequest).
  EngineResult execute(const PlaceRequest& request) const;
  EngineResult execute(const EvaluateRequest& request) const;
  EngineResult execute(const LocalizeRequest& request) const;
  EngineResult execute(const MutateRequest& request) const;

  std::shared_ptr<const TopologySnapshot> resolve(std::uint64_t hash,
                                                  EngineResult& result) const;

  std::shared_ptr<SnapshotRegistry> registry_;
  EngineConfig config_;
  ResultCache cache_;
  EngineMetrics metrics_;
  Clock::time_point start_;
  mutable std::mutex admission_mutex_;
  std::size_t pending_ = 0;  ///< admitted, not yet responded
  ThreadPool pool_;          ///< last member: joins before the rest dies
};

}  // namespace splace::engine
