#include "engine/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace splace::engine {
namespace {

/// FNV-1a over the canonical key. Collisions only blur the working-set
/// *estimate* (two keys counted as one) — correctness never depends on it.
std::uint64_t key_hash(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

AdaptiveCacheController::AdaptiveCacheController(
    bool enabled, std::size_t min_capacity, std::size_t max_capacity,
    std::size_t window, double headroom, std::size_t interval)
    : enabled_(enabled),
      min_capacity_(min_capacity),
      max_capacity_(max_capacity),
      window_(window),
      headroom_(headroom),
      interval_(interval) {
  if (!enabled_) return;
  SPLACE_EXPECTS(min_capacity_ >= 1 && max_capacity_ >= min_capacity_);
  SPLACE_EXPECTS(window_ >= 1 && interval_ >= 1 && headroom_ >= 1.0);
  ring_.assign(window_, 0);
}

std::size_t AdaptiveCacheController::observe_locked(const std::string& key,
                                                    RequestType type,
                                                    const std::string& tenant,
                                                    std::size_t current) {
  const std::uint64_t hash = key_hash(key);
  ++observed_;

  // Slide the window: the slot we are about to overwrite leaves it.
  if (ring_full_) {
    const auto leaving = in_window_.find(ring_[ring_next_]);
    SPLACE_ENSURES(leaving != in_window_.end());
    if (--leaving->second.count == 0) {
      --distinct_by_type_[static_cast<std::size_t>(leaving->second.type)];
      const auto by_tenant = distinct_by_tenant_.find(leaving->second.tenant);
      if (by_tenant != distinct_by_tenant_.end() &&
          --by_tenant->second == 0) {
        distinct_by_tenant_.erase(by_tenant);
      }
      in_window_.erase(leaving);
    }
  }
  ring_[ring_next_] = hash;
  ring_next_ = (ring_next_ + 1) % window_;
  if (ring_next_ == 0) ring_full_ = true;

  WindowEntry& entry = in_window_[hash];
  if (entry.count == 0) {
    entry.type = type;
    entry.tenant = tenant;
    ++distinct_by_type_[static_cast<std::size_t>(type)];
    ++distinct_by_tenant_[tenant];
  }
  ++entry.count;

  if (observed_ % interval_ != 0) return 0;

  // Re-target: working set plus headroom, clamped to the configured bounds,
  // applied only past the 1/8 hysteresis band (no flapping on a working set
  // that wobbles by a few keys).
  const std::size_t working_set = in_window_.size();
  const auto desired = static_cast<std::size_t>(
      std::ceil(static_cast<double>(working_set) * headroom_));
  const std::size_t target =
      std::clamp(desired, min_capacity_, max_capacity_);
  const std::size_t diff =
      target > current ? target - current : current - target;
  if (target == current || diff * 8 < current) return 0;
  resizes_.push_back(ResizeEvent{observed_, current, target, working_set});
  // min_capacity_ >= 1, so a real target is never 0 — 0 is the "no resize"
  // sentinel.
  return target;
}

void AdaptiveCacheController::observe(const std::string& key,
                                      RequestType type, ResultCache& cache) {
  if (!enabled_) return;
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t target =
      observe_locked(key, type, std::string{}, cache.capacity());
  if (target == 0) return;
  // Lock order is controller -> cache, and nothing takes them the other way
  // around; holding mutex_ here also serializes racing re-target decisions.
  cache.set_capacity(target);
}

void AdaptiveCacheController::observe(const std::string& key,
                                      RequestType type,
                                      const std::string& tenant,
                                      TenantCacheMap& tenants) {
  if (!enabled_) return;
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t target =
      observe_locked(key, type, tenant, tenants.total_capacity());
  if (target == 0) return;
  // Split the new total budget proportionally to each tenant's share of the
  // window's distinct keys — the "capacity split seeded from the working-set
  // signal". Lock order: controller -> tenant map -> partition.
  std::vector<std::pair<std::string, std::size_t>> weights(
      distinct_by_tenant_.begin(), distinct_by_tenant_.end());
  tenants.set_split(weights, target);
}

AdaptiveCacheStats AdaptiveCacheController::stats() const {
  AdaptiveCacheStats stats;
  stats.enabled = enabled_;
  stats.window = window_;
  stats.min_capacity = min_capacity_;
  stats.max_capacity = max_capacity_;
  if (!enabled_) return stats;
  std::unique_lock<std::mutex> lock(mutex_);
  stats.observed = observed_;
  stats.working_set = in_window_.size();
  stats.working_set_by_type = distinct_by_type_;
  stats.working_set_by_tenant.assign(distinct_by_tenant_.begin(),
                                     distinct_by_tenant_.end());
  std::sort(stats.working_set_by_tenant.begin(),
            stats.working_set_by_tenant.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  stats.resizes = resizes_;
  return stats;
}

}  // namespace splace::engine
