#include "engine/replay.hpp"

#include <chrono>
#include <cstring>
#include <istream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "localization/observation.hpp"
#include "placement/algorithm.hpp"
#include "shard/group.hpp"
#include "topology/catalog.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"

namespace splace::engine {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidInput("replay line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  for (const std::string& field : split(std::string(line), ' '))
    if (!trim(field).empty()) tokens.emplace_back(trim(field));
  return tokens;
}

std::size_t parse_size(const std::string& token, std::size_t line) {
  try {
    return static_cast<std::size_t>(std::stoul(token));
  } catch (...) {
    fail(line, "expected a non-negative integer, got '" + token + "'");
  }
}

double parse_double(const std::string& token, std::size_t line) {
  try {
    return std::stod(token);
  } catch (...) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

std::string lower(std::string text) {
  for (char& c : text)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return text;
}

ReplaySnapshotSpec parse_snapshot_line(const std::vector<std::string>& tokens,
                                       std::size_t line) {
  if (tokens.size() < 2 || tokens.size() % 2 != 0)
    fail(line, "snapshot needs a name followed by key/value pairs");
  ReplaySnapshotSpec spec;
  spec.name = tokens[1];
  for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "topology") spec.topology = value;
    else if (key == "alpha") spec.alpha = parse_double(value, line);
    else if (key == "services") spec.services = parse_size(value, line);
    else if (key == "clients")
      spec.clients_per_service = parse_size(value, line);
    else fail(line, "unknown snapshot key '" + key + "'");
  }
  if (spec.topology.empty()) fail(line, "snapshot needs a topology");
  if (spec.alpha < 0.0 || spec.alpha > 1.0)
    fail(line, "alpha must be in [0,1]");
  if (spec.clients_per_service < 1)
    fail(line, "clients must be >= 1");
  return spec;
}

ReplayRequestSpec parse_request_line(RequestType type,
                                     const std::vector<std::string>& tokens,
                                     std::size_t line) {
  if (tokens.size() < 2) fail(line, "request needs a snapshot name");
  ReplayRequestSpec spec;
  spec.type = type;
  spec.snapshot = tokens[1];
  std::size_t i = 2;
  if (type == RequestType::Localize) {
    if (i < tokens.size() && tokens[i] != "k" && tokens[i] != "algorithm")
      spec.failures = parse_size(tokens[i++], line);
    spec.algorithm = "qos";  // cheap deterministic placement to observe
  } else {
    if (i < tokens.size() && tokens[i] != "k")
      spec.algorithm = lower(tokens[i++]);
  }
  for (; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    if (key == "k") spec.k = parse_size(tokens[i + 1], line);
    else if (key == "algorithm") spec.algorithm = lower(tokens[i + 1]);
    else fail(line, "unknown request key '" + key + "'");
  }
  if (i != tokens.size()) fail(line, "dangling token '" + tokens[i] + "'");
  if (spec.k < 1) fail(line, "k must be >= 1");
  return spec;
}

ReplayCascadeSpec parse_cascade_line(const std::vector<std::string>& tokens,
                                     std::size_t line) {
  if (tokens.size() < 2) fail(line, "cascade needs a snapshot name");
  ReplayCascadeSpec spec;
  spec.snapshot = tokens[1];
  std::size_t i = 2;
  if (i < tokens.size() && tokens.size() % 2 != 0)
    spec.algorithm = lower(tokens[i++]);
  for (; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "algorithm") spec.algorithm = lower(value);
    else if (key == "strength") spec.strength = parse_double(value, line);
    else if (key == "density") spec.density = parse_double(value, line);
    else if (key == "episodes") spec.episodes = parse_size(value, line);
    else if (key == "ticks") spec.ticks = parse_size(value, line);
    else if (key == "k") spec.k = parse_size(value, line);
    else fail(line, "unknown cascade key '" + key + "'");
  }
  if (i != tokens.size()) fail(line, "dangling token '" + tokens[i] + "'");
  if (!(spec.strength > 0.0) || spec.strength > 1.0)
    fail(line, "strength must be in (0,1]");
  if (spec.density < 0.0 || spec.density > 1.0)
    fail(line, "density must be in [0,1]");
  if (spec.episodes < 1) fail(line, "episodes must be >= 1");
  if (spec.k < 1) fail(line, "k must be >= 1");
  return spec;
}

/// `portfolio <snapshot> [NAMES...] [k <n>]`: positional registry names
/// (each validated against the registry) until the first key token.
ReplayRequestSpec parse_portfolio_line(const std::vector<std::string>& tokens,
                                       std::size_t line) {
  if (tokens.size() < 2) fail(line, "portfolio needs a snapshot name");
  ReplayRequestSpec spec;
  spec.type = RequestType::Portfolio;
  spec.snapshot = tokens[1];
  std::size_t i = 2;
  for (; i < tokens.size() && tokens[i] != "k"; ++i) {
    const std::string name = lower(tokens[i]);
    if (!is_registered_algorithm(name))
      fail(line, "unknown registry algorithm '" + name + "'");
    spec.portfolio_algorithms.push_back(name);
  }
  for (; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    if (key == "k") spec.k = parse_size(tokens[i + 1], line);
    else fail(line, "unknown portfolio key '" + key + "'");
  }
  if (i != tokens.size()) fail(line, "dangling token '" + tokens[i] + "'");
  if (spec.k < 1) fail(line, "k must be >= 1");
  return spec;
}

TenantQuota parse_quota_line(const std::vector<std::string>& tokens,
                             std::size_t line) {
  if (tokens.size() < 4 || tokens.size() % 2 != 0)
    fail(line,
         "expected: quota <tenant> [inflight <n>] [rate <r>] [burst <b>]");
  TenantQuota quota;
  quota.tenant = tokens[1] == "-" ? std::string() : tokens[1];
  for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "inflight") quota.max_in_flight = parse_size(value, line);
    else if (key == "rate") quota.rate_per_second = parse_double(value, line);
    else if (key == "burst") quota.burst = parse_double(value, line);
    else fail(line, "unknown quota key '" + key + "'");
  }
  if (quota.rate_per_second < 0) fail(line, "rate must be >= 0");
  if (quota.burst < 0) fail(line, "burst must be >= 0");
  if (quota.burst > 0 && quota.rate_per_second <= 0)
    fail(line, "burst needs a positive rate");
  return quota;
}

}  // namespace

Algorithm parse_algorithm(const std::string& name) {
  const std::string id = lower(name);
  if (id == "gd") return Algorithm::GD;
  if (id == "gc") return Algorithm::GC;
  if (id == "gi") return Algorithm::GI;
  if (id == "qos") return Algorithm::QoS;
  if (id == "rd") return Algorithm::RD;
  if (id == "bf") return Algorithm::BF;
  throw InvalidInput("unknown algorithm '" + name + "'");
}

ReplaySpec parse_replay(std::istream& in) {
  ReplaySpec spec;
  std::string raw;
  std::size_t line = 0;
  // Request-state directives apply to every request line after them.
  std::uint64_t current_seed = 42;
  double current_deadline = 0;
  std::string current_tenant;
  // From `algo <name>`: routes later `place` lines through the registry.
  std::string current_algo;
  // Pending link mutations per snapshot name, flushed by `derive`.
  std::map<std::string, TopologyDelta> pending;
  auto push_request = [&](ReplayRequestSpec request) {
    request.seed = current_seed;
    request.deadline_seconds = current_deadline;
    request.tenant = current_tenant;
    if (request.type == RequestType::Place)
      request.registry_algorithm = current_algo;
    spec.requests.push_back(std::move(request));
  };
  while (std::getline(in, raw)) {
    ++line;
    const std::string uncommented = raw.substr(0, raw.find('#'));
    if (trim(uncommented).empty()) continue;
    const std::vector<std::string> tokens = tokenize(trim(uncommented));
    const std::string& key = tokens[0];
    if (key == "threads") {
      if (tokens.size() != 2) fail(line, "threads needs one value");
      spec.threads = parse_size(tokens[1], line);
    } else if (key == "shards") {
      if (tokens.size() != 2) fail(line, "shards needs one value");
      spec.shards = parse_size(tokens[1], line);
      if (spec.shards < 1) fail(line, "shards must be >= 1");
    } else if (key == "queue-depth") {
      if (tokens.size() != 2) fail(line, "queue-depth needs one value");
      spec.queue_depth = parse_size(tokens[1], line);
      if (spec.queue_depth < 1) fail(line, "queue-depth must be >= 1");
    } else if (key == "cache") {
      if (tokens.size() != 2) fail(line, "cache needs one value");
      spec.cache_capacity = parse_size(tokens[1], line);
    } else if (key == "repeat") {
      if (tokens.size() != 2) fail(line, "repeat needs one value");
      spec.repeat = parse_size(tokens[1], line);
      if (spec.repeat < 1) fail(line, "repeat must be >= 1");
    } else if (key == "trace") {
      if (tokens.size() != 2) fail(line, "trace needs a capacity (traces)");
      spec.trace_capacity = parse_size(tokens[1], line);
      if (spec.trace_capacity < 1) fail(line, "trace capacity must be >= 1");
      spec.tracing = true;
    } else if (key == "adaptive") {
      if (tokens.size() != 3)
        fail(line, "expected: adaptive <min-entries> <max-entries>");
      spec.cache_min_capacity = parse_size(tokens[1], line);
      spec.cache_max_capacity = parse_size(tokens[2], line);
      spec.adaptive_cache = true;
    } else if (key == "adaptive-window") {
      if (tokens.size() != 2)
        fail(line, "adaptive-window needs one value (responses)");
      spec.working_set_window = parse_size(tokens[1], line);
    } else if (key == "adaptive-interval") {
      if (tokens.size() != 2)
        fail(line, "adaptive-interval needs one value (responses)");
      spec.adaptation_interval = parse_size(tokens[1], line);
    } else if (key == "metrics") {
      if (tokens.size() != 1) fail(line, "metrics takes no values");
      spec.metrics_text = true;
    } else if (key == "seed") {
      if (tokens.size() != 2) fail(line, "seed needs one value");
      current_seed = parse_size(tokens[1], line);
    } else if (key == "deadline") {
      if (tokens.size() != 2) fail(line, "deadline needs one value (ms)");
      const double ms = parse_double(tokens[1], line);
      if (ms < 0) fail(line, "deadline must be >= 0");
      current_deadline = ms / 1000.0;
    } else if (key == "tenant") {
      if (tokens.size() != 2)
        fail(line, "tenant needs one value ('-' = the default tenant)");
      current_tenant = tokens[1] == "-" ? std::string() : tokens[1];
    } else if (key == "algo") {
      if (tokens.size() != 2)
        fail(line, "algo needs one registry name ('-' = the enum path)");
      if (tokens[1] == "-") {
        current_algo.clear();
      } else {
        current_algo = lower(tokens[1]);
        if (!is_registered_algorithm(current_algo))
          fail(line, "unknown registry algorithm '" + current_algo + "'");
      }
    } else if (key == "quota") {
      TenantQuota quota = parse_quota_line(tokens, line);
      for (const TenantQuota& existing : spec.tenant_quotas)
        if (existing.tenant == quota.tenant)
          fail(line, "duplicate quota for tenant '" +
                         (quota.tenant.empty() ? "-" : quota.tenant) + "'");
      spec.tenant_quotas.push_back(std::move(quota));
    } else if (key == "snapshot") {
      spec.snapshots.push_back(parse_snapshot_line(tokens, line));
    } else if (key == "place") {
      push_request(parse_request_line(RequestType::Place, tokens, line));
    } else if (key == "evaluate") {
      push_request(parse_request_line(RequestType::Evaluate, tokens, line));
    } else if (key == "localize") {
      push_request(parse_request_line(RequestType::Localize, tokens, line));
    } else if (key == "portfolio") {
      push_request(parse_portfolio_line(tokens, line));
    } else if (key == "cascade") {
      ReplayCascadeSpec cascade = parse_cascade_line(tokens, line);
      cascade.seed = current_seed;
      spec.cascades.push_back(std::move(cascade));
    } else if (key == "mutate") {
      if (tokens.size() != 5 ||
          (tokens[2] != "addlink" && tokens[2] != "rmlink"))
        fail(line, "expected: mutate <snapshot> addlink|rmlink <u> <v>");
      const Edge link{static_cast<NodeId>(parse_size(tokens[3], line)),
                      static_cast<NodeId>(parse_size(tokens[4], line))};
      if (tokens[2] == "addlink")
        pending[tokens[1]].add_links.push_back(link);
      else
        pending[tokens[1]].remove_links.push_back(link);
    } else if (key == "derive") {
      if (tokens.size() != 2) fail(line, "derive needs a snapshot name");
      const auto it = pending.find(tokens[1]);
      if (it == pending.end() || it->second.empty())
        fail(line, "derive without pending mutate lines for '" + tokens[1] +
                       "'");
      ReplayRequestSpec request;
      request.type = RequestType::Mutate;
      request.snapshot = tokens[1];
      request.delta = std::move(it->second);
      pending.erase(it);
      push_request(std::move(request));
    } else {
      fail(line, "unknown directive '" + key + "'");
    }
  }
  for (const auto& [name, delta] : pending)
    if (!delta.empty())
      throw InvalidInput("replay: mutate lines for '" + name +
                         "' never flushed by a derive");
  if (spec.snapshots.empty()) throw InvalidInput("replay: no snapshots");
  if (spec.requests.empty() && spec.cascades.empty())
    throw InvalidInput("replay: no requests");
  return spec;
}

ReplaySpec parse_replay(const std::string& text) {
  std::istringstream in(text);
  return parse_replay(in);
}

shard::EngineGroupConfig ReplaySpec::group_config() const {
  shard::EngineGroupConfig config;
  config.shards = shards < 1 ? 1 : shards;
  config.shard = engine_config();
  return config;
}

ReplayWorkload build_replay_workload(const ReplaySpec& spec) {
  ReplayWorkload workload;
  workload.registry = std::make_shared<SnapshotRegistry>();

  // A name binds to an evolving (hash, instance) pair: base snapshots come
  // from the registry; each derive line rebinds the name to a locally
  // computed child that is deliberately NOT registered — the engine's
  // MutateRequest performs the real registration at run time.
  struct Binding {
    std::uint64_t hash = 0;
    std::shared_ptr<const ProblemInstance> instance;
  };
  std::map<std::string, Binding> bindings;
  for (const ReplaySnapshotSpec& snap : spec.snapshots) {
    const topology::CatalogEntry& entry =
        topology::catalog_entry(snap.topology);
    Graph g = topology::build(entry);
    const std::vector<NodeId> clients = topology::candidate_clients(entry, g);
    const std::size_t services =
        snap.services == 0 ? entry.services : snap.services;
    std::vector<Service> service_list;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < services; ++s) {
      Service svc;
      svc.name = snap.name + "/svc" + std::to_string(s);
      svc.alpha = snap.alpha;
      for (std::size_t c = 0; c < snap.clients_per_service; ++c) {
        svc.clients.push_back(clients[cursor]);
        cursor = (cursor + 1) % clients.size();
      }
      service_list.push_back(std::move(svc));
    }
    const auto snapshot = workload.registry->add(snap.name, std::move(g),
                                                 std::move(service_list));
    bindings[snap.name] = Binding{snapshot->hash(), snapshot->instance_ptr()};
  }

  // Placements for evaluate/localize lines come from direct library calls —
  // they double as the reference the engine's responses must match. Keyed
  // by (hash, algorithm, seed) rather than name: derive lines rebind names.
  std::map<std::tuple<std::uint64_t, std::string, std::uint64_t>, Placement>
      placements;
  auto placement_for = [&](const ReplayRequestSpec& request,
                           const Binding& bound) -> Placement {
    const auto key =
        std::make_tuple(bound.hash, request.algorithm, request.seed);
    auto it = placements.find(key);
    if (it != placements.end()) return it->second;
    Rng rng(request.seed);
    Placement placement = compute_placement(
        *bound.instance, parse_algorithm(request.algorithm), rng);
    placements.emplace(key, placement);
    return placement;
  };

  for (std::size_t line = 0; line < spec.requests.size(); ++line) {
    const ReplayRequestSpec& request = spec.requests[line];
    const auto name_it = bindings.find(request.snapshot);
    if (name_it == bindings.end())
      throw InvalidInput("replay: request names unknown snapshot '" +
                         request.snapshot + "'");
    Binding& bound = name_it->second;

    if (request.type == RequestType::Mutate) {
      MutateRequest mutate;
      mutate.snapshot = bound.hash;
      mutate.delta = request.delta;
      mutate.deadline_seconds = request.deadline_seconds;
      mutate.tenant = request.tenant;
      for (std::size_t it = 0; it < spec.repeat; ++it)
        workload.requests.push_back(mutate);
      // Resolve the child locally so later lines target the derived
      // topology; repeats of the same derive dedup inside the engine.
      Graph child_graph = apply_delta(bound.instance->graph(), request.delta);
      std::vector<Service> child_services =
          apply_delta(bound.instance->services(), request.delta,
                      child_graph.node_count());
      const std::uint64_t child_hash =
          topology_content_hash(child_graph, child_services);
      bound = Binding{
          child_hash,
          derive_instance(*bound.instance, request.delta,
                          std::move(child_graph), std::move(child_services))};
      continue;
    }

    if (request.type == RequestType::Place) {
      PlaceRequest place;
      place.snapshot = bound.hash;
      // An active `algo` directive routes the line through the registry;
      // the enum token is still parsed (validating the line) but unused.
      place.algorithm = parse_algorithm(request.algorithm);
      place.algorithm_name = request.registry_algorithm;
      place.k = request.k;
      place.seed = request.seed;
      place.deadline_seconds = request.deadline_seconds;
      place.tenant = request.tenant;
      for (std::size_t it = 0; it < spec.repeat; ++it)
        workload.requests.push_back(place);
      continue;
    }

    if (request.type == RequestType::Portfolio) {
      PortfolioRequest portfolio;
      portfolio.snapshot = bound.hash;
      portfolio.algorithms = request.portfolio_algorithms;
      portfolio.k = request.k;
      portfolio.seed = request.seed;
      portfolio.deadline_seconds = request.deadline_seconds;
      portfolio.tenant = request.tenant;
      for (std::size_t it = 0; it < spec.repeat; ++it)
        workload.requests.push_back(portfolio);
      continue;
    }

    const Placement placement = placement_for(request, bound);
    if (request.type == RequestType::Evaluate) {
      EvaluateRequest evaluate;
      evaluate.snapshot = bound.hash;
      evaluate.placement = placement;
      evaluate.k = request.k;
      evaluate.deadline_seconds = request.deadline_seconds;
      evaluate.tenant = request.tenant;
      for (std::size_t it = 0; it < spec.repeat; ++it)
        workload.requests.push_back(evaluate);
      continue;
    }

    const PathSet paths = bound.instance->paths_for_placement(placement);
    const std::size_t failures =
        std::min(request.failures, bound.instance->node_count());
    for (std::size_t it = 0; it < spec.repeat; ++it) {
      // Fresh failure draw per iteration: localize traffic stays
      // cache-resistant, unlike the repeated place/evaluate lines.
      Rng rng(1000003u * (line + 1) + it);
      const FailureScenario scenario = random_scenario(paths, failures, rng);
      LocalizeRequest localize;
      localize.snapshot = bound.hash;
      localize.placement = placement;
      localize.k = request.k;
      localize.deadline_seconds = request.deadline_seconds;
      localize.tenant = request.tenant;
      for (std::size_t p : scenario.failed_paths.to_indices())
        localize.failed_paths.push_back(static_cast<std::uint32_t>(p));
      workload.requests.push_back(std::move(localize));
    }
  }

  // Cascade lines resolve against the FINAL binding of their snapshot name:
  // the jobs run after the request phase, by which time any derive lines
  // have registered the derived snapshots the names now point at.
  for (std::size_t i = 0; i < spec.cascades.size(); ++i) {
    const ReplayCascadeSpec& cascade = spec.cascades[i];
    const auto name_it = bindings.find(cascade.snapshot);
    if (name_it == bindings.end())
      throw InvalidInput("replay: cascade names unknown snapshot '" +
                         cascade.snapshot + "'");
    const Binding& bound = name_it->second;
    Rng rng(cascade.seed + 7919 * (i + 1));
    ReplayCascadeJob job;
    job.snapshot = bound.hash;
    job.placement = compute_placement(
        *bound.instance, parse_algorithm(cascade.algorithm), rng);
    job.deps = cascade::random_dependencies(bound.instance->service_count(),
                                            cascade.density, cascade.strength,
                                            rng);
    job.episodes = cascade.episodes;
    job.ticks = cascade.ticks;
    job.k = cascade.k;
    job.seed = cascade.seed;
    workload.cascades.push_back(std::move(job));
  }
  return workload;
}

namespace {

/// Order-sensitive FNV-1a fold over response payloads — the source of
/// ReplayReport::response_digest. Deliberately excludes message text,
/// cache_hit and latency: those vary with load, the payload must not.
class ResponseDigest {
 public:
  std::uint64_t value() const { return hash_; }

  void fold(const EngineResult& result) {
    u64(static_cast<std::uint64_t>(result.type));
    u64(static_cast<std::uint64_t>(result.outcome));
    if (result.outcome != Outcome::Ok) return;
    switch (result.type) {
      case RequestType::Place:
        nodes(result.place.placement);
        f64(result.place.objective_value);
        metric(result.place.metrics);
        break;
      case RequestType::Evaluate:
        metric(result.metrics);
        break;
      case RequestType::Localize:
        nodes(result.localization.suspects);
        nodes(result.localization.exonerated);
        u64(result.localization.consistent_sets.size());
        for (const std::vector<NodeId>& set :
             result.localization.consistent_sets)
          nodes(set);
        nodes(result.localization.minimal_explanation);
        break;
      case RequestType::Mutate:
        u64(result.mutate.derived_snapshot);
        u64(result.mutate.deduplicated ? 1 : 0);
        u64(result.mutate.trees_reused);
        u64(result.mutate.trees_recomputed);
        u64(result.mutate.services_reused);
        u64(result.mutate.services_recomputed);
        u64(result.mutate.path_sets_reused);
        u64(result.mutate.path_sets_rebuilt);
        break;
      case RequestType::Portfolio:
        str(result.portfolio.winner);
        nodes(result.portfolio.placement);
        f64(result.portfolio.objective_value);
        metric(result.portfolio.metrics);
        u64(result.portfolio.max_identifiable_failures);
        u64(result.portfolio.entries.size());
        for (const PortfolioEntryResult& entry : result.portfolio.entries) {
          str(entry.algorithm);
          u64(entry.ok() ? 1 : 0);
          nodes(entry.placement);
          f64(entry.objective_value);
          f64(entry.reported_value);
          u64(entry.evaluations);
          u64(entry.max_identifiable_failures);
        }
        break;
    }
  }

 private:
  void u64(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (value >> (8 * byte)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void str(const std::string& text) {
    u64(text.size());
    for (const char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ull;
    }
  }
  void f64(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    u64(bits);
  }
  void metric(const MetricReport& m) {
    u64(m.coverage);
    u64(m.identifiability);
    u64(m.distinguishability);
  }
  void nodes(const std::vector<NodeId>& ids) {
    u64(ids.size());
    for (NodeId id : ids) u64(id);
  }

  std::uint64_t hash_ = 1469598103934665603ull;  // FNV-1a offset basis
};

/// The submit/await/tally core shared by the single-engine and group paths
/// (both servers expose the same batched-submit surface). Fills everything
/// in `report` except the post-run observability fields.
template <typename Server>
void fire_workload(Server& server, const ReplayWorkload& workload,
                   ReplayReport& report) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<EngineResult>> futures;
  futures.reserve(workload.requests.size());
  // Batched submission with derive lines as barriers: a MutateRequest is
  // submitted alone and awaited before anything after it, so later requests
  // that target the derived snapshot never race its registration.
  std::vector<Request> segment;
  auto flush_segment = [&] {
    if (segment.empty()) return;
    for (std::future<EngineResult>& future :
         server.submit(std::move(segment)))
      futures.push_back(std::move(future));
    segment.clear();
  };
  for (const Request& request : workload.requests) {
    if (request_type(request) == RequestType::Mutate) {
      flush_segment();
      futures.push_back(server.submit(request));
      futures.back().wait();
    } else {
      segment.push_back(request);
    }
  }
  flush_segment();
  ResponseDigest digest;
  for (std::future<EngineResult>& future : futures) {
    const EngineResult result = future.get();
    switch (result.outcome) {
      case Outcome::Ok: ++report.ok; break;
      case Outcome::RejectedQueueFull: ++report.rejected_queue_full; break;
      case Outcome::RejectedDeadline: ++report.rejected_deadline; break;
      case Outcome::RejectedBadRequest: ++report.rejected_bad_request; break;
      case Outcome::RejectedTenantQuota:
        ++report.rejected_tenant_quota;
        break;
    }
    if (result.cache_hit) ++report.cache_hits;
    digest.fold(result);
  }
  report.response_digest = digest.value();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  report.requests_per_second =
      report.wall_seconds <= 0
          ? 0.0
          : static_cast<double>(report.total) / report.wall_seconds;
}

/// One `cascade` line against the engine whose bus its events belong on
/// (the group path resolves the snapshot's ingest shard first).
ReplayReport::CascadeSummary run_cascade_job(Engine& engine,
                                             const ReplayCascadeJob& job) {
  auto ingest = engine.open_ingest(job.snapshot, job.placement, job.k);
  cascade::RootCauseConfig rc_config;
  rc_config.ticks = job.ticks;
  cascade::RootCauseAnalyzer analyzer(*ingest, job.deps, rc_config,
                                      &engine.bus());
  Rng rng(job.seed);
  ReplayReport::CascadeSummary summary;
  summary.snapshot = job.snapshot;
  double blast_sum = 0;
  for (std::size_t e = 0; e < job.episodes; ++e) {
    const std::size_t root = rng.index(job.placement.size());
    const cascade::RootCauseReport episode = analyzer.analyze(root, rng);
    ++summary.episodes;
    if (episode.detected) ++summary.detected;
    if (episode.top1) ++summary.top1;
    if (episode.top3) ++summary.top3;
    summary.streamed_equals_batch &= episode.streamed_equals_batch;
    blast_sum += static_cast<double>(episode.blast_services);
  }
  if (summary.episodes > 0)
    summary.mean_blast_services =
        blast_sum / static_cast<double>(summary.episodes);
  return summary;
}

}  // namespace

ReplayReport run_replay(const ReplayWorkload& workload, EngineConfig config) {
  Engine engine(workload.registry, config);
  ReplayReport report;
  report.total = workload.requests.size();
  fire_workload(engine, workload, report);

  // Cascade jobs run after the request phase so derived snapshots are
  // registered; their events land on the engine bus before it is sampled.
  for (const ReplayCascadeJob& job : workload.cascades)
    report.cascades.push_back(run_cascade_job(engine, job));

  report.metrics = engine.metrics();
  report.metrics_text = engine.metrics_text();
  report.bus = engine.bus().stats();
  report.traces = engine.drain_traces();
  return report;
}

ReplayReport run_replay(const ReplayWorkload& workload,
                        const shard::EngineGroupConfig& config) {
  shard::EngineGroup group(workload.registry, config);
  ReplayReport report;
  report.total = workload.requests.size();
  fire_workload(group, workload, report);

  // Each cascade job runs against the shard its snapshot's ingest streams
  // pin to, so the analyzer publishes on that shard's bus.
  for (const ReplayCascadeJob& job : workload.cascades)
    report.cascades.push_back(
        run_cascade_job(group.shard(group.ingest_shard(job.snapshot)), job));

  report.metrics = group.metrics();
  report.metrics_text = group.metrics_text();
  for (std::size_t s = 0; s < group.shard_count(); ++s) {
    const stream::BusStats bus = group.shard(s).bus().stats();
    for (std::size_t kind = 0; kind < bus.published.size(); ++kind)
      report.bus.published[kind] += bus.published[kind];
    report.bus.dropped += bus.dropped;
    report.bus.callback_errors += bus.callback_errors;
    report.bus.subscribers += bus.subscribers;
    std::vector<RequestTrace> traces = group.shard(s).drain_traces();
    for (RequestTrace& trace : traces)
      report.traces.push_back(std::move(trace));
  }
  return report;
}

ReplayReport run_replay(const ReplaySpec& spec) {
  const ReplayWorkload workload = build_replay_workload(spec);
  if (spec.shards <= 1) return run_replay(workload, spec.engine_config());
  return run_replay(workload, spec.group_config());
}

}  // namespace splace::engine
