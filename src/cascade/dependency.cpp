#include "cascade/dependency.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace splace::cascade {

void DependencyGraph::add_edge(std::size_t upstream, std::size_t downstream,
                               double strength) {
  edges_.push_back(DependencyEdge{upstream, downstream, strength});
}

std::string DependencyGraph::validate() const {
  if (service_count_ == 0 && !edges_.empty()) {
    return "DependencyGraph.service_count is 0 but edges are present";
  }
  std::set<std::pair<std::size_t, std::size_t>> seen;
  char buf[160];
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const DependencyEdge& e = edges_[i];
    if (e.upstream >= service_count_) {
      std::snprintf(buf, sizeof(buf),
                    "DependencyGraph.edges[%zu].upstream %zu is not a service "
                    "(service_count %zu)",
                    i, e.upstream, service_count_);
      return buf;
    }
    if (e.downstream >= service_count_) {
      std::snprintf(buf, sizeof(buf),
                    "DependencyGraph.edges[%zu].downstream %zu is not a "
                    "service (service_count %zu)",
                    i, e.downstream, service_count_);
      return buf;
    }
    if (e.upstream == e.downstream) {
      std::snprintf(buf, sizeof(buf),
                    "DependencyGraph.edges[%zu] is a self-dependency on "
                    "service %zu",
                    i, e.upstream);
      return buf;
    }
    if (!(e.strength > 0.0) || e.strength > 1.0) {
      std::snprintf(buf, sizeof(buf),
                    "DependencyGraph.edges[%zu].strength %g must be in (0, 1]",
                    i, e.strength);
      return buf;
    }
    if (!seen.insert({e.upstream, e.downstream}).second) {
      std::snprintf(buf, sizeof(buf),
                    "DependencyGraph.edges[%zu] duplicates edge %zu -> %zu", i,
                    e.upstream, e.downstream);
      return buf;
    }
  }
  // Kahn's algorithm: if a topological order does not consume every service,
  // the leftover subgraph contains a directed cycle.
  std::vector<std::size_t> indegree(service_count_, 0);
  for (const DependencyEdge& e : edges_) ++indegree[e.downstream];
  build_index();
  std::deque<std::size_t> ready;
  for (std::size_t s = 0; s < service_count_; ++s) {
    if (indegree[s] == 0) ready.push_back(s);
  }
  std::size_t consumed = 0;
  while (!ready.empty()) {
    std::size_t s = ready.front();
    ready.pop_front();
    ++consumed;
    for (std::uint32_t ei : out_[s]) {
      std::size_t d = edges_[ei].downstream;
      if (--indegree[d] == 0) ready.push_back(d);
    }
  }
  if (consumed != service_count_) {
    return "DependencyGraph.edges contain a dependency cycle";
  }
  return {};
}

void DependencyGraph::build_index() const {
  if (indexed_edges_ == edges_.size() && out_.size() == service_count_) return;
  out_.assign(service_count_, {});
  in_.assign(service_count_, {});
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const DependencyEdge& e = edges_[i];
    SPLACE_EXPECTS(e.upstream < service_count_ &&
                   e.downstream < service_count_);
    out_[e.upstream].push_back(static_cast<std::uint32_t>(i));
    in_[e.downstream].push_back(static_cast<std::uint32_t>(i));
  }
  indexed_edges_ = edges_.size();
}

const std::vector<std::uint32_t>& DependencyGraph::edges_from(
    std::size_t service) const {
  SPLACE_EXPECTS(service < service_count_);
  build_index();
  return out_[service];
}

const std::vector<std::uint32_t>& DependencyGraph::edges_into(
    std::size_t service) const {
  SPLACE_EXPECTS(service < service_count_);
  build_index();
  return in_[service];
}

std::vector<std::uint32_t> DependencyGraph::depth_from(
    std::size_t root) const {
  SPLACE_EXPECTS(root < service_count_);
  build_index();
  std::vector<std::uint32_t> depth(service_count_, kUnreachableDepth);
  depth[root] = 0;
  std::deque<std::size_t> frontier{root};
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop_front();
    for (std::uint32_t ei : out_[s]) {
      std::size_t d = edges_[ei].downstream;
      if (depth[d] == kUnreachableDepth) {
        depth[d] = depth[s] + 1;
        frontier.push_back(d);
      }
    }
  }
  return depth;
}

std::vector<std::size_t> DependencyGraph::reachable_from(
    std::size_t root) const {
  std::vector<std::uint32_t> depth = depth_from(root);
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < depth.size(); ++s) {
    if (depth[s] != kUnreachableDepth) out.push_back(s);
  }
  return out;
}

DependencyGraph random_dependencies(std::size_t service_count, double density,
                                    double strength, Rng& rng) {
  if (density < 0.0 || density > 1.0) {
    throw InvalidInput("random_dependencies: density must be in [0, 1]");
  }
  if (!(strength > 0.0) || strength > 1.0) {
    throw InvalidInput("random_dependencies: strength must be in (0, 1]");
  }
  DependencyGraph deps(service_count);
  for (std::size_t i = 0; i + 1 < service_count; ++i) {
    for (std::size_t j = i + 1; j < service_count; ++j) {
      if (rng.bernoulli(density)) deps.add_edge(i, j, strength);
    }
  }
  return deps;
}

}  // namespace splace::cascade
