// Tick-based cascade simulation layered on the passive-monitoring
// simulator (sim/simulator.hpp).
//
// The base simulator injects *independent* node failures; this engine adds
// the correlated layer real outages have: a DependencyGraph of service ->
// service edges, and a discrete tick process that walks it. When a node
// failure takes down a hosted service with dependents, a cascade starts;
// every `tick` time units each live downstream of a down upstream goes
// secondary-down with probability `strength` (one dependency level per
// tick), and secondary failures heal upstream-first — a service recovers
// only once every upstream it depends on was up at the previous tick.
//
// The base failure/recovery and request processes are reproduced from the
// simulator event loop *exactly*, drawing from the same RNG stream in the
// same order, and all cascade randomness comes from a separate RNG; tick
// events are only scheduled once a cascade actually starts. Consequence
// (verified by tests and the bench_cascade smoke gate): with ZERO
// dependency edges a CascadeEngine run is bit-identical to
// sim::simulate_traced — same report, same per-epoch trace.
//
// What the monitor sees is the *effective* node state: a node is down when
// its base failure process says so OR when any service hosted on it is
// secondary-failed. Request outcomes, detection, and the per-epoch Boolean
// tomography all use effective state, so localization runs against the
// polluted observation vector cascades create — the regime the root-cause
// analyzer (cascade/root_cause.hpp) is judged in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cascade/dependency.hpp"
#include "sim/trace.hpp"
#include "stream/bus.hpp"

namespace splace::cascade {

struct CascadeConfig {
  sim::SimConfig sim;        ///< the base failure/request processes
  double tick = 1.0;         ///< cascade propagation/heal period
  /// Seed of the cascade RNG (propagation coin flips). 0 derives a stream
  /// from sim.seed, keeping the base processes' RNG untouched either way.
  std::uint64_t cascade_seed = 0;

  /// Empty when usable, else the first field-named violation
  /// (EngineConfig::validate() convention).
  std::string validate() const;
};

/// One fired dependency edge: `to_service` (hosted on `node`) went
/// secondary-down at `time` because `from_service` was down.
struct PropagationRecord {
  double time = 0;
  std::size_t tick = 0;  ///< 1-based tick index since the cascade started
  std::size_t from_service = 0;
  std::size_t to_service = 0;
  NodeId node = kInvalidNode;
};

/// Ground truth for one cascade: who started it, what it reached, and when
/// (if ever, within the horizon) it was fully healed.
struct CascadeRecord {
  std::size_t root_service = 0;
  NodeId root_node = kInvalidNode;
  double start_time = 0;
  double contained_time = 0;  ///< meaningful when `contained`
  bool contained = false;     ///< root repaired and every secondary healed
  std::vector<PropagationRecord> propagations;
  std::vector<std::size_t> blast_services;  ///< ascending, root included
  std::vector<NodeId> blast_nodes;          ///< ascending distinct hosts
};

struct CascadeReport {
  sim::SimReport sim;  ///< base-loop counters (effective-state semantics)
  std::size_t cascades_started = 0;
  std::size_t secondary_failures = 0;  ///< propagation edges fired
  std::size_t cascades_contained = 0;
  double mean_blast_services = 0;     ///< over all cascades, root included
  double mean_containment_time = 0;   ///< over contained cascades
};

struct CascadeRun {
  CascadeReport report;
  sim::SimTrace epochs;  ///< the base simulator's per-epoch trace
  std::vector<CascadeRecord> cascades;
};

/// Runs the base simulator with the cascade overlay. Construction throws
/// InvalidInput when the config or the dependency graph fail validation or
/// the graph's service_count disagrees with the instance.
class CascadeEngine {
 public:
  CascadeEngine(const ProblemInstance& instance, Placement placement,
                DependencyGraph deps, CascadeConfig config);

  /// Runs one full simulation. When `bus` is non-null, publishes
  /// CascadeStartEvent / PropagationEvent as they happen (header.stream /
  /// header.snapshot from the optional ids, timestamps on the simulation
  /// clock in microseconds).
  CascadeRun run(stream::EventBus* bus = nullptr, std::uint64_t stream_id = 0,
                 std::uint64_t snapshot_hash = 0) const;

  const DependencyGraph& deps() const { return deps_; }
  const CascadeConfig& config() const { return config_; }

 private:
  const ProblemInstance& instance_;
  Placement placement_;
  DependencyGraph deps_;
  CascadeConfig config_;
};

/// One deterministic cascade episode without the surrounding simulator:
/// fail `root_service`'s host, run `ticks` propagation rounds (no healing),
/// record what fell. This is the ground-truth generator the root-cause
/// analyzer scores against.
struct CascadeEpisode {
  std::size_t root_service = 0;
  NodeId root_node = kInvalidNode;
  std::vector<PropagationRecord> propagations;  ///< time left at 0
  std::vector<std::size_t> failed_services;     ///< ascending, root included
  std::vector<NodeId> down_nodes;               ///< ascending distinct hosts
};

/// Requires a valid deps graph covering placement.size() services and
/// root_service < placement.size(); throws InvalidInput otherwise.
CascadeEpisode propagate_episode(const Placement& placement,
                                 const DependencyGraph& deps,
                                 std::size_t root_service, std::size_t ticks,
                                 Rng& rng);

}  // namespace splace::cascade
