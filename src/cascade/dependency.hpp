// Service-dependency model for cascade simulation.
//
// The paper's failure model is <= k *independent* node failures; real
// outages cascade: one failed service takes down the services that depend
// on it (the "domino effect"). A DependencyGraph captures that structure as
// directed upstream -> downstream edges between the services of one
// placement problem, each with a per-tick propagation strength — the
// probability that one more tick of the upstream being down takes the
// downstream with it (cascade/engine.hpp runs the process).
//
// The graph is validated against the service catalog it describes: every
// endpoint must name a service of the instance, self-dependencies and
// duplicate edges are rejected, strengths live in (0, 1], and the edge set
// must be acyclic — a cycle would make "upstream-first" healing (and
// dependency-depth root-cause scoring) ill-defined. Validation follows the
// EngineConfig convention: validate() returns an empty string or the first
// field-named violation; the consumers throw InvalidInput with it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace splace::cascade {

/// One directed dependency: `downstream` depends on `upstream`, so an
/// outage of `upstream` propagates downstream with probability `strength`
/// per cascade tick.
struct DependencyEdge {
  std::size_t upstream = 0;
  std::size_t downstream = 0;
  double strength = 1.0;  ///< per-tick propagation probability, in (0, 1]
};

/// Depth marker for unreachable services in depth_from().
inline constexpr std::uint32_t kUnreachableDepth =
    static_cast<std::uint32_t>(-1);

/// Directed service -> service dependency edges over a fixed service
/// catalog. Mutation is free-form (add_edge); consumers call validate()
/// (or the library entry points do, throwing InvalidInput) before running.
class DependencyGraph {
 public:
  DependencyGraph() = default;
  explicit DependencyGraph(std::size_t service_count)
      : service_count_(service_count) {}

  std::size_t service_count() const { return service_count_; }
  std::size_t edge_count() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }
  const std::vector<DependencyEdge>& edges() const { return edges_; }

  /// Appends an edge (no validation until validate()).
  void add_edge(std::size_t upstream, std::size_t downstream,
                double strength);

  /// Empty when the graph is well-formed against `service_count()`;
  /// otherwise the first violation, naming the offending field/edge.
  std::string validate() const;

  /// Indices into edges() of the edges leaving `service` (it as upstream).
  /// Requires service < service_count().
  const std::vector<std::uint32_t>& edges_from(std::size_t service) const;

  /// Indices into edges() of the edges entering `service` (it as
  /// downstream). Requires service < service_count().
  const std::vector<std::uint32_t>& edges_into(std::size_t service) const;

  /// True when `service` has at least one dependent (outgoing edge).
  bool has_dependents(std::size_t service) const {
    return !edges_from(service).empty();
  }

  /// BFS hop distance from `root` along dependency edges, per service;
  /// kUnreachableDepth where no directed path exists. depth[root] == 0.
  std::vector<std::uint32_t> depth_from(std::size_t root) const;

  /// Services reachable from `root` (root included), ascending — the
  /// worst-case blast set of a root failure at `root`.
  std::vector<std::size_t> reachable_from(std::size_t root) const;

 private:
  std::size_t service_count_ = 0;
  std::vector<DependencyEdge> edges_;
  mutable std::vector<std::vector<std::uint32_t>> out_;  ///< built lazily
  mutable std::vector<std::vector<std::uint32_t>> in_;
  mutable std::size_t indexed_edges_ = 0;

  void build_index() const;
};

/// Random acyclic dependency graph: for every ordered service pair (i, j)
/// with i < j, the edge i -> j is present independently with probability
/// `density` and carries `strength`. Acyclic by construction (edges only
/// point from lower to higher index). Requires density in [0, 1] and
/// strength in (0, 1].
DependencyGraph random_dependencies(std::size_t service_count, double density,
                                    double strength, Rng& rng);

}  // namespace splace::cascade
