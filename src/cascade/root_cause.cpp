#include "cascade/root_cause.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace::cascade {

namespace {

bool same_result(const LocalizationResult& streamed,
                 const LocalizationResult& batch) {
  return streamed.exonerated == batch.exonerated &&
         streamed.suspects == batch.suspects &&
         streamed.unobserved == batch.unobserved &&
         streamed.consistent_sets == batch.consistent_sets &&
         streamed.minimal_explanation == batch.minimal_explanation;
}

}  // namespace

RootCauseAnalyzer::RootCauseAnalyzer(stream::ObservationIngest& ingest,
                                     DependencyGraph deps,
                                     RootCauseConfig config,
                                     stream::EventBus* bus)
    : ingest_(ingest), deps_(std::move(deps)), config_(config), bus_(bus) {
  if (std::string error = deps_.validate(); !error.empty())
    throw InvalidInput(error);
  if (deps_.service_count() != ingest_.placement().size())
    throw InvalidInput(
        "RootCauseAnalyzer: DependencyGraph.service_count does not match "
        "the ingest placement");
}

RootCauseReport RootCauseAnalyzer::analyze(std::size_t root_service,
                                           Rng& rng) {
  const Placement& placement = ingest_.placement();
  const PathSet& paths = ingest_.paths();

  RootCauseReport report;
  report.episode = propagate_episode(placement, deps_, root_service,
                                     config_.ticks, rng);
  report.blast_services = report.episode.failed_services.size();
  report.blast_nodes = report.episode.down_nodes.size();

  // Ground-truth path states: a path is down iff it traverses a down host.
  DynamicBitset down_bits(paths.size());
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    for (NodeId v : report.episode.down_nodes) {
      if (paths[pi].traverses(v)) {
        down_bits.set(pi);
        break;
      }
    }
  }

  // Stream the evidence, one probe report per path.
  ingest_.begin_episode(0);
  std::uint64_t timestamp_us = 0;
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    timestamp_us += config_.probe_interval_us;
    ingest_.observe(static_cast<std::uint32_t>(pi),
                    down_bits.test(pi) ? stream::PathState::Down
                                       : stream::PathState::Up,
                    timestamp_us);
  }
  report.detected = ingest_.status().detected;

  const LocalizationResult streamed = ingest_.result();
  const LocalizationResult batch = localize(paths, down_bits, ingest_.k());
  report.streamed_equals_batch = same_result(streamed, batch);
  report.consistent_sets = batch.consistent_sets.size();

  // Implicated nodes: the union of the candidate failure sets (falling
  // back to the suspect pool when the evidence admits no set of size <= k,
  // as a saturated cascade does).
  DynamicBitset implicated(batch.suspects.size());
  for (const std::vector<NodeId>& set : batch.consistent_sets)
    for (NodeId v : set) implicated.set(v);
  if (batch.consistent_sets.empty()) implicated = batch.suspects;
  report.suspects = implicated.count();

  // Implicated services, and the dependency-depth-weighted ranking.
  std::vector<std::size_t> implicated_services;
  for (std::size_t s = 0; s < placement.size(); ++s)
    if (implicated.test(placement[s])) implicated_services.push_back(s);

  for (std::size_t r : implicated_services) {
    const std::vector<std::uint32_t> depth = deps_.depth_from(r);
    double score = 0;
    for (std::size_t s : implicated_services) {
      if (s == r) {
        score += 1.0;
      } else if (depth[s] != kUnreachableDepth) {
        score += 1.0 / (1.0 + static_cast<double>(depth[s]));
      } else {
        score -= 1.0;
      }
    }
    report.ranking.push_back(RankedRoot{r, score});
  }
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [](const RankedRoot& a, const RankedRoot& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.service < b.service;
                   });
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    if (report.ranking[i].service == root_service) {
      report.truth_rank = i + 1;
      break;
    }
  }
  report.top1 = report.truth_rank == 1;
  report.top3 = report.truth_rank >= 1 && report.truth_rank <= 3;

  if (bus_ != nullptr) {
    stream::EventHeader header;
    header.stream = ingest_.stream_id();
    header.snapshot = ingest_.snapshot_hash();
    header.sequence = episodes_;
    header.timestamp_us = timestamp_us;
    header.latency_us = timestamp_us;  // evidence time to reach the verdict
    bus_->publish(stream::RootCauseEvent{
        header,
        report.ranking.empty() ? root_service : report.ranking.front().service,
        root_service, report.top1, report.blast_services,
        report.ranking.size()});
  }
  ++episodes_;
  return report;
}

}  // namespace splace::cascade
