#include "cascade/engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "localization/localizer.hpp"
#include "util/error.hpp"

namespace splace::cascade {

std::string CascadeConfig::validate() const {
  if (std::string error = sim.validate(); !error.empty()) return error;
  if (!(tick > 0)) return "CascadeConfig.tick must be positive";
  return {};
}

namespace {

// The base simulator's event machinery (sim/simulator.cpp), extended with
// one kind. CascadeTick events are only scheduled once a cascade starts,
// and every cascade coin flip draws from a separate RNG, so a run with
// zero dependency edges consumes the base RNG stream in exactly the base
// order and sees exactly the base event sequence — the bit-identical
// equivalence the tests pin down.
enum class EventKind {
  RequestArrival,
  NodeFail,
  NodeRepair,
  EpochEnd,
  CascadeTick
};

struct Event {
  double time = 0;
  std::uint64_t seq = 0;  ///< tie-break so ordering is deterministic
  EventKind kind = EventKind::EpochEnd;
  std::size_t subject = 0;  ///< request stream index or node id

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

double exponential(double mean, Rng& rng) {
  // Inverse-CDF sampling; uniform01() < 1 keeps the log argument positive.
  return -mean * std::log(1.0 - rng.uniform01());
}

constexpr std::size_t kNoCascade = static_cast<std::size_t>(-1);

/// Salt for deriving the cascade RNG stream from sim.seed when no explicit
/// cascade_seed is given (golden-ratio constant, as in splitmix64).
constexpr std::uint64_t kCascadeSeedSalt = 0x9E3779B97F4A7C15ULL;

std::uint64_t micros(double time) {
  return static_cast<std::uint64_t>(time * 1e6);
}

template <typename T>
void insert_sorted_unique(std::vector<T>& values, T value) {
  auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it == values.end() || *it != value) values.insert(it, value);
}

}  // namespace

CascadeEngine::CascadeEngine(const ProblemInstance& instance,
                             Placement placement, DependencyGraph deps,
                             CascadeConfig config)
    : instance_(instance),
      placement_(std::move(placement)),
      deps_(std::move(deps)),
      config_(config) {
  if (std::string error = config_.validate(); !error.empty())
    throw InvalidInput(error);
  if (std::string error = deps_.validate(); !error.empty())
    throw InvalidInput(error);
  if (deps_.service_count() != instance_.service_count())
    throw InvalidInput(
        "DependencyGraph.service_count does not match the instance's "
        "service count");
  SPLACE_EXPECTS(placement_.size() == instance_.service_count());
}

CascadeRun CascadeEngine::run(stream::EventBus* bus, std::uint64_t stream_id,
                              std::uint64_t snapshot_hash) const {
  const sim::SimConfig& sc = config_.sim;

  // --- Base simulator setup, reproduced verbatim (sim/simulator.cpp). ---
  const PathSet paths = instance_.paths_for_placement(placement_);

  std::vector<std::size_t> stream_path;
  for (std::size_t s = 0; s < placement_.size(); ++s) {
    for (NodeId c : instance_.services()[s].clients) {
      const MeasurementPath path(instance_.node_count(),
                                 instance_.route(c, placement_[s]));
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (paths[i] == path) {
          stream_path.push_back(i);
          break;
        }
      }
    }
  }

  Rng rng(sc.seed);
  Rng cascade_rng(config_.cascade_seed != 0 ? config_.cascade_seed
                                            : (sc.seed ^ kCascadeSeedSalt));
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  auto schedule = [&](double time, EventKind kind, std::size_t subject) {
    if (time <= sc.duration) queue.push(Event{time, seq++, kind, subject});
  };

  for (std::size_t stream = 0; stream < stream_path.size(); ++stream)
    schedule(exponential(1.0 / sc.request_rate, rng),
             EventKind::RequestArrival, stream);
  for (NodeId v = 0; v < instance_.node_count(); ++v)
    schedule(exponential(sc.mtbf, rng), EventKind::NodeFail, v);
  schedule(sc.epoch, EventKind::EpochEnd, 0);

  std::vector<bool> node_up(instance_.node_count(), true);
  struct ActiveFailure {
    double fail_time = 0;
    bool detected = false;
  };
  std::vector<ActiveFailure> active(instance_.node_count());

  std::vector<bool> path_observed(paths.size(), false);
  std::vector<bool> path_failed(paths.size(), false);

  CascadeRun run;
  double detection_latency_sum = 0;
  double ambiguity_sum = 0;

  // --- Cascade overlay state. ---
  const std::size_t service_count = placement_.size();
  std::vector<std::vector<std::size_t>> services_on(instance_.node_count());
  for (std::size_t s = 0; s < service_count; ++s)
    services_on[placement_[s]].push_back(s);

  std::vector<bool> secondary(service_count, false);   ///< overlay failures
  std::vector<std::size_t> cause(service_count, kNoCascade);
  std::vector<std::size_t> secondary_on(instance_.node_count(), 0);
  std::vector<bool> cascade_live;  ///< parallel to run.cascades
  bool tick_pending = false;
  std::uint64_t out_seq = 0;  ///< bus event sequence

  // A node is effectively down when its base process says so or any
  // hosted service is secondary-failed. The monitor only sees this.
  auto effective_down = [&](NodeId v) {
    return !node_up[v] || secondary_on[v] > 0;
  };
  auto make_header = [&](double time, double since) {
    stream::EventHeader header;
    header.stream = stream_id;
    header.snapshot = snapshot_hash;
    header.sequence = out_seq++;
    header.timestamp_us = micros(time);
    header.latency_us = micros(since);
    return header;
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();

    switch (event.kind) {
      case EventKind::RequestArrival: {
        const std::size_t pi = stream_path[event.subject];
        ++run.report.sim.requests_total;
        bool ok = true;
        for (NodeId v : paths[pi].nodes())
          if (effective_down(v)) {
            ok = false;
            break;
          }
        if (!ok) ++run.report.sim.requests_failed;
        bool observed_fail = !ok;
        const double flip_prob = ok ? sc.observation_noise.false_positive
                                    : sc.observation_noise.false_negative;
        if (flip_prob > 0.0 && rng.bernoulli(flip_prob))
          observed_fail = !observed_fail;
        path_observed[pi] = true;
        path_failed[pi] = path_failed[pi] || observed_fail;
        schedule(event.time + exponential(1.0 / sc.request_rate, rng),
                 EventKind::RequestArrival, event.subject);
        break;
      }

      case EventKind::NodeFail: {
        const NodeId v = static_cast<NodeId>(event.subject);
        if (node_up[v]) {
          node_up[v] = false;
          active[v] = ActiveFailure{event.time, false};
          ++run.report.sim.failures_injected;
          schedule(event.time + exponential(sc.mttr, rng),
                   EventKind::NodeRepair, v);
          // Each hosted service with dependents roots a cascade (unless it
          // is already implicated in a live one).
          for (std::size_t s : services_on[v]) {
            if (cause[s] != kNoCascade) continue;
            if (!deps_.has_dependents(s)) continue;
            cause[s] = run.cascades.size();
            CascadeRecord record;
            record.root_service = s;
            record.root_node = v;
            record.start_time = event.time;
            record.blast_services.push_back(s);
            record.blast_nodes.push_back(v);
            run.cascades.push_back(std::move(record));
            cascade_live.push_back(true);
            if (bus != nullptr)
              bus->publish(stream::CascadeStartEvent{
                  make_header(event.time, 0.0), s, v});
            if (!tick_pending) {
              schedule(event.time + config_.tick, EventKind::CascadeTick, 0);
              tick_pending = true;
            }
          }
        }
        break;
      }

      case EventKind::NodeRepair: {
        const NodeId v = static_cast<NodeId>(event.subject);
        node_up[v] = true;
        schedule(event.time + exponential(sc.mtbf, rng), EventKind::NodeFail,
                 v);
        break;
      }

      case EventKind::EpochEnd: {
        // Detection of base failures: detected once some *observed* failed
        // path traverses the node (paths fail on effective state, so a
        // cascade's extra failed paths can only speed this up).
        for (NodeId v = 0; v < instance_.node_count(); ++v) {
          if (node_up[v] || active[v].detected) continue;
          for (std::size_t pi = 0; pi < paths.size(); ++pi) {
            if (path_observed[pi] && path_failed[pi] &&
                paths[pi].traverses(v)) {
              active[v].detected = true;
              ++run.report.sim.failures_detected;
              detection_latency_sum += event.time - active[v].fail_time;
              break;
            }
          }
        }

        bool any_failed = false;
        for (std::size_t pi = 0; pi < paths.size(); ++pi)
          if (path_observed[pi] && path_failed[pi]) any_failed = true;
        std::size_t down_count = 0;
        for (NodeId v = 0; v < instance_.node_count(); ++v)
          if (effective_down(v)) ++down_count;

        sim::EpochRecord record;
        record.time = event.time;
        for (NodeId v = 0; v < instance_.node_count(); ++v)
          if (effective_down(v)) record.down_nodes.push_back(v);
        for (std::size_t pi = 0; pi < paths.size(); ++pi) {
          if (path_observed[pi]) ++record.observed_paths;
          if (path_observed[pi] && path_failed[pi]) ++record.failed_paths;
        }

        if (any_failed && down_count <= sc.k) {
          PathSet observed_paths(instance_.node_count());
          std::vector<bool> states;
          for (std::size_t pi = 0; pi < paths.size(); ++pi) {
            if (!path_observed[pi]) continue;
            observed_paths.add(paths[pi]);
            states.push_back(path_failed[pi]);
          }
          DynamicBitset failed_bits(observed_paths.size());
          for (std::size_t i = 0; i < states.size(); ++i)
            if (states[i]) failed_bits.set(i);

          const LocalizationResult loc =
              localize(observed_paths, failed_bits, sc.k);
          ++run.report.sim.localizations_attempted;
          if (loc.unique()) ++run.report.sim.localizations_unique;
          ambiguity_sum += static_cast<double>(loc.ambiguity());

          const std::vector<NodeId>& truth = record.down_nodes;
          const bool truth_found =
              std::find(loc.consistent_sets.begin(), loc.consistent_sets.end(),
                        truth) != loc.consistent_sets.end();
          if (truth_found) ++run.report.sim.localizations_containing_truth;
          record.localization_ran = true;
          record.candidates = loc.consistent_sets.size();
          record.truth_among_candidates = truth_found;
        }
        run.epochs.epochs.push_back(std::move(record));

        std::fill(path_observed.begin(), path_observed.end(), false);
        std::fill(path_failed.begin(), path_failed.end(), false);
        schedule(event.time + sc.epoch, EventKind::EpochEnd, 0);
        break;
      }

      case EventKind::CascadeTick: {
        // Pre-tick service state: a service is down when its host is
        // base-down or it is secondary-failed.
        std::vector<bool> pre(service_count);
        for (std::size_t s = 0; s < service_count; ++s)
          pre[s] = !node_up[placement_[s]] || secondary[s];

        // Heal pass, upstream-first: a secondary failure clears only once
        // every upstream was up at the previous tick — recovery walks back
        // down the dependency chain one level per tick.
        for (std::size_t s = 0; s < service_count; ++s) {
          if (!secondary[s]) continue;
          bool upstream_clear = true;
          for (std::uint32_t ei : deps_.edges_into(s)) {
            if (pre[deps_.edges()[ei].upstream]) {
              upstream_clear = false;
              break;
            }
          }
          if (upstream_clear) {
            secondary[s] = false;
            --secondary_on[placement_[s]];
            cause[s] = kNoCascade;
          }
        }

        // Propagation pass over the post-heal snapshot: each live
        // downstream of a down (implicated) upstream falls with the edge's
        // strength. Snapshot semantics = one dependency level per tick.
        std::vector<bool> post(service_count);
        for (std::size_t s = 0; s < service_count; ++s)
          post[s] = !node_up[placement_[s]] || secondary[s];
        for (std::size_t ei = 0; ei < deps_.edge_count(); ++ei) {
          const DependencyEdge& edge = deps_.edges()[ei];
          const std::size_t ci = cause[edge.upstream];
          if (ci == kNoCascade) continue;
          if (!post[edge.upstream]) continue;
          if (post[edge.downstream] || secondary[edge.downstream]) continue;
          if (!cascade_rng.bernoulli(edge.strength)) continue;

          secondary[edge.downstream] = true;
          cause[edge.downstream] = ci;
          const NodeId host = placement_[edge.downstream];
          ++secondary_on[host];
          ++run.report.secondary_failures;
          CascadeRecord& record = run.cascades[ci];
          const std::size_t tick_index = static_cast<std::size_t>(
              std::lround((event.time - record.start_time) / config_.tick));
          record.propagations.push_back(PropagationRecord{
              event.time, tick_index, edge.upstream, edge.downstream, host});
          insert_sorted_unique(record.blast_services, edge.downstream);
          insert_sorted_unique(record.blast_nodes, host);
          if (bus != nullptr)
            bus->publish(stream::PropagationEvent{
                make_header(event.time, event.time - record.start_time),
                edge.upstream, edge.downstream, host, tick_index});
        }

        // Containment: a cascade ends once its root is effectively up and
        // no attributed secondary failure remains.
        std::vector<std::size_t> members(run.cascades.size(), 0);
        for (std::size_t s = 0; s < service_count; ++s)
          if (secondary[s] && cause[s] != kNoCascade) ++members[cause[s]];
        bool any_live = false;
        for (std::size_t ci = 0; ci < run.cascades.size(); ++ci) {
          if (!cascade_live[ci]) continue;
          CascadeRecord& record = run.cascades[ci];
          const bool root_down = !node_up[placement_[record.root_service]] ||
                                 secondary[record.root_service];
          if (!root_down && members[ci] == 0) {
            record.contained = true;
            record.contained_time = event.time;
            cascade_live[ci] = false;
            if (cause[record.root_service] == ci)
              cause[record.root_service] = kNoCascade;
          } else {
            any_live = true;
          }
        }

        if (any_live) {
          schedule(event.time + config_.tick, EventKind::CascadeTick, 0);
        } else {
          tick_pending = false;
        }
        break;
      }
    }
  }

  // --- Base report aggregates (sim/simulator.cpp formulas). ---
  sim::SimReport& report = run.report.sim;
  if (report.requests_total > 0)
    report.availability = 1.0 - static_cast<double>(report.requests_failed) /
                                    static_cast<double>(report.requests_total);
  if (report.failures_detected > 0)
    report.mean_detection_latency =
        detection_latency_sum / static_cast<double>(report.failures_detected);
  if (report.localizations_attempted > 0)
    report.mean_ambiguity =
        ambiguity_sum / static_cast<double>(report.localizations_attempted);

  // --- Cascade aggregates. ---
  run.report.cascades_started = run.cascades.size();
  double blast_sum = 0;
  double containment_sum = 0;
  for (const CascadeRecord& record : run.cascades) {
    blast_sum += static_cast<double>(record.blast_services.size());
    if (record.contained) {
      ++run.report.cascades_contained;
      containment_sum += record.contained_time - record.start_time;
    }
  }
  if (!run.cascades.empty())
    run.report.mean_blast_services =
        blast_sum / static_cast<double>(run.cascades.size());
  if (run.report.cascades_contained > 0)
    run.report.mean_containment_time =
        containment_sum / static_cast<double>(run.report.cascades_contained);
  return run;
}

CascadeEpisode propagate_episode(const Placement& placement,
                                 const DependencyGraph& deps,
                                 std::size_t root_service, std::size_t ticks,
                                 Rng& rng) {
  if (std::string error = deps.validate(); !error.empty())
    throw InvalidInput(error);
  if (deps.service_count() != placement.size())
    throw InvalidInput(
        "propagate_episode: DependencyGraph.service_count does not match "
        "the placement");
  if (root_service >= placement.size())
    throw InvalidInput("propagate_episode: root_service is not a service");

  const std::size_t service_count = placement.size();
  CascadeEpisode episode;
  episode.root_service = root_service;
  episode.root_node = placement[root_service];

  std::vector<bool> down(service_count, false);
  down[root_service] = true;
  for (std::size_t tick = 1; tick <= ticks; ++tick) {
    const std::vector<bool> snapshot = down;  // one level per tick
    for (std::size_t ei = 0; ei < deps.edge_count(); ++ei) {
      const DependencyEdge& edge = deps.edges()[ei];
      if (!snapshot[edge.upstream] || down[edge.downstream]) continue;
      if (!rng.bernoulli(edge.strength)) continue;
      down[edge.downstream] = true;
      episode.propagations.push_back(
          PropagationRecord{0.0, tick, edge.upstream, edge.downstream,
                            placement[edge.downstream]});
    }
  }

  for (std::size_t s = 0; s < service_count; ++s)
    if (down[s]) episode.failed_services.push_back(s);
  for (std::size_t s : episode.failed_services)
    insert_sorted_unique(episode.down_nodes, placement[s]);
  return episode;
}

}  // namespace splace::cascade
