// Root-cause localization for cascade episodes.
//
// A cascade pollutes the observation vector: downstream secondary failures
// take down paths the root never touched, so raw Boolean tomography
// implicates the whole blast set, not the root. The analyzer recovers the
// root in two stages:
//
//   1. Evidence. A cascade episode's per-path up/down states are streamed
//      through the existing stream::ObservationIngest (one report per
//      path), and the implicated nodes are read off the final candidate
//      sets — the streamed result is checked bit-identical to batch
//      localize() on the same evidence (the paper's machinery, untouched).
//   2. Ranking. Every service hosted on an implicated node is a candidate
//      root r, scored by how well the *dependency structure* explains the
//      implicated set:
//
//        score(r) = Σ over implicated services s of w(r, s)
//        w(r, r) = 1
//        w(r, s) = 1 / (1 + depth_r(s))   if s is reachable from r
//        w(r, s) = -1                      otherwise
//
//      i.e. a candidate is rewarded for implicated services it can reach
//      (discounted by dependency depth — direct dependents count more than
//      transitive ones) and penalized for implicated services its cascade
//      could never have caused. The true root reaches the entire blast set
//      at minimal depths, so it maximizes the score when the evidence
//      implicates the blast.
//
// Reported per episode: the ranked candidates, the truth's rank (top-1 /
// top-3 accuracy), the blast radius, and the streamed-vs-batch agreement
// bit — aggregated across episodes by bench_cascade.
#pragma once

#include <cstdint>
#include <vector>

#include "cascade/engine.hpp"
#include "stream/ingest.hpp"

namespace splace::cascade {

struct RootCauseConfig {
  std::size_t ticks = 4;  ///< propagation rounds per generated episode
  /// Spacing of the synthetic per-path probe reports on the stream clock.
  std::uint64_t probe_interval_us = 500;
};

/// One candidate root with its dependency-depth-weighted score.
struct RankedRoot {
  std::size_t service = 0;
  double score = 0;
};

/// Outcome of analyzing one cascade episode.
struct RootCauseReport {
  CascadeEpisode episode;            ///< the ground truth that was injected
  std::vector<RankedRoot> ranking;   ///< descending score, ties by id
  std::size_t truth_rank = 0;        ///< 1-based; 0 = truth not ranked
  bool top1 = false;
  bool top3 = false;
  std::size_t blast_services = 0;    ///< |episode.failed_services|
  std::size_t blast_nodes = 0;       ///< |episode.down_nodes|
  bool detected = false;             ///< ingest saw >= 1 down path
  bool streamed_equals_batch = false;
  std::size_t suspects = 0;          ///< implicated nodes in the evidence
  std::size_t consistent_sets = 0;   ///< final candidate failure sets
};

/// Drives cascade episodes through an observation stream and ranks
/// candidate roots. The ingest fixes the snapshot/placement/k under test;
/// `bus` (optional) receives one RootCauseEvent per analyzed episode.
/// Throws InvalidInput when `deps` fails validation or does not cover the
/// ingest's placement.
class RootCauseAnalyzer {
 public:
  RootCauseAnalyzer(stream::ObservationIngest& ingest, DependencyGraph deps,
                    RootCauseConfig config, stream::EventBus* bus = nullptr);

  /// Generates one cascade episode rooted at `root_service` (propagation
  /// coin flips from `rng`), streams its path evidence, and ranks roots.
  RootCauseReport analyze(std::size_t root_service, Rng& rng);

  const DependencyGraph& deps() const { return deps_; }

 private:
  stream::ObservationIngest& ingest_;
  DependencyGraph deps_;
  RootCauseConfig config_;
  stream::EventBus* bus_;
  std::uint64_t episodes_ = 0;  ///< RootCauseEvent sequence numbers
};

}  // namespace splace::cascade
