// Exhaustive optimal placement — the paper's BF baseline (Fig. 5).
//
// Two engines:
//  * brute_force_k1: scans the full cartesian product of candidate hosts with
//    the word-packed FastK1Evaluator and returns, in one sweep, the optimum
//    for all three k = 1 measures (the paper computes the optimum separately
//    per measure; one sweep tracking three maxima is equivalent).
//  * brute_force_objective: generic exact search for one objective at any k
//    via full re-evaluation (tests / tiny instances).
#pragma once

#include <cstdint>
#include <optional>

#include "monitoring/fast_eval.hpp"
#include "monitoring/objective.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"
#include "util/thread_pool.hpp"

namespace splace {

/// Optimal value and a witnessing placement for one measure.
struct OptimumK1 {
  Placement placement;
  std::size_t value = 0;
};

/// All three k = 1 optima from one exhaustive sweep.
struct BruteForceK1Result {
  OptimumK1 coverage;
  OptimumK1 identifiability;
  OptimumK1 distinguishability;
  std::uint64_t placements_searched = 0;
};

/// Number of candidate placements Π_s |H_s| (saturating).
std::uint64_t search_space_size(const ProblemInstance& instance);

/// Exhaustive k = 1 search. Returns nullopt when the search space exceeds
/// `max_placements` (the caller decides whether BF is affordable, as the
/// paper does by running BF only on Abovenet). Requires the instance to fit
/// FastK1Evaluator's 64-path budget.
std::optional<BruteForceK1Result> brute_force_k1(
    const ProblemInstance& instance,
    std::uint64_t max_placements = 50'000'000);

/// Parallel exhaustive k = 1 sweep: the first service's candidate hosts are
/// distributed over the pool, each worker scanning its sub-product with a
/// private evaluator. Optimal *values* are identical to brute_force_k1;
/// among equal-value placements the merge deterministically keeps the
/// lexicographically smallest witness.
std::optional<BruteForceK1Result> brute_force_k1_parallel(
    const ProblemInstance& instance, ThreadPool& pool,
    std::uint64_t max_placements = 50'000'000);

/// PlacementOptions front end: dispatches to the serial sweep for
/// options.threads == 1 and to a pool of resolved_threads() workers
/// otherwise. Optimal values are identical either way; witnesses follow
/// each engine's documented tie-break.
std::optional<BruteForceK1Result> brute_force_k1(
    const ProblemInstance& instance, const PlacementOptions& options,
    std::uint64_t max_placements = 50'000'000);

/// Generic exact optimum for a single objective (any k). Exponential and
/// slow; intended for tests on tiny instances.
struct BruteForceObjectiveResult {
  Placement placement;
  double value = 0;
};

BruteForceObjectiveResult brute_force_objective(const ProblemInstance& instance,
                                                ObjectiveKind kind,
                                                std::size_t k = 1);

}  // namespace splace
