#include "placement/branch_bound.hpp"

#include <algorithm>

#include "placement/greedy.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

class Searcher {
 public:
  Searcher(const ProblemInstance& instance, ObjectiveKind kind, std::size_t k)
      : instance_(instance), kind_(kind), k_(k) {}

  BranchBoundResult run() {
    // Warm start: greedy incumbent (>= 1/2-optimal) makes pruning effective
    // from the first descent.
    const GreedyResult greedy = greedy_placement(instance_, kind_, k_);
    result_.placement = greedy.placement;
    result_.value = greedy.objective_value;

    current_.assign(instance_.service_count(), kInvalidNode);
    descend(0, make_objective_state(kind_, instance_.node_count(), k_));
    return result_;
  }

 private:
  const ProblemInstance& instance_;
  ObjectiveKind kind_;
  std::size_t k_;
  Placement current_;
  BranchBoundResult result_;

  void descend(std::size_t service,
               std::unique_ptr<ObjectiveState> state) {
    ++result_.nodes_explored;
    const double current_value = state->value();

    if (service == instance_.service_count()) {
      if (current_value > result_.value) {
        result_.value = current_value;
        result_.placement = current_;
      }
      return;
    }

    // Per-host marginal gains for this service, plus the bound contribution
    // of the remaining services.
    const auto& hosts = instance_.candidate_hosts(service);
    std::vector<double> values(hosts.size());
    double best_gain_here = 0;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const double gain = state->gain(instance_.paths_for(service, hosts[i]));
      values[i] = current_value + gain;
      best_gain_here = std::max(best_gain_here, gain);
    }
    double tail_bound = 0;
    for (std::size_t s = service + 1; s < instance_.service_count(); ++s) {
      double best = 0;
      for (NodeId h : instance_.candidate_hosts(s))
        best = std::max(best, state->gain(instance_.paths_for(s, h)));
      tail_bound += best;
    }

    // Subtree bound: even stacking every remaining best marginal cannot
    // exceed this (submodularity).
    if (current_value + best_gain_here + tail_bound <= result_.value) {
      ++result_.nodes_pruned;
      return;
    }

    // Explore hosts best-first so the incumbent tightens early.
    std::vector<std::size_t> order(hosts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&values](std::size_t a,
                                                    std::size_t b) {
      return values[a] > values[b];
    });

    for (std::size_t i : order) {
      // Re-check the bound per child: committing this host yields values[i];
      // the children's tail bound (wrt the parent state) still applies.
      if (values[i] + tail_bound <= result_.value) {
        ++result_.nodes_pruned;
        continue;  // later hosts are weaker still, but count each cut
      }
      std::unique_ptr<ObjectiveState> child = state->clone();
      child->add_paths(instance_.paths_for(service, hosts[i]));
      current_[service] = hosts[i];
      descend(service + 1, std::move(child));
      current_[service] = kInvalidNode;
    }
  }
};

}  // namespace

BranchBoundResult branch_and_bound(const ProblemInstance& instance,
                                   ObjectiveKind kind, std::size_t k) {
  SPLACE_EXPECTS(kind != ObjectiveKind::Identifiability);
  return Searcher(instance, kind, k).run();
}

}  // namespace splace
