// Problem-instance types for monitoring-aware service placement
// (paper Section II-C): the service network, the services with their client
// sets and QoS slack α, and the measurement paths each candidate placement
// would generate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"
#include "monitoring/path.hpp"
#include "monitoring/path_arena.hpp"
#include "placement/candidates.hpp"

namespace splace {

/// One service to be placed.
struct Service {
  std::string name;
  std::vector<NodeId> clients;  ///< C_s: access points interested in s
  double alpha = 0.0;           ///< α_s: max tolerable relative distance
  double demand = 1.0;          ///< r_s: resource use (capacity extension)
};

/// A placement assigns one host per service, indexed like
/// ProblemInstance::services().
using Placement = std::vector<NodeId>;

/// Custom routing hook: returns the node sequence of the unique route
/// between two nodes (endpoints included), or an empty vector when the pair
/// is unreachable. Must be symmetric in node-set (the same nodes for (a,b)
/// and (b,a)), mirroring the paper's one-path-per-pair assumption.
using RouteProvider =
    std::function<std::vector<NodeId>(NodeId client, NodeId host)>;

/// Everything precomputed for one service: its candidate hosts H_s, the
/// worst-case client distance per host, the best-QoS host, and the arena
/// set id of the measurement path set P(C_s, h) for every candidate h.
///
/// Plans sit behind shared_ptr so a derived instance (dynamic-topology
/// subsystem) can share whole plans — or individual arena set ids — with
/// its parent when a delta provably left them unchanged. The hot path works
/// on the set ids alone; the legacy PathSet form of a set is materialized
/// lazily (and cached) only when a caller actually asks for it.
struct ServicePlan {
  std::vector<NodeId> candidates;        ///< H_s, ascending node id
  std::vector<std::uint32_t> worst_dist; ///< d(C_s, h) indexed by host
  NodeId qos_host = kInvalidNode;        ///< smallest id achieving d_min
  /// arena_sets[i] aligns with candidates[i]: the PathArena set id of
  /// P(C_s, candidates[i]).
  std::vector<std::uint32_t> arena_sets;

  /// The cached legacy PathSet of candidate index i (thread-safe; built on
  /// first request). `arena` must be the owning instance's arena — or any
  /// arena derived from it, which stores the same sets under the same ids.
  const PathSet& legacy_paths(const PathArena& arena, std::size_t i) const;

 private:
  mutable std::mutex legacy_mutex_;
  mutable std::vector<std::shared_ptr<const PathSet>> legacy_;
};

/// Reuse telemetry for one ProblemInstance::derived call.
struct DerivedBuildStats {
  std::size_t plans_shared = 0;
  std::size_t path_sets_shared = 0;
  std::size_t path_sets_rebuilt = 0;
};

/// An immutable service-placement problem: topology + routing + services,
/// with candidate hosts (Section III-A) and per-(service, host) measurement
/// paths precomputed.
class ProblemInstance {
 public:
  /// Builds routing, candidate sets H_s, and the path sets P(C_s, h) for
  /// every s and h ∈ H_s. Requires ≥1 service, every client a valid node,
  /// every service's clients mutually reachable through some host, and
  /// every α_s in [0, 1]. Uses deterministic hop-count shortest paths.
  ProblemInstance(Graph graph, std::vector<Service> services);

  /// Same, but routes come from `provider` (e.g. a WeightedRoutingTable) and
  /// the QoS distance d(C_s, h) is the hop length of the provided route.
  ProblemInstance(Graph graph, std::vector<Service> services,
                  RouteProvider provider);

  /// Builds the instance for a mutated topology while sharing structure with
  /// `parent`: a service whose clients and relevant routing trees are
  /// untouched shares the parent's whole plan; otherwise individual path
  /// sets are still shared per candidate host when every tree they route
  /// through is unchanged. `graph`, `routing`, and `services` must be the
  /// post-delta state (routing typically from RoutingTable::update);
  /// `client_mutated[s]` marks services whose client set changed. The result
  /// is bit-identical to building from scratch. Requires a parent without a
  /// custom RouteProvider.
  static ProblemInstance derived(const ProblemInstance& parent, Graph graph,
                                 RoutingTable routing,
                                 std::vector<Service> services,
                                 const std::vector<bool>& client_mutated,
                                 DerivedBuildStats* stats = nullptr);

  /// True iff service s of `child` provably has the same candidates and
  /// measurement paths as in `parent` — the whole plan object is shared, or
  /// every per-host path set is. Derived instances use this as the
  /// "untouched by the delta" signal for warm-start placement repair; false
  /// only means the delta *may* have changed the service.
  static bool shares_service_paths(const ProblemInstance& parent,
                                   const ProblemInstance& child,
                                   std::size_t s);

  const Graph& graph() const { return graph_; }
  const RoutingTable& routing() const { return routing_; }
  const std::vector<Service>& services() const { return services_; }
  std::size_t service_count() const { return services_.size(); }
  std::size_t node_count() const { return graph_.node_count(); }

  /// H_s: candidate hosts of service s, ascending node id.
  const std::vector<NodeId>& candidate_hosts(std::size_t s) const;

  /// Worst-case client distance d(C_s, h).
  std::uint32_t worst_distance(std::size_t s, NodeId h) const;

  /// P(C_s, h): one path per client of s when hosted at h.
  /// Requires h ∈ H_s. The PathSet form is materialized from the arena on
  /// first request and cached; hot paths should prefer arena_paths_for.
  const PathSet& paths_for(std::size_t s, NodeId h) const;

  /// Arena handle to P(C_s, h) — the allocation-free representation the
  /// greedy hot loops evaluate. Requires h ∈ H_s.
  ArenaPathsRef arena_paths_for(std::size_t s, NodeId h) const;

  /// The CSR/arena storing every candidate path of this instance.
  const PathArena& arena() const { return *arena_; }

  /// True iff h ∈ H_s.
  bool is_candidate(std::size_t s, NodeId h) const;

  /// ⋃_s P(C_s, placement[s]): the full measurement path set of a placement.
  PathSet paths_for_placement(const Placement& placement) const;

  /// The host minimizing d(C_s, ·) (smallest id among ties) — the best-QoS
  /// choice for service s; always a member of H_s.
  NodeId best_qos_host(std::size_t s) const;

  /// The route this instance's routing assigns to a pair (the custom
  /// provider when one was given, hop-count shortest path otherwise).
  /// Requires the pair to be connected under that routing.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

 private:
  struct DerivedTag {};
  /// Members-only constructor for derived(): plans_ is filled by the caller.
  ProblemInstance(DerivedTag, Graph graph, RoutingTable routing,
                  std::vector<Service> services);

  Graph graph_;
  RoutingTable routing_;
  RouteProvider provider_;  ///< empty = default shortest-path routing
  std::vector<Service> services_;
  std::vector<std::shared_ptr<const ServicePlan>> plans_;  ///< per service

  /// Every candidate path/set of this instance, interned once at build time.
  /// Immutable afterwards; a derived instance copies its parent's arena (so
  /// shared set ids keep meaning the same paths) and extends the copy.
  std::shared_ptr<PathArena> arena_;
  /// Lineage tokens: arena_token_ is unique per built instance;
  /// arena_parent_token_ names the parent arena a derived copy extends
  /// (0 = built from scratch). Set ids are comparable across two instances
  /// exactly when the child's parent token equals the parent's token.
  std::uint64_t arena_token_ = 0;
  std::uint64_t arena_parent_token_ = 0;

  std::size_t candidate_index(std::size_t s, NodeId h) const;
  void check_service(std::size_t s) const;
  void check_service_inputs(const Service& svc) const;

  /// Full per-service precomputation (profile, H_s, QoS host, path sets).
  std::shared_ptr<const ServicePlan> build_plan(const Service& svc);

  /// Distance profile from the custom provider (hop length of its routes).
  DistanceProfile provider_profile(const std::vector<NodeId>& clients) const;
};

}  // namespace splace
