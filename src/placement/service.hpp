// Problem-instance types for monitoring-aware service placement
// (paper Section II-C): the service network, the services with their client
// sets and QoS slack α, and the measurement paths each candidate placement
// would generate.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"
#include "monitoring/path.hpp"
#include "placement/candidates.hpp"

namespace splace {

/// One service to be placed.
struct Service {
  std::string name;
  std::vector<NodeId> clients;  ///< C_s: access points interested in s
  double alpha = 0.0;           ///< α_s: max tolerable relative distance
  double demand = 1.0;          ///< r_s: resource use (capacity extension)
};

/// A placement assigns one host per service, indexed like
/// ProblemInstance::services().
using Placement = std::vector<NodeId>;

/// Custom routing hook: returns the node sequence of the unique route
/// between two nodes (endpoints included), or an empty vector when the pair
/// is unreachable. Must be symmetric in node-set (the same nodes for (a,b)
/// and (b,a)), mirroring the paper's one-path-per-pair assumption.
using RouteProvider =
    std::function<std::vector<NodeId>(NodeId client, NodeId host)>;

/// An immutable service-placement problem: topology + routing + services,
/// with candidate hosts (Section III-A) and per-(service, host) measurement
/// paths precomputed.
class ProblemInstance {
 public:
  /// Builds routing, candidate sets H_s, and the path sets P(C_s, h) for
  /// every s and h ∈ H_s. Requires ≥1 service, every client a valid node,
  /// every service's clients mutually reachable through some host, and
  /// every α_s in [0, 1]. Uses deterministic hop-count shortest paths.
  ProblemInstance(Graph graph, std::vector<Service> services);

  /// Same, but routes come from `provider` (e.g. a WeightedRoutingTable) and
  /// the QoS distance d(C_s, h) is the hop length of the provided route.
  ProblemInstance(Graph graph, std::vector<Service> services,
                  RouteProvider provider);

  const Graph& graph() const { return graph_; }
  const RoutingTable& routing() const { return routing_; }
  const std::vector<Service>& services() const { return services_; }
  std::size_t service_count() const { return services_.size(); }
  std::size_t node_count() const { return graph_.node_count(); }

  /// H_s: candidate hosts of service s, ascending node id.
  const std::vector<NodeId>& candidate_hosts(std::size_t s) const;

  /// Worst-case client distance d(C_s, h).
  std::uint32_t worst_distance(std::size_t s, NodeId h) const;

  /// P(C_s, h): one path per client of s when hosted at h.
  /// Requires h ∈ H_s (paths are only materialized for feasible hosts).
  const PathSet& paths_for(std::size_t s, NodeId h) const;

  /// True iff h ∈ H_s.
  bool is_candidate(std::size_t s, NodeId h) const;

  /// ⋃_s P(C_s, placement[s]): the full measurement path set of a placement.
  PathSet paths_for_placement(const Placement& placement) const;

  /// The host minimizing d(C_s, ·) (smallest id among ties) — the best-QoS
  /// choice for service s; always a member of H_s.
  NodeId best_qos_host(std::size_t s) const;

  /// The route this instance's routing assigns to a pair (the custom
  /// provider when one was given, hop-count shortest path otherwise).
  /// Requires the pair to be connected under that routing.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

 private:
  Graph graph_;
  RoutingTable routing_;
  RouteProvider provider_;  ///< empty = default shortest-path routing
  std::vector<Service> services_;
  std::vector<std::vector<NodeId>> candidates_;          ///< per service
  std::vector<std::vector<std::uint32_t>> worst_dist_;   ///< [s][h]
  std::vector<NodeId> qos_hosts_;                        ///< per service
  /// paths_[s][i] aligns with candidates_[s][i].
  std::vector<std::vector<PathSet>> paths_;

  std::size_t candidate_index(std::size_t s, NodeId h) const;
  void check_service(std::size_t s) const;

  /// Distance profile from the custom provider (hop length of its routes).
  DistanceProfile provider_profile(const std::vector<NodeId>& clients) const;
};

}  // namespace splace
