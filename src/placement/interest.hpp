// Nodes-of-interest objectives (paper Section VII-B).
//
// When only a subset N_I ⊆ N matters (say, nodes used by critical services),
// the measures restrict naturally:
//  * coverage          |C(P) ∩ N_I|;
//  * identifiability   |S_k(P) ∩ N_I|;
//  * distinguishability — a failure set F is *of interest* iff F ∩ N_I ≠ ∅,
//    and we count unordered pairs {F, F'} ⊆ F_k with at least one member of
//    interest and P_F ≠ P_F'.
// The restricted coverage/distinguishability objectives remain monotone
// submodular, so greedy keeps its 1/2 guarantee.
#pragma once

#include <memory>

#include "monitoring/equivalence_classes.hpp"
#include "monitoring/objective.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// |C(P) ∩ N_I|.
std::size_t interest_coverage(const PathSet& paths,
                              const DynamicBitset& interest);

/// |S_k(P) ∩ N_I| (exact enumeration; small instances).
std::size_t interest_identifiability(const PathSet& paths, std::size_t k,
                                     const DynamicBitset& interest);

/// # distinguishable unordered pairs with ≥1 member of interest (exact
/// enumeration; small instances).
std::size_t interest_distinguishability(const PathSet& paths, std::size_t k,
                                        const DynamicBitset& interest);

/// k = 1 interest measures straight from an equivalence partition
/// (single-failure sets {v} are of interest iff v ∈ N_I; ∅ is not).
std::size_t interest_identifiability_k1(const EquivalenceClasses& classes,
                                        const DynamicBitset& interest);
std::size_t interest_distinguishability_k1(const EquivalenceClasses& classes,
                                           const DynamicBitset& interest);

/// Incremental objective states restricted to N_I, pluggable into
/// greedy_placement(instance, state). `interest` must span the node universe.
std::unique_ptr<ObjectiveState> make_interest_objective_state(
    ObjectiveKind kind, std::size_t node_count, std::size_t k,
    DynamicBitset interest);

}  // namespace splace
