#include "placement/online.hpp"

#include "util/error.hpp"

namespace splace {

OnlinePlacer::OnlinePlacer(Graph graph, ObjectiveKind kind, std::size_t k)
    : graph_(std::move(graph)),
      routing_(graph_),
      kind_(kind),
      k_(k),
      state_(make_objective_state(kind, graph_.node_count(), k)) {}

PathSet OnlinePlacer::paths_for(const Service& service, NodeId h) const {
  PathSet paths(graph_.node_count());
  for (NodeId c : service.clients)
    paths.add(MeasurementPath(graph_.node_count(), routing_.route(c, h)));
  return paths;
}

NodeId OnlinePlacer::add_service(const Service& service) {
  SPLACE_EXPECTS(!service.clients.empty());
  SPLACE_EXPECTS(service.alpha >= 0.0 && service.alpha <= 1.0);
  for (NodeId c : service.clients)
    SPLACE_EXPECTS(graph_.is_valid_node(c));

  const DistanceProfile profile =
      distance_profile(routing_, service.clients);
  const std::vector<NodeId> hosts =
      candidate_hosts(profile, service.alpha);

  NodeId best = kInvalidNode;
  double best_value = 0;
  bool have_best = false;
  for (NodeId h : hosts) {
    const double value = state_->gain(paths_for(service, h));
    if (!have_best || value > best_value) {
      have_best = true;
      best_value = value;
      best = h;
    }
  }
  SPLACE_ENSURES(have_best);

  state_->add_paths(paths_for(service, best));
  services_.push_back(Entry{service, best, true});
  return best;
}

void OnlinePlacer::remove_service(std::size_t service_id) {
  SPLACE_EXPECTS(service_id < services_.size());
  SPLACE_EXPECTS(services_[service_id].active);
  services_[service_id].active = false;
  rebuild_state();
}

void OnlinePlacer::rebuild_state() {
  state_ = make_objective_state(kind_, graph_.node_count(), k_);
  for (const Entry& entry : services_)
    if (entry.active)
      state_->add_paths(paths_for(entry.service, entry.host));
}

std::vector<OnlinePlacer::ActiveService> OnlinePlacer::active_services()
    const {
  std::vector<ActiveService> out;
  for (std::size_t id = 0; id < services_.size(); ++id)
    if (services_[id].active)
      out.push_back(
          ActiveService{id, services_[id].service, services_[id].host});
  return out;
}

double OnlinePlacer::objective_value() const { return state_->value(); }

PathSet OnlinePlacer::current_paths() const {
  PathSet all(graph_.node_count());
  for (const Entry& entry : services_)
    if (entry.active) all.add_all(paths_for(entry.service, entry.host));
  return all;
}

}  // namespace splace
