// Accelerated greedy placement (Minoux's lazy evaluation).
//
// Algorithm 2 recomputes the marginal gain of every unplaced (service, host)
// pair in every iteration. For a submodular objective the gains can only
// shrink as paths accumulate, so a stale cached gain is a valid upper bound:
// keep candidates in a max-heap keyed by their last-known gain and only
// re-evaluate the top until it is fresh. Selections are provably identical
// to plain greedy for coverage/distinguishability (up to equal-gain ties,
// which both variants break deterministically by (service, host) order), at
// a fraction of the objective evaluations — see bench_ablation A5.
//
// For the non-submodular identifiability objective, lazy evaluation is a
// heuristic (a stale bound may hide a grown gain); the implementation still
// works but can diverge from plain greedy.
#pragma once

#include <cstddef>

#include "monitoring/objective.hpp"
#include "placement/greedy.hpp"
#include "placement/service.hpp"

namespace splace {

struct LazyGreedyResult {
  Placement placement;
  double objective_value = 0;
  std::vector<std::size_t> order;   ///< service indices in placement order
  std::size_t evaluations = 0;      ///< # objective evaluations performed
};

/// Lazy variant of Algorithm 2 (takes ownership of a fresh `state`).
LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       std::unique_ptr<ObjectiveState> state);

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       ObjectiveKind kind, std::size_t k = 1);

/// # evaluations plain Algorithm 2 would perform on this instance
/// (Σ over iterations of remaining candidate pairs), for comparison.
std::size_t plain_greedy_evaluation_count(const ProblemInstance& instance);

}  // namespace splace
