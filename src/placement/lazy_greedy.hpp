// Accelerated greedy placement (Minoux's lazy evaluation).
//
// Algorithm 2 recomputes the marginal gain of every unplaced (service, host)
// pair in every iteration. For a submodular objective the gains can only
// shrink as paths accumulate, so a stale cached gain is a valid upper bound:
// keep candidates in a max-heap keyed by their last-known gain and only
// re-evaluate the top until it is fresh. Selections are provably identical
// to plain greedy for coverage/distinguishability (up to equal-gain ties,
// which both variants break deterministically by (service, host) order), at
// a fraction of the objective evaluations — see bench_ablation A5.
//
// For the non-submodular identifiability objective, lazy evaluation is a
// heuristic (a stale bound may hide a grown gain); the implementation still
// works but can diverge from plain greedy.
#pragma once

#include <cstddef>

#include "monitoring/objective.hpp"
#include "placement/greedy.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"

namespace splace {

struct LazyGreedyResult {
  Placement placement;
  double objective_value = 0;
  std::vector<std::size_t> order;   ///< service indices in placement order
  std::size_t evaluations = 0;      ///< # objective evaluations performed
};

/// Lazy variant of Algorithm 2 (takes ownership of a fresh `state`).
/// With options.threads > 1 the initial heap build and the stale-entry
/// re-evaluations run on a worker pool (one state clone per worker per
/// batch). Heap pops consume the speculative batch results one at a time in
/// exactly the sequential order, so placements and objective values are
/// bit-identical to the sequential run for every thread count — even for
/// the non-submodular identifiability objective. Only `evaluations` may
/// exceed the sequential count (speculatively evaluated entries whose turn
/// never comes before the commit).
LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       std::unique_ptr<ObjectiveState> state,
                                       const PlacementOptions& options = {});

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       ObjectiveKind kind, std::size_t k = 1,
                                       const PlacementOptions& options = {});

/// # evaluations plain Algorithm 2 performs on this instance when services
/// commit in `order` (Σ over iterations of remaining candidate pairs).
/// `order` is the commit order of the run being compared against, e.g.
/// GreedyResult::order or LazyGreedyResult::order; it must be a permutation
/// of the service indices.
std::size_t plain_greedy_evaluation_count(const ProblemInstance& instance,
                                          const std::vector<std::size_t>& order);

}  // namespace splace
