#include "placement/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace splace {

std::size_t p_independence_parameter(const ProblemInstance& instance) {
  double r_min = std::numeric_limits<double>::infinity();
  double r_max = 0;
  for (const Service& svc : instance.services()) {
    SPLACE_EXPECTS(svc.demand > 0);
    r_min = std::min(r_min, svc.demand);
    r_max = std::max(r_max, svc.demand);
  }
  return static_cast<std::size_t>(std::ceil(r_max / r_min)) + 1;
}

CapacityGreedyResult greedy_capacity_placement(
    const ProblemInstance& instance, const CapacityConstraints& constraints,
    ObjectiveKind kind, std::size_t k) {
  SPLACE_EXPECTS(constraints.host_capacity.size() == instance.node_count());
  for (const Service& svc : instance.services())
    SPLACE_EXPECTS(svc.demand > 0);

  std::unique_ptr<ObjectiveState> state =
      make_objective_state(kind, instance.node_count(), k);
  std::vector<double> remaining = constraints.host_capacity;

  CapacityGreedyResult result;
  result.placement.assign(instance.service_count(), kInvalidNode);
  std::vector<bool> placed(instance.service_count(), false);

  for (std::size_t iter = 0; iter < instance.service_count(); ++iter) {
    std::size_t best_service = instance.service_count();
    NodeId best_host = kInvalidNode;
    double best_value = 0;
    bool have_best = false;

    for (std::size_t s = 0; s < instance.service_count(); ++s) {
      if (placed[s]) continue;
      const double demand = instance.services()[s].demand;
      for (NodeId h : instance.candidate_hosts(s)) {
        if (remaining[h] < demand) continue;  // capacity-infeasible
        const double value = state->gain(instance.arena_paths_for(s, h));
        if (!have_best || value > best_value) {
          have_best = true;
          best_value = value;
          best_service = s;
          best_host = h;
        }
      }
    }
    if (!have_best) break;  // every remaining service is capacity-blocked

    placed[best_service] = true;
    result.placement[best_service] = best_host;
    remaining[best_host] -= instance.services()[best_service].demand;
    state->add_paths(instance.paths_for(best_service, best_host));
  }

  result.complete = std::all_of(placed.begin(), placed.end(),
                                [](bool b) { return b; });
  result.objective_value = state->value();
  return result;
}

}  // namespace splace
