// The pluggable placement-algorithm registry — the portfolio API.
//
// Algorithm choice used to be a hard-coded enum (core/experiment.hpp's
// Algorithm) threaded through the engine request types, the replay grammar,
// and the CLI: adding one algorithm meant touching a dozen dispatch sites.
// PlacementAlgorithm turns each search engine into a named strategy object
// behind a string-keyed registry, so the portfolio runner, the engine's
// PortfolioRequest, `splace_cli --list-algorithms`, and the benches all
// enumerate one source of truth.
//
// The legacy free functions (greedy_placement, lazy_greedy_placement,
// stochastic_greedy_placement, brute_force_k1, local_search_placement,
// best_qos_placement, random_placement, OnlinePlacer) remain the
// implementation — registry entries are thin adapters over them, and every
// entry is bit-identical to the free-function call it wraps (gated by
// tests/test_algorithm_registry.cpp). New call sites should prefer the
// registry; the free functions are the deprecated-in-docs spelling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"

namespace splace {

/// Normalized inputs every registered algorithm runs from. Fields an
/// algorithm does not consume are ignored (and documented per entry):
/// `seed` is read only by "random", `options.stochastic_pool` only by
/// algorithms that declare supports_stochastic(), `bf_budget` only by
/// "brute_force".
struct AlgorithmSpec {
  /// Objective the search maximizes (ignored by the objective-free
  /// baselines "qos", "random", and "pair_cover").
  ObjectiveKind objective = ObjectiveKind::Distinguishability;
  std::size_t k = 1;            ///< failure bound for the objective
  std::uint64_t seed = 42;      ///< RNG seed ("random" only)
  PlacementOptions options;     ///< threads / profiling / stochastic pool
  /// Search-space budget for "brute_force": the entry throws InvalidInput
  /// instead of starting a sweep larger than this many placements.
  std::uint64_t bf_budget = 50'000'000;
};

/// What every algorithm reports. `reported_value` is the value the
/// algorithm itself optimizes — the spec objective for the greedy family,
/// the pair-coverage count for "pair_cover", 0 for the objective-free
/// baselines. Cross-algorithm comparison under one common objective is the
/// portfolio runner's job (portfolio/portfolio.hpp), not the entry's.
struct AlgorithmResult {
  Placement placement;
  double reported_value = 0;
  std::size_t evaluations = 0;  ///< objective/gain evaluations (0 = untracked)
};

/// One named placement strategy. Implementations must be stateless across
/// run() calls (a single instance may serve concurrent engine workers) and
/// deterministic: equal (instance, spec) inputs always produce bit-identical
/// results.
class PlacementAlgorithm {
 public:
  virtual ~PlacementAlgorithm() = default;

  /// Registry key, e.g. "greedy" or "pair_cover".
  virtual std::string name() const = 0;

  /// Whether options.stochastic_pool applies to this algorithm. execute()
  /// rejects a non-zero pool on algorithms that return false — silently
  /// ignoring a sampling request would misreport exact results as sampled.
  virtual bool supports_stochastic() const { return false; }

  /// The strategy itself. Called through execute(); spec is pre-validated.
  virtual AlgorithmResult run(const ProblemInstance& instance,
                              const AlgorithmSpec& spec) const = 0;

  /// Validated entry point: checks spec.k >= 1 and the stochastic-pool
  /// contract above (InvalidInput on violation), then runs.
  AlgorithmResult execute(const ProblemInstance& instance,
                          const AlgorithmSpec& spec) const;
};

/// Factory signature for register_algorithm.
using AlgorithmFactory = std::function<std::unique_ptr<PlacementAlgorithm>()>;

/// Registers a new algorithm under `name`. Throws InvalidInput on an empty
/// name, a null factory, or a name already registered (built-in or not) —
/// shadowing an existing entry would silently change every caller.
/// Thread-safe, as are all registry reads.
void register_algorithm(const std::string& name, AlgorithmFactory factory);

/// Every registered name, ascending — the single source the CLI, the
/// portfolio runner's default set, and error messages enumerate.
std::vector<std::string> algorithm_names();

/// True iff `name` resolves (cheap; no construction).
bool is_registered_algorithm(const std::string& name);

/// Constructs the named algorithm. Throws InvalidInput listing every known
/// name when `name` is not registered.
std::unique_ptr<PlacementAlgorithm> make_algorithm(const std::string& name);

}  // namespace splace
