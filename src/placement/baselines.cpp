#include "placement/baselines.hpp"

namespace splace {

Placement best_qos_placement(const ProblemInstance& instance) {
  Placement placement(instance.service_count());
  for (std::size_t s = 0; s < instance.service_count(); ++s)
    placement[s] = instance.best_qos_host(s);
  return placement;
}

Placement k_median_placement(const ProblemInstance& instance) {
  Placement placement(instance.service_count());
  for (std::size_t s = 0; s < instance.service_count(); ++s) {
    NodeId best = kInvalidNode;
    std::uint64_t best_total = 0;
    for (NodeId h : instance.candidate_hosts(s)) {
      std::uint64_t total = 0;
      for (NodeId c : instance.services()[s].clients)
        total += instance.route(c, h).size() - 1;  // hop count under the
                                                   // instance's routing
      if (best == kInvalidNode || total < best_total) {
        best = h;
        best_total = total;
      }
    }
    placement[s] = best;
  }
  return placement;
}

Placement random_placement(const ProblemInstance& instance, Rng& rng) {
  Placement placement(instance.service_count());
  for (std::size_t s = 0; s < instance.service_count(); ++s) {
    const std::vector<NodeId>& hosts = instance.candidate_hosts(s);
    placement[s] = hosts[rng.index(hosts.size())];
  }
  return placement;
}

}  // namespace splace
