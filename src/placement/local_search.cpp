#include "placement/local_search.hpp"

#include "util/error.hpp"

namespace splace {

namespace {

/// f(paths of `placement`) via a fresh objective state.
double placement_value(const ProblemInstance& instance,
                       const Placement& placement, ObjectiveKind kind,
                       std::size_t k, std::size_t& evaluations) {
  std::unique_ptr<ObjectiveState> state =
      make_objective_state(kind, instance.node_count(), k);
  state->add_paths(instance.paths_for_placement(placement));
  ++evaluations;
  return state->value();
}

}  // namespace

LocalSearchResult local_search_placement(const ProblemInstance& instance,
                                         const Placement& start,
                                         ObjectiveKind kind, std::size_t k,
                                         std::size_t max_moves) {
  SPLACE_EXPECTS(start.size() == instance.service_count());
  for (std::size_t s = 0; s < start.size(); ++s)
    SPLACE_EXPECTS(instance.is_candidate(s, start[s]));

  LocalSearchResult result;
  result.placement = start;
  result.objective_value =
      placement_value(instance, result.placement, kind, k,
                      result.evaluations);

  while (result.moves.size() < max_moves) {
    // Best single-service move. Unlike the greedy's marginal-gain loop we
    // must re-evaluate the full placement per move: removing a service's
    // paths is not an incremental operation on the refinement structures.
    std::size_t best_service = instance.service_count();
    NodeId best_host = kInvalidNode;
    double best_value = result.objective_value;

    for (std::size_t s = 0; s < instance.service_count(); ++s) {
      const NodeId current_host = result.placement[s];
      for (NodeId h : instance.candidate_hosts(s)) {
        if (h == current_host) continue;
        Placement trial = result.placement;
        trial[s] = h;
        const double value =
            placement_value(instance, trial, kind, k, result.evaluations);
        if (value > best_value) {  // strict improvement only
          best_value = value;
          best_service = s;
          best_host = h;
        }
      }
    }

    if (best_service == instance.service_count()) break;  // local optimum
    result.moves.push_back(LocalSearchResult::Move{
        best_service, result.placement[best_service], best_host});
    result.placement[best_service] = best_host;
    result.objective_value = best_value;
  }
  return result;
}

}  // namespace splace
