// Execution options shared by the placement search engines (greedy, lazy
// greedy, brute force). Placement results are bit-identical for every
// thread count: the engines reduce candidate chunks deterministically and
// break ties by (service, host) order, so `threads` is purely a speed knob.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>

namespace splace {

struct PlacementOptions {
  /// Worker threads for candidate evaluation: 1 = sequential (no pool),
  /// 0 = one per hardware thread, n = exactly n workers.
  std::size_t threads = 1;

  /// The actual worker count `threads` resolves to.
  std::size_t resolved_threads() const {
    if (threads != 0) return threads;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
};

}  // namespace splace
