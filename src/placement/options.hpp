// Execution options shared by the placement search engines (greedy, lazy
// greedy, brute force). Placement results are bit-identical for every
// thread count: the engines reduce candidate chunks deterministically and
// break ties by (service, host) order, so `threads` is purely a speed knob.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

namespace splace {

/// One committed round of a greedy search, reported through
/// PlacementOptions::profile_round. Purely observational: the profile is a
/// record of what the search did, never an input to it.
struct GreedyRoundProfile {
  std::size_t round = 0;        ///< commit index, 0-based
  std::size_t candidates = 0;   ///< unplaced (service, host) pairs this round
  std::size_t evaluations = 0;  ///< gain evaluations performed (lazy greedy
                                ///< evaluates fewer than `candidates`)
  double seconds = 0;           ///< wall time of the round's arg-max + commit
  std::size_t service = 0;      ///< committed service index
  std::uint32_t host = 0;       ///< committed host (NodeId)
  double gain = 0;              ///< committed marginal gain
};

struct PlacementOptions {
  PlacementOptions() = default;
  /// `PlacementOptions{n}` keeps meaning "n worker threads, no profiling"
  /// now that the struct has a second member — without this constructor the
  /// one-element brace init would warn under -Wmissing-field-initializers.
  PlacementOptions(std::size_t worker_threads) : threads(worker_threads) {}

  /// Worker threads for candidate evaluation: 1 = sequential (no pool),
  /// 0 = one per hardware thread, n = exactly n workers.
  std::size_t threads = 1;

  /// Optional per-round profiling hook, invoked once after every committed
  /// round with that round's candidate-evaluation timings. Empty (the
  /// default) disables profiling entirely: the search then takes no clock
  /// readings and pays a single branch per round. The callback runs on the
  /// thread driving the search, after the round's commit — it observes the
  /// search and must not mutate the instance or options.
  std::function<void(const GreedyRoundProfile&)> profile_round;

  /// Per-round candidate sample size for stochastic_greedy_placement:
  /// 0 (the default) evaluates every unplaced (service, host) pair — exact
  /// greedy — while n > 0 draws n pairs uniformly without replacement each
  /// round. Called directly, the exact engines (greedy, lazy greedy, brute
  /// force) ignore it; through the algorithm registry
  /// (placement/algorithm.hpp) a nonzero pool is REJECTED by entries that
  /// do not declare supports_stochastic() — a silent ignore would make
  /// "same spec, different algorithm" portfolio entries incomparable.
  std::size_t stochastic_pool = 0;

  /// Seed for the stochastic sampler; a fixed seed makes runs bit-for-bit
  /// reproducible. Ignored when stochastic_pool == 0.
  std::uint64_t stochastic_seed = 0x9e3779b97f4a7c15ull;

  /// The actual worker count `threads` resolves to.
  std::size_t resolved_threads() const {
    if (threads != 0) return threads;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
};

}  // namespace splace
