#include "placement/pair_cover.hpp"

#include <bit>
#include <cstdint>
#include <string>
#include <utility>

#include "monitoring/path_arena.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

/// Incremental pair-coverage planes over the node universe: once[w] holds
/// nodes on ≥1 committed service's union, twice[w] nodes on ≥2.
struct CoverPlanes {
  std::vector<std::uint64_t> once;
  std::vector<std::uint64_t> twice;

  explicit CoverPlanes(std::size_t words) : once(words, 0), twice(words, 0) {}

  /// (newly pair-covered, newly once-covered) if this sparse union joined.
  std::pair<std::size_t, std::size_t> gain(const PathArena& arena,
                                           std::uint32_t set) const {
    const std::size_t n = arena.set_union_word_count(set);
    const std::uint32_t* words = arena.set_union_words(set);
    const std::uint64_t* masks = arena.set_union_masks(set);
    std::size_t pair_gain = 0;
    std::size_t cover_gain = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t mask = masks[i];
      const std::uint64_t have_once = once[words[i]];
      pair_gain +=
          static_cast<std::size_t>(std::popcount(mask & have_once & ~twice[words[i]]));
      cover_gain += static_cast<std::size_t>(std::popcount(mask & ~have_once));
    }
    return {pair_gain, cover_gain};
  }

  void commit(const PathArena& arena, std::uint32_t set) {
    const std::size_t n = arena.set_union_word_count(set);
    const std::uint32_t* words = arena.set_union_words(set);
    const std::uint64_t* masks = arena.set_union_masks(set);
    for (std::size_t i = 0; i < n; ++i) {
      twice[words[i]] |= masks[i] & once[words[i]];
      once[words[i]] |= masks[i];
    }
  }

  std::size_t count(const std::vector<std::uint64_t>& plane) const {
    std::size_t total = 0;
    for (const std::uint64_t w : plane)
      total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }
};

std::uint32_t arena_set_of(const ProblemInstance& instance, std::size_t s,
                           NodeId host) {
  return instance.arena_paths_for(s, host).set;
}

}  // namespace

PairCoverResult pair_cover_placement(const ProblemInstance& instance,
                                     const PlacementOptions& options) {
  (void)options;  // accepted for interface symmetry; the scan is sequential
  const PathArena& arena = instance.arena();
  const std::size_t services = instance.service_count();
  CoverPlanes planes(arena.words_per_row());

  PairCoverResult result;
  result.placement.assign(services, kInvalidNode);
  std::vector<bool> placed(services, false);

  for (std::size_t round = 0; round < services; ++round) {
    bool have_best = false;
    std::size_t best_pair = 0;
    std::size_t best_cover = 0;
    std::size_t best_service = 0;
    NodeId best_host = kInvalidNode;
    for (std::size_t s = 0; s < services; ++s) {
      if (placed[s]) continue;
      for (const NodeId h : instance.candidate_hosts(s)) {
        const auto [pair_gain, cover_gain] =
            planes.gain(arena, arena_set_of(instance, s, h));
        ++result.evaluations;
        // Strict > keeps the first-seen pair among ties: candidates are
        // scanned in ascending (service, host) order, the library-wide
        // deterministic tie-break.
        if (!have_best || pair_gain > best_pair ||
            (pair_gain == best_pair && cover_gain > best_cover)) {
          have_best = true;
          best_pair = pair_gain;
          best_cover = cover_gain;
          best_service = s;
          best_host = h;
        }
      }
    }
    SPLACE_ENSURES(have_best);
    planes.commit(arena, arena_set_of(instance, best_service, best_host));
    placed[best_service] = true;
    result.placement[best_service] = best_host;
    result.order.push_back(best_service);
    result.pair_gains.push_back(best_pair);
  }

  result.pair_covered = planes.count(planes.twice);
  result.covered = planes.count(planes.once);
  return result;
}

std::size_t pair_covered_count(const ProblemInstance& instance,
                               const Placement& placement) {
  if (placement.size() != instance.service_count())
    throw InvalidInput("pair_covered_count: placement size " +
                       std::to_string(placement.size()) + " != service count " +
                       std::to_string(instance.service_count()));
  const PathArena& arena = instance.arena();
  CoverPlanes planes(arena.words_per_row());
  for (std::size_t s = 0; s < placement.size(); ++s) {
    if (!instance.is_candidate(s, placement[s]))
      throw InvalidInput("pair_covered_count: host " +
                         std::to_string(placement[s]) +
                         " is not a candidate for service " +
                         std::to_string(s));
    planes.commit(arena, arena_set_of(instance, s, placement[s]));
  }
  return planes.count(planes.twice);
}

}  // namespace splace
