#include "placement/stochastic.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/random.hpp"

namespace splace {

namespace {

/// One unplaced (service, host) pair with its stale upper bound: the gain
/// from the most recent round that evaluated it (+inf before the first).
struct Candidate {
  std::size_t service = 0;
  NodeId host = kInvalidNode;
  double ub = std::numeric_limits<double>::infinity();
};

}  // namespace

StochasticGreedyResult stochastic_greedy_placement(
    const ProblemInstance& instance, std::unique_ptr<ObjectiveState> state,
    const PlacementOptions& options) {
  SPLACE_EXPECTS(state != nullptr);
  const std::size_t n_services = instance.service_count();

  StochasticGreedyResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);

  std::vector<Candidate> cands;
  for (std::size_t s = 0; s < n_services; ++s)
    for (NodeId h : instance.candidate_hosts(s))
      cands.push_back(Candidate{s, h, std::numeric_limits<double>::infinity()});

  Rng rng(options.stochastic_seed);
  std::vector<std::size_t> alive;    // indices into cands, (service, host) asc
  std::vector<std::size_t> sample;   // this round's draw
  alive.reserve(cands.size());

  for (std::size_t round = 0; round < n_services; ++round) {
    alive.clear();
    for (std::size_t i = 0; i < cands.size(); ++i)
      if (!placed[cands[i].service]) alive.push_back(i);
    SPLACE_ENSURES(!alive.empty());

    const bool exhaustive = options.stochastic_pool == 0 ||
                            options.stochastic_pool >= alive.size();
    const std::size_t pool =
        exhaustive ? alive.size()
                   : std::min(options.stochastic_pool, alive.size());

    // Uniform draw without replacement (partial Fisher–Yates); an exhaustive
    // round keeps `alive` untouched so the scan order — hence every
    // tie-break — matches plain greedy's ascending (service, host) sweep.
    sample = alive;
    if (!exhaustive) {
      for (std::size_t i = 0; i < pool; ++i) {
        const std::size_t j = i + rng.index(sample.size() - i);
        std::swap(sample[i], sample[j]);
      }
      sample.resize(pool);
      // Evaluate in descending stale-bound order so the break below prunes
      // the longest possible tail; ties fall back to (service, host) order.
      std::sort(sample.begin(), sample.end(),
                [&](std::size_t a, std::size_t b) {
                  if (cands[a].ub != cands[b].ub)
                    return cands[a].ub > cands[b].ub;
                  return a < b;  // index order == (service, host) order
                });
    }
    result.sampled += pool;

    std::size_t best_index = 0;
    double best_gain = 0;
    bool have_best = false;
    for (std::size_t idx : sample) {
      Candidate& c = cands[idx];
      // Submodularity makes a stale gain an upper bound on the fresh one, so
      // a bound strictly below the incumbent cannot win — nor tie and steal
      // the (service, host) tie-break, since equal bounds were evaluated
      // first. Exhaustive rounds skip the pruning: they evaluate everything,
      // keeping full-pool runs identical to plain greedy even for the
      // non-submodular identifiability objective.
      if (!exhaustive && have_best && c.ub < best_gain) break;
      const double gain = state->gain(instance.arena_paths_for(c.service, c.host));
      ++result.evaluations;
      c.ub = gain;
      if (!have_best || gain > best_gain ||
          (gain == best_gain && idx < best_index)) {
        have_best = true;
        best_gain = gain;
        best_index = idx;
      }
    }
    SPLACE_ENSURES(have_best);

    const Candidate& winner = cands[best_index];
    placed[winner.service] = true;
    result.placement[winner.service] = winner.host;
    result.order.push_back(winner.service);
    result.gains.push_back(best_gain);
    state->add_paths(instance.paths_for(winner.service, winner.host));
  }

  result.objective_value = state->value();
  return result;
}

StochasticGreedyResult stochastic_greedy_placement(
    const ProblemInstance& instance, ObjectiveKind kind, std::size_t k,
    const PlacementOptions& options) {
  return stochastic_greedy_placement(
      instance, make_objective_state(kind, instance.node_count(), k), options);
}

}  // namespace splace
