// Local search and bounded migration on top of an existing placement.
//
// Two operational situations the one-shot greedy does not cover:
//  * polish — start from any placement (greedy, QoS, legacy) and hill-climb
//    by single-service host moves until no move improves the objective;
//  * migration — the network changed (or monitoring was an afterthought)
//    and only a few services may be moved without disrupting users; choose
//    the best ≤ max_moves single-service relocations. This mirrors the
//    iterative placement/migration line of work the paper cites ([8]).
//
// Both are heuristics: each accepted move is the best available
// single-service change (strict improvement, deterministic tie-breaks).
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/service.hpp"

namespace splace {

struct LocalSearchResult {
  Placement placement;
  double objective_value = 0;
  /// Accepted moves in order: (service, old host, new host).
  struct Move {
    std::size_t service;
    NodeId from;
    NodeId to;
  };
  std::vector<Move> moves;
  std::size_t evaluations = 0;  ///< objective evaluations spent
};

/// Hill-climbs from `start` (must assign a candidate host per service) by
/// best-improvement single-service moves until a local optimum; at most
/// `max_moves` moves (SIZE_MAX = unbounded).
LocalSearchResult local_search_placement(
    const ProblemInstance& instance, const Placement& start,
    ObjectiveKind kind, std::size_t k = 1,
    std::size_t max_moves = static_cast<std::size_t>(-1));

/// Bounded migration: exactly local_search_placement with a move budget —
/// named separately because intent differs (minimal disruption vs polish).
inline LocalSearchResult migrate_placement(const ProblemInstance& instance,
                                           const Placement& current,
                                           std::size_t max_moves,
                                           ObjectiveKind kind,
                                           std::size_t k = 1) {
  return local_search_placement(instance, current, kind, k, max_moves);
}

}  // namespace splace
