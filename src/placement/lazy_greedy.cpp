#include "placement/lazy_greedy.hpp"

#include <queue>

#include "util/error.hpp"

namespace splace {

namespace {

struct HeapEntry {
  double gain;
  std::size_t service;
  NodeId host;
  std::size_t stamp;  ///< iteration at which `gain` was computed

  /// Max-heap by gain; ties resolve to (smaller service, smaller host) so
  /// lazy and plain greedy pick the same winner among equal gains.
  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    if (service != other.service) return service > other.service;
    return host > other.host;
  }
};

}  // namespace

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       std::unique_ptr<ObjectiveState> state) {
  SPLACE_EXPECTS(state != nullptr);
  const std::size_t n_services = instance.service_count();

  LazyGreedyResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);

  const double base = state->value();
  std::priority_queue<HeapEntry> heap;
  for (std::size_t s = 0; s < n_services; ++s) {
    for (NodeId h : instance.candidate_hosts(s)) {
      const double value = state->value_with(instance.paths_for(s, h));
      ++result.evaluations;
      heap.push(HeapEntry{value - base, s, h, 0});
    }
  }

  for (std::size_t iter = 0; iter < n_services; ++iter) {
    const double current = state->value();
    while (true) {
      SPLACE_ENSURES(!heap.empty());
      HeapEntry top = heap.top();
      heap.pop();
      if (placed[top.service]) continue;  // service already committed
      if (top.stamp != iter) {
        // Stale: re-evaluate against the current path set and re-insert.
        const double value =
            state->value_with(instance.paths_for(top.service, top.host));
        ++result.evaluations;
        heap.push(HeapEntry{value - current, top.service, top.host, iter});
        continue;
      }
      // Fresh top: by submodularity no other entry can beat it. Commit.
      placed[top.service] = true;
      result.placement[top.service] = top.host;
      result.order.push_back(top.service);
      state->add_paths(instance.paths_for(top.service, top.host));
      break;
    }
  }

  result.objective_value = state->value();
  return result;
}

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       ObjectiveKind kind, std::size_t k) {
  return lazy_greedy_placement(
      instance, make_objective_state(kind, instance.node_count(), k));
}

std::size_t plain_greedy_evaluation_count(const ProblemInstance& instance) {
  // Plain Algorithm 2 evaluates every remaining (service, host) pair each
  // iteration; committing one service removes exactly its candidate list.
  std::vector<std::size_t> sizes;
  std::size_t remaining_total = 0;
  for (std::size_t s = 0; s < instance.service_count(); ++s) {
    sizes.push_back(instance.candidate_hosts(s).size());
    remaining_total += sizes.back();
  }
  // The exact total depends on the commit order only through which candidate
  // lists drop out first; assume index order (exact when all |H_s| are
  // equal, as in the paper's setups where every service shares one α).
  std::size_t evaluations = 0;
  for (std::size_t iter = 0; iter < sizes.size(); ++iter) {
    evaluations += remaining_total;
    remaining_total -= sizes[iter];
  }
  return evaluations;
}

}  // namespace splace
