#include "placement/lazy_greedy.hpp"

#include <chrono>
#include <optional>
#include <queue>
#include <unordered_map>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace splace {

namespace {

struct HeapEntry {
  double gain;
  std::size_t service;
  NodeId host;
  std::size_t stamp;  ///< iteration at which `gain` was computed

  /// Max-heap by gain; ties resolve to (smaller service, smaller host) so
  /// lazy and plain greedy pick the same winner among equal gains.
  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    if (service != other.service) return service > other.service;
    return host > other.host;
  }
};

/// Key for the per-iteration cache of speculative re-evaluations.
std::size_t cache_key(const ProblemInstance& instance, std::size_t service,
                      NodeId host) {
  return service * instance.node_count() + host;
}

}  // namespace

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       std::unique_ptr<ObjectiveState> state,
                                       const PlacementOptions& options) {
  SPLACE_EXPECTS(state != nullptr);
  const std::size_t n_services = instance.service_count();
  const std::size_t workers = options.resolved_threads();

  LazyGreedyResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);

  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  // Gains within one iteration are evaluated against a fixed path set, so a
  // batch evaluated speculatively in parallel can be consumed entry by entry
  // as the heap surfaces them — the algorithm's state evolution stays
  // exactly sequential. The cache dies with each commit (state changes).
  std::unordered_map<std::size_t, double> fresh_gain;
  std::vector<HeapEntry> batch;
  std::vector<double> entry_gains;
  const std::size_t batch_target = workers * 4;

  const auto evaluate_batch = [&](const std::vector<HeapEntry>& entries) {
    parallel_for(*pool, entries.size(), [&](std::size_t begin,
                                            std::size_t end) {
      // One state clone per worker chunk (gain's scratch is not shareable).
      const std::unique_ptr<ObjectiveState> local = state->clone();
      for (std::size_t i = begin; i < end; ++i) {
        const HeapEntry& e = entries[i];
        entry_gains[i] =
            local->gain(instance.arena_paths_for(e.service, e.host));
      }
    });
  };

  using ProfileClock = std::chrono::steady_clock;
  const bool profiling = static_cast<bool>(options.profile_round);

  // Initial heap: every (service, host) pair's standalone gain.
  std::vector<HeapEntry> initial;
  for (std::size_t s = 0; s < n_services; ++s)
    for (NodeId h : instance.candidate_hosts(s))
      initial.push_back(HeapEntry{0.0, s, h, 0});
  std::size_t remaining_pairs = initial.size();
  if (!pool) {
    for (HeapEntry& e : initial)
      e.gain = state->gain(instance.arena_paths_for(e.service, e.host));
  } else {
    entry_gains.assign(initial.size(), 0.0);
    evaluate_batch(initial);
    for (std::size_t i = 0; i < initial.size(); ++i)
      initial[i].gain = entry_gains[i];
  }
  result.evaluations += initial.size();
  // The comparator is a strict total order over (gain, service, host), so
  // the pop sequence is independent of the heap's construction order.
  std::priority_queue<HeapEntry> heap(std::less<HeapEntry>{},
                                      std::move(initial));

  for (std::size_t iter = 0; iter < n_services; ++iter) {
    const ProfileClock::time_point round_start =
        profiling ? ProfileClock::now() : ProfileClock::time_point{};
    const std::size_t evaluations_before = result.evaluations;
    while (true) {
      SPLACE_ENSURES(!heap.empty());
      HeapEntry top = heap.top();
      if (placed[top.service]) {  // service already committed
        heap.pop();
        continue;
      }
      if (top.stamp == iter) {
        // Fresh top: by submodularity no other entry can beat it. Commit.
        heap.pop();
        placed[top.service] = true;
        result.placement[top.service] = top.host;
        result.order.push_back(top.service);
        state->add_paths(instance.paths_for(top.service, top.host));
        fresh_gain.clear();
        if (profiling) {
          GreedyRoundProfile profile;
          profile.round = iter;
          profile.candidates = remaining_pairs;
          profile.evaluations = result.evaluations - evaluations_before;
          profile.seconds = std::chrono::duration<double>(
                                ProfileClock::now() - round_start)
                                .count();
          profile.service = top.service;
          profile.host = top.host;
          profile.gain = top.gain;
          options.profile_round(profile);
        }
        remaining_pairs -= instance.candidate_hosts(top.service).size();
        break;
      }
      // Stale top: re-evaluate against the current path set and re-insert.
      if (!pool) {
        heap.pop();
        const double gain =
            state->gain(instance.arena_paths_for(top.service, top.host));
        ++result.evaluations;
        heap.push(HeapEntry{gain, top.service, top.host, iter});
        continue;
      }
      const auto cached =
          fresh_gain.find(cache_key(instance, top.service, top.host));
      if (cached != fresh_gain.end()) {
        heap.pop();
        heap.push(HeapEntry{cached->second, top.service, top.host, iter});
        continue;
      }
      // Uncached: speculatively pop a run of stale entries off the top and
      // evaluate them in one parallel batch. Re-inserting them unchanged
      // restores the heap, so consuming the cached values as the entries
      // resurface replays the sequential pop order exactly.
      batch.clear();
      while (!heap.empty() && batch.size() < batch_target) {
        const HeapEntry next = heap.top();
        if (placed[next.service]) {
          heap.pop();
          continue;
        }
        if (next.stamp == iter ||
            fresh_gain.count(cache_key(instance, next.service, next.host)))
          break;
        heap.pop();
        batch.push_back(next);
      }
      entry_gains.assign(batch.size(), 0.0);
      evaluate_batch(batch);
      result.evaluations += batch.size();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        fresh_gain[cache_key(instance, batch[i].service, batch[i].host)] =
            entry_gains[i];
        heap.push(batch[i]);
      }
    }
  }

  result.objective_value = state->value();
  return result;
}

LazyGreedyResult lazy_greedy_placement(const ProblemInstance& instance,
                                       ObjectiveKind kind, std::size_t k,
                                       const PlacementOptions& options) {
  return lazy_greedy_placement(
      instance, make_objective_state(kind, instance.node_count(), k), options);
}

std::size_t plain_greedy_evaluation_count(
    const ProblemInstance& instance, const std::vector<std::size_t>& order) {
  SPLACE_EXPECTS(order.size() == instance.service_count());
  // Plain Algorithm 2 evaluates every remaining (service, host) pair each
  // iteration; committing a service removes exactly its candidate list, so
  // the exact total follows the actual commit order.
  std::size_t remaining_total = 0;
  std::vector<bool> seen(instance.service_count(), false);
  for (std::size_t s = 0; s < instance.service_count(); ++s)
    remaining_total += instance.candidate_hosts(s).size();
  std::size_t evaluations = 0;
  for (std::size_t service : order) {
    SPLACE_EXPECTS(service < instance.service_count() && !seen[service]);
    seen[service] = true;
    evaluations += remaining_total;
    remaining_total -= instance.candidate_hosts(service).size();
  }
  return evaluations;
}

}  // namespace splace
