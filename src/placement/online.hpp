// Online monitoring-aware placement: services arrive (and leave) over time.
//
// Real deployments do not place all services at once — tenants onboard one
// by one. OnlinePlacer keeps the incremental objective state of everything
// placed so far and serves each arrival with one Algorithm-2 step: the
// candidate host maximizing the marginal objective gain given the paths
// already being monitored. For monotone submodular objectives this is the
// natural online greedy; departures rebuild the state (path removal is not
// incremental on the refinement structures) and optionally trigger a
// bounded re-optimization via local_search_placement.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"
#include "monitoring/objective.hpp"
#include "placement/candidates.hpp"
#include "placement/service.hpp"

namespace splace {

class OnlinePlacer {
 public:
  /// Binds to a network. All services later added share this topology and
  /// the given objective. Requires k >= 1.
  OnlinePlacer(Graph graph, ObjectiveKind kind, std::size_t k = 1);

  const Graph& graph() const { return graph_; }
  std::size_t service_count() const { return services_.size(); }

  /// Places `service` (clients + α validated against the topology) on its
  /// best candidate host given everything already placed; returns the host.
  NodeId add_service(const Service& service);

  /// Removes the i-th still-active service (index into arrival order,
  /// skipping removed ones is the caller's bookkeeping: use ids from
  /// active_services()). Rebuilds the objective state from the survivors.
  void remove_service(std::size_t service_id);

  /// Currently active (service_id, host) assignments, ascending id.
  struct ActiveService {
    std::size_t id;
    Service service;
    NodeId host;
  };
  std::vector<ActiveService> active_services() const;

  /// Current objective value over all active services' paths.
  double objective_value() const;

  /// The union path set currently monitored.
  PathSet current_paths() const;

 private:
  Graph graph_;
  RoutingTable routing_;
  ObjectiveKind kind_;
  std::size_t k_;
  std::unique_ptr<ObjectiveState> state_;

  struct Entry {
    Service service;
    NodeId host;
    bool active;
  };
  std::vector<Entry> services_;

  /// One path per client for `service` hosted at `h`.
  PathSet paths_for(const Service& service, NodeId h) const;
  void rebuild_state();
};

}  // namespace splace
