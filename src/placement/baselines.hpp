// The paper's baseline placements (Section VI):
//  * QoS — each service at a host minimizing the maximum client distance
//    (what a traditional QoS-only placement would do);
//  * RD  — uniform random host from each service's QoS-feasible candidates.
#pragma once

#include "placement/service.hpp"
#include "util/random.hpp"

namespace splace {

/// Best-QoS placement: deterministic, ignores monitoring entirely.
Placement best_qos_placement(const ProblemInstance& instance);

/// Random placement under QoS constraints: h_s uniform over H_s.
Placement random_placement(const ProblemInstance& instance, Rng& rng);

/// k-median-style baseline: each service at the candidate host minimizing
/// the *sum* of client distances (the other classic facility-location
/// objective; best_qos_placement minimizes the maximum). Restricted to H_s,
/// smallest id among ties.
Placement k_median_placement(const ProblemInstance& instance);

}  // namespace splace
