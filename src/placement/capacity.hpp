// Capacity-constrained greedy placement (paper Section VII-A).
//
// Node capacities  Σ_{s : h_s = h} r_s ≤ R_h  break the partition-matroid
// structure, but the feasible partial placements still form a p-independence
// system with p = ⌈r_max / r_min⌉ + 1, so the same greedy achieves a
// 1/(p+1)-approximation for the submodular objectives (Theorem 21) — at best
// 1/3 when all services consume equal resources.
#pragma once

#include <vector>

#include "monitoring/objective.hpp"
#include "placement/service.hpp"

namespace splace {

/// Per-host resource budgets R_h (indexed by node id). Service demands r_s
/// come from Service::demand.
struct CapacityConstraints {
  std::vector<double> host_capacity;
};

/// p = ⌈r_max / r_min⌉ + 1 for the instance's demands (Section VII-A).
/// Requires every demand > 0.
std::size_t p_independence_parameter(const ProblemInstance& instance);

struct CapacityGreedyResult {
  Placement placement;            ///< kInvalidNode where a service is unplaced
  bool complete = false;          ///< true iff every service was placed
  double objective_value = 0;
};

/// Algorithm 2 restricted to capacity-feasible (service, host) pairs. A
/// service with no remaining feasible host stays unplaced (complete=false) —
/// greedy over a p-independence system has no backtracking.
/// Requires capacity vector sized to the node count and positive demands.
CapacityGreedyResult greedy_capacity_placement(
    const ProblemInstance& instance, const CapacityConstraints& constraints,
    ObjectiveKind kind, std::size_t k = 1);

}  // namespace splace
