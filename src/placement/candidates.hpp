// Candidate host computation (paper Section III-A).
//
// The QoS constraint is relative: a host h is feasible for service s iff its
// worst-case client distance d(C_s, h), normalized against the best and worst
// achievable over all hosts,
//
//     d̄(C_s, h) = (d(C_s, h) − d_min(C_s)) / (d_max(C_s) − d_min(C_s)),
//
// does not exceed α_s. H_s is nonempty for every α_s ≥ 0 (it contains the
// d_min host), and at α_s = 1 every (reachable) node qualifies.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"

namespace splace {

/// Distance profile of one client set over all potential hosts.
struct DistanceProfile {
  /// d(C_s, h) per host; kUnreachable where some client cannot reach h.
  std::vector<std::uint32_t> worst;
  std::uint32_t d_min = 0;  ///< over reachable hosts
  std::uint32_t d_max = 0;
};

/// Computes d(C_s, ·), d_min, d_max. Requires ≥1 client and ≥1 host
/// reachable from every client.
DistanceProfile distance_profile(const RoutingTable& routing,
                                 const std::vector<NodeId>& clients);

/// d̄(C_s, h) from a profile; 0 when d_max == d_min. Requires h reachable.
double relative_distance(const DistanceProfile& profile, NodeId h);

/// H_s = { h : d̄(C_s, h) ≤ alpha }, ascending id. Requires alpha in [0, 1].
std::vector<NodeId> candidate_hosts(const DistanceProfile& profile,
                                    double alpha);

}  // namespace splace
