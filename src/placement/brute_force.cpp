#include "placement/brute_force.hpp"

#include <limits>
#include <mutex>

#include "util/error.hpp"

namespace splace {

std::uint64_t search_space_size(const ProblemInstance& instance) {
  std::uint64_t total = 1;
  for (std::size_t s = 0; s < instance.service_count(); ++s) {
    const std::uint64_t options = instance.candidate_hosts(s).size();
    if (total > std::numeric_limits<std::uint64_t>::max() / options)
      return std::numeric_limits<std::uint64_t>::max();
    total *= options;
  }
  return total;
}

namespace {

/// Iterates `choice` through the mixed-radix counter over option counts.
/// Returns false after the last combination.
bool next_choice(std::vector<std::size_t>& choice,
                 const ProblemInstance& instance) {
  for (std::size_t s = 0; s < choice.size(); ++s) {
    if (++choice[s] < instance.candidate_hosts(s).size()) return true;
    choice[s] = 0;
  }
  return false;
}

Placement to_placement(const std::vector<std::size_t>& choice,
                       const ProblemInstance& instance) {
  Placement placement(choice.size());
  for (std::size_t s = 0; s < choice.size(); ++s)
    placement[s] = instance.candidate_hosts(s)[choice[s]];
  return placement;
}

}  // namespace

std::optional<BruteForceK1Result> brute_force_k1(
    const ProblemInstance& instance, std::uint64_t max_placements) {
  if (search_space_size(instance) > max_placements) return std::nullopt;

  std::vector<std::vector<PathSet>> options(instance.service_count());
  for (std::size_t s = 0; s < instance.service_count(); ++s)
    for (NodeId h : instance.candidate_hosts(s))
      options[s].push_back(instance.paths_for(s, h));
  const FastK1Evaluator evaluator(instance.node_count(), options);

  BruteForceK1Result result;
  std::vector<std::size_t> choice(instance.service_count(), 0);
  bool first = true;
  do {
    const FastK1Evaluator::Metrics m = evaluator.evaluate(choice);
    ++result.placements_searched;
    if (first || m.coverage > result.coverage.value) {
      result.coverage = {to_placement(choice, instance), m.coverage};
    }
    if (first || m.identifiability > result.identifiability.value) {
      result.identifiability = {to_placement(choice, instance),
                                m.identifiability};
    }
    if (first || m.distinguishability > result.distinguishability.value) {
      result.distinguishability = {to_placement(choice, instance),
                                   m.distinguishability};
    }
    first = false;
  } while (next_choice(choice, instance));

  return result;
}

namespace {

/// Merge rule for ties: larger value wins; equal values keep the
/// lexicographically smaller placement (deterministic across thread
/// schedules).
void merge_optimum(OptimumK1& into, const OptimumK1& candidate, bool first) {
  if (first || candidate.value > into.value ||
      (candidate.value == into.value &&
       candidate.placement < into.placement)) {
    into = candidate;
  }
}

}  // namespace

std::optional<BruteForceK1Result> brute_force_k1_parallel(
    const ProblemInstance& instance, ThreadPool& pool,
    std::uint64_t max_placements) {
  if (search_space_size(instance) > max_placements) return std::nullopt;

  std::vector<std::vector<PathSet>> options(instance.service_count());
  for (std::size_t s = 0; s < instance.service_count(); ++s)
    for (NodeId h : instance.candidate_hosts(s))
      options[s].push_back(instance.paths_for(s, h));

  std::mutex merge_mutex;
  BruteForceK1Result result;
  bool any = false;

  const std::size_t first_options = instance.candidate_hosts(0).size();
  parallel_for(pool, first_options, [&](std::size_t begin, std::size_t end) {
    // Private evaluator: FastK1Evaluator's scratch is not thread-safe.
    const FastK1Evaluator evaluator(instance.node_count(), options);
    BruteForceK1Result local;
    std::uint64_t searched = 0;
    bool local_any = false;

    for (std::size_t first = begin; first < end; ++first) {
      std::vector<std::size_t> choice(instance.service_count(), 0);
      choice[0] = first;
      while (true) {
        const FastK1Evaluator::Metrics m = evaluator.evaluate(choice);
        ++searched;
        const Placement placement = to_placement(choice, instance);
        merge_optimum(local.coverage, {placement, m.coverage}, !local_any);
        merge_optimum(local.identifiability, {placement, m.identifiability},
                      !local_any);
        merge_optimum(local.distinguishability,
                      {placement, m.distinguishability}, !local_any);
        local_any = true;
        // Mixed-radix increment over slots 1..S-1 (slot 0 is pinned).
        std::size_t s = 1;
        for (; s < choice.size(); ++s) {
          if (++choice[s] < instance.candidate_hosts(s).size()) break;
          choice[s] = 0;
        }
        if (s == choice.size()) break;
      }
    }

    std::unique_lock<std::mutex> lock(merge_mutex);
    if (local_any) {
      merge_optimum(result.coverage, local.coverage, !any);
      merge_optimum(result.identifiability, local.identifiability, !any);
      merge_optimum(result.distinguishability, local.distinguishability,
                    !any);
      any = true;
    }
    result.placements_searched += searched;
  });

  return result;
}

std::optional<BruteForceK1Result> brute_force_k1(
    const ProblemInstance& instance, const PlacementOptions& options,
    std::uint64_t max_placements) {
  const std::size_t workers = options.resolved_threads();
  if (workers <= 1) return brute_force_k1(instance, max_placements);
  ThreadPool pool(workers);
  return brute_force_k1_parallel(instance, pool, max_placements);
}

BruteForceObjectiveResult brute_force_objective(
    const ProblemInstance& instance, ObjectiveKind kind, std::size_t k) {
  BruteForceObjectiveResult best;
  bool first = true;
  std::vector<std::size_t> choice(instance.service_count(), 0);
  do {
    const Placement placement = to_placement(choice, instance);
    const double value =
        evaluate_objective(kind, instance.paths_for_placement(placement), k);
    if (first || value > best.value) {
      best.placement = placement;
      best.value = value;
      first = false;
    }
  } while (next_choice(choice, instance));
  return best;
}

}  // namespace splace
