#include "placement/greedy.hpp"

#include "util/error.hpp"

namespace splace {

GreedyResult greedy_placement(const ProblemInstance& instance,
                              std::unique_ptr<ObjectiveState> state) {
  SPLACE_EXPECTS(state != nullptr);
  const std::size_t n_services = instance.service_count();

  GreedyResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);

  for (std::size_t iter = 0; iter < n_services; ++iter) {
    std::size_t best_service = n_services;
    NodeId best_host = kInvalidNode;
    double best_value = 0;
    bool have_best = false;

    // Line 4: arg max over unplaced services and their candidate hosts of
    // f(P ∪ P(C_s, h)). Ties resolve to the first candidate in (service,
    // host-id) order, making runs deterministic.
    for (std::size_t s = 0; s < n_services; ++s) {
      if (placed[s]) continue;
      for (NodeId h : instance.candidate_hosts(s)) {
        const double value = state->value_with(instance.paths_for(s, h));
        if (!have_best || value > best_value) {
          have_best = true;
          best_value = value;
          best_service = s;
          best_host = h;
        }
      }
    }
    SPLACE_ENSURES(have_best);

    // Lines 5-7: commit the winner.
    placed[best_service] = true;
    result.placement[best_service] = best_host;
    result.order.push_back(best_service);
    state->add_paths(instance.paths_for(best_service, best_host));
  }

  result.objective_value = state->value();
  return result;
}

GreedyResult greedy_placement(const ProblemInstance& instance,
                              ObjectiveKind kind, std::size_t k) {
  return greedy_placement(
      instance, make_objective_state(kind, instance.node_count(), k));
}

}  // namespace splace
