#include "placement/greedy.hpp"

#include <chrono>
#include <optional>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace splace {

namespace {

/// One unplaced (service, host) pair, flattened in (service, host) order so
/// chunked scans and the sequential scan visit candidates identically.
struct Candidate {
  std::size_t service;
  NodeId host;
};

/// Best candidate of one chunk scan. `index` is the position in the
/// flattened candidate list, which encodes the (service, host) tie-break:
/// smaller index wins among equal gains.
struct ChunkBest {
  double gain = 0;
  std::size_t index = 0;
  bool valid = false;
};

/// Scans candidates[begin, end) against `state`, keeping the first maximum.
ChunkBest scan_chunk(const ProblemInstance& instance,
                     const ObjectiveState& state,
                     const std::vector<Candidate>& candidates,
                     std::size_t begin, std::size_t end) {
  ChunkBest best;
  for (std::size_t i = begin; i < end; ++i) {
    const Candidate& c = candidates[i];
    const double gain =
        state.gain(instance.arena_paths_for(c.service, c.host));
    if (!best.valid || gain > best.gain) {
      best = ChunkBest{gain, i, true};
    }
  }
  return best;
}

}  // namespace

GreedyResult greedy_placement(const ProblemInstance& instance,
                              std::unique_ptr<ObjectiveState> state,
                              const PlacementOptions& options) {
  SPLACE_EXPECTS(state != nullptr);
  const std::size_t n_services = instance.service_count();
  const std::size_t workers = options.resolved_threads();

  GreedyResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);

  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  using ProfileClock = std::chrono::steady_clock;
  const bool profiling = static_cast<bool>(options.profile_round);

  std::vector<Candidate> candidates;
  for (std::size_t iter = 0; iter < n_services; ++iter) {
    const ProfileClock::time_point round_start =
        profiling ? ProfileClock::now() : ProfileClock::time_point{};
    // Line 4: arg max over unplaced services and their candidate hosts of
    // the marginal gain of P(C_s, h). Ties resolve to the first candidate
    // in (service, host-id) order, making runs deterministic.
    candidates.clear();
    for (std::size_t s = 0; s < n_services; ++s) {
      if (placed[s]) continue;
      for (NodeId h : instance.candidate_hosts(s))
        candidates.push_back(Candidate{s, h});
    }

    ChunkBest best;
    if (!pool) {
      best = scan_chunk(instance, *state, candidates, 0, candidates.size());
    } else {
      // One state clone per worker chunk per iteration (gain's scratch
      // buffers are not shareable across threads); the in-order fold keeps
      // the first maximum, reproducing the sequential tie-break exactly.
      best = parallel_reduce(
          *pool, candidates.size(), ChunkBest{},
          [&](std::size_t begin, std::size_t end) {
            const std::unique_ptr<ObjectiveState> local = state->clone();
            return scan_chunk(instance, *local, candidates, begin, end);
          },
          [](ChunkBest acc, const ChunkBest& chunk) {
            if (!chunk.valid) return acc;
            if (!acc.valid || chunk.gain > acc.gain) return chunk;
            return acc;
          });
    }
    SPLACE_ENSURES(best.valid);

    // Lines 5-7: commit the winner.
    const Candidate& winner = candidates[best.index];
    placed[winner.service] = true;
    result.placement[winner.service] = winner.host;
    result.order.push_back(winner.service);
    result.gains.push_back(best.gain);
    state->add_paths(instance.paths_for(winner.service, winner.host));

    if (profiling) {
      GreedyRoundProfile profile;
      profile.round = iter;
      profile.candidates = candidates.size();
      profile.evaluations = candidates.size();  // plain greedy scores all
      profile.seconds = std::chrono::duration<double>(ProfileClock::now() -
                                                      round_start)
                            .count();
      profile.service = winner.service;
      profile.host = winner.host;
      profile.gain = best.gain;
      options.profile_round(profile);
    }
  }

  result.objective_value = state->value();
  return result;
}

GreedyResult greedy_placement(const ProblemInstance& instance,
                              ObjectiveKind kind, std::size_t k,
                              const PlacementOptions& options) {
  return greedy_placement(
      instance, make_objective_state(kind, instance.node_count(), k), options);
}

}  // namespace splace
