#include "placement/interest.hpp"

#include "monitoring/coverage.hpp"
#include "monitoring/failure_sets.hpp"
#include "monitoring/identifiability.hpp"
#include "util/error.hpp"

namespace splace {

namespace {
std::size_t pairs_of(std::size_t n) { return n * (n - 1) / 2; }

bool is_interest_set(const std::vector<NodeId>& failure_set,
                     const DynamicBitset& interest) {
  for (NodeId v : failure_set)
    if (interest.test(v)) return true;
  return false;
}
}  // namespace

std::size_t interest_coverage(const PathSet& paths,
                              const DynamicBitset& interest) {
  SPLACE_EXPECTS(interest.size() == paths.node_count());
  return covered_set(paths).intersection_count(interest);
}

std::size_t interest_identifiability(const PathSet& paths, std::size_t k,
                                     const DynamicBitset& interest) {
  SPLACE_EXPECTS(interest.size() == paths.node_count());
  return identifiable_nodes(paths, k).intersection_count(interest);
}

std::size_t interest_distinguishability(const PathSet& paths, std::size_t k,
                                        const DynamicBitset& interest) {
  SPLACE_EXPECTS(interest.size() == paths.node_count());
  const SignatureGroups groups(paths, k);
  // Pairs with ≥1 interest member = C(T,2) − C(T−I,2); subtract the
  // indistinguishable such pairs group by group.
  std::size_t total_interest = 0;
  for_each_failure_set(paths.node_count(), k,
                       [&](const std::vector<NodeId>& f) {
                         if (is_interest_set(f, interest)) ++total_interest;
                       });
  const std::size_t total = groups.total_sets();
  std::size_t result = pairs_of(total) - pairs_of(total - total_interest);
  for (std::size_t g = 0; g < groups.group_count(); ++g) {
    const auto& members = groups.group(g);
    std::size_t interest_members = 0;
    for (const auto& f : members)
      if (is_interest_set(f, interest)) ++interest_members;
    result -= pairs_of(members.size()) -
              pairs_of(members.size() - interest_members);
  }
  return result;
}

std::size_t interest_identifiability_k1(const EquivalenceClasses& classes,
                                        const DynamicBitset& interest) {
  SPLACE_EXPECTS(interest.size() == classes.node_count());
  std::size_t count = 0;
  interest.for_each([&](std::size_t v) {
    if (classes.class_size(static_cast<NodeId>(v)) == 1) ++count;
  });
  return count;
}

std::size_t interest_distinguishability_k1(const EquivalenceClasses& classes,
                                           const DynamicBitset& interest) {
  SPLACE_EXPECTS(interest.size() == classes.node_count());
  const std::size_t vertices = classes.node_count() + 1;  // N ∪ {v0}
  const std::size_t interest_count = interest.count();
  std::size_t result =
      pairs_of(vertices) - pairs_of(vertices - interest_count);
  // Subtract indistinguishable interest pairs, walking each class once (via
  // its first still-unseen member).
  std::vector<bool> seen(vertices, false);
  for (NodeId x = 0; x < vertices; ++x) {
    if (seen[x]) continue;
    const auto& cls = classes.class_of(static_cast<NodeId>(x));
    std::size_t interest_members = 0;
    for (NodeId member : cls) {
      seen[member] = true;
      if (member < classes.node_count() && interest.test(member))
        ++interest_members;
    }
    result -= pairs_of(cls.size()) - pairs_of(cls.size() - interest_members);
  }
  return result;
}

namespace {

class InterestCoverageState final : public ObjectiveState {
 public:
  InterestCoverageState(std::size_t node_count, DynamicBitset interest)
      : covered_(node_count), interest_(std::move(interest)) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<InterestCoverageState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    covered_ |= path.node_set();
  }

  double value() const override {
    return static_cast<double>(covered_.intersection_count(interest_));
  }

 private:
  DynamicBitset covered_;
  DynamicBitset interest_;
};

class InterestEquivalenceState final : public ObjectiveState {
 public:
  InterestEquivalenceState(std::size_t node_count, ObjectiveKind kind,
                           DynamicBitset interest)
      : kind_(kind), classes_(node_count), interest_(std::move(interest)) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<InterestEquivalenceState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    classes_.add_path(path);
  }

  double value() const override {
    return kind_ == ObjectiveKind::Identifiability
               ? static_cast<double>(
                     interest_identifiability_k1(classes_, interest_))
               : static_cast<double>(
                     interest_distinguishability_k1(classes_, interest_));
  }

 private:
  ObjectiveKind kind_;
  EquivalenceClasses classes_;
  DynamicBitset interest_;
};

class InterestEnumerationState final : public ObjectiveState {
 public:
  InterestEnumerationState(std::size_t node_count, ObjectiveKind kind,
                           std::size_t k, DynamicBitset interest)
      : kind_(kind), k_(k), paths_(node_count), interest_(std::move(interest)) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<InterestEnumerationState>(*this);
  }

  void add_path(const MeasurementPath& path) override { paths_.add(path); }

  double value() const override {
    return kind_ == ObjectiveKind::Identifiability
               ? static_cast<double>(
                     interest_identifiability(paths_, k_, interest_))
               : static_cast<double>(
                     interest_distinguishability(paths_, k_, interest_));
  }

 private:
  ObjectiveKind kind_;
  std::size_t k_;
  PathSet paths_;
  DynamicBitset interest_;
};

}  // namespace

std::unique_ptr<ObjectiveState> make_interest_objective_state(
    ObjectiveKind kind, std::size_t node_count, std::size_t k,
    DynamicBitset interest) {
  SPLACE_EXPECTS(interest.size() == node_count);
  SPLACE_EXPECTS(k >= 1);
  switch (kind) {
    case ObjectiveKind::Coverage:
      return std::make_unique<InterestCoverageState>(node_count,
                                                     std::move(interest));
    case ObjectiveKind::Identifiability:
    case ObjectiveKind::Distinguishability:
      if (k == 1)
        return std::make_unique<InterestEquivalenceState>(node_count, kind,
                                                          std::move(interest));
      return std::make_unique<InterestEnumerationState>(node_count, kind, k,
                                                        std::move(interest));
  }
  throw ContractViolation("unknown objective kind");
}

}  // namespace splace
