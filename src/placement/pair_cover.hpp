// Set-cover-by-pairs placement (after Johnson et al., arXiv 1611.01210).
//
// The GC/GI/GD trio scores a node as covered once any measurement path
// traverses it. The set-cover-by-pairs relaxation asks for more: a node is
// *pair-covered* only when the path unions of at least two DISTINCT services
// traverse it, so its observations can be cross-checked against a second
// vantage point — single-service coverage localizes poorly when that one
// service's host itself fails. Maximizing pair-coverage is a fourth
// objective family the enum trio cannot express, which is exactly why it
// enters through the algorithm registry ("pair_cover") instead of another
// enum value.
//
// The greedy works like Algorithm 2 over the partition matroid (one host per
// service): each round commits the unplaced (service, host) pair whose
// sparse union bitset (PathArena::set_union_*) newly pair-covers the most
// nodes, breaking ties by newly once-covered nodes and then (service, host)
// order. Gains are word-parallel popcounts over two scratch planes
// (once-covered, twice-covered) — the same machinery as the coverage kernel,
// with one extra mask. Because each round adds a different service, OR-ing a
// committed union into `twice ∪= union ∩ once; once ∪= union` counts exactly
// "distinct services", never double-counting one service's overlapping
// client paths.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/options.hpp"
#include "placement/service.hpp"

namespace splace {

struct PairCoverResult {
  Placement placement;              ///< host per service
  std::size_t pair_covered = 0;     ///< nodes on ≥2 distinct services' paths
  std::size_t covered = 0;          ///< nodes on ≥1 service's paths
  std::vector<std::size_t> order;   ///< service indices in placement order
  std::vector<std::size_t> pair_gains;  ///< newly pair-covered nodes per step
  std::size_t evaluations = 0;      ///< candidate gain evaluations
};

/// Greedy pair-cover placement. Deterministic for every options value;
/// options.threads is accepted for interface symmetry but the scan is
/// sequential (each evaluation is two popcount loops — parallel dispatch
/// costs more than it saves at current instance sizes).
PairCoverResult pair_cover_placement(const ProblemInstance& instance,
                                     const PlacementOptions& options = {});

/// Independent recount of the pair-coverage of an arbitrary placement
/// (cross-check oracle for the greedy's incremental planes). Requires
/// placement[s] ∈ H_s for every service.
std::size_t pair_covered_count(const ProblemInstance& instance,
                               const Placement& placement);

}  // namespace splace
