// Exact optimal placement by branch and bound.
//
// Brute force scales as Π_s |H_s|; for submodular objectives (coverage,
// distinguishability — Lemmas 13/17) a much smaller search tree suffices.
// Services are assigned depth-first in index order; at each partial
// placement the subtree is bounded by
//
//     f(current) + Σ_{unplaced s} max_{h ∈ H_s} [f(current ∪ P(C_s,h)) − f(current)]
//
// which over-estimates any completion because submodular marginal gains only
// shrink as paths accumulate. Subtrees whose bound cannot beat the incumbent
// (warm-started from greedy, which is already ≥ 1/2-optimal) are pruned.
//
// Restricted to submodular objectives: with identifiability the bound is
// invalid (Proposition 15) and the search would not be exact.
#pragma once

#include <cstdint>

#include "monitoring/objective.hpp"
#include "placement/service.hpp"

namespace splace {

struct BranchBoundResult {
  Placement placement;
  double value = 0;
  std::uint64_t nodes_explored = 0;  ///< partial placements expanded
  std::uint64_t nodes_pruned = 0;    ///< subtrees cut by the bound
};

/// Exact optimum of MCSP (kind = Coverage) or MDSP (kind =
/// Distinguishability) for the given k. Throws ContractViolation for the
/// identifiability objective.
BranchBoundResult branch_and_bound(const ProblemInstance& instance,
                                   ObjectiveKind kind, std::size_t k = 1);

}  // namespace splace
