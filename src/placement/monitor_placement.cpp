#include "placement/monitor_placement.hpp"

#include "util/error.hpp"

namespace splace {

PathSet monitor_paths(const RoutingTable& routing, NodeId m) {
  SPLACE_EXPECTS(m < routing.node_count());
  PathSet paths(routing.node_count());
  for (NodeId d = 0; d < routing.node_count(); ++d) {
    if (!routing.reachable(m, d)) continue;
    paths.add(MeasurementPath(routing.node_count(), routing.route(m, d)));
  }
  return paths;
}

MonitorPlacementResult greedy_monitor_placement(
    const RoutingTable& routing, const std::vector<NodeId>& candidates,
    std::size_t budget, ObjectiveKind kind, std::size_t k) {
  SPLACE_EXPECTS(budget >= 1);
  SPLACE_EXPECTS(!candidates.empty());

  // Precompute each candidate's probe paths once.
  std::vector<PathSet> probe_paths;
  probe_paths.reserve(candidates.size());
  for (NodeId m : candidates) probe_paths.push_back(monitor_paths(routing, m));

  std::unique_ptr<ObjectiveState> state =
      make_objective_state(kind, routing.node_count(), k);
  std::vector<bool> used(candidates.size(), false);

  MonitorPlacementResult result;
  for (std::size_t round = 0; round < budget; ++round) {
    std::size_t best = candidates.size();
    double best_gain = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const double gain = state->gain(probe_paths[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == candidates.size()) break;  // no candidate adds value
    used[best] = true;
    state->add_paths(probe_paths[best]);
    result.monitors.push_back(candidates[best]);
    result.value_curve.push_back(state->value());
  }
  result.objective_value = state->value();
  return result;
}

MonitorPlacementResult greedy_monitor_placement(const RoutingTable& routing,
                                                std::size_t budget,
                                                ObjectiveKind kind,
                                                std::size_t k) {
  std::vector<NodeId> all(routing.node_count());
  for (NodeId v = 0; v < routing.node_count(); ++v) all[v] = v;
  return greedy_monitor_placement(routing, all, budget, kind, k);
}

MonitorPlacementResult monitors_to_reach(const RoutingTable& routing,
                                         const std::vector<NodeId>& candidates,
                                         double target, ObjectiveKind kind,
                                         std::size_t k) {
  const MonitorPlacementResult full = greedy_monitor_placement(
      routing, candidates, candidates.size(), kind, k);
  for (std::size_t used = 0; used < full.value_curve.size(); ++used) {
    if (full.value_curve[used] >= target) {
      MonitorPlacementResult trimmed;
      trimmed.monitors.assign(full.monitors.begin(),
                              full.monitors.begin() +
                                  static_cast<std::ptrdiff_t>(used + 1));
      trimmed.value_curve.assign(full.value_curve.begin(),
                                 full.value_curve.begin() +
                                     static_cast<std::ptrdiff_t>(used + 1));
      trimmed.objective_value = full.value_curve[used];
      return trimmed;
    }
  }
  return full;
}

}  // namespace splace
