// Dedicated-monitor placement — the related-work alternative the paper
// contrasts itself against (Section I-B, references [9]/[10]): instead of
// choosing *service hosts* under QoS constraints, choose a budget of monitor
// nodes that probe every node via round-trip measurements (ping/traceroute
// style: only the probe source must be a monitor, so each monitor m yields
// one measurement path per destination node — the routed m↔d path).
//
// Implemented as greedy submodular maximization of coverage or
// distinguishability over the candidate monitor set, mirroring the greedy
// approximation of [9]. This lets examples/benches answer: how many
// dedicated monitors does it take to match what a monitoring-aware *service*
// placement gets for free from its client traffic?
#pragma once

#include <cstddef>
#include <vector>

#include "graph/routing.hpp"
#include "monitoring/objective.hpp"

namespace splace {

struct MonitorPlacementResult {
  std::vector<NodeId> monitors;   ///< chosen monitor nodes, selection order
  double objective_value = 0;     ///< f(all probe paths of the monitors)
  /// Objective value after each successive monitor (size = monitors.size());
  /// useful for budget-vs-benefit curves.
  std::vector<double> value_curve;
};

/// The probe paths a monitor placed at `m` observes: one round-trip path per
/// reachable destination (the m↔d route's node set; the degenerate {m} path
/// for d = m).
PathSet monitor_paths(const RoutingTable& routing, NodeId m);

/// Greedily selects up to `budget` monitors from `candidates` maximizing the
/// objective over the union of their probe paths. Stops early when no
/// remaining candidate adds value. Requires budget >= 1 and nonempty
/// candidates.
MonitorPlacementResult greedy_monitor_placement(
    const RoutingTable& routing, const std::vector<NodeId>& candidates,
    std::size_t budget, ObjectiveKind kind, std::size_t k = 1);

/// Convenience: all nodes are candidate monitors.
MonitorPlacementResult greedy_monitor_placement(const RoutingTable& routing,
                                                std::size_t budget,
                                                ObjectiveKind kind,
                                                std::size_t k = 1);

/// Smallest number of monitors (chosen greedily from `candidates`) whose
/// probe paths reach at least `target` on the objective; returns the result
/// with exactly that many monitors, or the full-budget result if the target
/// is unreachable even with every candidate.
MonitorPlacementResult monitors_to_reach(const RoutingTable& routing,
                                         const std::vector<NodeId>& candidates,
                                         double target, ObjectiveKind kind,
                                         std::size_t k = 1);

}  // namespace splace
