#include "placement/candidates.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

DistanceProfile distance_profile(const RoutingTable& routing,
                                 const std::vector<NodeId>& clients) {
  SPLACE_EXPECTS(!clients.empty());
  const std::size_t n = routing.node_count();
  DistanceProfile profile;
  profile.worst.assign(n, 0);
  bool any_reachable = false;
  profile.d_min = kUnreachable;
  profile.d_max = 0;
  for (NodeId h = 0; h < n; ++h) {
    std::uint32_t worst = 0;
    for (NodeId c : clients) {
      const std::uint32_t d = routing.distance(c, h);
      if (d == kUnreachable) {
        worst = kUnreachable;
        break;
      }
      worst = std::max(worst, d);
    }
    profile.worst[h] = worst;
    if (worst != kUnreachable) {
      any_reachable = true;
      profile.d_min = std::min(profile.d_min, worst);
      profile.d_max = std::max(profile.d_max, worst);
    }
  }
  SPLACE_ENSURES(any_reachable);
  return profile;
}

double relative_distance(const DistanceProfile& profile, NodeId h) {
  SPLACE_EXPECTS(h < profile.worst.size());
  SPLACE_EXPECTS(profile.worst[h] != kUnreachable);
  if (profile.d_max == profile.d_min) return 0.0;
  return static_cast<double>(profile.worst[h] - profile.d_min) /
         static_cast<double>(profile.d_max - profile.d_min);
}

std::vector<NodeId> candidate_hosts(const DistanceProfile& profile,
                                    double alpha) {
  SPLACE_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < profile.worst.size(); ++h) {
    if (profile.worst[h] == kUnreachable) continue;
    if (relative_distance(profile, h) <= alpha) hosts.push_back(h);
  }
  SPLACE_ENSURES(!hosts.empty());
  return hosts;
}

}  // namespace splace
