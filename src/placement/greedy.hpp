// Greedy service placement — the paper's Algorithm 2.
//
// Iteratively commits the (service, host) pair whose measurement paths raise
// the objective the most, until every service is placed. For the monotone
// submodular objectives (coverage, distinguishability) this is a
// 1/2-approximation over the partition-matroid constraint (Theorem 11,
// Corollaries 14 and 18); for identifiability it is the paper's GI heuristic
// without a guarantee (Proposition 15).
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"

namespace splace {

/// Outcome of a greedy run. `order` and `gains` together form the greedy
/// trace: step i committed service order[i] with marginal gain gains[i] —
/// enough for repair_placement to warm-start after a topology delta.
struct GreedyResult {
  Placement placement;               ///< host per service
  double objective_value = 0;        ///< f(⋃ P(C_s, h_s)) at termination
  std::vector<std::size_t> order;    ///< service indices in placement order
  std::vector<double> gains;         ///< committed marginal gain per step
};

/// Algorithm 2 with a caller-supplied objective state (takes ownership of
/// `state`, which must be freshly constructed / empty). Candidates are
/// scored through ObjectiveState::gain — allocation-free for the k = 1
/// objectives. With options.threads > 1 the per-iteration arg-max runs on a
/// worker pool (one state clone per worker per iteration) with a reduction
/// that resolves ties by (service, host) order, so the placement is
/// bit-identical to the sequential run for every thread count.
GreedyResult greedy_placement(const ProblemInstance& instance,
                              std::unique_ptr<ObjectiveState> state,
                              const PlacementOptions& options = {});

/// Algorithm 2 for one of the paper's objectives (GC / GI / GD).
GreedyResult greedy_placement(const ProblemInstance& instance,
                              ObjectiveKind kind, std::size_t k = 1,
                              const PlacementOptions& options = {});

}  // namespace splace
