// Greedy service placement — the paper's Algorithm 2.
//
// Iteratively commits the (service, host) pair whose measurement paths raise
// the objective the most, until every service is placed. For the monotone
// submodular objectives (coverage, distinguishability) this is a
// 1/2-approximation over the partition-matroid constraint (Theorem 11,
// Corollaries 14 and 18); for identifiability it is the paper's GI heuristic
// without a guarantee (Proposition 15).
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/service.hpp"

namespace splace {

/// Outcome of a greedy run.
struct GreedyResult {
  Placement placement;               ///< host per service
  double objective_value = 0;        ///< f(⋃ P(C_s, h_s)) at termination
  std::vector<std::size_t> order;    ///< service indices in placement order
};

/// Algorithm 2 with a caller-supplied objective state (takes ownership of
/// `state`, which must be freshly constructed / empty).
GreedyResult greedy_placement(const ProblemInstance& instance,
                              std::unique_ptr<ObjectiveState> state);

/// Algorithm 2 for one of the paper's objectives (GC / GI / GD).
GreedyResult greedy_placement(const ProblemInstance& instance,
                              ObjectiveKind kind, std::size_t k = 1);

}  // namespace splace
