#include "placement/service.hpp"

#include <algorithm>

#include "placement/candidates.hpp"
#include "util/error.hpp"

namespace splace {

ProblemInstance::ProblemInstance(Graph graph, std::vector<Service> services)
    : ProblemInstance(std::move(graph), std::move(services),
                      RouteProvider{}) {}

ProblemInstance::ProblemInstance(Graph graph, std::vector<Service> services,
                                 RouteProvider provider)
    : graph_(std::move(graph)),
      routing_(graph_),
      provider_(std::move(provider)),
      services_(std::move(services)) {
  SPLACE_EXPECTS(!services_.empty());
  const std::size_t n = graph_.node_count();

  candidates_.reserve(services_.size());
  worst_dist_.reserve(services_.size());
  paths_.reserve(services_.size());
  qos_hosts_.reserve(services_.size());

  for (const Service& svc : services_) {
    SPLACE_EXPECTS(!svc.clients.empty());
    SPLACE_EXPECTS(svc.alpha >= 0.0 && svc.alpha <= 1.0);
    for (NodeId c : svc.clients) SPLACE_EXPECTS(c < n);

    const DistanceProfile profile =
        provider_ ? provider_profile(svc.clients)
                  : distance_profile(routing_, svc.clients);
    std::vector<NodeId> hosts = splace::candidate_hosts(profile, svc.alpha);

    // Best-QoS host: smallest id achieving d_min (always feasible).
    NodeId qos = kInvalidNode;
    for (NodeId h = 0; h < n; ++h) {
      if (profile.worst[h] == profile.d_min) {
        qos = h;
        break;
      }
    }
    SPLACE_ENSURES(qos != kInvalidNode);
    qos_hosts_.push_back(qos);

    std::vector<PathSet> host_paths;
    host_paths.reserve(hosts.size());
    for (NodeId h : hosts) {
      PathSet paths(n);
      for (NodeId c : svc.clients)
        paths.add(MeasurementPath(n, route(c, h)));
      host_paths.push_back(std::move(paths));
    }

    candidates_.push_back(std::move(hosts));
    worst_dist_.push_back(profile.worst);
    paths_.push_back(std::move(host_paths));
  }
}

void ProblemInstance::check_service(std::size_t s) const {
  SPLACE_EXPECTS(s < services_.size());
}

const std::vector<NodeId>& ProblemInstance::candidate_hosts(
    std::size_t s) const {
  check_service(s);
  return candidates_[s];
}

std::uint32_t ProblemInstance::worst_distance(std::size_t s, NodeId h) const {
  check_service(s);
  SPLACE_EXPECTS(h < node_count());
  return worst_dist_[s][h];
}

std::size_t ProblemInstance::candidate_index(std::size_t s, NodeId h) const {
  const auto& hosts = candidates_[s];
  const auto it = std::lower_bound(hosts.begin(), hosts.end(), h);
  SPLACE_EXPECTS(it != hosts.end() && *it == h);
  return static_cast<std::size_t>(it - hosts.begin());
}

const PathSet& ProblemInstance::paths_for(std::size_t s, NodeId h) const {
  check_service(s);
  return paths_[s][candidate_index(s, h)];
}

bool ProblemInstance::is_candidate(std::size_t s, NodeId h) const {
  check_service(s);
  const auto& hosts = candidates_[s];
  return std::binary_search(hosts.begin(), hosts.end(), h);
}

PathSet ProblemInstance::paths_for_placement(const Placement& placement) const {
  SPLACE_EXPECTS(placement.size() == services_.size());
  PathSet all(node_count());
  for (std::size_t s = 0; s < placement.size(); ++s)
    all.add_all(paths_for(s, placement[s]));
  return all;
}

NodeId ProblemInstance::best_qos_host(std::size_t s) const {
  check_service(s);
  return qos_hosts_[s];
}

std::vector<NodeId> ProblemInstance::route(NodeId a, NodeId b) const {
  SPLACE_EXPECTS(a < node_count() && b < node_count());
  if (!provider_) return routing_.route(a, b);
  std::vector<NodeId> r = provider_(a, b);
  SPLACE_ENSURES(!r.empty());
  return r;
}

DistanceProfile ProblemInstance::provider_profile(
    const std::vector<NodeId>& clients) const {
  const std::size_t n = graph_.node_count();
  DistanceProfile profile;
  profile.worst.assign(n, 0);
  profile.d_min = kUnreachable;
  profile.d_max = 0;
  bool any_reachable = false;
  for (NodeId h = 0; h < n; ++h) {
    std::uint32_t worst = 0;
    for (NodeId c : clients) {
      const std::vector<NodeId> r = provider_(c, h);
      if (r.empty()) {
        worst = kUnreachable;
        break;
      }
      worst = std::max(worst, static_cast<std::uint32_t>(r.size() - 1));
    }
    profile.worst[h] = worst;
    if (worst != kUnreachable) {
      any_reachable = true;
      profile.d_min = std::min(profile.d_min, worst);
      profile.d_max = std::max(profile.d_max, worst);
    }
  }
  SPLACE_ENSURES(any_reachable);
  return profile;
}

}  // namespace splace
