#include "placement/service.hpp"

#include <algorithm>
#include <atomic>

#include "placement/candidates.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

/// Process-unique arena lineage token (0 is reserved for "no parent").
std::uint64_t next_arena_token() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const PathSet& ServicePlan::legacy_paths(const PathArena& arena,
                                         std::size_t i) const {
  SPLACE_EXPECTS(i < arena_sets.size());
  const std::lock_guard<std::mutex> lock(legacy_mutex_);
  if (legacy_.empty()) legacy_.resize(arena_sets.size());
  if (legacy_[i] == nullptr)
    legacy_[i] = std::make_shared<const PathSet>(
        arena.materialize_set(arena_sets[i]));
  return *legacy_[i];
}

ProblemInstance::ProblemInstance(Graph graph, std::vector<Service> services)
    : ProblemInstance(std::move(graph), std::move(services),
                      RouteProvider{}) {}

ProblemInstance::ProblemInstance(Graph graph, std::vector<Service> services,
                                 RouteProvider provider)
    : graph_(std::move(graph)),
      routing_(graph_),
      provider_(std::move(provider)),
      services_(std::move(services)),
      arena_(std::make_shared<PathArena>(graph_.node_count())),
      arena_token_(next_arena_token()) {
  SPLACE_EXPECTS(!services_.empty());
  plans_.reserve(services_.size());
  for (const Service& svc : services_) {
    check_service_inputs(svc);
    plans_.push_back(build_plan(svc));
  }
}

ProblemInstance::ProblemInstance(DerivedTag, Graph graph, RoutingTable routing,
                                 std::vector<Service> services)
    : graph_(std::move(graph)),
      routing_(std::move(routing)),
      services_(std::move(services)) {}

void ProblemInstance::check_service_inputs(const Service& svc) const {
  SPLACE_EXPECTS(!svc.clients.empty());
  SPLACE_EXPECTS(svc.alpha >= 0.0 && svc.alpha <= 1.0);
  for (NodeId c : svc.clients) SPLACE_EXPECTS(c < node_count());
}

std::shared_ptr<const ServicePlan> ProblemInstance::build_plan(
    const Service& svc) {
  const std::size_t n = node_count();
  DistanceProfile profile = provider_
                                ? provider_profile(svc.clients)
                                : distance_profile(routing_, svc.clients);

  auto plan = std::make_shared<ServicePlan>();
  plan->candidates = splace::candidate_hosts(profile, svc.alpha);

  // Best-QoS host: smallest id achieving d_min (always feasible).
  for (NodeId h = 0; h < n; ++h) {
    if (profile.worst[h] == profile.d_min) {
      plan->qos_host = h;
      break;
    }
  }
  SPLACE_ENSURES(plan->qos_host != kInvalidNode);

  // Intern each client route in order — PathArena performs the same
  // content dedup as PathSet::add, so set rows mirror the legacy path
  // order exactly.
  plan->arena_sets.reserve(plan->candidates.size());
  std::vector<std::uint32_t> rows;
  rows.reserve(svc.clients.size());
  for (NodeId h : plan->candidates) {
    rows.clear();
    for (NodeId c : svc.clients) rows.push_back(arena_->intern_path(route(c, h)));
    plan->arena_sets.push_back(arena_->intern_set(rows));
  }

  plan->worst_dist = std::move(profile.worst);
  return plan;
}

ProblemInstance ProblemInstance::derived(const ProblemInstance& parent,
                                         Graph graph, RoutingTable routing,
                                         std::vector<Service> services,
                                         const std::vector<bool>& client_mutated,
                                         DerivedBuildStats* stats) {
  SPLACE_EXPECTS(!parent.provider_);
  SPLACE_EXPECTS(graph.node_count() == parent.node_count());
  SPLACE_EXPECTS(routing.node_count() == graph.node_count());
  SPLACE_EXPECTS(services.size() == parent.service_count());
  SPLACE_EXPECTS(client_mutated.size() == services.size());

  ProblemInstance inst(DerivedTag{}, std::move(graph), std::move(routing),
                       std::move(services));
  // Copy-and-extend the parent's arena (a handful of contiguous memcpys):
  // every parent set id stays valid under the same id in the child, which is
  // what lets untouched plans be shared outright and lets
  // shares_service_paths compare set ids instead of path contents.
  inst.arena_ = std::make_shared<PathArena>(*parent.arena_);
  inst.arena_token_ = next_arena_token();
  inst.arena_parent_token_ = parent.arena_token_;
  DerivedBuildStats local{};
  inst.plans_.reserve(inst.services_.size());

  for (std::size_t s = 0; s < inst.services_.size(); ++s) {
    const Service& svc = inst.services_[s];
    inst.check_service_inputs(svc);

    // The distance profile — hence H_s, worst distances, and the QoS host —
    // reads only trees rooted at clients, so it is unchanged exactly when
    // the client set and every client-rooted tree are.
    bool profile_stable = !client_mutated[s];
    if (profile_stable)
      for (NodeId c : svc.clients)
        if (!inst.routing_.shares_tree(parent.routing_, c)) {
          profile_stable = false;
          break;
        }
    if (!profile_stable) {
      auto plan = inst.build_plan(svc);
      local.path_sets_rebuilt += plan->arena_sets.size();
      inst.plans_.push_back(std::move(plan));
      continue;
    }

    // P(C_s, h) routes each pair from the tree rooted at min(c, h); the set
    // is unchanged when all of those trees are.
    const std::shared_ptr<const ServicePlan>& pp = parent.plans_[s];
    std::vector<bool> host_dirty(pp->candidates.size(), false);
    bool any_dirty = false;
    for (std::size_t i = 0; i < pp->candidates.size(); ++i) {
      const NodeId h = pp->candidates[i];
      for (NodeId c : svc.clients)
        if (!inst.routing_.shares_tree(parent.routing_, std::min(c, h))) {
          host_dirty[i] = true;
          any_dirty = true;
          break;
        }
    }
    if (!any_dirty) {
      ++local.plans_shared;
      local.path_sets_shared += pp->arena_sets.size();
      inst.plans_.push_back(pp);
      continue;
    }

    auto plan = std::make_shared<ServicePlan>();
    plan->candidates = pp->candidates;
    plan->worst_dist = pp->worst_dist;
    plan->qos_host = pp->qos_host;
    plan->arena_sets.reserve(pp->candidates.size());
    std::vector<std::uint32_t> rows;
    rows.reserve(svc.clients.size());
    for (std::size_t i = 0; i < pp->candidates.size(); ++i) {
      if (!host_dirty[i]) {
        ++local.path_sets_shared;
        plan->arena_sets.push_back(pp->arena_sets[i]);
        continue;
      }
      rows.clear();
      for (NodeId c : svc.clients)
        rows.push_back(
            inst.arena_->intern_path(inst.route(c, pp->candidates[i])));
      plan->arena_sets.push_back(inst.arena_->intern_set(rows));
      ++local.path_sets_rebuilt;
    }
    inst.plans_.push_back(std::move(plan));
  }

  if (stats != nullptr) *stats = local;
  return inst;
}

bool ProblemInstance::shares_service_paths(const ProblemInstance& parent,
                                           const ProblemInstance& child,
                                           std::size_t s) {
  parent.check_service(s);
  child.check_service(s);
  const auto& pp = parent.plans_[s];
  const auto& cp = child.plans_[s];
  if (pp == cp) return true;
  // Set ids are only comparable along the arena lineage: a derived child's
  // arena extends its parent's, so equal ids mean equal paths. Interning
  // even detects a conservatively rebuilt plan that reproduced the parent's
  // paths unchanged.
  if (child.arena_parent_token_ != parent.arena_token_) return false;
  return pp->candidates == cp->candidates && pp->arena_sets == cp->arena_sets;
}

void ProblemInstance::check_service(std::size_t s) const {
  SPLACE_EXPECTS(s < services_.size());
}

const std::vector<NodeId>& ProblemInstance::candidate_hosts(
    std::size_t s) const {
  check_service(s);
  return plans_[s]->candidates;
}

std::uint32_t ProblemInstance::worst_distance(std::size_t s, NodeId h) const {
  check_service(s);
  SPLACE_EXPECTS(h < node_count());
  return plans_[s]->worst_dist[h];
}

std::size_t ProblemInstance::candidate_index(std::size_t s, NodeId h) const {
  const auto& hosts = plans_[s]->candidates;
  const auto it = std::lower_bound(hosts.begin(), hosts.end(), h);
  SPLACE_EXPECTS(it != hosts.end() && *it == h);
  return static_cast<std::size_t>(it - hosts.begin());
}

const PathSet& ProblemInstance::paths_for(std::size_t s, NodeId h) const {
  check_service(s);
  return plans_[s]->legacy_paths(*arena_, candidate_index(s, h));
}

ArenaPathsRef ProblemInstance::arena_paths_for(std::size_t s, NodeId h) const {
  check_service(s);
  return arena_->ref(plans_[s]->arena_sets[candidate_index(s, h)]);
}

bool ProblemInstance::is_candidate(std::size_t s, NodeId h) const {
  check_service(s);
  const auto& hosts = plans_[s]->candidates;
  return std::binary_search(hosts.begin(), hosts.end(), h);
}

PathSet ProblemInstance::paths_for_placement(const Placement& placement) const {
  SPLACE_EXPECTS(placement.size() == services_.size());
  PathSet all(node_count());
  for (std::size_t s = 0; s < placement.size(); ++s)
    all.add_all(paths_for(s, placement[s]));
  return all;
}

NodeId ProblemInstance::best_qos_host(std::size_t s) const {
  check_service(s);
  return plans_[s]->qos_host;
}

std::vector<NodeId> ProblemInstance::route(NodeId a, NodeId b) const {
  SPLACE_EXPECTS(a < node_count() && b < node_count());
  if (!provider_) return routing_.route(a, b);
  std::vector<NodeId> r = provider_(a, b);
  SPLACE_ENSURES(!r.empty());
  return r;
}

DistanceProfile ProblemInstance::provider_profile(
    const std::vector<NodeId>& clients) const {
  const std::size_t n = graph_.node_count();
  DistanceProfile profile;
  profile.worst.assign(n, 0);
  profile.d_min = kUnreachable;
  profile.d_max = 0;
  bool any_reachable = false;
  for (NodeId h = 0; h < n; ++h) {
    std::uint32_t worst = 0;
    for (NodeId c : clients) {
      const std::vector<NodeId> r = provider_(c, h);
      if (r.empty()) {
        worst = kUnreachable;
        break;
      }
      worst = std::max(worst, static_cast<std::uint32_t>(r.size() - 1));
    }
    profile.worst[h] = worst;
    if (worst != kUnreachable) {
      any_reachable = true;
      profile.d_min = std::min(profile.d_min, worst);
      profile.d_max = std::max(profile.d_max, worst);
    }
  }
  SPLACE_ENSURES(any_reachable);
  return profile;
}

}  // namespace splace
