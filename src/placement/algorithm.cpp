#include "placement/algorithm.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "placement/baselines.hpp"
#include "placement/brute_force.hpp"
#include "placement/greedy.hpp"
#include "placement/lazy_greedy.hpp"
#include "placement/local_search.hpp"
#include "placement/online.hpp"
#include "placement/pair_cover.hpp"
#include "placement/stochastic.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace {

AlgorithmResult PlacementAlgorithm::execute(const ProblemInstance& instance,
                                            const AlgorithmSpec& spec) const {
  if (spec.k < 1)
    throw InvalidInput("algorithm '" + name() + "': k must be >= 1, got " +
                       std::to_string(spec.k));
  if (spec.options.stochastic_pool != 0 && !supports_stochastic())
    throw InvalidInput(
        "algorithm '" + name() +
        "' does not support stochastic sampling; stochastic_pool must be 0 "
        "(only algorithms declaring supports_stochastic() consume it)");
  return run(instance, spec);
}

namespace {

/// Named adapter over a run callback — every built-in is one of these.
class BuiltinAlgorithm final : public PlacementAlgorithm {
 public:
  using RunFn = AlgorithmResult (*)(const ProblemInstance&,
                                    const AlgorithmSpec&);

  BuiltinAlgorithm(std::string entry_name, RunFn run_fn, bool stochastic)
      : name_(std::move(entry_name)), run_(run_fn), stochastic_(stochastic) {}

  std::string name() const override { return name_; }
  bool supports_stochastic() const override { return stochastic_; }
  AlgorithmResult run(const ProblemInstance& instance,
                      const AlgorithmSpec& spec) const override {
    return run_(instance, spec);
  }

 private:
  std::string name_;
  RunFn run_;
  bool stochastic_;
};

AlgorithmResult run_greedy(const ProblemInstance& instance,
                           const AlgorithmSpec& spec) {
  GreedyResult greedy =
      greedy_placement(instance, spec.objective, spec.k, spec.options);
  AlgorithmResult result;
  result.placement = std::move(greedy.placement);
  result.reported_value = greedy.objective_value;
  result.evaluations = plain_greedy_evaluation_count(instance, greedy.order);
  return result;
}

AlgorithmResult run_lazy_greedy(const ProblemInstance& instance,
                                const AlgorithmSpec& spec) {
  LazyGreedyResult lazy =
      lazy_greedy_placement(instance, spec.objective, spec.k, spec.options);
  AlgorithmResult result;
  result.placement = std::move(lazy.placement);
  result.reported_value = lazy.objective_value;
  result.evaluations = lazy.evaluations;
  return result;
}

AlgorithmResult run_stochastic(const ProblemInstance& instance,
                               const AlgorithmSpec& spec) {
  StochasticGreedyResult stochastic = stochastic_greedy_placement(
      instance, spec.objective, spec.k, spec.options);
  AlgorithmResult result;
  result.placement = std::move(stochastic.placement);
  result.reported_value = stochastic.objective_value;
  result.evaluations = stochastic.evaluations;
  return result;
}

AlgorithmResult run_brute_force(const ProblemInstance& instance,
                                const AlgorithmSpec& spec) {
  if (spec.k == 1) {
    std::optional<BruteForceK1Result> swept =
        brute_force_k1(instance, spec.options, spec.bf_budget);
    if (!swept)
      throw InvalidInput(
          "algorithm 'brute_force': search space " +
          std::to_string(search_space_size(instance)) +
          " placements exceeds the budget of " + std::to_string(spec.bf_budget));
    const OptimumK1& best = spec.objective == ObjectiveKind::Coverage
                                ? swept->coverage
                            : spec.objective == ObjectiveKind::Identifiability
                                ? swept->identifiability
                                : swept->distinguishability;
    AlgorithmResult result;
    result.placement = best.placement;
    result.reported_value = static_cast<double>(best.value);
    result.evaluations = static_cast<std::size_t>(swept->placements_searched);
    return result;
  }
  if (search_space_size(instance) > spec.bf_budget)
    throw InvalidInput(
        "algorithm 'brute_force': search space " +
        std::to_string(search_space_size(instance)) +
        " placements exceeds the budget of " + std::to_string(spec.bf_budget));
  BruteForceObjectiveResult exact =
      brute_force_objective(instance, spec.objective, spec.k);
  AlgorithmResult result;
  result.placement = std::move(exact.placement);
  result.reported_value = exact.value;
  result.evaluations = static_cast<std::size_t>(search_space_size(instance));
  return result;
}

AlgorithmResult run_local_search(const ProblemInstance& instance,
                                 const AlgorithmSpec& spec) {
  // Polishes the best-QoS placement — the documented registry start point
  // (bit-identical to local_search_placement from the same start).
  LocalSearchResult search = local_search_placement(
      instance, best_qos_placement(instance), spec.objective, spec.k);
  AlgorithmResult result;
  result.placement = std::move(search.placement);
  result.reported_value = search.objective_value;
  result.evaluations = search.evaluations;
  return result;
}

AlgorithmResult run_online(const ProblemInstance& instance,
                           const AlgorithmSpec& spec) {
  // One Algorithm-2 step per service in arrival (index) order — literally
  // the OnlinePlacer component, so the entry can never drift from it. The
  // placer routes by hop count; instances built with a custom RouteProvider
  // would see different candidate paths, which is fine for a baseline.
  OnlinePlacer placer(instance.graph(), spec.objective, spec.k);
  AlgorithmResult result;
  result.placement.reserve(instance.service_count());
  for (const Service& service : instance.services())
    result.placement.push_back(placer.add_service(service));
  result.reported_value = placer.objective_value();
  return result;
}

AlgorithmResult run_qos(const ProblemInstance& instance,
                        const AlgorithmSpec& spec) {
  (void)spec;
  AlgorithmResult result;
  result.placement = best_qos_placement(instance);
  return result;
}

AlgorithmResult run_random(const ProblemInstance& instance,
                           const AlgorithmSpec& spec) {
  Rng rng(spec.seed);
  AlgorithmResult result;
  result.placement = random_placement(instance, rng);
  return result;
}

AlgorithmResult run_pair_cover(const ProblemInstance& instance,
                               const AlgorithmSpec& spec) {
  PairCoverResult cover = pair_cover_placement(instance, spec.options);
  AlgorithmResult result;
  result.placement = std::move(cover.placement);
  result.reported_value = static_cast<double>(cover.pair_covered);
  result.evaluations = cover.evaluations;
  return result;
}

struct Registry {
  std::mutex mutex;
  // std::map keeps algorithm_names() sorted without a per-call sort.
  std::map<std::string, AlgorithmFactory> entries;
};

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    const auto builtin = [r](const char* name, BuiltinAlgorithm::RunFn run,
                             bool stochastic = false) {
      r->entries.emplace(name, [name, run, stochastic] {
        return std::make_unique<BuiltinAlgorithm>(name, run, stochastic);
      });
    };
    builtin("greedy", &run_greedy);
    builtin("lazy_greedy", &run_lazy_greedy);
    builtin("stochastic_greedy", &run_stochastic, true);
    builtin("brute_force", &run_brute_force);
    builtin("local_search", &run_local_search);
    builtin("online", &run_online);
    builtin("qos", &run_qos);
    builtin("random", &run_random);
    builtin("pair_cover", &run_pair_cover);
    return r;
  }();
  return *instance;
}

std::string known_names_message() {
  std::ostringstream out;
  const std::vector<std::string> names = algorithm_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i];
  }
  return out.str();
}

}  // namespace

void register_algorithm(const std::string& name, AlgorithmFactory factory) {
  if (name.empty())
    throw InvalidInput("register_algorithm: name must be non-empty");
  if (!factory)
    throw InvalidInput("register_algorithm: factory must be callable");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.entries.emplace(name, std::move(factory)).second)
    throw InvalidInput("register_algorithm: '" + name +
                       "' is already registered");
}

std::vector<std::string> algorithm_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.entries.size());
  for (const auto& [name, factory] : r.entries) names.push_back(name);
  return names;
}

bool is_registered_algorithm(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.entries.find(name) != r.entries.end();
}

std::unique_ptr<PlacementAlgorithm> make_algorithm(const std::string& name) {
  AlgorithmFactory factory;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.entries.find(name);
    if (it != r.entries.end()) factory = it->second;
  }
  if (!factory)
    throw InvalidInput("unknown placement algorithm '" + name +
                       "' (known: " + known_names_message() + ")");
  std::unique_ptr<PlacementAlgorithm> algorithm = factory();
  if (!algorithm)
    throw ContractViolation("algorithm factory for '" + name +
                            "' returned null");
  return algorithm;
}

}  // namespace splace
