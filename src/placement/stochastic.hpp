// Stochastic ("lazier than lazy") greedy service placement.
//
// Mirzasoleiman et al.'s acceleration of Algorithm 2: each round draws a
// uniform sample of the unplaced (service, host) pairs and commits the best
// of the sample, instead of scanning all pairs. For a monotone submodular
// objective, a per-round sample of (|pairs|/rounds)·ln(1/ε) keeps a
// (1/2)(1 − ε) guarantee in expectation under the partition-matroid
// constraint; identifiability stays the same heuristic it is under exact
// greedy. Within a round the sample is consumed through a lazy-greedy
// upper-bound queue (stale gains from earlier rounds bound fresh ones by
// submodularity), so typically only a fraction of the sample is evaluated.
//
// Determinism: the sampler is a fixed-seed Rng and evaluation order is a
// deterministic function of the stale-bound queue, so a (instance, options)
// pair always yields the same placement. With options.stochastic_pool == 0
// — or any pool at least the number of unplaced pairs — every round scans
// everything and the result is bit-identical to plain greedy_placement.
#pragma once

#include <memory>

#include "monitoring/objective.hpp"
#include "placement/greedy.hpp"
#include "placement/options.hpp"
#include "placement/service.hpp"

namespace splace {

/// Greedy trace plus the evaluation count the sampling actually paid.
struct StochasticGreedyResult {
  Placement placement;             ///< host per service
  double objective_value = 0;      ///< f(⋃ P(C_s, h_s)) at termination
  std::vector<std::size_t> order;  ///< service indices in placement order
  std::vector<double> gains;       ///< committed marginal gain per step
  std::size_t evaluations = 0;     ///< gain evaluations performed
  std::size_t sampled = 0;         ///< candidates drawn across all rounds
};

/// Stochastic greedy with a caller-supplied objective state (takes ownership
/// of `state`, which must be freshly constructed / empty). Sample size and
/// seed come from options.stochastic_pool / options.stochastic_seed; the
/// search itself is sequential (options.threads is ignored).
StochasticGreedyResult stochastic_greedy_placement(
    const ProblemInstance& instance, std::unique_ptr<ObjectiveState> state,
    const PlacementOptions& options = {});

/// Stochastic greedy for one of the paper's objectives (GC / GI / GD).
StochasticGreedyResult stochastic_greedy_placement(
    const ProblemInstance& instance, ObjectiveKind kind, std::size_t k = 1,
    const PlacementOptions& options = {});

}  // namespace splace
