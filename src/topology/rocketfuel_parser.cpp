#include "topology/rocketfuel_parser.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace splace::topology {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidInput("cch line " + std::to_string(line) + ": " + message);
}

struct RawRouter {
  RocketfuelNode node;
  std::vector<long> neighbor_uids;
};

/// Parses one internal-router line.
RawRouter parse_router_line(std::size_t line_no, const std::string& line) {
  std::istringstream fields(line);
  RawRouter router;
  if (!(fields >> router.node.uid))
    fail(line_no, "expected a numeric uid: " + line);

  bool seen_arrow = false;
  std::string token;
  while (fields >> token) {
    if (token == "->") {
      seen_arrow = true;
    } else if (token.front() == '@') {
      router.node.location = token.substr(1);
      // Rocketfuel writes "@city,+" — strip trailing punctuation.
      while (!router.node.location.empty() &&
             (router.node.location.back() == ',' ||
              router.node.location.back() == '+'))
        router.node.location.pop_back();
    } else if (token == "bb" || token == "+bb") {
      router.node.backbone = true;
    } else if (token.front() == '<') {
      // Internal neighbor: <uid> or <-uid> (directionality ignored; the
      // physical link is undirected).
      std::string digits = token;
      std::erase_if(digits, [](char c) {
        return c == '<' || c == '>' || c == '-';
      });
      if (digits.empty()) fail(line_no, "malformed neighbor '" + token + "'");
      try {
        router.neighbor_uids.push_back(std::stol(digits));
      } catch (const std::logic_error&) {
        fail(line_no, "malformed neighbor '" + token + "'");
      }
    } else if (token.front() == '{' || token.front() == '&' ||
               token.front() == '=' || token.front() == '(' ||
               token.front() == '+' || token.front() == '!' ||
               token == "r" || (token.front() == 'r' && token.size() <= 4)) {
      // External neighbors {..}, external counts &N, DNS names =..., the
      // neighbor count (N), standalone flags, and rN radius markers carry
      // no topology information for us.
      continue;
    } else if (!seen_arrow) {
      // Unknown pre-arrow decoration: tolerate (format variants exist).
      continue;
    } else {
      fail(line_no, "unrecognized token '" + token + "' after '->'");
    }
  }
  return router;
}

}  // namespace

RocketfuelMap parse_cch(std::istream& in) {
  std::vector<RawRouter> routers;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view content = trim(line);
    if (content.empty() || content.front() == '#') continue;
    if (content.front() == '-') continue;  // external address placeholder
    routers.push_back(parse_router_line(line_no, std::string(content)));
  }

  RocketfuelMap map;
  map.graph = Graph(routers.size());
  map.nodes.reserve(routers.size());
  for (std::size_t i = 0; i < routers.size(); ++i) {
    const long uid = routers[i].node.uid;
    if (!map.uid_to_node.emplace(uid, static_cast<NodeId>(i)).second)
      throw InvalidInput("cch: duplicate router uid " + std::to_string(uid));
    map.nodes.push_back(routers[i].node);
  }

  for (std::size_t i = 0; i < routers.size(); ++i) {
    const NodeId u = static_cast<NodeId>(i);
    for (long nuid : routers[i].neighbor_uids) {
      const auto it = map.uid_to_node.find(nuid);
      if (it == map.uid_to_node.end()) continue;  // external / pruned uid
      const NodeId v = it->second;
      if (u == v)
        throw InvalidInput("cch: self-link on uid " +
                           std::to_string(routers[i].node.uid));
      if (!map.graph.has_edge(u, v)) map.graph.add_edge(u, v);
    }
  }
  return map;
}

RocketfuelMap parse_cch(const std::string& text) {
  std::istringstream in(text);
  return parse_cch(in);
}

}  // namespace splace::topology
