#include "topology/catalog.hpp"

#include <algorithm>
#include <cctype>

#include "topology/rocketfuel.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace::topology {

const std::vector<CatalogEntry>& catalog() {
  // Services per network: Tiscali=3 and AT&T=7 as stated in Section VI-A;
  // the Abovenet count is 5, consistent with the paper's five-service Fig. 1
  // example (see DESIGN.md section 4).
  static const std::vector<CatalogEntry> entries = {
      CatalogEntry{abovenet_spec(), /*services=*/5, /*clients_per_service=*/3,
                   /*extra_candidate_clients=*/6, /*client_seed=*/101},
      CatalogEntry{tiscali_spec(), /*services=*/3, /*clients_per_service=*/3,
                   /*extra_candidate_clients=*/0, /*client_seed=*/102},
      CatalogEntry{att_spec(), /*services=*/7, /*clients_per_service=*/3,
                   /*extra_candidate_clients=*/0, /*client_seed=*/103},
  };
  return entries;
}

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}
}  // namespace

const CatalogEntry& catalog_entry(const std::string& name) {
  const std::string needle = lower(name);
  for (const CatalogEntry& e : catalog())
    if (lower(e.spec.name) == needle) return e;
  throw InvalidInput("unknown topology '" + name + "'");
}

Graph build(const CatalogEntry& entry) { return generate_isp(entry.spec); }

std::vector<NodeId> candidate_clients(const CatalogEntry& entry,
                                      const Graph& g) {
  std::vector<NodeId> clients = g.degree_one_nodes();
  if (entry.extra_candidate_clients > 0) {
    std::vector<NodeId> others;
    for (NodeId v = 0; v < g.node_count(); ++v)
      if (g.degree(v) != 1) others.push_back(v);
    Rng rng(entry.client_seed);
    SPLACE_EXPECTS(entry.extra_candidate_clients <= others.size());
    std::vector<NodeId> extra =
        rng.sample(std::move(others), entry.extra_candidate_clients);
    clients.insert(clients.end(), extra.begin(), extra.end());
  }
  std::sort(clients.begin(), clients.end());
  return clients;
}

}  // namespace splace::topology
