// Parser for the Rocketfuel ISP-maps `.cch` router-level format, so the
// synthetic Table-I stand-ins can be swapped for the real data wherever a
// user has it (the dataset itself is not redistributable with this
// library).
//
// Grammar handled (one router per line; fields after the uid may appear in
// the orders Rocketfuel ships):
//
//   <uid> @<location> [+] [bb] (<#neigh>) [&<#ext>] -> <->nuid> ... [{...}] =name rN
//   -<euid> ... external placeholder lines (ignored)
//
// Example:
//   121 @ny,+ bb (3) &2 -> <303> <-404> <1422> {-907} =r0.nyc r0
//
// We keep what monitoring needs: internal routers, their adjacency, the
// backbone flag, and the location string. External (&/-prefixed) neighbors
// and DNS decorations are dropped. Uids are arbitrary integers and are
// remapped to dense NodeIds.
#pragma once

#include <istream>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace splace::topology {

struct RocketfuelNode {
  long uid = 0;             ///< original Rocketfuel uid
  std::string location;     ///< "@city" tag, without the '@'
  bool backbone = false;    ///< had the "bb" marker
};

struct RocketfuelMap {
  Graph graph;                            ///< dense-id undirected topology
  std::vector<RocketfuelNode> nodes;      ///< per dense NodeId
  std::map<long, NodeId> uid_to_node;     ///< original uid -> dense id

  /// Table-I style statistics of the parsed map.
  std::size_t dangling_count() const {
    return graph.degree_one_nodes().size();
  }
};

/// Parses a .cch document. Lines starting with '-' (external address
/// placeholders) and blank/comment ('#') lines are skipped; unknown
/// decorations within a router line are ignored. Links referencing a uid
/// that never appears as a router line are dropped (Rocketfuel maps cite
/// external neighbors this way). Throws InvalidInput on malformed router
/// lines, duplicate uids, or self-links.
RocketfuelMap parse_cch(std::istream& in);

/// Convenience overload over a string.
RocketfuelMap parse_cch(const std::string& text);

}  // namespace splace::topology
