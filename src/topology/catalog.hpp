// Named catalog of evaluation topologies together with the paper's
// per-network experiment parameters (Section VI-A): number of services,
// clients per service, and how candidate client nodes are chosen.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topology/isp_generator.hpp"

namespace splace::topology {

/// Evaluation setup for one network, mirroring Section VI-A.
struct CatalogEntry {
  IspSpec spec;
  std::size_t services = 0;            ///< # services placed in this network
  std::size_t clients_per_service = 3; ///< fixed at 3 in the paper
  /// # extra (non-dangling) candidate clients drawn at random; only Abovenet
  /// needs them ("we randomly choose 6 other nodes ... due to the small
  /// number of dangling nodes").
  std::size_t extra_candidate_clients = 0;
  std::uint64_t client_seed = 7;       ///< seed for the extra-client draw
};

/// All evaluation networks, in paper order (Abovenet, Tiscali, AT&T).
const std::vector<CatalogEntry>& catalog();

/// Looks an entry up by case-insensitive name; throws InvalidInput if absent.
const CatalogEntry& catalog_entry(const std::string& name);

/// Instantiates the entry's topology.
Graph build(const CatalogEntry& entry);

/// Candidate client nodes for an entry: all dangling nodes plus
/// `extra_candidate_clients` random non-dangling nodes (deterministic seed).
std::vector<NodeId> candidate_clients(const CatalogEntry& entry,
                                      const Graph& g);

}  // namespace splace::topology
