// Synthetic POP-level ISP topology generator.
//
// The paper evaluates on Rocketfuel maps (Abovenet/Tiscali/AT&T) summarized in
// Table I by three statistics: #nodes, #links, #degree-1 ("dangling") nodes.
// The real dataset is not available offline, so this generator produces a
// deterministic stand-in that matches those statistics *exactly* and mimics
// the hub-and-spoke character of POP maps:
//
//   1. a core of (nodes - dangling) POPs: random spanning tree + extra links,
//      preferring degree-1 endpoints first (no accidental core leaves), then
//      preferential attachment (hub formation);
//   2. each dangling access node attaches to one core node chosen with
//      probability proportional to its degree.
//
// See DESIGN.md §4 for why matching these statistics preserves the paper's
// path-diversity regime.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace splace::topology {

/// Target characteristics of a generated ISP topology (paper Table I row).
struct IspSpec {
  std::string name;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t dangling = 0;  ///< desired number of degree-1 nodes
  std::uint64_t seed = 1;

  /// True iff a graph matching this spec can exist.
  bool feasible() const;
};

/// Generates a connected graph matching `spec` exactly (#nodes, #links,
/// #degree-1 nodes). Dangling nodes occupy the highest ids
/// [nodes - dangling, nodes). Throws InvalidInput for infeasible specs and
/// ContractViolation if generation cannot satisfy the spec (does not happen
/// for feasible specs with enough extra core links; retried internally).
Graph generate_isp(const IspSpec& spec);

/// Observed characteristics of a graph, for validating against Table I.
struct TopologyStats {
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t dangling = 0;
};

TopologyStats stats_of(const Graph& g);

}  // namespace splace::topology
