// Three-tier hierarchical ISP generator — an alternative stand-in family for
// the Rocketfuel POP maps, used to check that the reproduced figure shapes
// are robust to the choice of synthetic topology (ablation A7) rather than
// artifacts of the preferential-attachment generator in isp_generator.hpp.
//
// Structure mirrors textbook ISP design:
//   * core tier: a small densely meshed backbone;
//   * aggregation tier: each aggregation POP dual-homed to two core nodes
//     (single-homed when the core has one node);
//   * access tier: degree-1 access nodes attached round-robin to
//     aggregation POPs (they model the paper's "dangling" client nodes).
// Leftover links beyond the structural minimum are added inside the core,
// then between aggregation nodes, keeping the target counts exact.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "topology/isp_generator.hpp"

namespace splace::topology {

/// Parameters for the tiered generator. Node/link/dangling counts follow
/// the same semantics as IspSpec so the two generators are interchangeable.
struct HierarchicalSpec {
  std::string name;
  std::size_t core = 4;         ///< backbone nodes
  std::size_t aggregation = 8;  ///< mid-tier POPs
  std::size_t access = 16;      ///< degree-1 access nodes
  std::size_t links = 0;        ///< total links; 0 = structural minimum
  std::uint64_t seed = 1;

  std::size_t nodes() const { return core + aggregation + access; }

  /// Structural minimum: core ring/mesh + dual-homing + access links.
  std::size_t min_links() const;
  /// Capacity: full core mesh + all agg-core + all agg-agg pairs + access.
  std::size_t max_links() const;
  bool feasible() const;
};

/// Generates the tiered topology. Node ids: [0, core) backbone,
/// [core, core+aggregation) mid-tier, rest access. Matches nodes()/links
/// exactly and yields exactly `access` degree-1 nodes. Deterministic per
/// seed. Throws InvalidInput for infeasible specs.
Graph generate_hierarchical(const HierarchicalSpec& spec);

/// A hierarchical stand-in shaped to an IspSpec's Table-I statistics:
/// access = dangling, aggregation ≈ 2×core among the remaining nodes.
/// Requires the implied HierarchicalSpec to be feasible.
Graph hierarchical_standin(const IspSpec& table1_spec);

}  // namespace splace::topology
