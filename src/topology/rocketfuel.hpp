// Stand-ins for the three Rocketfuel POP-level ISP topologies the paper
// evaluates on (Table I). Each factory is deterministic (fixed seed) and the
// produced graph matches the paper's reported #nodes / #links / #dangling
// exactly; see isp_generator.hpp and DESIGN.md §4 for the substitution
// rationale.
#pragma once

#include "graph/graph.hpp"
#include "topology/isp_generator.hpp"

namespace splace::topology {

/// Abovenet: 22 nodes, 80 links, 2 dangling (paper Table I, "small").
Graph abovenet();

/// Tiscali: 51 nodes, 129 links, 13 dangling (paper Table I, "medium").
Graph tiscali();

/// AT&T: 108 nodes, 141 links, 78 dangling (paper Table I, "large").
Graph att();

/// The Table I specs themselves (name, nodes, links, dangling).
const IspSpec& abovenet_spec();
const IspSpec& tiscali_spec();
const IspSpec& att_spec();

}  // namespace splace::topology
