#include "topology/hierarchical.hpp"

#include <algorithm>

#include "graph/components.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace::topology {

namespace {
std::size_t pairs_of(std::size_t n) { return n * (n - 1) / 2; }

std::size_t core_ring_links(std::size_t core) {
  if (core <= 1) return 0;
  if (core == 2) return 1;
  return core;
}
}  // namespace

std::size_t HierarchicalSpec::min_links() const {
  const std::size_t homes = std::min<std::size_t>(2, core);
  return core_ring_links(core) + aggregation * homes + access;
}

std::size_t HierarchicalSpec::max_links() const {
  const std::size_t homes = std::min<std::size_t>(2, core);
  return pairs_of(core) + aggregation * homes + pairs_of(aggregation) +
         access;
}

bool HierarchicalSpec::feasible() const {
  if (core < 1 || aggregation < 1) return false;
  const std::size_t target = links == 0 ? min_links() : links;
  return target >= min_links() && target <= max_links();
}

Graph generate_hierarchical(const HierarchicalSpec& spec) {
  if (!spec.feasible())
    throw InvalidInput("infeasible hierarchical spec '" + spec.name + "'");
  const std::size_t target_links =
      spec.links == 0 ? spec.min_links() : spec.links;

  Rng rng(spec.seed);
  Graph g(spec.nodes());
  const NodeId agg_base = static_cast<NodeId>(spec.core);
  const NodeId access_base =
      static_cast<NodeId>(spec.core + spec.aggregation);

  // Core ring (mesh comes from extras below).
  if (spec.core == 2) {
    g.add_edge(0, 1);
  } else if (spec.core >= 3) {
    for (NodeId v = 0; v < spec.core; ++v)
      g.add_edge(v, static_cast<NodeId>((v + 1) % spec.core));
  }

  // Aggregation tier: dual-homed to two distinct random core nodes.
  for (std::size_t a = 0; a < spec.aggregation; ++a) {
    const NodeId agg = static_cast<NodeId>(agg_base + a);
    const NodeId first = static_cast<NodeId>(rng.index(spec.core));
    g.add_edge(agg, first);
    if (spec.core >= 2) {
      NodeId second;
      do {
        second = static_cast<NodeId>(rng.index(spec.core));
      } while (second == first);
      g.add_edge(agg, second);
    }
  }

  // Access tier: round-robin over aggregation POPs.
  for (std::size_t x = 0; x < spec.access; ++x) {
    g.add_edge(static_cast<NodeId>(access_base + x),
               static_cast<NodeId>(agg_base + x % spec.aggregation));
  }

  // Extras: densify the core first, then the aggregation tier.
  auto add_extras = [&](NodeId lo, NodeId hi, std::size_t budget) {
    std::vector<std::pair<NodeId, NodeId>> candidates;
    for (NodeId u = lo; u < hi; ++u)
      for (NodeId v = static_cast<NodeId>(u + 1); v < hi; ++v)
        if (!g.has_edge(u, v)) candidates.emplace_back(u, v);
    rng.shuffle(candidates);
    std::size_t used = 0;
    for (const auto& [u, v] : candidates) {
      if (used == budget) break;
      g.add_edge(u, v);
      ++used;
    }
    return used;
  };
  std::size_t extra = target_links - g.edge_count();
  extra -= add_extras(0, static_cast<NodeId>(spec.core), extra);
  extra -= add_extras(agg_base, access_base, extra);
  SPLACE_ENSURES(extra == 0);

  const TopologyStats stats = stats_of(g);
  SPLACE_ENSURES(stats.nodes == spec.nodes());
  SPLACE_ENSURES(stats.links == target_links);
  SPLACE_ENSURES(stats.dangling == spec.access);
  SPLACE_ENSURES(is_connected(g));
  return g;
}

Graph hierarchical_standin(const IspSpec& table1_spec) {
  HierarchicalSpec spec;
  spec.name = table1_spec.name + "-hier";
  spec.access = table1_spec.dangling;
  SPLACE_EXPECTS(table1_spec.nodes > table1_spec.dangling);
  const std::size_t remaining = table1_spec.nodes - table1_spec.dangling;
  spec.core = std::max<std::size_t>(1, remaining / 3);
  spec.aggregation = remaining - spec.core;
  spec.links = table1_spec.links;
  spec.seed = table1_spec.seed ^ 0x41e7u;
  if (!spec.feasible())
    throw InvalidInput("no hierarchical stand-in for '" + table1_spec.name +
                       "'");
  return generate_hierarchical(spec);
}

}  // namespace splace::topology
