#include "topology/isp_generator.hpp"

#include <algorithm>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace splace::topology {

bool IspSpec::feasible() const {
  if (nodes == 0 || dangling > nodes) return false;
  const std::size_t core = nodes - dangling;
  if (core == 0) return core == nodes;  // all-dangling is impossible unless empty
  if (links < dangling) return false;
  const std::size_t core_links = links - dangling;
  if (core >= 2 && core_links + 1 < core) return false;  // core must connect
  if (core == 1 && core_links != 0) return false;
  if (core_links > core * (core - 1) / 2) return false;
  return true;
}

TopologyStats stats_of(const Graph& g) {
  TopologyStats s;
  s.nodes = g.node_count();
  s.links = g.edge_count();
  s.dangling = g.degree_one_nodes().size();
  return s;
}

namespace {

/// One generation attempt; returns true on success.
bool try_generate(const IspSpec& spec, Rng& rng, Graph& out) {
  const std::size_t core_n = spec.nodes - spec.dangling;
  const std::size_t core_links = spec.links - spec.dangling;

  Graph g = core_n >= 2 ? random_tree(core_n, rng) : Graph(core_n);
  std::size_t extra = core_links - g.edge_count();

  // Phase 1: eliminate core leaves first — every degree-1 core node gets an
  // extra link to a preferentially chosen partner.
  auto add_preferential_link = [&](NodeId u) -> bool {
    std::vector<double> weights(core_n, 0.0);
    bool any = false;
    for (NodeId v = 0; v < core_n; ++v) {
      if (v == u || g.has_edge(u, v)) continue;
      weights[v] = static_cast<double>(g.degree(v)) + 1.0;
      any = true;
    }
    if (!any) return false;
    g.add_edge(u, static_cast<NodeId>(rng.weighted_index(weights)));
    return true;
  };

  for (NodeId u = 0; u < core_n && extra > 0; ++u) {
    if (g.degree(u) != 1) continue;
    if (add_preferential_link(u)) --extra;
  }

  // Phase 2: spend remaining extra links on preferential pairs (hubs).
  std::size_t stall = 0;
  while (extra > 0 && stall < 10 * spec.links + 100) {
    std::vector<double> weights(core_n);
    for (NodeId v = 0; v < core_n; ++v)
      weights[v] = static_cast<double>(g.degree(v)) + 1.0;
    const NodeId u = static_cast<NodeId>(rng.weighted_index(weights));
    weights[u] = 0.0;
    for (NodeId v = 0; v < core_n; ++v)
      if (g.has_edge(u, v)) weights[v] = 0.0;
    bool any = std::any_of(weights.begin(), weights.end(),
                           [](double w) { return w > 0; });
    if (!any) {
      ++stall;
      continue;
    }
    g.add_edge(u, static_cast<NodeId>(rng.weighted_index(weights)));
    --extra;
  }
  if (extra > 0) return false;

  // Phase 3: attach dangling access nodes, covering any residual core leaves
  // first, then preferentially by degree.
  std::vector<NodeId> residual_leaves;
  for (NodeId v = 0; v < core_n; ++v)
    if (g.degree(v) == 1) residual_leaves.push_back(v);
  if (residual_leaves.size() > spec.dangling) return false;

  for (std::size_t i = 0; i < spec.dangling; ++i) {
    const NodeId leaf = g.add_node();
    NodeId anchor;
    if (i < residual_leaves.size()) {
      anchor = residual_leaves[i];
    } else {
      std::vector<double> weights(core_n);
      for (NodeId v = 0; v < core_n; ++v)
        weights[v] = static_cast<double>(g.degree(v));
      anchor = static_cast<NodeId>(rng.weighted_index(weights));
    }
    g.add_edge(leaf, anchor);
  }

  const TopologyStats got = stats_of(g);
  if (got.nodes != spec.nodes || got.links != spec.links ||
      got.dangling != spec.dangling || !is_connected(g))
    return false;
  out = std::move(g);
  return true;
}

}  // namespace

Graph generate_isp(const IspSpec& spec) {
  if (!spec.feasible())
    throw InvalidInput("infeasible ISP spec '" + spec.name + "': " +
                       std::to_string(spec.nodes) + " nodes, " +
                       std::to_string(spec.links) + " links, " +
                       std::to_string(spec.dangling) + " dangling");
  // Degenerate but feasible corner: a single node, no links.
  if (spec.nodes == 1 && spec.links == 0) return Graph(1);

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Rng rng(spec.seed + static_cast<std::uint64_t>(attempt) * 0x9e37u);
    Graph g;
    if (try_generate(spec, rng, g)) return g;
  }
  throw ContractViolation("ISP generation failed for spec '" + spec.name +
                          "' after retries");
}

}  // namespace splace::topology
