#include "topology/rocketfuel.hpp"

namespace splace::topology {

const IspSpec& abovenet_spec() {
  static const IspSpec spec{"Abovenet", 22, 80, 2, /*seed=*/20160801};
  return spec;
}

const IspSpec& tiscali_spec() {
  static const IspSpec spec{"Tiscali", 51, 129, 13, /*seed=*/20160802};
  return spec;
}

const IspSpec& att_spec() {
  static const IspSpec spec{"AT&T", 108, 141, 78, /*seed=*/20160803};
  return spec;
}

Graph abovenet() { return generate_isp(abovenet_spec()); }
Graph tiscali() { return generate_isp(tiscali_spec()); }
Graph att() { return generate_isp(att_spec()); }

}  // namespace splace::topology
