#include "localization/fusion.hpp"

#include <algorithm>

#include "monitoring/failure_sets.hpp"
#include "util/error.hpp"

namespace splace {

EvidenceFusion::EvidenceFusion(const PathSet& paths, std::size_t k)
    : paths_(paths), k_(k) {
  for_each_failure_set(paths.node_count(), k,
                       [this](const std::vector<NodeId>& f) {
                         candidates_.push_back(f);
                       });
}

EpochEvidence EvidenceFusion::full_observation(
    const PathSet& paths, const DynamicBitset& failed_paths) {
  EpochEvidence evidence;
  evidence.exercised = DynamicBitset(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) evidence.exercised.set(i);
  evidence.failed = failed_paths;
  return evidence;
}

void EvidenceFusion::add_evidence(const EpochEvidence& evidence) {
  SPLACE_EXPECTS(evidence.exercised.size() == paths_.size());
  SPLACE_EXPECTS(evidence.failed.size() == paths_.size());
  SPLACE_EXPECTS(evidence.failed.is_subset_of(evidence.exercised));

  std::erase_if(candidates_, [&](const std::vector<NodeId>& candidate) {
    const DynamicBitset hypothetical = paths_.affected_paths(candidate);
    // Consistent iff, restricted to the exercised paths, the hypothetical
    // failure pattern equals the observed one.
    DynamicBitset masked = hypothetical;
    masked &= evidence.exercised;
    return !(masked == evidence.failed);
  });
}

}  // namespace splace
