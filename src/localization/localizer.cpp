#include "localization/localizer.hpp"

#include <algorithm>

#include "monitoring/set_cover.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

/// Enumerates subsets of `pool` of size ≤ k, checking consistency: the
/// subset's affected paths must equal `observed` exactly.
void enumerate_consistent(const PathSet& paths,
                          const std::vector<NodeId>& pool,
                          const DynamicBitset& observed, std::size_t k,
                          std::vector<NodeId>& current, std::size_t first,
                          std::vector<std::vector<NodeId>>& out) {
  // Candidates in `pool` touch only failed paths (exonerated nodes are
  // excluded up front), so P_current ⊆ observed always holds; consistency
  // reduces to covering every observed failed path.
  if (paths.affected_paths(current) == observed) out.push_back(current);
  if (current.size() == k) return;
  for (std::size_t i = first; i < pool.size(); ++i) {
    current.push_back(pool[i]);
    enumerate_consistent(paths, pool, observed, k, current, i + 1, out);
    current.pop_back();
  }
}

}  // namespace

LocalizationResult localize(const PathSet& paths,
                            const DynamicBitset& failed_paths,
                            std::size_t k) {
  SPLACE_EXPECTS(failed_paths.size() == paths.size());
  const std::size_t n = paths.node_count();

  LocalizationResult result;
  result.exonerated = DynamicBitset(n);
  result.suspects = DynamicBitset(n);
  result.unobserved = DynamicBitset(n);

  DynamicBitset covered(n);
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    covered |= paths[pi].node_set();
    if (!failed_paths.test(pi)) result.exonerated |= paths[pi].node_set();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!covered.test(v)) {
      result.unobserved.set(v);
    } else if (!result.exonerated.test(v)) {
      // Covered, every incident path failed -> candidate location.
      result.suspects.set(v);
    }
  }

  // Enumerate consistent failure sets over suspects ∪ unobserved: an
  // exonerated node cannot be failed; any other node is fair game (an
  // unobserved one changes no path state but is still a legal member of F).
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < n; ++v)
    if (result.suspects.test(v) || result.unobserved.test(v))
      pool.push_back(v);
  std::vector<NodeId> current;
  enumerate_consistent(paths, pool, failed_paths, k, current, 0,
                       result.consistent_sets);

  // Greedy minimal explanation: cover the failed paths with suspect nodes.
  if (failed_paths.any()) {
    std::vector<DynamicBitset> incidence = paths.node_incidence();
    std::vector<DynamicBitset> candidates;
    std::vector<NodeId> candidate_ids;
    for (NodeId v = 0; v < n; ++v) {
      if (!result.suspects.test(v)) continue;
      candidates.push_back(incidence[v]);
      candidate_ids.push_back(v);
    }
    const auto cover = greedy_set_cover(failed_paths, candidates);
    if (cover) {
      for (std::size_t i : *cover)
        result.minimal_explanation.push_back(candidate_ids[i]);
      std::sort(result.minimal_explanation.begin(),
                result.minimal_explanation.end());
    }
  }
  return result;
}

LocalizationResult localize(const PathSet& paths,
                            const FailureScenario& scenario, std::size_t k) {
  return localize(paths, scenario.failed_paths, k);
}

}  // namespace splace
