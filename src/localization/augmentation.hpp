// Active-probe augmentation planning.
//
// The paper's passive observations are deliberately minimal; its
// introduction notes they "can be augmented with other information (e.g.,
// traceroutes and other active probes) to uniquely localize failures" and
// that a good placement "minimizes the need of additional measurements".
// This module plans that augmentation: given the candidate failure sets an
// observation left indistinguishable, greedily pick the fewest extra probe
// paths (from a caller-supplied pool, e.g. host-to-node traceroutes) whose
// outcomes would tell every remaining pair of candidates apart.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"
#include "monitoring/path.hpp"

namespace splace {

struct AugmentationPlan {
  /// Indices into the probe pool, in selection order.
  std::vector<std::size_t> probes;
  /// True iff the chosen probes separate every candidate pair (then a
  /// second observation round localizes the failure uniquely).
  bool fully_disambiguates = false;
  /// Candidate pairs still indistinguishable after the plan.
  std::size_t remaining_pairs = 0;
};

/// A probe separates candidates F, F' iff it intersects exactly one of
/// them (their hypothetical states under the probe would differ).
bool probe_separates(const MeasurementPath& probe,
                     const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b);

/// Greedy max-separation planning: repeatedly pick the pool probe that
/// separates the most still-unseparated candidate pairs; stop when all
/// pairs are separated or no probe helps. Candidates must share the pool's
/// node universe. With < 2 candidates the plan is trivially complete.
AugmentationPlan plan_augmentation(
    const std::vector<MeasurementPath>& pool,
    const std::vector<std::vector<NodeId>>& candidates);

/// Standard probe pool for a set of vantage nodes: one routed path from
/// each vantage to every reachable node (traceroute-style).
std::vector<MeasurementPath> probe_pool(const RoutingTable& routing,
                                        const std::vector<NodeId>& vantages);

/// Smallest separating probe set by exhaustive search (tests/tiny pools
/// only); empty optional when even the full pool cannot separate all pairs.
std::vector<std::size_t> minimum_augmentation_exact(
    const std::vector<MeasurementPath>& pool,
    const std::vector<std::vector<NodeId>>& candidates);

}  // namespace splace
