// Temporal fusion of localization evidence.
//
// A persistent failure is observed many times: different monitoring epochs
// see different subsets of paths exercised (and, with noise, different
// verdicts). Each observation constrains the candidate set; fusing them
// shrinks ambiguity monotonically — often to a single candidate long before
// any one epoch would localize uniquely. This is the temporal complement of
// the spatial augmentation planner (augmentation.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "localization/localizer.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// One epoch's evidence: which paths were exercised and, of those, which
/// failed. Paths not exercised say nothing.
struct EpochEvidence {
  DynamicBitset exercised;  ///< over the path-set indices
  DynamicBitset failed;     ///< subset of exercised
};

/// Accumulates evidence about a *persistent* failure set of size ≤ k.
class EvidenceFusion {
 public:
  /// Starts from all failure sets of size ≤ k being possible.
  EvidenceFusion(const PathSet& paths, std::size_t k);

  std::size_t k() const { return k_; }

  /// Incorporates one epoch: keeps only candidates whose hypothetical
  /// states match the observation on every exercised path. Requires
  /// evidence dimensions to match the path set and failed ⊆ exercised.
  void add_evidence(const EpochEvidence& evidence);

  /// Candidates still consistent with everything seen (sorted lists,
  /// enumeration order).
  const std::vector<std::vector<NodeId>>& candidates() const {
    return candidates_;
  }

  bool unique() const { return candidates_.size() == 1; }
  bool contradictory() const { return candidates_.empty(); }

  /// Convenience: evidence from a full-epoch scenario where every path was
  /// exercised.
  static EpochEvidence full_observation(const PathSet& paths,
                                        const DynamicBitset& failed_paths);

 private:
  const PathSet& paths_;
  std::size_t k_;
  std::vector<std::vector<NodeId>> candidates_;
};

}  // namespace splace
