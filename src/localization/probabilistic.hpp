// Probabilistic extensions to the Boolean-tomography localizer, following
// the directions the paper cites as complements to its minimum-observation
// model: ranking candidate failure sets by prior failure probabilities (as
// in the paper's reference [13]) and coping with noisy path-state estimates
// (reference [3]).
//
// Model: node v fails independently with prior probability p_v; a path
// measurement misreports with per-path false-positive rate fp (normal path
// observed failed) and false-negative rate fn (failed path observed normal).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"
#include "util/random.hpp"

namespace splace {

/// Per-path measurement noise.
struct NoiseModel {
  double false_positive = 0.0;  ///< P(observed failed | path normal)
  double false_negative = 0.0;  ///< P(observed normal | path failed)
};

/// Independent per-node prior failure probabilities. Probabilities must lie
/// in (0, 1) so log-likelihoods stay finite.
struct NodePriors {
  std::vector<double> p;

  /// Uniform prior p for every one of `n` nodes.
  static NodePriors uniform(std::size_t n, double prob);
};

/// Samples a noisy observation of the true path states induced by
/// `failure_set`: each path's true state flips per the noise model.
DynamicBitset noisy_observe(const PathSet& paths,
                            const std::vector<NodeId>& failure_set,
                            const NoiseModel& noise, Rng& rng);

/// Majority-vote estimate of the path-state vector over `trials` independent
/// noisy observations (ties read as failed). With trials >> 1 this recovers
/// the true states, the standard remedy for noisy measurements.
DynamicBitset estimate_path_states(const PathSet& paths,
                                   const std::vector<NodeId>& failure_set,
                                   const NoiseModel& noise,
                                   std::size_t trials, Rng& rng);

/// A candidate failure set with its posterior score.
struct RankedCandidate {
  std::vector<NodeId> failure_set;
  double log_posterior = 0;  ///< log P(F) + log P(obs | F), unnormalized
};

/// Ranks every failure set of size ≤ k by unnormalized posterior given a
/// (possibly noisy) observed path-state vector: candidates sorted by
/// descending score; deterministic tie-break by enumeration order.
/// With zero noise, sets inconsistent with the observation score -inf and
/// are omitted — the result is then exactly the consistent sets of
/// localize(), ordered by prior.
std::vector<RankedCandidate> rank_failure_sets(const PathSet& paths,
                                               const DynamicBitset& observed,
                                               std::size_t k,
                                               const NodePriors& priors,
                                               const NoiseModel& noise);

/// Maximum-a-posteriori failure set (first entry of rank_failure_sets).
/// Requires at least one candidate with finite score.
RankedCandidate map_failure_set(const PathSet& paths,
                                const DynamicBitset& observed, std::size_t k,
                                const NodePriors& priors,
                                const NoiseModel& noise);

}  // namespace splace
