#include "localization/inspection.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace splace {

std::size_t inspections_until_found(const std::vector<NodeId>& order,
                                    const std::vector<NodeId>& truth,
                                    std::size_t node_count) {
  if (truth.empty()) return 0;
  for (NodeId v : truth) SPLACE_EXPECTS(v < node_count);

  std::vector<bool> listed(node_count, false);
  std::vector<NodeId> full = order;
  for (NodeId v : order) {
    SPLACE_EXPECTS(v < node_count);
    listed[v] = true;
  }
  for (NodeId v = 0; v < node_count; ++v)
    if (!listed[v]) full.push_back(v);

  std::size_t remaining = truth.size();
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (std::find(truth.begin(), truth.end(), full[i]) != truth.end()) {
      if (--remaining == 0) return i + 1;
    }
  }
  throw ContractViolation("truth nodes missing from inspection universe");
}

std::vector<NodeId> localization_inspection_order(
    const LocalizationResult& result) {
  const std::size_t n = result.exonerated.size();
  // Score each suspect by how many candidate explanations implicate it.
  std::map<NodeId, std::size_t> implication_count;
  for (const auto& candidate : result.consistent_sets)
    for (NodeId v : candidate) ++implication_count[v];

  std::vector<NodeId> suspects;
  result.suspects.for_each([&suspects](std::size_t v) {
    suspects.push_back(static_cast<NodeId>(v));
  });
  std::stable_sort(suspects.begin(), suspects.end(),
                   [&implication_count](NodeId a, NodeId b) {
                     const std::size_t ca = implication_count.count(a)
                                                ? implication_count.at(a)
                                                : 0;
                     const std::size_t cb = implication_count.count(b)
                                                ? implication_count.at(b)
                                                : 0;
                     if (ca != cb) return ca > cb;
                     return a < b;
                   });

  std::vector<NodeId> order = suspects;
  result.unobserved.for_each([&order](std::size_t v) {
    order.push_back(static_cast<NodeId>(v));
  });
  result.exonerated.for_each([&order](std::size_t v) {
    order.push_back(static_cast<NodeId>(v));
  });
  SPLACE_ENSURES(order.size() == n);
  return order;
}

std::vector<NodeId> ranked_inspection_order(
    const std::vector<RankedCandidate>& ranked, std::size_t node_count) {
  std::vector<bool> listed(node_count, false);
  std::vector<NodeId> order;
  for (const RankedCandidate& candidate : ranked) {
    for (NodeId v : candidate.failure_set) {
      SPLACE_EXPECTS(v < node_count);
      if (!listed[v]) {
        listed[v] = true;
        order.push_back(v);
      }
    }
  }
  return order;
}

std::size_t troubleshooting_cost(const PathSet& paths,
                                 const FailureScenario& scenario,
                                 std::size_t k) {
  const LocalizationResult result = localize(paths, scenario, k);
  return inspections_until_found(localization_inspection_order(result),
                                 scenario.failed_nodes, paths.node_count());
}

}  // namespace splace
