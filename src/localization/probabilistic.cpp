#include "localization/probabilistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "monitoring/failure_sets.hpp"
#include "util/error.hpp"

namespace splace {

NodePriors NodePriors::uniform(std::size_t n, double prob) {
  SPLACE_EXPECTS(prob > 0.0 && prob < 1.0);
  NodePriors priors;
  priors.p.assign(n, prob);
  return priors;
}

DynamicBitset noisy_observe(const PathSet& paths,
                            const std::vector<NodeId>& failure_set,
                            const NoiseModel& noise, Rng& rng) {
  SPLACE_EXPECTS(noise.false_positive >= 0.0 && noise.false_positive < 1.0);
  SPLACE_EXPECTS(noise.false_negative >= 0.0 && noise.false_negative < 1.0);
  const DynamicBitset truth = paths.affected_paths(failure_set);
  DynamicBitset observed(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const bool failed = truth.test(i);
    const bool flip = failed ? rng.bernoulli(noise.false_negative)
                             : rng.bernoulli(noise.false_positive);
    if (failed != flip) observed.set(i);
  }
  return observed;
}

DynamicBitset estimate_path_states(const PathSet& paths,
                                   const std::vector<NodeId>& failure_set,
                                   const NoiseModel& noise,
                                   std::size_t trials, Rng& rng) {
  SPLACE_EXPECTS(trials >= 1);
  std::vector<std::size_t> failed_votes(paths.size(), 0);
  for (std::size_t t = 0; t < trials; ++t) {
    const DynamicBitset obs = noisy_observe(paths, failure_set, noise, rng);
    obs.for_each([&failed_votes](std::size_t i) { ++failed_votes[i]; });
  }
  DynamicBitset estimate(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i)
    if (2 * failed_votes[i] >= trials) estimate.set(i);
  return estimate;
}

namespace {

/// log P(observed | true path states from F) under the noise model.
/// Zero-noise observations that contradict F yield -inf.
double log_likelihood(const DynamicBitset& truth,
                      const DynamicBitset& observed,
                      const NoiseModel& noise) {
  double ll = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth.test(i);
    const bool o = observed.test(i);
    double prob;
    if (t)
      prob = o ? 1.0 - noise.false_negative : noise.false_negative;
    else
      prob = o ? noise.false_positive : 1.0 - noise.false_positive;
    if (prob <= 0.0) return -std::numeric_limits<double>::infinity();
    ll += std::log(prob);
  }
  return ll;
}

double log_prior(const std::vector<NodeId>& failure_set,
                 const NodePriors& priors) {
  // Σ_{v∈F} log p_v + Σ_{v∉F} log(1−p_v); compute as base + adjustments.
  double lp = 0;
  std::size_t idx = 0;
  for (std::size_t v = 0; v < priors.p.size(); ++v) {
    const bool in_f = idx < failure_set.size() && failure_set[idx] == v;
    if (in_f) ++idx;
    const double pv = priors.p[v];
    lp += std::log(in_f ? pv : 1.0 - pv);
  }
  return lp;
}

}  // namespace

std::vector<RankedCandidate> rank_failure_sets(const PathSet& paths,
                                               const DynamicBitset& observed,
                                               std::size_t k,
                                               const NodePriors& priors,
                                               const NoiseModel& noise) {
  SPLACE_EXPECTS(priors.p.size() == paths.node_count());
  SPLACE_EXPECTS(observed.size() == paths.size());
  for (double pv : priors.p) SPLACE_EXPECTS(pv > 0.0 && pv < 1.0);

  std::vector<RankedCandidate> ranked;
  for_each_failure_set(
      paths.node_count(), k, [&](const std::vector<NodeId>& f) {
        const DynamicBitset truth = paths.affected_paths(f);
        const double ll = log_likelihood(truth, observed, noise);
        if (std::isinf(ll)) return;  // impossible under zero noise
        ranked.push_back(RankedCandidate{f, log_prior(f, priors) + ll});
      });
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.log_posterior > b.log_posterior;
                   });
  return ranked;
}

RankedCandidate map_failure_set(const PathSet& paths,
                                const DynamicBitset& observed, std::size_t k,
                                const NodePriors& priors,
                                const NoiseModel& noise) {
  const auto ranked = rank_failure_sets(paths, observed, k, priors, noise);
  SPLACE_EXPECTS(!ranked.empty());
  return ranked.front();
}

}  // namespace splace
