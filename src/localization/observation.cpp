#include "localization/observation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

FailureScenario observe(const PathSet& paths, std::vector<NodeId> failed) {
  std::sort(failed.begin(), failed.end());
  SPLACE_EXPECTS(std::adjacent_find(failed.begin(), failed.end()) ==
                 failed.end());
  FailureScenario scenario;
  scenario.failed_paths = paths.affected_paths(failed);
  scenario.failed_nodes = std::move(failed);
  return scenario;
}

FailureScenario random_scenario(const PathSet& paths, std::size_t failures,
                                Rng& rng) {
  SPLACE_EXPECTS(failures <= paths.node_count());
  std::vector<NodeId> pool(paths.node_count());
  for (NodeId v = 0; v < paths.node_count(); ++v) pool[v] = v;
  return observe(paths, rng.sample(std::move(pool), failures));
}

}  // namespace splace
