#include "localization/augmentation.hpp"

#include <bit>

#include "util/error.hpp"

namespace splace {

bool probe_separates(const MeasurementPath& probe,
                     const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  auto hits = [&probe](const std::vector<NodeId>& f) {
    for (NodeId v : f)
      if (probe.traverses(v)) return true;
    return false;
  };
  return hits(a) != hits(b);
}

AugmentationPlan plan_augmentation(
    const std::vector<MeasurementPath>& pool,
    const std::vector<std::vector<NodeId>>& candidates) {
  AugmentationPlan plan;
  if (candidates.size() < 2) {
    plan.fully_disambiguates = true;
    return plan;
  }

  // Materialize the unseparated pairs.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    for (std::size_t j = i + 1; j < candidates.size(); ++j)
      pairs.emplace_back(i, j);

  std::vector<bool> used(pool.size(), false);
  while (!pairs.empty()) {
    std::size_t best = pool.size();
    std::size_t best_gain = 0;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (used[p]) continue;
      std::size_t gain = 0;
      for (const auto& [i, j] : pairs)
        if (probe_separates(pool[p], candidates[i], candidates[j])) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = p;
      }
    }
    if (best == pool.size()) break;  // no probe separates anything further
    used[best] = true;
    plan.probes.push_back(best);
    std::erase_if(pairs, [&](const auto& pair) {
      return probe_separates(pool[best], candidates[pair.first],
                             candidates[pair.second]);
    });
  }

  plan.remaining_pairs = pairs.size();
  plan.fully_disambiguates = pairs.empty();
  return plan;
}

std::vector<MeasurementPath> probe_pool(const RoutingTable& routing,
                                        const std::vector<NodeId>& vantages) {
  std::vector<MeasurementPath> pool;
  for (NodeId vantage : vantages) {
    SPLACE_EXPECTS(vantage < routing.node_count());
    for (NodeId target = 0; target < routing.node_count(); ++target) {
      if (!routing.reachable(vantage, target)) continue;
      pool.emplace_back(routing.node_count(),
                        routing.route(vantage, target));
    }
  }
  return pool;
}

std::vector<std::size_t> minimum_augmentation_exact(
    const std::vector<MeasurementPath>& pool,
    const std::vector<std::vector<NodeId>>& candidates) {
  SPLACE_EXPECTS(pool.size() < 8 * sizeof(std::size_t));
  if (candidates.size() < 2) return {};

  auto separates_all = [&](std::size_t mask) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        bool separated = false;
        for (std::size_t p = 0; p < pool.size() && !separated; ++p)
          if ((mask >> p) & 1u)
            separated =
                probe_separates(pool[p], candidates[i], candidates[j]);
        if (!separated) return false;
      }
    }
    return true;
  };

  std::size_t best_mask = 0;
  std::size_t best_size = pool.size() + 1;
  for (std::size_t mask = 0; mask < (std::size_t{1} << pool.size());
       ++mask) {
    const auto size = static_cast<std::size_t>(std::popcount(mask));
    if (size >= best_size) continue;
    if (separates_all(mask)) {
      best_size = size;
      best_mask = mask;
    }
  }
  if (best_size == pool.size() + 1)
    throw InvalidInput("no probe subset separates all candidates");
  std::vector<std::size_t> chosen;
  for (std::size_t p = 0; p < pool.size(); ++p)
    if ((best_mask >> p) & 1u) chosen.push_back(p);
  return chosen;
}

}  // namespace splace
