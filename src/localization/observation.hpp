// Failure injection and the end-to-end observation model (paper Section I):
// the operator sees only the binary state of each measurement path — failed
// iff the path traverses at least one failed node.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"
#include "util/random.hpp"

namespace splace {

/// Ground truth plus what the monitoring layer observes.
struct FailureScenario {
  std::vector<NodeId> failed_nodes;  ///< true failure set F (sorted)
  DynamicBitset failed_paths;        ///< P_F, over path indices
};

/// Applies a failure set to a path set. Node ids must be valid.
FailureScenario observe(const PathSet& paths, std::vector<NodeId> failed);

/// Draws `failures` distinct failed nodes uniformly and observes them.
/// Requires failures <= node count.
FailureScenario random_scenario(const PathSet& paths, std::size_t failures,
                                Rng& rng);

}  // namespace splace
