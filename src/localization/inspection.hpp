// Troubleshooting-cost model on top of localization results.
//
// After the localizer narrows an outage to a set of candidate explanations,
// an operator inspects nodes one by one until the true failure set is fully
// confirmed. This module turns localization ambiguity into the operational
// quantity the paper's introduction motivates ("helps to speed up
// recovery"): the number of node inspections needed under a given
// inspection order.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "localization/localizer.hpp"
#include "localization/probabilistic.hpp"

namespace splace {

/// Inspections needed when checking nodes in the given order until every
/// member of `truth` has been inspected (each inspection reveals one node's
/// true state). Nodes absent from `order` are appended in id order, so the
/// result is always defined. Returns 0 when truth is empty.
std::size_t inspections_until_found(const std::vector<NodeId>& order,
                                    const std::vector<NodeId>& truth,
                                    std::size_t node_count);

/// Inspection order derived from a localization result: suspects implicated
/// by the most failed candidate sets first (ties by node id), then
/// unobserved nodes, then everything else. Exonerated nodes are never
/// inspected before the rest since their state is already known — they are
/// appended last for completeness.
std::vector<NodeId> localization_inspection_order(
    const LocalizationResult& result);

/// Inspection order from a posterior ranking: walk the ranked candidate
/// sets, emitting their not-yet-listed member nodes.
std::vector<NodeId> ranked_inspection_order(
    const std::vector<RankedCandidate>& ranked, std::size_t node_count);

/// Expected inspections for a failure scenario under a placement's path
/// set: localizes, derives the order, counts inspections to confirm truth.
std::size_t troubleshooting_cost(const PathSet& paths,
                                 const FailureScenario& scenario,
                                 std::size_t k);

}  // namespace splace
