// Boolean network tomography: infer failure locations from binary path
// states (paper Sections I-II). This is the downstream consumer that the
// monitoring-aware placements exist to serve — given an observation it
// reports which nodes are cleared, which are suspect, every failure set of
// size ≤ k consistent with the evidence (the set {F} ∪ I_k(F; P)), and a
// greedy minimal explanation in the spirit of [12], [4], [2].
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "localization/observation.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

struct LocalizationResult {
  /// Nodes on at least one *normal* path — provably healthy.
  DynamicBitset exonerated;
  /// Covered, non-exonerated nodes lying on ≥1 failed path — the candidate
  /// failure locations the evidence points at.
  DynamicBitset suspects;
  /// Nodes traversed by no path at all — unobservable, state unknown.
  DynamicBitset unobserved;
  /// Every failure set of size ≤ k consistent with the observation
  /// (produces exactly the observed failed-path set). Sorted member lists.
  std::vector<std::vector<NodeId>> consistent_sets;
  /// A smallest-effort explanation: greedy hitting set of the failed paths
  /// by suspect nodes (empty when nothing failed).
  std::vector<NodeId> minimal_explanation;

  /// True iff exactly one failure set of size ≤ k explains the observation.
  bool unique() const { return consistent_sets.size() == 1; }
  /// |I_k(F; P)| for the true F: # alternative explanations.
  std::size_t ambiguity() const {
    return consistent_sets.empty() ? 0 : consistent_sets.size() - 1;
  }
};

/// Localizes failures from observed path states, assuming at most k nodes
/// failed. Consistent sets are enumerated over non-exonerated nodes only
/// (a node on a normal path cannot be failed), which is exhaustive and
/// equivalent to scanning all of F_k.
LocalizationResult localize(const PathSet& paths,
                            const DynamicBitset& failed_paths, std::size_t k);

/// Convenience overload for a simulated scenario.
LocalizationResult localize(const PathSet& paths,
                            const FailureScenario& scenario, std::size_t k);

}  // namespace splace
