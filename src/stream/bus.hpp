// EventBus: fan-out of stream events to ring-buffer subscribers and
// callback sinks, engineered so an idle bus costs nothing.
//
// Design rules (DESIGN.md §13):
//   - Publishing with zero subscribers for an event's kind is a relaxed
//     atomic load and a branch — no lock, no allocation, no copy. The
//     engine can therefore publish unconditionally from its hot path.
//   - Each ring subscription owns a bounded buffer of
//     shared_ptr<const StreamEvent>; the event payload is allocated once
//     per publish and shared across subscribers.
//   - Backpressure never blocks the publisher. A full ring drops and
//     counts: DropNew keeps the oldest buffered events (the
//     TraceRecorder-compatible policy drain_traces() relies on), DropOld
//     evicts the oldest to admit the newest (live dashboards that want
//     "most recent" over "first seen").
//   - Callback sinks run synchronously on the publishing thread, outside
//     the bus lock. They must be fast; exceptions are swallowed and
//     counted in BusStats::callback_errors.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "stream/event.hpp"

namespace splace::stream {

/// What to do when a subscription's ring is full.
enum class DropPolicy {
  DropNew,  ///< reject the incoming event, keep the oldest buffered
  DropOld   ///< evict the oldest buffered event to admit the incoming one
};

struct SubscribeOptions {
  EventMask mask = kAllEvents;      ///< which kinds to receive
  std::size_t capacity = 1024;      ///< max buffered events (>= 1)
  DropPolicy policy = DropPolicy::DropNew;
};

/// Point-in-time counters for one subscription.
struct SubscriptionStats {
  std::uint64_t pushed = 0;    ///< events accepted into the ring
  std::uint64_t drained = 0;   ///< events handed out by poll()
  std::uint64_t dropped = 0;   ///< events lost to a full ring
  std::size_t buffered = 0;    ///< currently waiting in the ring
  std::size_t capacity = 0;
};

/// A bounded ring of undelivered events. Created by EventBus::subscribe;
/// thread-safe; outlives the bus gracefully (a detached subscription keeps
/// serving whatever it buffered, and accepts nothing new).
class Subscription {
 public:
  /// Removes and returns all buffered events in publish order.
  std::vector<std::shared_ptr<const StreamEvent>> poll();

  SubscriptionStats stats() const;

 private:
  friend class EventBus;

  explicit Subscription(SubscribeOptions options) : options_(options) {}

  /// Returns false when the event was dropped (DropNew on a full ring).
  bool push(std::shared_ptr<const StreamEvent> event);

  SubscribeOptions options_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const StreamEvent>> ring_;
  std::uint64_t pushed_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Aggregate bus counters.
struct BusStats {
  /// Events delivered to >= 1 sink, indexed by event_index(kind). An event
  /// published while nothing listens for its kind is not counted: the
  /// zero-subscriber path is meant to be indistinguishable from no bus.
  std::array<std::uint64_t, kEventKindCount> published{};
  std::uint64_t dropped = 0;          ///< ring-overflow drops, all subscribers
  std::uint64_t callback_errors = 0;  ///< exceptions thrown by callback sinks
  std::size_t subscribers = 0;        ///< attached rings + callbacks

  std::uint64_t published_total() const {
    std::uint64_t total = 0;
    for (auto count : published) total += count;
    return total;
  }
};

class EventBus {
 public:
  using Callback = std::function<void(const StreamEvent&)>;

  EventBus() = default;
  ~EventBus();

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Attaches a bounded ring subscription. Throws InvalidInput on an empty
  /// mask or zero capacity.
  std::shared_ptr<Subscription> subscribe(SubscribeOptions options);

  /// Detaches a ring subscription; it keeps serving its buffered residue.
  void unsubscribe(const std::shared_ptr<Subscription>& subscription);

  /// Registers a callback sink; returns a handle for remove_callback.
  /// Callbacks run on the publishing thread and must not block.
  std::uint64_t add_callback(EventMask mask, Callback callback);
  void remove_callback(std::uint64_t handle);

  /// True when >= 1 sink listens for `kind`. Lock-free; publishers may use
  /// it to skip building expensive payloads.
  bool has_subscribers(EventKind kind) const {
    return kind_sinks_[event_index(kind)].load(std::memory_order_relaxed) > 0;
  }

  /// Fans the event out to every sink whose mask matches its kind.
  /// No-op (no lock, no allocation) when has_subscribers is false.
  void publish(StreamEvent event);

  BusStats stats() const;

 private:
  struct CallbackEntry {
    std::uint64_t handle = 0;
    EventMask mask = 0;
    std::shared_ptr<Callback> callback;
  };

  void bump_kind_sinks(EventMask mask, int delta);

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Subscription>> subscriptions_;
  std::vector<CallbackEntry> callbacks_;
  std::uint64_t next_handle_ = 1;
  std::array<std::uint64_t, kEventKindCount> published_{};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> callback_errors_{0};
  std::array<std::atomic<std::uint32_t>, kEventKindCount> kind_sinks_{};
};

}  // namespace splace::stream
