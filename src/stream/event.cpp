#include "stream/event.hpp"

#include <sstream>

#include "util/error.hpp"

namespace splace::stream {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Detection:
      return "detection";
    case EventKind::Localization:
      return "localization";
    case EventKind::Ambiguity:
      return "ambiguity";
    case EventKind::Trace:
      return "trace";
    case EventKind::CascadeStart:
      return "cascade_start";
    case EventKind::Propagation:
      return "propagation";
    case EventKind::RootCause:
      return "root_cause";
    case EventKind::Portfolio:
      return "portfolio";
  }
  throw InvalidInput("unknown event kind");
}

EventKind event_kind(const StreamEvent& event) {
  struct Visitor {
    EventKind operator()(const DetectionEvent&) const {
      return EventKind::Detection;
    }
    EventKind operator()(const LocalizationEvent&) const {
      return EventKind::Localization;
    }
    EventKind operator()(const AmbiguityEvent&) const {
      return EventKind::Ambiguity;
    }
    EventKind operator()(const TraceEvent&) const { return EventKind::Trace; }
    EventKind operator()(const CascadeStartEvent&) const {
      return EventKind::CascadeStart;
    }
    EventKind operator()(const PropagationEvent&) const {
      return EventKind::Propagation;
    }
    EventKind operator()(const RootCauseEvent&) const {
      return EventKind::RootCause;
    }
    EventKind operator()(const PortfolioEvent&) const {
      return EventKind::Portfolio;
    }
  };
  return std::visit(Visitor{}, event);
}

namespace {

void append_header(std::ostringstream& out, EventKind kind,
                   const EventHeader& header) {
  out << "{\"kind\": \"" << to_string(kind) << "\""
      << ", \"stream\": " << header.stream
      << ", \"snapshot\": " << header.snapshot
      << ", \"sequence\": " << header.sequence
      << ", \"timestamp_us\": " << header.timestamp_us
      << ", \"latency_us\": " << header.latency_us;
}

void append_nodes(std::ostringstream& out, const std::vector<NodeId>& nodes) {
  out << "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out << ", ";
    out << nodes[i];
  }
  out << "]";
}

}  // namespace

std::string to_json(const StreamEvent& event) {
  std::ostringstream out;
  struct Visitor {
    std::ostringstream& out;
    void operator()(const DetectionEvent& e) const {
      append_header(out, EventKind::Detection, e.header);
      out << ", \"path\": " << e.path << "}";
    }
    void operator()(const LocalizationEvent& e) const {
      append_header(out, EventKind::Localization, e.header);
      out << ", \"failure_set\": ";
      append_nodes(out, e.failure_set);
      out << ", \"suspects\": " << e.suspects << ", \"final_observation\": "
          << (e.final_observation ? "true" : "false") << "}";
    }
    void operator()(const AmbiguityEvent& e) const {
      append_header(out, EventKind::Ambiguity, e.header);
      out << ", \"consistent_sets\": " << e.consistent_sets
          << ", \"suspects\": " << e.suspects << "}";
    }
    void operator()(const TraceEvent& e) const {
      out << "{\"kind\": \"trace\", \"trace\": " << engine::to_json(e.trace)
          << "}";
    }
    void operator()(const CascadeStartEvent& e) const {
      append_header(out, EventKind::CascadeStart, e.header);
      out << ", \"root_service\": " << e.root_service
          << ", \"root_node\": " << e.root_node << "}";
    }
    void operator()(const PropagationEvent& e) const {
      append_header(out, EventKind::Propagation, e.header);
      out << ", \"from_service\": " << e.from_service
          << ", \"to_service\": " << e.to_service << ", \"node\": " << e.node
          << ", \"tick\": " << e.tick << "}";
    }
    void operator()(const RootCauseEvent& e) const {
      append_header(out, EventKind::RootCause, e.header);
      out << ", \"root_service\": " << e.root_service
          << ", \"true_root\": " << e.true_root
          << ", \"top1\": " << (e.top1 ? "true" : "false")
          << ", \"blast_services\": " << e.blast_services
          << ", \"candidates\": " << e.candidates << "}";
    }
    void operator()(const PortfolioEvent& e) const {
      append_header(out, EventKind::Portfolio, e.header);
      out << ", \"winner\": \"" << e.winner
          << "\", \"algorithms\": " << e.algorithms
          << ", \"objective_value\": " << e.objective_value
          << ", \"max_identifiable_failures\": "
          << e.max_identifiable_failures << "}";
    }
  };
  std::visit(Visitor{out}, event);
  return out.str();
}

}  // namespace splace::stream
