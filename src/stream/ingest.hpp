// ObservationIngest: incremental online localization from a stream of
// per-path up/down reports.
//
// The batch path (localization/localizer.cpp) re-enumerates every failure
// set of size <= k from scratch for each observation vector. A stream of
// probe results arrives one path at a time, and almost every update only
// *narrows* what is already known — so the ingest maintains the candidate
// failure sets incrementally:
//
//   state machine per path:  Unknown -> Up | Down  (narrowing)
//                            Up <-> Down, * -> Unknown (flap: re-derive)
//
//   per-node signature state:  up_count[v]   = #known-up paths through v
//                              down_count[v] = #known-down paths through v
//
//   candidate pool  = { v : up_count[v] == 0 }   (nodes not exonerated)
//   consistent sets = { F ⊆ pool, |F| <= k, down_paths ⊆ affected(F) }
//
// Under partial observation that membership test is exactly the batch
// condition restricted to known paths: once every path has a known state,
// down ⊆ affected(F) together with F ⊆ pool (no member touches an up
// path) forces affected(F) == down, i.e. the batch equality. test_stream
// asserts the streamed and batch candidate sets are identical.
//
// Narrowing transitions are handled by filtering the existing candidate
// list (both conditions are antitone in the evidence: a new up-path can
// only shrink the pool, a new down-path can only add a covering
// constraint); flap transitions invalidate monotonicity and trigger one
// full re-enumeration over the current evidence — counted in
// StreamStats::reenumerations.
//
// Event emission (all through the EventBus, outside the ingest lock):
//   Detection     down-path count 0 -> 1 (re-arms when it returns to 0)
//   Localization  candidate list transitions onto exactly one set
//   Ambiguity     candidate list changes but is not exactly one set
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/snapshot.hpp"
#include "localization/localizer.hpp"
#include "monitoring/path.hpp"
#include "stream/bus.hpp"
#include "stream/metrics.hpp"
#include "util/bitset.hpp"

namespace splace::stream {

/// Observed state of one measurement path.
enum class PathState : std::uint8_t { Unknown, Up, Down };

/// Point-in-time summary of an ingest stream.
struct IngestStatus {
  std::uint64_t sequence = 0;      ///< updates accepted so far
  std::size_t paths = 0;           ///< measurement paths in the placement
  std::size_t observed = 0;        ///< paths with a known state
  std::size_t down = 0;            ///< paths currently down
  bool detected = false;           ///< inside a detected failure episode
  std::size_t consistent_sets = 0; ///< current candidate failure sets
  bool unique = false;             ///< exactly one candidate set remains
};

/// One live observation stream against a fixed (snapshot, placement, k).
/// Internally synchronized; events are published to the bus passed at
/// construction (which may be null for bus-less use, e.g. unit tests).
/// Create through Engine::open_ingest or api::Ingest.
class ObservationIngest {
 public:
  /// Validates the placement against the snapshot and precomputes the
  /// path set and node->path incidence. Throws InvalidInput on a
  /// placement/service-count mismatch or k == 0.
  ObservationIngest(std::uint64_t stream_id,
                    std::shared_ptr<const engine::TopologySnapshot> snapshot,
                    Placement placement, std::size_t k, EventBus* bus,
                    StreamMetrics* metrics);

  std::uint64_t stream_id() const { return stream_id_; }
  std::uint64_t snapshot_hash() const;
  const Placement& placement() const { return placement_; }
  std::size_t k() const { return k_; }
  const PathSet& paths() const { return paths_; }
  std::size_t path_count() const { return paths_.size(); }

  /// Starts a fresh failure episode: every path returns to Unknown, the
  /// candidate state clears, and `epoch_us` becomes the zero point for
  /// time-to-detect / time-to-localize latencies.
  void begin_episode(std::uint64_t epoch_us);

  /// Feeds one timestamped path-state report. Returns true when the
  /// report changed the path's state (false for a duplicate report).
  /// Throws InvalidInput for an out-of-range path index.
  bool observe(std::uint32_t path, PathState state,
               std::uint64_t timestamp_us);

  PathState state(std::uint32_t path) const;
  IngestStatus status() const;

  /// Current candidate failure sets (ascending member lists, enumeration
  /// order). Empty before the first down report of an episode.
  std::vector<std::vector<NodeId>> consistent_sets() const;

  /// Full localization result over the *current* evidence, in the batch
  /// LocalizationResult shape. Paths still Unknown count as unobserved
  /// evidence: nodes seen only on unknown paths stay in the pool. Once
  /// every path is observed this is bit-identical to batch localize().
  LocalizationResult result() const;

 private:
  struct PendingEvents {
    std::vector<StreamEvent> events;
    std::uint64_t detect_latency_us = 0;
    std::uint64_t localize_latency_us = 0;
    bool detected = false;
    bool localized = false;
    bool ambiguity = false;
    bool reenumerated = false;
  };

  EventHeader header(std::uint64_t timestamp_us) const;
  void apply_transition(std::uint32_t path, PathState old_state,
                        PathState new_state);
  /// Rebuilds candidates_ from scratch over the current evidence.
  void enumerate_candidates();
  /// Drops candidates violating the newly known state of `path`.
  void filter_candidates(std::uint32_t path, PathState new_state);
  std::size_t suspect_count() const;

  const std::uint64_t stream_id_;
  const std::shared_ptr<const engine::TopologySnapshot> snapshot_;
  const Placement placement_;
  const std::size_t k_;
  EventBus* const bus_;
  StreamMetrics* const metrics_;

  const PathSet paths_;
  const std::vector<DynamicBitset> incidence_;  ///< node -> path indices

  mutable std::mutex mutex_;
  std::vector<PathState> states_;
  std::vector<std::uint32_t> up_count_;    ///< per node
  std::vector<std::uint32_t> down_count_;  ///< per node
  DynamicBitset known_paths_;
  DynamicBitset down_paths_;
  std::uint64_t sequence_ = 0;
  std::uint64_t epoch_us_ = 0;
  bool episode_detected_ = false;
  bool enumerated_ = false;
  std::vector<std::vector<NodeId>> candidates_;
};

}  // namespace splace::stream
