// Prometheus-style text exposition of the engine + stream + bus counters.
//
// Emitted format (one family per metric name):
//   # HELP <name> <help text>
//   # TYPE <name> counter|gauge|histogram
//   <name>[{label="value",...}] <number>
//
// Counters carry the conventional `_total` suffix. The engine's log2-µs
// latency histograms map onto Prometheus histogram series directly: log2
// bucket b becomes the cumulative bucket le="2^b" (microseconds), plus
// le="+Inf", `_sum` (µs) and `_count`. The text is deterministic for a
// given snapshot — the golden-format test parses every line and
// cross-checks values against the JSON exports.
//
// A sharded serving tier exposes one page for the whole group: each family
// is declared once and sampled per shard with a `shard="<index>"` label
// (no label for a single unlabeled engine, keeping the classic output).
// Tenant-partitioned engines add `splace_tenant_*` families labeled by
// tenant. Label values are escaped per the text-format rules (backslash,
// double quote, newline) — tenant ids are arbitrary strings.
#pragma once

#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "stream/bus.hpp"
#include "stream/metrics.hpp"

namespace splace::stream {

/// One engine's worth of counters to expose, plus the value of its `shard`
/// label (empty = emit no shard label, the single-engine layout).
struct EngineExposition {
  engine::EngineMetricsSnapshot engine;
  StreamStats stream;
  BusStats bus;
  std::string shard;
};

/// Escapes a label value for the Prometheus text format: backslash, double
/// quote, and newline become \\, \" and \n.
std::string escape_label_value(const std::string& raw);

/// Multi-shard exposition: every family declared once, sampled per shard.
std::string metrics_text(const std::vector<EngineExposition>& shards);

/// Single-engine exposition (no shard labels).
std::string metrics_text(const engine::EngineMetricsSnapshot& engine_snapshot,
                         const StreamStats& stream_snapshot,
                         const BusStats& bus_snapshot);

}  // namespace splace::stream
