// Prometheus-style text exposition of the engine + stream + bus counters.
//
// Emitted format (one family per metric name):
//   # HELP <name> <help text>
//   # TYPE <name> counter|gauge|histogram
//   <name>[{label="value",...}] <number>
//
// Counters carry the conventional `_total` suffix. The engine's log2-µs
// latency histograms map onto Prometheus histogram series directly: log2
// bucket b becomes the cumulative bucket le="2^b" (microseconds), plus
// le="+Inf", `_sum` (µs) and `_count`. The text is deterministic for a
// given snapshot triple — the golden-format test parses every line and
// cross-checks values against the JSON exports.
#pragma once

#include <string>

#include "engine/metrics.hpp"
#include "stream/bus.hpp"
#include "stream/metrics.hpp"

namespace splace::stream {

std::string metrics_text(const engine::EngineMetricsSnapshot& engine_snapshot,
                         const StreamStats& stream_snapshot,
                         const BusStats& bus_snapshot);

}  // namespace splace::stream
