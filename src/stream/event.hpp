// Typed events of the streaming observability plane.
//
// The batch serving path answers "where is the failure?" when asked; the
// streaming plane answers "something failed, here is what we know so far"
// the moment the evidence arrives. Everything it pushes is one of eight
// event kinds:
//
//   Detection     a failure episode became visible: the first path of an
//                 episode was reported down. Carries the triggering path
//                 and the latency since the episode epoch — the paper's
//                 time-to-detect axis.
//   Localization  the evidence narrowed the candidate failure sets to
//                 exactly ONE consistent set of size <= k — the failure is
//                 localized. Carries the set and the time-to-localize.
//   Ambiguity     the candidate failure sets changed but more (or fewer)
//                 than one remains: progress, not resolution. Carries the
//                 current counts so a dashboard can watch the ambiguity
//                 |I_k| collapse as observations accumulate.
//   Trace         a request finished its lifecycle in the serving engine
//                 (engine/trace.hpp). The engine's pull-only
//                 drain_traces() is a tail subscriber of these events —
//                 push and pull share one event path.
//   CascadeStart  a root failure with dependents started a dependency
//                 cascade (cascade/engine.hpp). Carries the root service
//                 and its host node.
//   Propagation   the cascade crossed one dependency edge: a downstream
//                 service went secondary-down because its upstream was
//                 down. Carries the edge endpoints, the infected host and
//                 the cascade tick.
//   RootCause     the root-cause analyzer ranked candidate roots for a
//                 cascade episode (cascade/root_cause.hpp). Carries the
//                 top-ranked service, the ground-truth root, and the blast
//                 set.
//   Portfolio     the engine served a PortfolioRequest: a set of registered
//                 placement algorithms competed on one snapshot
//                 (portfolio/portfolio.hpp). Carries the winning algorithm,
//                 its common-objective score, and its MIS identifiability
//                 certificate bound.
//
// Events are immutable values; the bus (stream/bus.hpp) fans them out as
// shared_ptr so a fan-out costs refcounts, not payload copies.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "engine/trace.hpp"
#include "graph/graph.hpp"

namespace splace::stream {

enum class EventKind {
  Detection,
  Localization,
  Ambiguity,
  Trace,
  CascadeStart,
  Propagation,
  RootCause,
  Portfolio,
};

/// Number of EventKind values (for per-kind counters and masks).
inline constexpr std::size_t kEventKindCount = 8;

std::string to_string(EventKind kind);

constexpr std::size_t event_index(EventKind kind) {
  return static_cast<std::size_t>(kind);
}

/// Subscription masks: one bit per EventKind.
using EventMask = std::uint32_t;

constexpr EventMask event_bit(EventKind kind) {
  return EventMask{1} << event_index(kind);
}

inline constexpr EventMask kAllEvents =
    event_bit(EventKind::Detection) | event_bit(EventKind::Localization) |
    event_bit(EventKind::Ambiguity) | event_bit(EventKind::Trace) |
    event_bit(EventKind::CascadeStart) | event_bit(EventKind::Propagation) |
    event_bit(EventKind::RootCause) | event_bit(EventKind::Portfolio);

/// Fields every ingest-produced event shares: which stream and snapshot it
/// came from, the ingest update that produced it, and when.
struct EventHeader {
  std::uint64_t stream = 0;        ///< ObservationIngest stream id
  std::uint64_t snapshot = 0;      ///< snapshot content hash
  std::uint64_t sequence = 0;      ///< ingest update sequence number
  std::uint64_t timestamp_us = 0;  ///< observation timestamp (stream clock)
  std::uint64_t latency_us = 0;    ///< timestamp - episode epoch (clamped >=0)
};

/// First down-path report of a failure episode. `latency_us` is the
/// time-to-detect relative to the episode epoch (begin_episode).
struct DetectionEvent {
  EventHeader header;
  std::uint32_t path = 0;  ///< the path whose down report fired detection
};

/// The candidate failure sets collapsed to exactly one: `failure_set` is
/// THE consistent explanation of size <= k. `latency_us` is the
/// time-to-localize. `final_observation` marks that every path had a known
/// state when this fired (no further narrowing possible).
struct LocalizationEvent {
  EventHeader header;
  std::vector<NodeId> failure_set;  ///< ascending node ids
  std::size_t suspects = 0;         ///< candidate nodes still implicated
  bool final_observation = false;
};

/// The candidate failure sets changed but did not resolve to one:
/// `consistent_sets` counts the remaining explanations (0 = the evidence
/// contradicts every set of size <= k — more than k failures).
struct AmbiguityEvent {
  EventHeader header;
  std::size_t consistent_sets = 0;
  std::size_t suspects = 0;  ///< candidate nodes on >=1 down path
};

/// One finished request lifecycle (see engine/trace.hpp for the spans).
struct TraceEvent {
  engine::RequestTrace trace;
};

/// A root failure with dependents entered the cascade engine: `root_service`
/// (hosted on `root_node`) went down and has >= 1 dependency edge out, so
/// correlated secondary failures may follow. `timestamp_us` is the failure
/// time on the simulation clock.
struct CascadeStartEvent {
  EventHeader header;
  std::size_t root_service = 0;
  NodeId root_node = kInvalidNode;
};

/// One dependency edge fired: `to_service` (hosted on `node`) went
/// secondary-down because `from_service` was down at cascade tick `tick`.
/// `latency_us` is the time since the owning cascade started.
struct PropagationEvent {
  EventHeader header;
  std::size_t from_service = 0;
  std::size_t to_service = 0;
  NodeId node = kInvalidNode;
  std::size_t tick = 0;
};

/// The root-cause analyzer ranked candidate roots for one cascade episode.
/// `root_service` is the top-ranked candidate, `true_root` the ground
/// truth; `top1` records whether they agree. `candidates` counts ranked
/// candidate roots, `blast_services` the episode's blast set (root incl.).
struct RootCauseEvent {
  EventHeader header;
  std::size_t root_service = 0;
  std::size_t true_root = 0;
  bool top1 = false;
  std::size_t blast_services = 0;
  std::size_t candidates = 0;
};

/// The engine served a PortfolioRequest: `algorithms` registered strategies
/// competed on `snapshot` and `winner` won with `objective_value` under the
/// request's common objective. `max_identifiable_failures` is the winning
/// placement's MIS certificate bound (0 when certificates were off or even
/// single failures are confusable). Only the header's `snapshot` field is
/// meaningful — portfolio events come from the request path, not an ingest.
struct PortfolioEvent {
  EventHeader header;
  std::string winner;
  std::size_t algorithms = 0;
  double objective_value = 0;
  std::size_t max_identifiable_failures = 0;
};

using StreamEvent =
    std::variant<DetectionEvent, LocalizationEvent, AmbiguityEvent, TraceEvent,
                 CascadeStartEvent, PropagationEvent, RootCauseEvent,
                 PortfolioEvent>;

EventKind event_kind(const StreamEvent& event);

/// Deterministic-key-order JSON for one event ({"kind": ..., ...}).
std::string to_json(const StreamEvent& event);

}  // namespace splace::stream
