#include "stream/ingest.hpp"

#include <algorithm>
#include <utility>

#include "monitoring/set_cover.hpp"
#include "util/error.hpp"

namespace splace::stream {

namespace {

/// Enumerates subsets of `pool` of size <= k whose affected paths cover
/// `down` (the partial-observation consistency condition). Mirrors the
/// batch enumerate_consistent structure — check at entry, then extend in
/// ascending pool order — so the streamed candidate list matches batch
/// localize() element-for-element once every path is observed.
void enumerate_covering(const std::vector<DynamicBitset>& incidence,
                        const std::vector<NodeId>& pool,
                        const DynamicBitset& down, std::size_t k,
                        std::vector<NodeId>& current,
                        const DynamicBitset& covered, std::size_t first,
                        std::vector<std::vector<NodeId>>& out) {
  if (down.is_subset_of(covered)) out.push_back(current);
  if (current.size() == k) return;
  for (std::size_t i = first; i < pool.size(); ++i) {
    current.push_back(pool[i]);
    DynamicBitset next = covered;
    next |= incidence[pool[i]];
    enumerate_covering(incidence, pool, down, k, current, next, i + 1, out);
    current.pop_back();
  }
}

/// Validates the (snapshot, placement, k) triple and builds the stream's
/// path set; runs before any other member initialization.
PathSet build_paths(const engine::TopologySnapshot* snapshot,
                    const Placement& placement, std::size_t k) {
  if (snapshot == nullptr) throw InvalidInput("ingest requires a snapshot");
  if (k < 1) throw InvalidInput("ingest requires k >= 1");
  if (placement.size() != snapshot->instance().service_count()) {
    throw InvalidInput("placement size must match snapshot service count");
  }
  return snapshot->instance().paths_for_placement(placement);
}

}  // namespace

ObservationIngest::ObservationIngest(
    std::uint64_t stream_id,
    std::shared_ptr<const engine::TopologySnapshot> snapshot,
    Placement placement, std::size_t k, EventBus* bus, StreamMetrics* metrics)
    : stream_id_(stream_id),
      snapshot_(std::move(snapshot)),
      placement_(std::move(placement)),
      k_(k),
      bus_(bus),
      metrics_(metrics),
      paths_(build_paths(snapshot_.get(), placement_, k_)),
      incidence_(paths_.node_incidence()),
      states_(paths_.size(), PathState::Unknown),
      up_count_(paths_.node_count(), 0),
      down_count_(paths_.node_count(), 0),
      known_paths_(paths_.size()),
      down_paths_(paths_.size()) {}

std::uint64_t ObservationIngest::snapshot_hash() const {
  return snapshot_->hash();
}

void ObservationIngest::begin_episode(std::uint64_t epoch_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(states_.begin(), states_.end(), PathState::Unknown);
  std::fill(up_count_.begin(), up_count_.end(), 0u);
  std::fill(down_count_.begin(), down_count_.end(), 0u);
  known_paths_ = DynamicBitset(paths_.size());
  down_paths_ = DynamicBitset(paths_.size());
  epoch_us_ = epoch_us;
  episode_detected_ = false;
  enumerated_ = false;
  candidates_.clear();
}

EventHeader ObservationIngest::header(std::uint64_t timestamp_us) const {
  EventHeader h;
  h.stream = stream_id_;
  h.snapshot = snapshot_->hash();
  h.sequence = sequence_;
  h.timestamp_us = timestamp_us;
  h.latency_us = timestamp_us >= epoch_us_ ? timestamp_us - epoch_us_ : 0;
  return h;
}

void ObservationIngest::apply_transition(std::uint32_t path,
                                         PathState old_state,
                                         PathState new_state) {
  for (NodeId v : paths_[path].nodes()) {
    if (old_state == PathState::Up) --up_count_[v];
    if (old_state == PathState::Down) --down_count_[v];
    if (new_state == PathState::Up) ++up_count_[v];
    if (new_state == PathState::Down) ++down_count_[v];
  }
  if (new_state == PathState::Unknown) {
    known_paths_.reset(path);
  } else {
    known_paths_.set(path);
  }
  if (new_state == PathState::Down) {
    down_paths_.set(path);
  } else {
    down_paths_.reset(path);
  }
}

void ObservationIngest::enumerate_candidates() {
  candidates_.clear();
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < paths_.node_count(); ++v) {
    if (up_count_[v] == 0) pool.push_back(v);
  }
  std::vector<NodeId> current;
  const DynamicBitset covered(paths_.size());
  enumerate_covering(incidence_, pool, down_paths_, k_, current, covered, 0,
                     candidates_);
}

void ObservationIngest::filter_candidates(std::uint32_t path,
                                          PathState new_state) {
  const auto touches_path = [&](const std::vector<NodeId>& set) {
    for (NodeId v : set) {
      if (incidence_[v].test(path)) return true;
    }
    return false;
  };
  if (new_state == PathState::Up) {
    // A set containing any node of the newly-up path would fail that path.
    candidates_.erase(
        std::remove_if(candidates_.begin(), candidates_.end(), touches_path),
        candidates_.end());
  } else {
    // A consistent set must explain the newly-down path: cover it.
    candidates_.erase(
        std::remove_if(candidates_.begin(), candidates_.end(),
                       [&](const std::vector<NodeId>& set) {
                         return !touches_path(set);
                       }),
        candidates_.end());
  }
}

std::size_t ObservationIngest::suspect_count() const {
  std::size_t count = 0;
  for (NodeId v = 0; v < paths_.node_count(); ++v) {
    if (up_count_[v] == 0 && down_count_[v] > 0) ++count;
  }
  return count;
}

bool ObservationIngest::observe(std::uint32_t path, PathState state,
                                std::uint64_t timestamp_us) {
  PendingEvents pending;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (path >= paths_.size()) {
      throw InvalidInput("observation path index out of range");
    }
    ++sequence_;
    const PathState old_state = states_[path];
    changed = old_state != state;
    if (changed) {
      states_[path] = state;
      apply_transition(path, old_state, state);

      const EventHeader head = header(timestamp_us);
      if (state == PathState::Down && !episode_detected_) {
        episode_detected_ = true;
        DetectionEvent event;
        event.header = head;
        event.path = path;
        // In-place variant construction (here and below): converting the
        // typed event through a StreamEvent temporary trips GCC's
        // -Wmaybe-uninitialized on the variant move.
        pending.events.emplace_back(std::in_place_type<DetectionEvent>,
                                    std::move(event));
        pending.detected = true;
        pending.detect_latency_us = head.latency_us;
      }

      if (down_paths_.none()) {
        // Episode cleared: re-arm detection, forget candidate state. The
        // next down report opens a new detection against the same epoch.
        episode_detected_ = false;
        enumerated_ = false;
        candidates_.clear();
      } else {
        bool list_changed = false;
        if (!enumerated_) {
          enumerate_candidates();
          enumerated_ = true;
          list_changed = true;
        } else if (old_state == PathState::Unknown) {
          // Narrowing transition: both consistency conditions are antitone
          // in the evidence, so filtering the existing list is exact.
          const std::size_t before = candidates_.size();
          filter_candidates(path, state);
          list_changed = candidates_.size() != before;
        } else {
          // Flap (Up<->Down or ->Unknown): monotonicity is gone; re-derive.
          std::vector<std::vector<NodeId>> before = std::move(candidates_);
          enumerate_candidates();
          pending.reenumerated = true;
          list_changed = candidates_ != before;
        }

        if (list_changed) {
          if (candidates_.size() == 1) {
            LocalizationEvent event;
            event.header = head;
            event.failure_set = candidates_.front();
            event.suspects = suspect_count();
            event.final_observation = known_paths_.count() == paths_.size();
            pending.events.emplace_back(std::in_place_type<LocalizationEvent>,
                                        std::move(event));
            pending.localized = true;
            pending.localize_latency_us = head.latency_us;
          } else {
            AmbiguityEvent event;
            event.header = head;
            event.consistent_sets = candidates_.size();
            event.suspects = suspect_count();
            pending.events.emplace_back(std::in_place_type<AmbiguityEvent>,
                                        std::move(event));
            pending.ambiguity = true;
          }
        }
      }
    }
  }

  // Metrics and bus publishes happen outside the ingest lock so callback
  // sinks may query this stream (or the engine) without deadlocking.
  if (metrics_ != nullptr) {
    metrics_->record_observation(changed);
    if (pending.detected) {
      metrics_->record_detection(static_cast<double>(pending.detect_latency_us) /
                                 1e6);
    }
    if (pending.localized) {
      metrics_->record_localization(
          static_cast<double>(pending.localize_latency_us) / 1e6);
    }
    if (pending.ambiguity) metrics_->record_ambiguity();
    if (pending.reenumerated) metrics_->record_reenumeration();
  }
  if (bus_ != nullptr) {
    for (auto& event : pending.events) bus_->publish(std::move(event));
  }
  return changed;
}

PathState ObservationIngest::state(std::uint32_t path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SPLACE_EXPECTS(path < paths_.size());
  return states_[path];
}

IngestStatus ObservationIngest::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  IngestStatus status;
  status.sequence = sequence_;
  status.paths = paths_.size();
  status.observed = known_paths_.count();
  status.down = down_paths_.count();
  status.detected = episode_detected_;
  status.consistent_sets = candidates_.size();
  status.unique = enumerated_ && candidates_.size() == 1;
  return status;
}

std::vector<std::vector<NodeId>> ObservationIngest::consistent_sets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return candidates_;
}

LocalizationResult ObservationIngest::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = paths_.node_count();

  LocalizationResult result;
  result.exonerated = DynamicBitset(n);
  result.suspects = DynamicBitset(n);
  result.unobserved = DynamicBitset(n);
  for (NodeId v = 0; v < n; ++v) {
    if (up_count_[v] > 0) {
      result.exonerated.set(v);
    } else if (down_count_[v] > 0) {
      result.suspects.set(v);
    } else {
      // No known-state path traverses v: unexonerated and unimplicated.
      // Once every path is observed this is exactly batch "unobserved".
      result.unobserved.set(v);
    }
  }

  if (enumerated_) {
    result.consistent_sets = candidates_;
  } else {
    std::vector<NodeId> pool;
    for (NodeId v = 0; v < n; ++v) {
      if (up_count_[v] == 0) pool.push_back(v);
    }
    std::vector<NodeId> current;
    const DynamicBitset covered(paths_.size());
    enumerate_covering(incidence_, pool, down_paths_, k_, current, covered, 0,
                       result.consistent_sets);
  }

  if (down_paths_.any()) {
    std::vector<DynamicBitset> candidates;
    std::vector<NodeId> candidate_ids;
    for (NodeId v = 0; v < n; ++v) {
      if (!result.suspects.test(v)) continue;
      candidates.push_back(incidence_[v]);
      candidate_ids.push_back(v);
    }
    const auto cover = greedy_set_cover(down_paths_, candidates);
    if (cover) {
      for (std::size_t i : *cover) {
        result.minimal_explanation.push_back(candidate_ids[i]);
      }
      std::sort(result.minimal_explanation.begin(),
                result.minimal_explanation.end());
    }
  }
  return result;
}

}  // namespace splace::stream
