#include "stream/metrics.hpp"

#include <sstream>

namespace splace::stream {

namespace {

void append_latency(std::ostringstream& os, const std::string& name,
                    const engine::LatencyStats& stats) {
  os << "\"" << name << "\": {\"count\": " << stats.count
     << ", \"mean_seconds\": " << stats.mean_seconds()
     << ", \"min_seconds\": " << stats.min_seconds
     << ", \"max_seconds\": " << stats.max_seconds << ", \"log2_us\": {";
  bool first = true;
  for (const auto& [bucket, count] : stats.log2_us.counts()) {
    if (!first) os << ", ";
    os << "\"" << bucket << "\": " << count;
    first = false;
  }
  os << "}}";
}

}  // namespace

std::string to_json(const StreamStats& stats) {
  std::ostringstream os;
  os << "{\"streams_opened\": " << stats.streams_opened
     << ", \"observations\": " << stats.observations
     << ", \"state_changes\": " << stats.state_changes
     << ", \"detections\": " << stats.detections
     << ", \"localizations\": " << stats.localizations
     << ", \"ambiguity_events\": " << stats.ambiguity_events
     << ", \"reenumerations\": " << stats.reenumerations << ", ";
  append_latency(os, "detect_latency", stats.detect_latency);
  os << ", ";
  append_latency(os, "localize_latency", stats.localize_latency);
  os << "}";
  return os.str();
}

void StreamMetrics::record_stream_opened() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.streams_opened;
}

void StreamMetrics::record_observation(bool state_changed) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.observations;
  if (state_changed) ++counters_.state_changes;
}

void StreamMetrics::record_detection(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.detections;
  counters_.detect_latency.record(latency_seconds);
}

void StreamMetrics::record_localization(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.localizations;
  counters_.localize_latency.record(latency_seconds);
}

void StreamMetrics::record_ambiguity() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.ambiguity_events;
}

void StreamMetrics::record_reenumeration() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.reenumerations;
}

StreamStats StreamMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace splace::stream
