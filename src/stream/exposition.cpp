#include "stream/exposition.hpp"

#include <cstdint>
#include <sstream>
#include <utility>

namespace splace::stream {

namespace {

class TextWriter {
 public:
  void family(const std::string& name, const std::string& type,
              const std::string& help) {
    out_ << "# HELP " << name << " " << help << "\n";
    out_ << "# TYPE " << name << " " << type << "\n";
  }

  template <typename Value>
  void sample(const std::string& name, const std::string& labels,
              Value value) {
    out_ << name;
    if (!labels.empty()) out_ << "{" << labels << "}";
    out_ << " " << value << "\n";
  }

  /// Renders a log2-µs LatencyStats as a Prometheus histogram. `labels`
  /// (possibly empty) is spliced before the `le` label of each bucket.
  void histogram(const std::string& name, const std::string& labels,
                 const engine::LatencyStats& stats) {
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, count] : stats.log2_us.counts()) {
      cumulative += count;
      // Bucket b covers (2^(b-1), 2^b] µs; clamp the shift for safety.
      const std::uint64_t le = std::uint64_t{1}
                               << (bucket < 63 ? bucket : std::size_t{62});
      sample(name + "_bucket", with_le(labels, std::to_string(le)),
             cumulative);
    }
    sample(name + "_bucket", with_le(labels, "+Inf"), stats.count);
    sample(name + "_sum", labels, stats.total_seconds * 1e6);
    sample(name + "_count", labels, stats.count);
  }

  std::string str() const { return out_.str(); }

 private:
  static std::string with_le(const std::string& labels,
                             const std::string& le) {
    std::string joined = labels;
    if (!joined.empty()) joined += ",";
    joined += "le=\"" + le + "\"";
    return joined;
  }

  std::ostringstream out_;
};

/// Joins two label fragments with a comma; either may be empty.
std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

/// One `name="value"` fragment with the value escaped.
std::string label(const std::string& name, const std::string& value) {
  return name + "=\"" + escape_label_value(value) + "\"";
}

/// The shard label fragment of one exposition entry ("" for unlabeled).
std::string shard_labels(const EngineExposition& shard) {
  return shard.shard.empty() ? std::string{} : label("shard", shard.shard);
}

/// Empty tenant id = the default tenant; the exposition names it.
std::string tenant_label_value(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

std::string escape_label_value(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string metrics_text(const std::vector<EngineExposition>& shards) {
  TextWriter w;

  // Every family is declared exactly once; samples loop over shards (with a
  // shard label when the entry carries one). A family whose sample set
  // would be empty for every shard is skipped entirely — the golden-format
  // test requires each declared family to have at least one sample.
  auto scalar_family = [&](const std::string& name, const std::string& type,
                           const std::string& help, auto getter) {
    w.family(name, type, help);
    for (const EngineExposition& s : shards)
      w.sample(name, shard_labels(s), getter(s));
  };

  // --- Serving engine: request counters -----------------------------------
  scalar_family("splace_requests_submitted_total", "counter",
                "Requests submitted to the engine.",
                [](const EngineExposition& s) { return s.engine.submitted; });
  scalar_family("splace_requests_completed_total", "counter",
                "Requests answered Ok (cache hits included).",
                [](const EngineExposition& s) { return s.engine.completed; });
  w.family("splace_requests_rejected_total", "counter",
           "Requests rejected, by reason.");
  for (const EngineExposition& s : shards) {
    const std::string base = shard_labels(s);
    w.sample("splace_requests_rejected_total",
             join_labels(base, "reason=\"queue_full\""),
             s.engine.rejected_queue_full);
    w.sample("splace_requests_rejected_total",
             join_labels(base, "reason=\"deadline\""),
             s.engine.rejected_deadline);
    w.sample("splace_requests_rejected_total",
             join_labels(base, "reason=\"bad_request\""),
             s.engine.rejected_bad_request);
    w.sample("splace_requests_rejected_total",
             join_labels(base, "reason=\"tenant_quota\""),
             s.engine.rejected_tenant_quota);
  }
  scalar_family("splace_requests_cache_hits_total", "counter",
                "Requests answered from the result cache.",
                [](const EngineExposition& s) { return s.engine.cache_hits; });

  // --- Result cache --------------------------------------------------------
  scalar_family("splace_result_cache_hits_total", "counter",
                "Result-cache lookup hits.",
                [](const EngineExposition& s) { return s.engine.cache.hits; });
  scalar_family(
      "splace_result_cache_misses_total", "counter",
      "Result-cache lookup misses.",
      [](const EngineExposition& s) { return s.engine.cache.misses; });
  w.family("splace_result_cache_evictions_total", "counter",
           "Result-cache evictions, by request type.");
  for (const EngineExposition& s : shards) {
    const std::string base = shard_labels(s);
    for (std::size_t t = 0; t < engine::kRequestTypeCount; ++t) {
      w.sample(
          "splace_result_cache_evictions_total",
          join_labels(base,
                      label("type",
                            to_string(static_cast<engine::RequestType>(t)))),
          s.engine.cache.evictions_by_type[t]);
    }
  }
  scalar_family("splace_result_cache_size", "gauge",
                "Entries currently in the result cache.",
                [](const EngineExposition& s) { return s.engine.cache.size; });
  scalar_family(
      "splace_result_cache_capacity", "gauge",
      "Result-cache capacity (entries).",
      [](const EngineExposition& s) { return s.engine.cache.capacity; });

  // --- Per-tenant serving counters -----------------------------------------
  // Only declared when some shard actually recorded a tenant (families must
  // not be sample-less). The tenant label is an arbitrary string — escaped.
  bool any_tenants = false;
  bool any_tenant_caches = false;
  for (const EngineExposition& s : shards) {
    any_tenants = any_tenants || !s.engine.tenants.empty();
    any_tenant_caches = any_tenant_caches || !s.engine.tenant_caches.empty();
  }
  if (any_tenants) {
    struct TenantFamily {
      const char* name;
      const char* help;
      std::uint64_t engine::TenantCounters::*field;
    };
    const TenantFamily kTenantFamilies[] = {
        {"splace_tenant_requests_submitted_total",
         "Requests submitted, by tenant.",
         &engine::TenantCounters::submitted},
        {"splace_tenant_requests_completed_total",
         "Requests answered Ok, by tenant.",
         &engine::TenantCounters::completed},
        {"splace_tenant_cache_hits_total",
         "Requests answered from the tenant's cache partition.",
         &engine::TenantCounters::cache_hits},
        {"splace_tenant_rejected_quota_total",
         "Requests rejected by the tenant's admission quota.",
         &engine::TenantCounters::rejected_quota},
    };
    for (const TenantFamily& fam : kTenantFamilies) {
      w.family(fam.name, "counter", fam.help);
      for (const EngineExposition& s : shards) {
        const std::string base = shard_labels(s);
        for (const auto& [tenant, counters] : s.engine.tenants) {
          w.sample(fam.name,
                   join_labels(
                       base, label("tenant", tenant_label_value(tenant))),
                   counters.*(fam.field));
        }
      }
    }
  }
  if (any_tenant_caches) {
    w.family("splace_tenant_cache_size", "gauge",
             "Entries in the tenant's cache partition.");
    for (const EngineExposition& s : shards) {
      const std::string base = shard_labels(s);
      for (const auto& [tenant, cache] : s.engine.tenant_caches)
        w.sample("splace_tenant_cache_size",
                 join_labels(base, label("tenant", tenant_label_value(tenant))),
                 cache.size);
    }
    w.family("splace_tenant_cache_capacity", "gauge",
             "Capacity of the tenant's cache partition (entries).");
    for (const EngineExposition& s : shards) {
      const std::string base = shard_labels(s);
      for (const auto& [tenant, cache] : s.engine.tenant_caches)
        w.sample("splace_tenant_cache_capacity",
                 join_labels(base, label("tenant", tenant_label_value(tenant))),
                 cache.capacity);
    }
  }

  // --- Queue and lifetime ---------------------------------------------------
  scalar_family("splace_queue_depth", "gauge",
                "Requests in flight right now.",
                [](const EngineExposition& s) { return s.engine.queue_depth; });
  scalar_family(
      "splace_queue_high_water", "gauge",
      "Max requests in flight ever observed.",
      [](const EngineExposition& s) { return s.engine.queue_high_water; });
  scalar_family(
      "splace_uptime_seconds", "gauge", "Seconds since engine construction.",
      [](const EngineExposition& s) { return s.engine.elapsed_seconds; });

  // --- Request traces -------------------------------------------------------
  scalar_family("splace_traces_enabled", "gauge",
                "1 when request tracing is enabled.",
                [](const EngineExposition& s) {
                  return s.engine.tracing.enabled ? 1 : 0;
                });
  scalar_family(
      "splace_traces_buffered", "gauge",
      "Traces buffered awaiting drain_traces().",
      [](const EngineExposition& s) { return s.engine.tracing.recorded; });
  scalar_family(
      "splace_traces_drained_total", "counter",
      "Traces handed out by drain_traces().",
      [](const EngineExposition& s) { return s.engine.tracing.drained; });
  scalar_family(
      "splace_traces_dropped_total", "counter",
      "Traces lost to the bounded trace buffer.",
      [](const EngineExposition& s) { return s.engine.tracing.dropped; });

  // --- Request latency histograms ------------------------------------------
  w.family("splace_request_latency_us", "histogram",
           "End-to-end Ok-request latency in microseconds, by request type.");
  for (const EngineExposition& s : shards) {
    const std::string base = shard_labels(s);
    const std::pair<const char*, const engine::LatencyStats*> kTypes[] = {
        {"place", &s.engine.place},
        {"evaluate", &s.engine.evaluate},
        {"localize", &s.engine.localize},
        {"mutate", &s.engine.mutate},
        {"portfolio", &s.engine.portfolio},
    };
    for (const auto& [type, stats] : kTypes) {
      w.histogram("splace_request_latency_us",
                  join_labels(base, std::string("type=\"") + type + "\""),
                  *stats);
    }
  }

  // --- Streaming plane ------------------------------------------------------
  scalar_family(
      "splace_streams_opened_total", "counter",
      "Observation ingest streams opened.",
      [](const EngineExposition& s) { return s.stream.streams_opened; });
  scalar_family(
      "splace_observations_total", "counter",
      "Path-state reports ingested (duplicates included).",
      [](const EngineExposition& s) { return s.stream.observations; });
  scalar_family(
      "splace_state_changes_total", "counter",
      "Path-state reports that changed a path state.",
      [](const EngineExposition& s) { return s.stream.state_changes; });
  scalar_family("splace_detections_total", "counter",
                "Failure-episode detections.",
                [](const EngineExposition& s) { return s.stream.detections; });
  scalar_family(
      "splace_localizations_total", "counter",
      "Candidate sets narrowed to a unique failure set.",
      [](const EngineExposition& s) { return s.stream.localizations; });
  scalar_family(
      "splace_ambiguity_events_total", "counter",
      "Candidate-set changes that kept >1 (or 0) explanations.",
      [](const EngineExposition& s) { return s.stream.ambiguity_events; });
  scalar_family(
      "splace_reenumerations_total", "counter",
      "Full candidate re-enumerations forced by path flaps.",
      [](const EngineExposition& s) { return s.stream.reenumerations; });
  w.family("splace_detect_latency_us", "histogram",
           "Time from episode epoch to detection, microseconds.");
  for (const EngineExposition& s : shards)
    w.histogram("splace_detect_latency_us", shard_labels(s),
                s.stream.detect_latency);
  w.family("splace_localize_latency_us", "histogram",
           "Time from episode epoch to a unique failure set, microseconds.");
  for (const EngineExposition& s : shards)
    w.histogram("splace_localize_latency_us", shard_labels(s),
                s.stream.localize_latency);

  // --- Event bus ------------------------------------------------------------
  w.family("splace_events_published_total", "counter",
           "Events delivered to at least one subscriber, by kind.");
  for (const EngineExposition& s : shards) {
    const std::string base = shard_labels(s);
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
      w.sample("splace_events_published_total",
               join_labels(base,
                           label("kind", to_string(static_cast<EventKind>(i)))),
               s.bus.published[i]);
    }
  }
  scalar_family("splace_events_dropped_total", "counter",
                "Events lost to full subscriber ring buffers.",
                [](const EngineExposition& s) { return s.bus.dropped; });
  scalar_family(
      "splace_event_callback_errors_total", "counter",
      "Exceptions thrown (and swallowed) by callback sinks.",
      [](const EngineExposition& s) { return s.bus.callback_errors; });
  scalar_family("splace_event_subscribers", "gauge",
                "Attached ring subscriptions plus callback sinks.",
                [](const EngineExposition& s) { return s.bus.subscribers; });

  return w.str();
}

std::string metrics_text(const engine::EngineMetricsSnapshot& engine_snapshot,
                         const StreamStats& stream_snapshot,
                         const BusStats& bus_snapshot) {
  std::vector<EngineExposition> shards(1);
  shards[0].engine = engine_snapshot;
  shards[0].stream = stream_snapshot;
  shards[0].bus = bus_snapshot;
  return metrics_text(shards);
}

}  // namespace splace::stream
