#include "stream/exposition.hpp"

#include <cstdint>
#include <sstream>

namespace splace::stream {

namespace {

class TextWriter {
 public:
  void family(const std::string& name, const std::string& type,
              const std::string& help) {
    out_ << "# HELP " << name << " " << help << "\n";
    out_ << "# TYPE " << name << " " << type << "\n";
  }

  template <typename Value>
  void sample(const std::string& name, const std::string& labels,
              Value value) {
    out_ << name;
    if (!labels.empty()) out_ << "{" << labels << "}";
    out_ << " " << value << "\n";
  }

  /// One-sample counter/gauge family.
  template <typename Value>
  void scalar(const std::string& name, const std::string& type,
              const std::string& help, Value value) {
    family(name, type, help);
    sample(name, "", value);
  }

  /// Renders a log2-µs LatencyStats as a Prometheus histogram. `labels`
  /// (possibly empty) is spliced before the `le` label of each bucket.
  void histogram(const std::string& name, const std::string& labels,
                 const engine::LatencyStats& stats) {
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, count] : stats.log2_us.counts()) {
      cumulative += count;
      // Bucket b covers (2^(b-1), 2^b] µs; clamp the shift for safety.
      const std::uint64_t le = std::uint64_t{1}
                               << (bucket < 63 ? bucket : std::size_t{62});
      sample(name + "_bucket", with_le(labels, std::to_string(le)),
             cumulative);
    }
    sample(name + "_bucket", with_le(labels, "+Inf"), stats.count);
    sample(name + "_sum", labels, stats.total_seconds * 1e6);
    sample(name + "_count", labels, stats.count);
  }

  std::string str() const { return out_.str(); }

 private:
  static std::string with_le(const std::string& labels,
                             const std::string& le) {
    std::string joined = labels;
    if (!joined.empty()) joined += ",";
    joined += "le=\"" + le + "\"";
    return joined;
  }

  std::ostringstream out_;
};

}  // namespace

std::string metrics_text(const engine::EngineMetricsSnapshot& engine_snapshot,
                         const StreamStats& stream_snapshot,
                         const BusStats& bus_snapshot) {
  TextWriter w;

  // --- Serving engine: request counters -----------------------------------
  w.scalar("splace_requests_submitted_total", "counter",
           "Requests submitted to the engine.", engine_snapshot.submitted);
  w.scalar("splace_requests_completed_total", "counter",
           "Requests answered Ok (cache hits included).",
           engine_snapshot.completed);
  w.family("splace_requests_rejected_total", "counter",
           "Requests rejected, by reason.");
  w.sample("splace_requests_rejected_total", "reason=\"queue_full\"",
           engine_snapshot.rejected_queue_full);
  w.sample("splace_requests_rejected_total", "reason=\"deadline\"",
           engine_snapshot.rejected_deadline);
  w.sample("splace_requests_rejected_total", "reason=\"bad_request\"",
           engine_snapshot.rejected_bad_request);
  w.scalar("splace_requests_cache_hits_total", "counter",
           "Requests answered from the result cache.",
           engine_snapshot.cache_hits);

  // --- Result cache --------------------------------------------------------
  w.scalar("splace_result_cache_hits_total", "counter",
           "Result-cache lookup hits.", engine_snapshot.cache.hits);
  w.scalar("splace_result_cache_misses_total", "counter",
           "Result-cache lookup misses.", engine_snapshot.cache.misses);
  w.family("splace_result_cache_evictions_total", "counter",
           "Result-cache evictions, by request type.");
  for (std::size_t t = 0; t < engine::kRequestTypeCount; ++t) {
    w.sample("splace_result_cache_evictions_total",
             "type=\"" + to_string(static_cast<engine::RequestType>(t)) + "\"",
             engine_snapshot.cache.evictions_by_type[t]);
  }
  w.scalar("splace_result_cache_size", "gauge",
           "Entries currently in the result cache.",
           engine_snapshot.cache.size);
  w.scalar("splace_result_cache_capacity", "gauge",
           "Result-cache capacity (entries).",
           engine_snapshot.cache.capacity);

  // --- Queue and lifetime ---------------------------------------------------
  w.scalar("splace_queue_depth", "gauge", "Requests in flight right now.",
           engine_snapshot.queue_depth);
  w.scalar("splace_queue_high_water", "gauge",
           "Max requests in flight ever observed.",
           engine_snapshot.queue_high_water);
  w.scalar("splace_uptime_seconds", "gauge",
           "Seconds since engine construction.",
           engine_snapshot.elapsed_seconds);

  // --- Request traces -------------------------------------------------------
  w.scalar("splace_traces_enabled", "gauge",
           "1 when request tracing is enabled.",
           engine_snapshot.tracing.enabled ? 1 : 0);
  w.scalar("splace_traces_buffered", "gauge",
           "Traces buffered awaiting drain_traces().",
           engine_snapshot.tracing.recorded);
  w.scalar("splace_traces_drained_total", "counter",
           "Traces handed out by drain_traces().",
           engine_snapshot.tracing.drained);
  w.scalar("splace_traces_dropped_total", "counter",
           "Traces lost to the bounded trace buffer.",
           engine_snapshot.tracing.dropped);

  // --- Request latency histograms ------------------------------------------
  w.family("splace_request_latency_us", "histogram",
           "End-to-end Ok-request latency in microseconds, by request type.");
  const std::pair<const char*, const engine::LatencyStats*> kTypes[] = {
      {"place", &engine_snapshot.place},
      {"evaluate", &engine_snapshot.evaluate},
      {"localize", &engine_snapshot.localize},
      {"mutate", &engine_snapshot.mutate},
  };
  for (const auto& [type, stats] : kTypes) {
    w.histogram("splace_request_latency_us",
                std::string("type=\"") + type + "\"", *stats);
  }

  // --- Streaming plane ------------------------------------------------------
  w.scalar("splace_streams_opened_total", "counter",
           "Observation ingest streams opened.",
           stream_snapshot.streams_opened);
  w.scalar("splace_observations_total", "counter",
           "Path-state reports ingested (duplicates included).",
           stream_snapshot.observations);
  w.scalar("splace_state_changes_total", "counter",
           "Path-state reports that changed a path state.",
           stream_snapshot.state_changes);
  w.scalar("splace_detections_total", "counter",
           "Failure-episode detections.", stream_snapshot.detections);
  w.scalar("splace_localizations_total", "counter",
           "Candidate sets narrowed to a unique failure set.",
           stream_snapshot.localizations);
  w.scalar("splace_ambiguity_events_total", "counter",
           "Candidate-set changes that kept >1 (or 0) explanations.",
           stream_snapshot.ambiguity_events);
  w.scalar("splace_reenumerations_total", "counter",
           "Full candidate re-enumerations forced by path flaps.",
           stream_snapshot.reenumerations);
  w.family("splace_detect_latency_us", "histogram",
           "Time from episode epoch to detection, microseconds.");
  w.histogram("splace_detect_latency_us", "", stream_snapshot.detect_latency);
  w.family("splace_localize_latency_us", "histogram",
           "Time from episode epoch to a unique failure set, microseconds.");
  w.histogram("splace_localize_latency_us", "",
              stream_snapshot.localize_latency);

  // --- Event bus ------------------------------------------------------------
  w.family("splace_events_published_total", "counter",
           "Events delivered to at least one subscriber, by kind.");
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    w.sample("splace_events_published_total",
             "kind=\"" + to_string(static_cast<EventKind>(i)) + "\"",
             bus_snapshot.published[i]);
  }
  w.scalar("splace_events_dropped_total", "counter",
           "Events lost to full subscriber ring buffers.",
           bus_snapshot.dropped);
  w.scalar("splace_event_callback_errors_total", "counter",
           "Exceptions thrown (and swallowed) by callback sinks.",
           bus_snapshot.callback_errors);
  w.scalar("splace_event_subscribers", "gauge",
           "Attached ring subscriptions plus callback sinks.",
           bus_snapshot.subscribers);

  return w.str();
}

}  // namespace splace::stream
