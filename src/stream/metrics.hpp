// Counters and latency histograms for the streaming plane, kept separate
// from EngineMetricsSnapshot so `stream` can depend on `engine` without a
// cycle: the engine owns a StreamMetrics sink and merges its snapshot at
// exposition time (Engine::metrics_text / stream_stats).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "engine/metrics.hpp"

namespace splace::stream {

/// Point-in-time copy of the streaming counters.
struct StreamStats {
  std::uint64_t streams_opened = 0;
  std::uint64_t observations = 0;     ///< observe() calls, including no-ops
  std::uint64_t state_changes = 0;    ///< observations that changed a path state
  std::uint64_t detections = 0;       ///< DetectionEvent emissions
  std::uint64_t localizations = 0;    ///< LocalizationEvent emissions
  std::uint64_t ambiguity_events = 0; ///< AmbiguityEvent emissions
  std::uint64_t reenumerations = 0;   ///< full re-enumerations forced by flaps
  engine::LatencyStats detect_latency;    ///< time-to-detect per episode
  engine::LatencyStats localize_latency;  ///< time-to-unique-set per episode
};

/// Deterministic-key-order JSON rendering.
std::string to_json(const StreamStats& stats);

/// Mutable, internally synchronized sink shared by every ingest stream an
/// engine opens.
class StreamMetrics {
 public:
  void record_stream_opened();
  void record_observation(bool state_changed);
  void record_detection(double latency_seconds);
  void record_localization(double latency_seconds);
  void record_ambiguity();
  void record_reenumeration();

  StreamStats snapshot() const;

 private:
  mutable std::mutex mutex_;
  StreamStats counters_;
};

}  // namespace splace::stream
