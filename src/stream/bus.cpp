#include "stream/bus.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace splace::stream {

std::vector<std::shared_ptr<const StreamEvent>> Subscription::poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const StreamEvent>> events(ring_.begin(),
                                                         ring_.end());
  ring_.clear();
  drained_ += events.size();
  return events;
}

SubscriptionStats Subscription::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SubscriptionStats stats;
  stats.pushed = pushed_;
  stats.drained = drained_;
  stats.dropped = dropped_;
  stats.buffered = ring_.size();
  stats.capacity = options_.capacity;
  return stats;
}

bool Subscription::push(std::shared_ptr<const StreamEvent> event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() >= options_.capacity) {
    if (options_.policy == DropPolicy::DropNew) {
      ++dropped_;
      return false;
    }
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
  ++pushed_;
  return true;
}

EventBus::~EventBus() = default;

std::shared_ptr<Subscription> EventBus::subscribe(SubscribeOptions options) {
  if ((options.mask & kAllEvents) == 0) {
    throw InvalidInput("subscription mask selects no event kind");
  }
  if (options.capacity == 0) {
    throw InvalidInput("subscription capacity must be >= 1");
  }
  auto subscription =
      std::shared_ptr<Subscription>(new Subscription(options));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subscriptions_.push_back(subscription);
  }
  bump_kind_sinks(options.mask, +1);
  return subscription;
}

void EventBus::unsubscribe(const std::shared_ptr<Subscription>& subscription) {
  if (!subscription) return;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(subscriptions_.begin(), subscriptions_.end(),
                        subscription);
    if (it != subscriptions_.end()) {
      subscriptions_.erase(it);
      removed = true;
    }
  }
  if (removed) bump_kind_sinks(subscription->options_.mask, -1);
}

std::uint64_t EventBus::add_callback(EventMask mask, Callback callback) {
  if ((mask & kAllEvents) == 0) {
    throw InvalidInput("callback mask selects no event kind");
  }
  if (!callback) throw InvalidInput("callback must be callable");
  std::uint64_t handle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handle = next_handle_++;
    callbacks_.push_back(CallbackEntry{
        handle, mask, std::make_shared<Callback>(std::move(callback))});
  }
  bump_kind_sinks(mask, +1);
  return handle;
}

void EventBus::remove_callback(std::uint64_t handle) {
  EventMask mask = 0;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(
        callbacks_.begin(), callbacks_.end(),
        [handle](const CallbackEntry& entry) { return entry.handle == handle; });
    if (it != callbacks_.end()) {
      mask = it->mask;
      callbacks_.erase(it);
      removed = true;
    }
  }
  if (removed) bump_kind_sinks(mask, -1);
}

void EventBus::publish(StreamEvent event) {
  const EventKind kind = event_kind(event);
  // Hot-path gate: with no sink for this kind, publishing is a relaxed
  // load and a return — the StreamEvent never leaves the caller's stack.
  if (!has_subscribers(kind)) return;

  auto shared = std::make_shared<const StreamEvent>(std::move(event));
  const EventMask bit = event_bit(kind);

  std::vector<std::shared_ptr<Callback>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool delivered = false;
    std::uint64_t drops = 0;
    for (auto& subscription : subscriptions_) {
      if ((subscription->options_.mask & bit) == 0) continue;
      if (!subscription->push(shared)) ++drops;
      delivered = true;  // a drop still counts as an attached sink
    }
    for (auto& entry : callbacks_) {
      if ((entry.mask & bit) == 0) continue;
      callbacks.push_back(entry.callback);
      delivered = true;
    }
    if (delivered) ++published_[event_index(kind)];
    if (drops != 0) dropped_.fetch_add(drops, std::memory_order_relaxed);
  }
  // Callbacks run outside the bus lock so a sink may subscribe/unsubscribe
  // or query stats without deadlocking.
  for (auto& callback : callbacks) {
    try {
      (*callback)(*shared);
    } catch (...) {
      callback_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

BusStats EventBus::stats() const {
  BusStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.published = published_;
    stats.subscribers = subscriptions_.size() + callbacks_.size();
  }
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.callback_errors = callback_errors_.load(std::memory_order_relaxed);
  return stats;
}

void EventBus::bump_kind_sinks(EventMask mask, int delta) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if ((mask & (EventMask{1} << i)) == 0) continue;
    if (delta > 0) {
      kind_sinks_[i].fetch_add(1, std::memory_order_relaxed);
    } else {
      kind_sinks_[i].fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace splace::stream
