// The portfolio runner: execute a configurable set of registered placement
// algorithms on one instance and pick the winner under a common objective,
// with MIS identifiability certificates attached.
//
// No single algorithm dominates: exact greedy wins on quality, stochastic
// greedy on evaluations, pair-cover on cross-checkable coverage, QoS on
// latency-only deployments — and which one wins shifts per topology. The
// runner makes that an empirical question per instance: every named
// algorithm runs on the same ProblemInstance, every resulting placement is
// re-scored under ONE common objective (an algorithm's self-reported value
// may be a different quantity, e.g. pair-coverage), and the winner is the
// best common score with ties broken by spec order. The winning entry is
// bit-identical to running that registered algorithm directly — the runner
// compares, it never perturbs.
//
// Concurrency: pass a ThreadPool to run algorithms in parallel (results are
// collected in spec order, so the outcome is identical to the sequential
// run). Do NOT drive a pooled run from inside a worker of that same pool —
// the engine's PortfolioRequest path therefore runs sequentially and leaves
// per-algorithm parallelism to each algorithm's own options.threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/algorithm.hpp"
#include "placement/service.hpp"
#include "portfolio/mis.hpp"
#include "util/thread_pool.hpp"

namespace splace::portfolio {

struct PortfolioSpec {
  /// Registry names to run, in tie-break priority order; empty = every
  /// registered algorithm (ascending name order). Unknown names throw
  /// InvalidInput before anything runs.
  std::vector<std::string> algorithms;
  /// The common objective entries are compared under.
  ObjectiveKind objective = ObjectiveKind::Distinguishability;
  std::size_t k = 1;
  std::uint64_t seed = 42;      ///< forwarded to seed-consuming algorithms
  PlacementOptions options;     ///< per-algorithm execution options
  std::uint64_t bf_budget = 50'000'000;  ///< "brute_force" search-space cap
  /// Certificate depth: compute mis_certificate(placement, certificate_k)
  /// for every successful entry; 0 disables certificates.
  std::size_t certificate_k = 1;
  std::size_t certificate_budget = 500'000;
};

struct PortfolioEntry {
  std::string algorithm;
  /// Empty on success; the algorithm's InvalidInput message otherwise (an
  /// infeasible entry — e.g. brute force over budget — loses, it does not
  /// abort the portfolio).
  std::string error;
  Placement placement;
  double objective_value = 0;   ///< common-objective score (the ranking key)
  double reported_value = 0;    ///< the algorithm's own reported value
  std::size_t evaluations = 0;
  double seconds = 0;           ///< wall time of this entry's run
  std::optional<MisCertificate> certificate;

  bool ok() const { return error.empty(); }
};

struct PortfolioReport {
  std::vector<PortfolioEntry> entries;  ///< spec order
  std::size_t winner = 0;               ///< index of the winning entry
  const PortfolioEntry& best() const { return entries[winner]; }
};

/// Runs the portfolio. With a non-null `pool`, algorithms execute as pool
/// tasks (call only from outside that pool's workers); results and the
/// winner are bit-identical either way — only `seconds` may differ. Throws
/// InvalidInput when a name is unknown, the spec is malformed, or every
/// entry fails.
PortfolioReport run_portfolio(const ProblemInstance& instance,
                              const PortfolioSpec& spec,
                              ThreadPool* pool = nullptr);

}  // namespace splace::portfolio
