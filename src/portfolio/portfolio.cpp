#include "portfolio/portfolio.hpp"

#include <chrono>
#include <future>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace splace::portfolio {

namespace {

using Clock = std::chrono::steady_clock;

PortfolioEntry run_entry(const ProblemInstance& instance,
                         const PortfolioSpec& spec, const std::string& name) {
  PortfolioEntry entry;
  entry.algorithm = name;
  const Clock::time_point started = Clock::now();
  try {
    AlgorithmSpec algorithm_spec;
    algorithm_spec.objective = spec.objective;
    algorithm_spec.k = spec.k;
    algorithm_spec.seed = spec.seed;
    algorithm_spec.options = spec.options;
    algorithm_spec.bf_budget = spec.bf_budget;
    AlgorithmResult result =
        make_algorithm(name)->execute(instance, algorithm_spec);
    entry.placement = std::move(result.placement);
    entry.reported_value = result.reported_value;
    entry.evaluations = result.evaluations;
    // The ranking key: every entry re-scored under the one common
    // objective, whatever quantity the algorithm itself optimized.
    entry.objective_value =
        evaluate_objective(spec.objective,
                           instance.paths_for_placement(entry.placement),
                           spec.k);
    if (spec.certificate_k > 0)
      entry.certificate = mis_certificate(
          instance, entry.placement, spec.certificate_k,
          spec.certificate_budget);
  } catch (const std::exception& error) {
    entry.error = error.what();
    entry.placement.clear();
  }
  entry.seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  return entry;
}

}  // namespace

PortfolioReport run_portfolio(const ProblemInstance& instance,
                              const PortfolioSpec& spec, ThreadPool* pool) {
  if (spec.k < 1)
    throw InvalidInput("run_portfolio: k must be >= 1, got " +
                       std::to_string(spec.k));
  std::vector<std::string> names =
      spec.algorithms.empty() ? algorithm_names() : spec.algorithms;
  // Validate every name up front: a typo should fail the request, not
  // surface as one silently-missing entry.
  for (const std::string& name : names)
    if (!is_registered_algorithm(name))
      (void)make_algorithm(name);  // throws InvalidInput listing known names

  PortfolioReport report;
  if (pool != nullptr && names.size() > 1) {
    std::vector<std::future<PortfolioEntry>> futures;
    futures.reserve(names.size());
    for (const std::string& name : names)
      futures.push_back(pool->submit_with_result(
          [&instance, &spec, name] { return run_entry(instance, spec, name); }));
    for (std::future<PortfolioEntry>& future : futures)
      report.entries.push_back(future.get());
  } else {
    for (const std::string& name : names)
      report.entries.push_back(run_entry(instance, spec, name));
  }

  bool have_winner = false;
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const PortfolioEntry& entry = report.entries[i];
    if (!entry.ok()) continue;
    // Strict > keeps the earliest spec-order entry among ties.
    if (!have_winner ||
        entry.objective_value > report.entries[report.winner].objective_value) {
      have_winner = true;
      report.winner = i;
    }
  }
  if (!have_winner) {
    std::string detail;
    for (const PortfolioEntry& entry : report.entries) {
      if (!detail.empty()) detail += "; ";
      detail += entry.algorithm + ": " + entry.error;
    }
    throw InvalidInput("run_portfolio: every algorithm failed (" + detail +
                       ")");
  }
  return report;
}

}  // namespace splace::portfolio
