#include "portfolio/mis.hpp"

#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "monitoring/failure_sets.hpp"
#include "monitoring/identifiability.hpp"
#include "monitoring/path_arena.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"

namespace splace::portfolio {

namespace {

/// One certified level (failure bound k): which nodes are k-identifiable
/// and whether every F ∈ F_k has a unique signature.
struct Level {
  std::vector<bool> identifiable;
  bool all_unique = false;
  std::size_t enumerated = 0;
};

/// Fast level: per-node signatures fit one 64-bit word (≤ 64 paths), so a
/// failure set's signature is a single OR-fold and grouping is an
/// unordered_map over uint64. Per signature group we keep the union and
/// intersection of member node-masks: node v is k-identifiable iff no group
/// has a member with v and a member without v (any & ~all empty at v) —
/// Definition 2 verbatim.
Level enumerate_level_u64(const std::vector<std::uint64_t>& node_sig,
                          std::size_t node_count, std::size_t k) {
  struct Group {
    std::vector<std::uint64_t> any;  ///< nodes in ≥1 member failure set
    std::vector<std::uint64_t> all;  ///< nodes in every member failure set
    std::size_t members = 0;
  };
  const std::size_t words = (node_count + 63) / 64;
  std::unordered_map<std::uint64_t, Group> groups;
  std::vector<std::uint64_t> scratch(words, 0);

  for_each_failure_set(
      node_count, k, [&](const std::vector<NodeId>& failure_set) {
        std::uint64_t sig = 0;
        for (const NodeId v : failure_set) {
          sig |= node_sig[v];
          scratch[v >> 6] |= std::uint64_t{1} << (v & 63);
        }
        Group& g = groups[sig];
        if (g.members == 0) {
          g.any = scratch;
          g.all = scratch;
        } else {
          for (std::size_t w = 0; w < words; ++w) {
            g.any[w] |= scratch[w];
            g.all[w] &= scratch[w];
          }
        }
        ++g.members;
        for (const NodeId v : failure_set)
          scratch[v >> 6] = 0;
      });

  Level level;
  level.all_unique = true;
  std::vector<std::uint64_t> conflict(words, 0);
  for (const auto& [sig, g] : groups) {
    if (g.members > 1) level.all_unique = false;
    level.enumerated += g.members;
    for (std::size_t w = 0; w < words; ++w)
      conflict[w] |= g.any[w] & ~g.all[w];
  }
  level.identifiable.assign(node_count, false);
  for (std::size_t v = 0; v < node_count; ++v)
    level.identifiable[v] =
        (conflict[v >> 6] & (std::uint64_t{1} << (v & 63))) == 0;
  return level;
}

/// Generic level over the SignatureGroups machinery (any path count).
Level enumerate_level_generic(const PathSet& paths, std::size_t k) {
  const SignatureGroups groups(paths, k);
  const DynamicBitset sk = identifiable_nodes(groups, paths.node_count());
  Level level;
  level.identifiable.assign(paths.node_count(), false);
  for (std::size_t v = 0; v < paths.node_count(); ++v)
    level.identifiable[v] = sk.test(v);
  level.all_unique = groups.group_count() == groups.total_sets();
  level.enumerated = groups.total_sets();
  return level;
}

/// Shared level-by-level driver; `enumerate(k)` produces one level.
template <typename EnumerateLevel>
MisCertificate certify(std::size_t node_count, std::size_t path_count,
                       std::size_t k_max, std::size_t budget,
                       EnumerateLevel&& enumerate) {
  if (k_max < 1)
    throw InvalidInput("mis_certificate: k_max must be >= 1, got " +
                       std::to_string(k_max));
  MisCertificate certificate;
  certificate.path_count = path_count;
  certificate.capability.assign(node_count, 0);
  bool unique_chain = true;
  for (std::size_t k = 1; k <= k_max; ++k) {
    if (failure_set_count(node_count, k) > budget) {
      certificate.truncated = true;
      break;
    }
    const Level level = enumerate(k);
    certificate.k_max = k;
    certificate.enumerated_sets += level.enumerated;
    for (std::size_t v = 0; v < node_count; ++v)
      if (level.identifiable[v]) certificate.capability[v] = k;
    if (k == 1)
      for (std::size_t v = 0; v < node_count; ++v)
        certificate.identifiable_1 +=
            static_cast<std::size_t>(level.identifiable[v]);
    if (unique_chain && level.all_unique)
      certificate.max_identifiable_failures = k;
    else
      unique_chain = false;
  }
  return certificate;
}

}  // namespace

MisCertificate mis_certificate(const PathSet& paths, std::size_t k_max,
                               std::size_t budget) {
  return certify(paths.node_count(), paths.size(), k_max, budget,
                 [&paths](std::size_t k) {
                   return enumerate_level_generic(paths, k);
                 });
}

MisCertificate mis_certificate(const ProblemInstance& instance,
                               const Placement& placement, std::size_t k_max,
                               std::size_t budget) {
  if (placement.size() != instance.service_count())
    throw InvalidInput("mis_certificate: placement size " +
                       std::to_string(placement.size()) +
                       " != service count " +
                       std::to_string(instance.service_count()));
  const PathArena& arena = instance.arena();

  // Deduplicate the placement's rows in first-occurrence order — arena rows
  // are interned by node set, so row-id identity *is* path equality and the
  // resulting order matches paths_for_placement exactly.
  std::vector<std::uint32_t> global_rows;
  std::unordered_map<std::uint32_t, std::size_t> index_of;
  std::vector<std::uint32_t> sets(placement.size());
  for (std::size_t s = 0; s < placement.size(); ++s) {
    if (!instance.is_candidate(s, placement[s]))
      throw InvalidInput("mis_certificate: host " +
                         std::to_string(placement[s]) +
                         " is not a candidate for service " +
                         std::to_string(s));
    sets[s] = instance.arena_paths_for(s, placement[s]).set;
    const std::uint32_t* rows = arena.set_rows(sets[s]);
    const std::size_t size = arena.set_size(sets[s]);
    for (std::size_t i = 0; i < size; ++i)
      if (index_of.emplace(rows[i], global_rows.size()).second)
        global_rows.push_back(rows[i]);
  }

  if (global_rows.size() > 64) {
    // No 64-bit signature; take the generic representation.
    const PathSet paths = instance.paths_for_placement(placement);
    return mis_certificate(paths, k_max, budget);
  }

  // Fold every per-set signature plane into global per-node signatures:
  // bit j of set_sig_values is local row j of that set; remap to the
  // global dedup index.
  const std::size_t node_count = instance.node_count();
  std::vector<std::uint64_t> node_sig(node_count, 0);
  for (const std::uint32_t set : sets) {
    const std::uint32_t* rows = arena.set_rows(set);
    const std::size_t sig_count = arena.set_sig_count(set);
    const std::uint32_t* sig_nodes = arena.set_sig_nodes(set);
    const std::uint64_t* sig_values = arena.set_sig_values(set);
    for (std::size_t j = 0; j < sig_count; ++j) {
      std::uint64_t value = sig_values[j];
      while (value != 0) {
        const int local = std::countr_zero(value);
        value &= value - 1;
        node_sig[sig_nodes[j]] |= std::uint64_t{1}
                                  << index_of.at(rows[local]);
      }
    }
  }

  return certify(node_count, global_rows.size(), k_max, budget,
                 [&node_sig, node_count](std::size_t k) {
                   return enumerate_level_u64(node_sig, node_count, k);
                 });
}

}  // namespace splace::portfolio
