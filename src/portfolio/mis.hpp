// MIS identifiability certificates (after Ma et al., arXiv 1509.06333).
//
// The paper's measures score a placement by |S_k(P)| at one fixed k. Ma et
// al.'s *maximal identifiable set* view asks the converse per node: up to
// how many simultaneous failures can node v's state still always be
// determined? That per-node capability ω(v) = max{ k : v is k-identifiable }
// is monotone (F_k ⊆ F_{k+1}, so (k+1)-identifiable ⇒ k-identifiable), and
// its set-level companion
//
//   max_identifiable_failures(P) = max{ k : every F ∈ F_k has a unique
//                                        path signature P_F }
//
// is an exact certificate of what localize() can ever distinguish: whenever
// the true failure set has size ≤ that bound, boolean tomography over P has
// exactly one consistent candidate — localize() returns it uniquely — and at
// bound+1 some pair of failure sets is provably confusable. Both directions
// are property-gated against the brute-force oracles
// (monitoring/identifiability.hpp) and against observed localize() runs in
// tests/test_portfolio.cpp and bench_portfolio.
//
// Computation enumerates F_k level by level under an explicit budget. When
// the placement's deduplicated path set fits 64 paths, per-node
// path-incidence signatures come straight from the path arena's signature
// plane (PathArena::set_sig_*) and each failure set folds to one 64-bit OR —
// the same representation the split kernels consume. Larger path sets fall
// back to the generic SignatureGroups machinery, bit-identical by
// construction.
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/path.hpp"
#include "placement/service.hpp"

namespace splace::portfolio {

/// Exact identifiability certificate of one path set / placement.
struct MisCertificate {
  /// Highest failure bound actually certified. Equals the requested k_max
  /// unless the enumeration budget clamped it (then `truncated` is true).
  std::size_t k_max = 0;
  bool truncated = false;
  std::size_t path_count = 0;  ///< deduplicated measurement paths
  /// ω(v) per node: the largest k ≤ k_max at which v is k-identifiable
  /// (0 = not even 1-identifiable). Monotone by construction.
  std::vector<std::size_t> capability;
  /// |S_1(P)| — nodes with capability ≥ 1.
  std::size_t identifiable_1 = 0;
  /// max{ k ≤ k_max : every F ∈ F_k has a unique signature }; 0 when even
  /// single failures are confusable. localize() is guaranteed unique for
  /// every true failure set of size ≤ this bound.
  std::size_t max_identifiable_failures = 0;
  /// Total failure sets enumerated across the certified levels.
  std::size_t enumerated_sets = 0;
};

/// Certificate of an arbitrary path set (generic representation).
/// `budget` bounds |F_k| per level: the first level whose enumeration would
/// exceed it is not certified (k_max clamps, truncated = true). Requires
/// k_max >= 1.
MisCertificate mis_certificate(const PathSet& paths, std::size_t k_max,
                               std::size_t budget = 500'000);

/// Certificate of a placement's measurement paths. Uses the arena signature
/// plane (64-bit signatures, no PathSet materialization) when the
/// deduplicated path set fits 64 paths; bit-identical to the generic
/// overload either way. Requires placement[s] ∈ H_s for every service.
MisCertificate mis_certificate(const ProblemInstance& instance,
                               const Placement& placement, std::size_t k_max,
                               std::size_t budget = 500'000);

}  // namespace splace::portfolio
