#include "graph/components.hpp"

#include <algorithm>
#include <deque>

namespace splace {

ComponentLabeling connected_components(const Graph& g) {
  const std::size_t n = g.node_count();
  ComponentLabeling result;
  result.label.assign(n, static_cast<std::size_t>(-1));
  for (NodeId start = 0; start < n; ++start) {
    if (result.label[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t id = result.component_count++;
    std::deque<NodeId> queue{start};
    result.label[start] = id;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (result.label[v] == static_cast<std::size_t>(-1)) {
          result.label[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  return connected_components(g).component_count <= 1;
}

std::size_t largest_component_size(const Graph& g) {
  const ComponentLabeling labeling = connected_components(g);
  if (labeling.component_count == 0) return 0;
  std::vector<std::size_t> sizes(labeling.component_count, 0);
  for (std::size_t lbl : labeling.label) ++sizes[lbl];
  return *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace splace
