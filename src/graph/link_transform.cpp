#include "graph/link_transform.hpp"

#include <utility>

#include "util/error.hpp"

namespace splace {

LinkNodeTransform::LinkNodeTransform(const Graph& original)
    : original_nodes_(original.node_count()),
      link_count_(original.edge_count()),
      augmented_(original.node_count() + original.edge_count()),
      link_index_(original.node_count(),
                  std::vector<std::size_t>(original.node_count(), kNoLink)) {
  for (std::size_t i = 0; i < original.edges().size(); ++i) {
    const Edge& e = original.edges()[i];
    const NodeId w = static_cast<NodeId>(original_nodes_ + i);
    augmented_.add_edge(e.u, w);
    augmented_.add_edge(w, e.v);
    link_index_[e.u][e.v] = i;
    link_index_[e.v][e.u] = i;
  }
}

NodeId LinkNodeTransform::link_node(std::size_t edge_index) const {
  SPLACE_EXPECTS(edge_index < link_count_);
  return static_cast<NodeId>(original_nodes_ + edge_index);
}

NodeId LinkNodeTransform::link_node(NodeId u, NodeId v) const {
  SPLACE_EXPECTS(u < original_nodes_ && v < original_nodes_);
  const std::size_t index = link_index_[u][v];
  SPLACE_EXPECTS(index != kNoLink);
  return link_node(index);
}

bool LinkNodeTransform::is_link_node(NodeId v) const {
  SPLACE_EXPECTS(v < augmented_.node_count());
  return v >= original_nodes_;
}

Edge LinkNodeTransform::original_link(NodeId node) const {
  SPLACE_EXPECTS(is_link_node(node));
  // The link node's two neighbors are exactly the original endpoints.
  const auto& neighbors = augmented_.neighbors(node);
  SPLACE_ENSURES(neighbors.size() == 2);
  Edge e{neighbors[0], neighbors[1]};
  if (e.u > e.v) std::swap(e.u, e.v);
  return e;
}

std::vector<NodeId> LinkNodeTransform::augment_route(
    const std::vector<NodeId>& route) const {
  SPLACE_EXPECTS(!route.empty());
  std::vector<NodeId> augmented;
  augmented.reserve(route.size() * 2 - 1);
  augmented.push_back(route.front());
  for (std::size_t i = 1; i < route.size(); ++i) {
    augmented.push_back(link_node(route[i - 1], route[i]));
    augmented.push_back(route[i]);
  }
  return augmented;
}

std::vector<NodeId> LinkNodeTransform::project_nodes(
    const std::vector<NodeId>& nodes) const {
  std::vector<NodeId> projected;
  for (NodeId v : nodes)
    if (!is_link_node(v)) projected.push_back(v);
  return projected;
}

}  // namespace splace
