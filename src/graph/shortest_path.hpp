// Shortest-path machinery. The paper's QoS measure is hop count under
// shortest-path routing (Section III-A), so BFS is the workhorse; a Dijkstra
// variant over per-edge weights is provided for weighted extensions.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace splace {

/// Hop distance reported for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS tree from a single source with deterministic parents.
///
/// parent[v] is the *smallest-id* neighbor of v at distance dist[v]-1, so two
/// runs (or two machines) always produce the same shortest-path tree — the
/// paper assumes "one path per client-server pair as determined by the
/// underlying routing protocol", and determinism stands in for that protocol.
struct BfsTree {
  NodeId source = kInvalidNode;
  std::vector<std::uint32_t> dist;   ///< hop count, kUnreachable if none
  std::vector<NodeId> parent;        ///< kInvalidNode for source/unreachable
};

BfsTree bfs_tree(const Graph& g, NodeId source);

/// Hop distances only (no parents).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Reconstructs the node sequence source -> ... -> target from a BFS tree.
/// Returns an empty vector when target is unreachable.
std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target);

/// Dijkstra over non-negative edge weights, same deterministic tie-breaking
/// (smaller predecessor id wins among equal-cost predecessors).
struct WeightedTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;          ///< +inf if unreachable
  std::vector<NodeId> parent;
};

/// `weight(u, v)` must be symmetric and non-negative.
template <typename WeightFn>
WeightedTree dijkstra_tree(const Graph& g, NodeId source, WeightFn weight);

/// Reconstructs the node sequence from a weighted tree (empty if unreachable).
std::vector<NodeId> extract_path(const WeightedTree& tree, NodeId target);

// ---- implementation of the template ----------------------------------------

template <typename WeightFn>
WeightedTree dijkstra_tree(const Graph& g, NodeId source, WeightFn weight) {
  const std::size_t n = g.node_count();
  WeightedTree tree;
  tree.source = source;
  tree.dist.assign(n, std::numeric_limits<double>::infinity());
  tree.parent.assign(n, kInvalidNode);
  tree.dist[source] = 0.0;

  // (dist, node) min-heap via sorted scan: n is small for this library's
  // workloads (POP-level topologies), so an O(n^2) scan keeps the code simple
  // and allocation-free; swap in a heap if graphs grow.
  std::vector<bool> done(n, false);
  for (std::size_t iter = 0; iter < n; ++iter) {
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v)
      if (!done[v] && tree.dist[v] < std::numeric_limits<double>::infinity() &&
          (best == kInvalidNode || tree.dist[v] < tree.dist[best]))
        best = v;
    if (best == kInvalidNode) break;
    done[best] = true;
    for (NodeId nb : g.neighbors(best)) {
      const double cand = tree.dist[best] + weight(best, nb);
      if (cand < tree.dist[nb] ||
          (cand == tree.dist[nb] && tree.parent[nb] != kInvalidNode &&
           best < tree.parent[nb])) {
        tree.dist[nb] = cand;
        tree.parent[nb] = best;
      }
    }
  }
  return tree;
}

}  // namespace splace
