#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.hpp"

namespace splace {

DegreeProfile degree_profile(const Graph& g) {
  DegreeProfile profile;
  if (g.node_count() == 0) return profile;
  profile.min = g.degree(0);
  double sum = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::size_t d = g.degree(v);
    ++profile.histogram[d];
    sum += static_cast<double>(d);
    profile.min = std::min(profile.min, d);
    profile.max = std::max(profile.max, d);
  }
  profile.mean = sum / static_cast<double>(g.node_count());
  return profile;
}

double clustering_coefficient(const Graph& g) {
  std::size_t triangles3 = 0;  // counts each triangle once per vertex order
  std::size_t triples = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& nbrs = g.neighbors(v);
    const std::size_t d = nbrs.size();
    if (d >= 2) triples += d * (d - 1) / 2;
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        if (g.has_edge(nbrs[i], nbrs[j])) ++triangles3;
  }
  // Each triangle contributes one closed triple at each of its 3 vertices.
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles3) / static_cast<double>(triples);
}

double mean_distance(const Graph& g) {
  double total = 0;
  std::size_t pairs = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (NodeId w = 0; w < g.node_count(); ++w) {
      if (w == v || dist[w] == kUnreachable) continue;
      total += static_cast<double>(dist[w]);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

double degree_assortativity(const Graph& g) {
  if (g.edge_count() == 0) return 0.0;
  // Pearson correlation over both orientations of every link.
  double sum_x = 0;
  double sum_xx = 0;
  double sum_xy = 0;
  const double m = static_cast<double>(2 * g.edge_count());
  for (const Edge& e : g.edges()) {
    const double du = static_cast<double>(g.degree(e.u));
    const double dv = static_cast<double>(g.degree(e.v));
    sum_x += du + dv;
    sum_xx += du * du + dv * dv;
    sum_xy += 2 * du * dv;
  }
  const double mean_x = sum_x / m;
  const double var = sum_xx / m - mean_x * mean_x;
  if (var <= 0) return 0.0;
  const double cov = sum_xy / m - mean_x * mean_x;
  return cov / var;
}

}  // namespace splace
