#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::check_node(NodeId v) const { SPLACE_EXPECTS(is_valid_node(v)); }

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  SPLACE_EXPECTS(u != v);
  SPLACE_EXPECTS(!has_edge(u, v));
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v});
  auto insert_sorted = [this](NodeId from, NodeId to) {
    auto& adj = adjacency_[from];
    adj.insert(std::lower_bound(adj.begin(), adj.end(), to), to);
  };
  insert_sorted(u, v);
  insert_sorted(v, u);
}

void Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  SPLACE_EXPECTS(has_edge(u, v));
  if (u > v) std::swap(u, v);
  edges_.erase(std::find(edges_.begin(), edges_.end(), Edge{u, v}));
  auto erase_sorted = [this](NodeId from, NodeId to) {
    auto& adj = adjacency_[from];
    adj.erase(std::lower_bound(adj.begin(), adj.end(), to));
  };
  erase_sorted(u, v);
  erase_sorted(v, u);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::size_t Graph::degree(NodeId v) const {
  check_node(v);
  return adjacency_[v].size();
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[v];
}

std::vector<NodeId> Graph::degree_one_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v)
    if (degree(v) == 1) out.push_back(v);
  return out;
}

std::vector<NodeId> Graph::nodes() const {
  std::vector<NodeId> out(node_count());
  for (NodeId v = 0; v < node_count(); ++v) out[v] = v;
  return out;
}

}  // namespace splace
