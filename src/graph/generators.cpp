#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace splace {

Graph path_graph(std::size_t n) {
  SPLACE_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Graph ring_graph(std::size_t n) {
  SPLACE_EXPECTS(n >= 3);
  Graph g = path_graph(n);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star_graph(std::size_t n) {
  SPLACE_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  SPLACE_EXPECTS(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  SPLACE_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_edge(u, v);
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  SPLACE_EXPECTS(n >= 1);
  // Attach nodes in a random order; node order[i] (i>0) links to a uniform
  // random node among order[0..i-1].
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i)
    g.add_edge(order[i], order[rng.index(i)]);
  return g;
}

Graph preferential_attachment(std::size_t n, std::size_t m, Rng& rng) {
  SPLACE_EXPECTS(m >= 1 && n > m);
  Graph g = complete_graph(m + 1);
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    g.add_node();
    std::vector<double> weights(v);
    for (NodeId u = 0; u < v; ++u)
      weights[u] = static_cast<double>(g.degree(u));
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId pick = static_cast<NodeId>(rng.weighted_index(weights));
      weights[pick] = 0.0;  // sample without replacement
      targets.push_back(pick);
    }
    for (NodeId t : targets) g.add_edge(v, t);
  }
  return g;
}

Graph waxman(std::size_t n, double alpha, double beta, Rng& rng) {
  SPLACE_EXPECTS(alpha > 0.0);
  SPLACE_EXPECTS(beta > 0.0 && beta <= 1.0);
  std::vector<std::pair<double, double>> position(n);
  for (auto& [x, y] : position) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  const double max_distance = std::sqrt(2.0);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = position[u].first - position[v].first;
      const double dy = position[u].second - position[v].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (rng.bernoulli(beta * std::exp(-d / (alpha * max_distance))))
        g.add_edge(u, v);
    }
  }
  return g;
}

Graph fat_tree(std::size_t k) {
  SPLACE_EXPECTS(k >= 2 && k % 2 == 0);
  const std::size_t half = k / 2;
  const std::size_t cores = half * half;
  Graph g(cores + k * k);  // + k pods x (half agg + half edge)

  auto agg_id = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(cores + pod * k + i);
  };
  auto edge_id = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(cores + pod * k + half + i);
  };

  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t a = 0; a < half; ++a)
        g.add_edge(edge_id(pod, e), agg_id(pod, a));
    // Aggregation switch a uplinks to core group a.
    for (std::size_t a = 0; a < half; ++a)
      for (std::size_t c = 0; c < half; ++c)
        g.add_edge(agg_id(pod, a), static_cast<NodeId>(a * half + c));
  }
  return g;
}

Graph random_connected(std::size_t n, std::size_t edge_count, Rng& rng) {
  SPLACE_EXPECTS(n >= 1);
  SPLACE_EXPECTS(edge_count + 1 >= n);
  SPLACE_EXPECTS(edge_count <= n * (n - 1) / 2);
  Graph g = random_tree(n, rng);
  while (g.edge_count() < edge_count) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace splace
