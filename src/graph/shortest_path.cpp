#include "graph/shortest_path.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace splace {

BfsTree bfs_tree(const Graph& g, NodeId source) {
  SPLACE_EXPECTS(g.is_valid_node(source));
  const std::size_t n = g.node_count();
  BfsTree tree;
  tree.source = source;
  tree.dist.assign(n, kUnreachable);
  tree.parent.assign(n, kInvalidNode);
  tree.dist[source] = 0;

  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.neighbors(u)) {
      if (tree.dist[v] == kUnreachable) {
        tree.dist[v] = tree.dist[u] + 1;
        tree.parent[v] = u;
        queue.push_back(v);
      } else if (tree.dist[v] == tree.dist[u] + 1 && u < tree.parent[v]) {
        // Deterministic tie-break: among equal-distance predecessors keep the
        // smallest id. Neighbors are visited in ascending order, but a later
        // BFS layer node can still offer a smaller predecessor; normalize.
        tree.parent[v] = u;
      }
    }
  }
  return tree;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_tree(g, source).dist;
}

std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target) {
  SPLACE_EXPECTS(target < tree.dist.size());
  if (tree.dist[target] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  SPLACE_ENSURES(path.front() == tree.source && path.back() == target);
  return path;
}

std::vector<NodeId> extract_path(const WeightedTree& tree, NodeId target) {
  SPLACE_EXPECTS(target < tree.dist.size());
  if (tree.dist[target] == std::numeric_limits<double>::infinity()) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace splace
