// Link-failure modeling via logical link nodes (paper Section II-A: "link
// failures can be modeled by the failures of logical nodes that represent
// the links").
//
// The transform subdivides every link {u, v} with a fresh logical node w
// (edges u-w, w-v). Every original route maps to an augmented route that
// alternates original and link nodes, so a failed link manifests exactly
// like a failed node of the augmented network — all monitoring, placement,
// and localization machinery then applies unchanged to mixed node+link
// failure models.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace splace {

class LinkNodeTransform {
 public:
  /// Builds the augmented network of `original`. Original nodes keep their
  /// ids; link nodes occupy [original.node_count(), node_count+edge_count),
  /// in the order of original.edges().
  explicit LinkNodeTransform(const Graph& original);

  const Graph& augmented() const { return augmented_; }
  std::size_t original_node_count() const { return original_nodes_; }
  std::size_t link_count() const { return link_count_; }

  /// The logical node representing original.edges()[edge_index].
  NodeId link_node(std::size_t edge_index) const;

  /// The logical node for the link {u, v}; requires the link to exist in
  /// the original graph.
  NodeId link_node(NodeId u, NodeId v) const;

  bool is_link_node(NodeId v) const;

  /// The original link a logical node stands for.
  Edge original_link(NodeId link_node) const;

  /// Translates an original-graph route (consecutive nodes adjacent) into
  /// the augmented route, inserting the link node between every hop.
  std::vector<NodeId> augment_route(const std::vector<NodeId>& route) const;

  /// Drops link nodes from an augmented node list (inverse projection).
  std::vector<NodeId> project_nodes(const std::vector<NodeId>& nodes) const;

 private:
  std::size_t original_nodes_;
  std::size_t link_count_;
  Graph augmented_;
  /// Dense lookup: link_index_[u][v] = edge index (or npos).
  std::vector<std::vector<std::size_t>> link_index_;

  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
};

}  // namespace splace
