#include "graph/routing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

RoutingTable::RoutingTable(const Graph& g) {
  trees_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) trees_.push_back(bfs_tree(g, v));
}

void RoutingTable::check_node(NodeId v) const {
  SPLACE_EXPECTS(v < node_count());
}

std::uint32_t RoutingTable::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return trees_[a].dist[b];
}

std::vector<NodeId> RoutingTable::route(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  SPLACE_EXPECTS(reachable(a, b));
  // Derive from the tree rooted at the smaller endpoint so route(a,b) and
  // route(b,a) traverse the same node set.
  const NodeId root = std::min(a, b);
  const NodeId leaf = std::max(a, b);
  std::vector<NodeId> path = extract_path(trees_[root], leaf);
  if (a != root) std::reverse(path.begin(), path.end());
  SPLACE_ENSURES(!path.empty() && path.front() == a && path.back() == b);
  return path;
}

DynamicBitset RoutingTable::route_node_set(NodeId a, NodeId b) const {
  DynamicBitset set(node_count());
  for (NodeId v : route(a, b)) set.set(v);
  return set;
}

std::uint32_t RoutingTable::diameter() const {
  std::uint32_t best = 0;
  for (const BfsTree& tree : trees_)
    for (std::uint32_t d : tree.dist)
      if (d != kUnreachable) best = std::max(best, d);
  return best;
}

}  // namespace splace
