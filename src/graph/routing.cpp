#include "graph/routing.hpp"

#include <algorithm>

#include "dynamic/delta.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

// Whether adding link {u, v} can change the deterministic BFS tree `t`
// (distances *or* smallest-id parents). Unaffected cases, against the old
// tree: both endpoints unreachable (still disconnected from the root);
// equal depths (the link lies inside one BFS level, never on a shortest
// path and never a parent candidate); depths one apart with the shallower
// endpoint not beating the deeper endpoint's current parent id.
bool add_affects_tree(const BfsTree& t, NodeId u, NodeId v) {
  std::uint32_t du = t.dist[u];
  std::uint32_t dv = t.dist[v];
  if (du == kUnreachable && dv == kUnreachable) return false;
  if (du == kUnreachable || dv == kUnreachable) return true;
  if (du == dv) return false;
  if (du > dv) {
    std::swap(du, dv);
    std::swap(u, v);
  }
  if (dv - du >= 2) return true;  // shortcut: dist[v] improves to du + 1
  return u < t.parent[v];         // same depth level, maybe a smaller parent
}

// Whether removing link {u, v} can change the tree. A link of the old graph
// joins consecutive-or-equal BFS levels (or lies in an unreachable
// component); the only removal that matters is a link the tree actually
// uses as v's parent edge — any other shortest path through {u, v} can be
// rerouted through that parent at equal length, and parent choices of all
// other nodes never considered this link.
bool remove_affects_tree(const BfsTree& t, NodeId u, NodeId v) {
  std::uint32_t du = t.dist[u];
  std::uint32_t dv = t.dist[v];
  if (du == kUnreachable && dv == kUnreachable) return false;
  if (du == kUnreachable || dv == kUnreachable) return true;
  if (du == dv) return false;
  if (du > dv) {
    std::swap(du, dv);
    std::swap(u, v);
  }
  if (dv - du >= 2) return true;  // not possible for a genuine old link
  return t.parent[v] == u;
}

}  // namespace

RoutingTable::RoutingTable(const Graph& g) {
  trees_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    trees_.push_back(std::make_shared<const BfsTree>(bfs_tree(g, v)));
}

void RoutingTable::check_node(NodeId v) const {
  SPLACE_EXPECTS(v < node_count());
}

std::uint32_t RoutingTable::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return trees_[a]->dist[b];
}

std::vector<NodeId> RoutingTable::route(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  SPLACE_EXPECTS(reachable(a, b));
  // Derive from the tree rooted at the smaller endpoint so route(a,b) and
  // route(b,a) traverse the same node set.
  const NodeId root = std::min(a, b);
  const NodeId leaf = std::max(a, b);
  std::vector<NodeId> path = extract_path(*trees_[root], leaf);
  if (a != root) std::reverse(path.begin(), path.end());
  SPLACE_ENSURES(!path.empty() && path.front() == a && path.back() == b);
  return path;
}

DynamicBitset RoutingTable::route_node_set(NodeId a, NodeId b) const {
  DynamicBitset set(node_count());
  for (NodeId v : route(a, b)) set.set(v);
  return set;
}

std::uint32_t RoutingTable::diameter() const {
  std::uint32_t best = 0;
  for (const auto& tree : trees_)
    for (std::uint32_t d : tree->dist)
      if (d != kUnreachable) best = std::max(best, d);
  return best;
}

const BfsTree& RoutingTable::tree(NodeId root) const {
  check_node(root);
  return *trees_[root];
}

RoutingTable RoutingTable::update(const Graph& updated,
                                  const TopologyDelta& delta,
                                  double full_rebuild_fraction,
                                  bool* fell_back_to_full) const {
  SPLACE_EXPECTS(updated.node_count() == node_count());
  const std::size_t n = node_count();
  if (fell_back_to_full != nullptr) *fell_back_to_full = false;
  if (delta.add_links.empty() && delta.remove_links.empty())
    return RoutingTable(trees_);  // client churn never moves a route

  // A root is affected when any single mutation could change its tree. The
  // per-mutation checks read the *old* tree; that is sound for the whole
  // batch because each individually benign mutation leaves the tree
  // bit-identical, so by induction the old distances and parents stay valid
  // for every later check. Any flagged root is simply recomputed.
  std::vector<NodeId> affected;
  for (NodeId r = 0; r < n; ++r) {
    const BfsTree& t = *trees_[r];
    bool hit = false;
    for (const Edge& e : delta.add_links)
      if (add_affects_tree(t, e.u, e.v)) {
        hit = true;
        break;
      }
    if (!hit)
      for (const Edge& e : delta.remove_links)
        if (remove_affects_tree(t, e.u, e.v)) {
          hit = true;
          break;
        }
    if (hit) affected.push_back(r);
  }

  if (static_cast<double>(affected.size()) >
      full_rebuild_fraction * static_cast<double>(n)) {
    if (fell_back_to_full != nullptr) *fell_back_to_full = true;
    return RoutingTable(updated);
  }

  std::vector<std::shared_ptr<const BfsTree>> trees = trees_;
  for (NodeId r : affected)
    trees[r] = std::make_shared<const BfsTree>(bfs_tree(updated, r));
  return RoutingTable(std::move(trees));
}

bool RoutingTable::shares_tree(const RoutingTable& other, NodeId root) const {
  check_node(root);
  SPLACE_EXPECTS(other.node_count() == node_count());
  return trees_[root] == other.trees_[root];
}

std::size_t RoutingTable::shared_tree_count(const RoutingTable& other) const {
  SPLACE_EXPECTS(other.node_count() == node_count());
  std::size_t shared = 0;
  for (NodeId r = 0; r < node_count(); ++r)
    if (trees_[r] == other.trees_[r]) ++shared;
  return shared;
}

}  // namespace splace
