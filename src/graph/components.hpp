// Connectivity analysis: component labeling and connectivity checks used by
// the topology generators (which must emit connected networks) and by input
// validation.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace splace {

/// Labels each node with a component id in [0, component_count).
/// Component ids are assigned in order of smallest contained node id.
struct ComponentLabeling {
  std::vector<std::size_t> label;  ///< per node
  std::size_t component_count = 0;
};

ComponentLabeling connected_components(const Graph& g);

/// True iff the graph is connected (vacuously true when empty).
bool is_connected(const Graph& g);

/// Node count of the largest component (0 for an empty graph).
std::size_t largest_component_size(const Graph& g);

}  // namespace splace
