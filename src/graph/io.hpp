// Graph serialization: a whitespace edge-list format (one "u v" pair per
// line, '#' comments, optional "nodes N" header for isolated nodes) and
// Graphviz DOT export for visual inspection of generated topologies.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "graph/graph.hpp"

namespace splace {

/// Writes "nodes N" followed by one "u v" line per link.
void write_edge_list(const Graph& g, std::ostream& os);

/// Parses the format produced by write_edge_list. Lines starting with '#'
/// are comments. Without a "nodes N" header the node count is inferred as
/// max id + 1. Throws InvalidInput on malformed data.
Graph read_edge_list(std::istream& is);

/// Graphviz DOT representation (undirected), optionally titled.
std::string to_dot(const Graph& g, const std::string& name = "G");

}  // namespace splace
