// Synthetic graph generators. Deterministic structured families (ring, path,
// star, grid, complete) back the unit tests; the randomized families
// (Erdős–Rényi, preferential attachment, random-connected) back property
// tests and the ISP topology stand-ins in src/topology.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace splace {

/// A simple path v0 - v1 - ... - v(n-1). Requires n >= 1.
Graph path_graph(std::size_t n);

/// A cycle over n nodes. Requires n >= 3.
Graph ring_graph(std::size_t n);

/// Hub node 0 connected to n-1 leaves. Requires n >= 1.
Graph star_graph(std::size_t n);

/// rows x cols lattice. Requires rows, cols >= 1.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// K_n. Requires n >= 1.
Graph complete_graph(std::size_t n);

/// G(n, p): each of the C(n,2) links present independently with prob. p.
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Uniform random labeled spanning tree over n nodes (random-permutation
/// Prüfer-free construction: node i>0 attaches to a uniform earlier node in a
/// random order). Connected by construction. Requires n >= 1.
Graph random_tree(std::size_t n, Rng& rng);

/// Barabási–Albert style preferential attachment: start from a clique of
/// m+1 nodes, each subsequent node attaches to m distinct existing nodes with
/// probability proportional to degree. Requires n > m >= 1.
Graph preferential_attachment(std::size_t n, std::size_t m, Rng& rng);

/// Connected graph with exactly `edge_count` links: random spanning tree plus
/// uniformly sampled extra links. Requires n-1 <= edge_count <= C(n,2).
Graph random_connected(std::size_t n, std::size_t edge_count, Rng& rng);

/// Waxman random geometric graph: n nodes placed uniformly on the unit
/// square; link {u,v} present with probability beta·exp(−d(u,v)/(alpha·√2)).
/// May be disconnected (use largest_component_size / retry to filter).
/// Requires alpha > 0 and beta in (0, 1].
Graph waxman(std::size_t n, double alpha, double beta, Rng& rng);

/// k-ary fat-tree switch fabric (data-center topology): (k/2)^2 core,
/// k^2/2 aggregation, and k^2/2 edge switches (5k^2/4 nodes total), wired
/// the standard way. Requires k even and >= 2. Node ids: cores first, then
/// per pod k/2 aggregation followed by k/2 edge switches.
Graph fat_tree(std::size_t k);

}  // namespace splace
