// Undirected graph type used to model the service network G = (N, L) of the
// paper (Section II-A). Nodes are dense ids [0, node_count); links are
// unweighted and undirected; self-loops and parallel links are rejected.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitset.hpp"

namespace splace {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected link {u, v}, stored with u < v.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
  /// (u, v)-lexicographic, so normalized edge lists can be sorted into a
  /// canonical order (content hashing, delta validation).
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Undirected simple graph with dense node ids.
///
/// Adjacency lists are kept sorted so that every traversal (BFS, routing
/// tie-breaks, generators) is deterministic regardless of insertion order.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected link {u, v}. Requires u != v, both valid, and the
  /// link not already present.
  void add_edge(NodeId u, NodeId v);

  /// Removes the undirected link {u, v}. Requires the link to be present.
  /// The relative insertion order of the remaining links is preserved.
  void remove_edge(NodeId u, NodeId v);

  /// True iff the link {u, v} exists.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t degree(NodeId v) const;

  /// Neighbors of v in ascending id order.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  /// All links, in insertion order (each normalized with u < v).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Nodes of degree exactly one ("dangling" nodes in the paper's Table I).
  std::vector<NodeId> degree_one_nodes() const;

  /// All node ids [0, node_count).
  std::vector<NodeId> nodes() const;

  bool is_valid_node(NodeId v) const { return v < node_count(); }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;

  void check_node(NodeId v) const;
};

}  // namespace splace
