#include "graph/weighted_routing.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace splace {

WeightedRoutingTable::WeightedRoutingTable(const Graph& g,
                                           std::vector<double> link_weights) {
  SPLACE_EXPECTS(link_weights.size() == g.edge_count());
  for (double w : link_weights) SPLACE_EXPECTS(w > 0.0);

  const std::size_t n = g.node_count();
  weight_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    const Edge& e = g.edges()[i];
    weight_[e.u][e.v] = link_weights[i];
    weight_[e.v][e.u] = link_weights[i];
  }

  trees_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    trees_.push_back(dijkstra_tree(
        g, v, [this](NodeId a, NodeId b) { return weight_[a][b]; }));
  }
}

void WeightedRoutingTable::check_node(NodeId v) const {
  SPLACE_EXPECTS(v < node_count());
}

double WeightedRoutingTable::cost(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return trees_[a].dist[b];
}

bool WeightedRoutingTable::reachable(NodeId a, NodeId b) const {
  return cost(a, b) != std::numeric_limits<double>::infinity();
}

std::vector<NodeId> WeightedRoutingTable::route(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  SPLACE_EXPECTS(reachable(a, b));
  const NodeId root = std::min(a, b);
  const NodeId leaf = std::max(a, b);
  std::vector<NodeId> path = extract_path(trees_[root], leaf);
  if (a != root) std::reverse(path.begin(), path.end());
  SPLACE_ENSURES(!path.empty() && path.front() == a && path.back() == b);
  return path;
}

double WeightedRoutingTable::link_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  SPLACE_EXPECTS(weight_[u][v] > 0.0);
  return weight_[u][v];
}

}  // namespace splace
