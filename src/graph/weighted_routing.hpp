// Weighted (latency-based) routing: the same one-route-per-pair contract as
// RoutingTable, but shortest paths minimize a per-link cost (propagation
// delay, IGP metric) instead of hop count. Plug the resulting route provider
// into ProblemInstance to study monitoring-aware placement under latency
// QoS — Section III-A's "latency as the QoS measure" taken literally.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"

namespace splace {

class WeightedRoutingTable {
 public:
  /// `link_weights[i]` is the cost of g.edges()[i]; all weights must be > 0
  /// and the vector must align with the edge list.
  WeightedRoutingTable(const Graph& g, std::vector<double> link_weights);

  std::size_t node_count() const { return trees_.size(); }

  /// Total path cost between a and b (+inf when disconnected).
  double cost(NodeId a, NodeId b) const;

  bool reachable(NodeId a, NodeId b) const;

  /// The unique min-cost route from a to b (endpoints included);
  /// orientation-independent node set, like RoutingTable::route.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

  /// Weight of one existing link.
  double link_weight(NodeId u, NodeId v) const;

 private:
  std::vector<WeightedTree> trees_;
  std::vector<std::vector<double>> weight_;  ///< dense symmetric lookup

  void check_node(NodeId v) const;
};

}  // namespace splace
