// Deterministic all-pairs shortest-path routing.
//
// The paper assumes the network's routing protocol yields exactly one path per
// client-server pair (Section II-A). RoutingTable realizes that assumption:
// it precomputes one deterministic BFS tree per node and always derives the
// route for a pair {a, b} from the tree rooted at min(a, b), so the route is
// unique, orientation-independent, and stable across runs.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"

namespace splace {

class RoutingTable {
 public:
  /// Precomputes BFS trees from every node: O(|N|(|N|+|L|)).
  explicit RoutingTable(const Graph& g);

  std::size_t node_count() const { return trees_.size(); }

  /// Hop distance between a and b (kUnreachable if disconnected).
  std::uint32_t distance(NodeId a, NodeId b) const;

  bool reachable(NodeId a, NodeId b) const {
    return distance(a, b) != kUnreachable;
  }

  /// The unique route between a and b as an ordered node sequence from a to b
  /// (endpoints included). Requires the pair to be connected.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

  /// The route as an unordered node set (the paper's measurement-path view).
  DynamicBitset route_node_set(NodeId a, NodeId b) const;

  /// Maximum finite pairwise distance (0 for <2 reachable pairs).
  std::uint32_t diameter() const;

 private:
  std::vector<BfsTree> trees_;

  void check_node(NodeId v) const;
};

}  // namespace splace
