// Deterministic all-pairs shortest-path routing.
//
// The paper assumes the network's routing protocol yields exactly one path per
// client-server pair (Section II-A). RoutingTable realizes that assumption:
// it precomputes one deterministic BFS tree per node and always derives the
// route for a pair {a, b} from the tree rooted at min(a, b), so the route is
// unique, orientation-independent, and stable across runs.
//
// Trees are held behind shared_ptr so that update() — the reuse-aware
// incremental rebuild used by the dynamic-topology subsystem — can share
// every tree a batch of link mutations provably cannot change with the
// parent table instead of re-running its BFS.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"

namespace splace {

struct TopologyDelta;  // src/dynamic/delta.hpp

class RoutingTable {
 public:
  /// Precomputes BFS trees from every node: O(|N|(|N|+|L|)).
  explicit RoutingTable(const Graph& g);

  std::size_t node_count() const { return trees_.size(); }

  /// Hop distance between a and b (kUnreachable if disconnected).
  std::uint32_t distance(NodeId a, NodeId b) const;

  bool reachable(NodeId a, NodeId b) const {
    return distance(a, b) != kUnreachable;
  }

  /// The unique route between a and b as an ordered node sequence from a to b
  /// (endpoints included). Requires the pair to be connected.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

  /// The route as an unordered node set (the paper's measurement-path view).
  DynamicBitset route_node_set(NodeId a, NodeId b) const;

  /// Maximum finite pairwise distance (0 for <2 reachable pairs).
  std::uint32_t diameter() const;

  /// The BFS tree rooted at `root` (bit-identical across rebuild paths).
  const BfsTree& tree(NodeId root) const;

  /// Reuse-aware rebuild against `updated`, the graph this table's graph
  /// becomes after applying `delta`'s link mutations (client mutations are
  /// routing-irrelevant). Only the trees whose routes can change are
  /// recomputed: a per-root sweep over the mutated endpoints' old distances
  /// and parents proves the rest unchanged, and those are shared with this
  /// table. Past `full_rebuild_fraction` of affected roots the update falls
  /// back to a plain full rebuild (reported through `fell_back_to_full` when
  /// non-null). The result is bit-identical (distances and parents, hence
  /// routes) to `RoutingTable(updated)`.
  RoutingTable update(const Graph& updated, const TopologyDelta& delta,
                      double full_rebuild_fraction = 0.5,
                      bool* fell_back_to_full = nullptr) const;

  /// True iff both tables hold the *same* tree object for `root`
  /// (structural sharing produced by update(); used for reuse telemetry and
  /// to detect services untouched by a topology delta).
  bool shares_tree(const RoutingTable& other, NodeId root) const;

  /// Number of roots whose trees are shared with `other`.
  std::size_t shared_tree_count(const RoutingTable& other) const;

 private:
  explicit RoutingTable(std::vector<std::shared_ptr<const BfsTree>> trees)
      : trees_(std::move(trees)) {}

  std::vector<std::shared_ptr<const BfsTree>> trees_;

  void check_node(NodeId v) const;
};

}  // namespace splace
