#include "graph/io.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace splace {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "nodes " << g.node_count() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::vector<Edge> edges;
  std::size_t declared_nodes = 0;
  bool has_header = false;
  NodeId max_id = 0;
  bool any_edge = false;

  std::string line;
  while (std::getline(is, line)) {
    const std::string_view content = trim(line);
    if (content.empty() || content.front() == '#') continue;
    std::istringstream fields{std::string(content)};
    std::string first;
    fields >> first;
    if (first == "nodes") {
      if (!(fields >> declared_nodes))
        throw InvalidInput("edge list: malformed 'nodes' header: " + line);
      has_header = true;
      continue;
    }
    Edge e;
    std::istringstream pair{std::string(content)};
    if (!(pair >> e.u >> e.v))
      throw InvalidInput("edge list: malformed edge line: " + line);
    if (e.u == e.v)
      throw InvalidInput("edge list: self-loop on node " +
                         std::to_string(e.u));
    edges.push_back(e);
    max_id = std::max({max_id, e.u, e.v});
    any_edge = true;
  }

  const std::size_t node_count =
      has_header ? declared_nodes : (any_edge ? max_id + std::size_t{1} : 0);
  if (any_edge && max_id >= node_count)
    throw InvalidInput("edge list: node id " + std::to_string(max_id) +
                       " exceeds declared node count " +
                       std::to_string(node_count));
  Graph g(node_count);
  for (const Edge& e : edges) {
    if (g.has_edge(e.u, e.v))
      throw InvalidInput("edge list: duplicate edge " + std::to_string(e.u) +
                         "-" + std::to_string(e.v));
    g.add_edge(e.u, e.v);
  }
  return g;
}

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream oss;
  oss << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) oss << "  " << v << ";\n";
  for (const Edge& e : g.edges())
    oss << "  " << e.u << " -- " << e.v << ";\n";
  oss << "}\n";
  return oss.str();
}

}  // namespace splace
