// Topology statistics used to validate and characterize networks: degree
// profile, clustering, and distance structure. bench_table1 reports these
// next to the paper's Table I counts, and the generator tests use them to
// check the stand-ins have the right structural character.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"

namespace splace {

struct DegreeProfile {
  std::map<std::size_t, std::size_t> histogram;  ///< degree -> #nodes
  double mean = 0;
  std::size_t min = 0;
  std::size_t max = 0;
};

DegreeProfile degree_profile(const Graph& g);

/// Global clustering coefficient: 3 * #triangles / #connected-triples
/// (0 for graphs without a connected triple).
double clustering_coefficient(const Graph& g);

/// Mean shortest-path hop distance over connected ordered pairs
/// (0 when fewer than one such pair exists).
double mean_distance(const Graph& g);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// links); 0 when undefined (no links or zero variance).
double degree_assortativity(const Graph& g);

}  // namespace splace
