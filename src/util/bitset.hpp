// A dynamically sized bitset tuned for the set algebra this library performs
// constantly: path node-sets, covered-node sets, path-incidence signatures.
//
// std::vector<bool> lacks word-level access (popcount, bulk OR) and
// std::bitset is fixed-size; this class provides exactly the operations the
// monitoring algorithms need, nothing more.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace splace {

/// Fixed-universe dynamic bitset over indices [0, size()).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset over a universe of `size` elements, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0) {}

  std::size_t size() const { return size_; }
  bool empty_universe() const { return size_ == 0; }

  void set(std::size_t i);
  void reset(std::size_t i);
  bool test(std::size_t i) const;

  /// Number of set bits.
  std::size_t count() const;
  /// True iff no bit is set.
  bool none() const;
  /// True iff at least one bit is set.
  bool any() const { return !none(); }

  void clear();

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);
  /// Removes from this set every bit present in `other`.
  DynamicBitset& subtract(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// True iff this ∩ other ≠ ∅.
  bool intersects(const DynamicBitset& other) const;
  /// True iff this ⊆ other.
  bool is_subset_of(const DynamicBitset& other) const;

  /// |this ∪ other| without materializing the union.
  std::size_t union_count(const DynamicBitset& other) const;
  /// |this ∩ other| without materializing the intersection.
  std::size_t intersection_count(const DynamicBitset& other) const;

  /// Calls `fn(i)` for every set bit in ascending order.
  void for_each(const std::function<void(std::size_t)>& fn) const;
  /// Materializes the set bits in ascending order.
  std::vector<std::size_t> to_indices() const;

  /// FNV-style hash of the content (size + words), suitable for grouping.
  std::size_t hash() const;

  /// Raw 64-bit word storage (word i covers indices [64i, 64i+64)); bits at
  /// and above size() are always zero. Read-only — the word-parallel kernels
  /// consume this directly.
  const std::uint64_t* word_data() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  void check_index(std::size_t i) const;
  void check_same_universe(const DynamicBitset& other) const;
};

}  // namespace splace

template <>
struct std::hash<splace::DynamicBitset> {
  std::size_t operator()(const splace::DynamicBitset& b) const {
    return b.hash();
  }
};
