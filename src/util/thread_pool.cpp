#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SPLACE_EXPECTS(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SPLACE_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) drained_.notify_all();
    }
  }
}

std::size_t parallel_chunk_count(std::size_t n, std::size_t max_chunks) {
  return std::min(n, max_chunks);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  // n == 0 submits nothing; n below the chunk target yields exactly n
  // single-index chunks — an empty [begin, end) range is never submitted.
  const std::size_t chunks = parallel_chunk_count(n, pool.thread_count() * 4);
  if (chunks == 0) return;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t begin = i * n / chunks;
    const std::size_t end = (i + 1) * n / chunks;
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait();
}

}  // namespace splace
