// A small fixed-size worker pool for embarrassingly parallel search work
// (parallel brute force, multi-seed experiment sweeps).
//
// Deliberately minimal: fire-and-forget tasks plus a wait-for-drain barrier.
// Exceptions thrown by tasks are captured and rethrown from wait() (first
// one wins), so callers never silently lose failures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace splace {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction begins.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. Exceptions
  /// thrown by `fn` travel through the future, NOT through wait()'s
  /// first-error channel — a submit_with_result failure never poisons an
  /// unrelated caller's wait(). This is the per-request channel the serving
  /// engine uses: many clients can await their own results independently.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit_with_result(
      F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished; rethrows the first
  /// task exception, if any (clearing it for subsequent waits).
  void wait();

 private:
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;

  void worker_loop();
};

/// Number of contiguous chunks parallel_for/parallel_reduce split [0, n)
/// into: never more than `max_chunks`, never more than n (so no chunk is
/// empty), and 0 only when n == 0.
std::size_t parallel_chunk_count(std::size_t n, std::size_t max_chunks);

/// Splits [0, n) into roughly even non-empty chunks, runs `body(begin, end)`
/// on the pool, and waits for completion (propagating task exceptions).
/// n == 0 is a no-op; n < thread_count submits exactly n single-index chunks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic chunked map-reduce over [0, n): at most thread_count()
/// non-empty contiguous chunks, each mapped to a partial result by
/// `map(begin, end)` on the pool, then folded IN CHUNK ORDER with
/// `combine(accumulator, partial)`. Because the fold order is the index
/// order — not the completion order — a combine that keeps the first
/// winner on ties reproduces the sequential scan bit-for-bit, which is how
/// the parallel greedy arg-max resolves ties by (service, host) order.
/// Requires T to be default-constructible; returns `init` when n == 0.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T init, const Map& map,
                  const Combine& combine) {
  const std::size_t chunks = parallel_chunk_count(n, pool.thread_count());
  if (chunks == 0) return init;
  std::vector<T> partials(chunks);
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t begin = i * n / chunks;
    const std::size_t end = (i + 1) * n / chunks;
    T* slot = &partials[i];
    pool.submit([&map, slot, begin, end] { *slot = map(begin, end); });
  }
  pool.wait();
  T result = std::move(init);
  for (T& partial : partials) result = combine(std::move(result), partial);
  return result;
}

}  // namespace splace
