// A small fixed-size worker pool for embarrassingly parallel search work
// (parallel brute force, multi-seed experiment sweeps).
//
// Deliberately minimal: fire-and-forget tasks plus a wait-for-drain barrier.
// Exceptions thrown by tasks are captured and rethrown from wait() (first
// one wins), so callers never silently lose failures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace splace {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction begins.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// task exception, if any (clearing it for subsequent waits).
  void wait();

 private:
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;

  void worker_loop();
};

/// Splits [0, n) into roughly even chunks, runs `body(begin, end)` on the
/// pool, and waits for completion (propagating task exceptions).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace splace
