// Contract-checking and error-reporting support for the splace library.
//
// Follows the C++ Core Guidelines (I.6/I.8): preconditions and postconditions
// are stated with Expects/Ensures-style macros. Violations throw
// `splace::ContractViolation` rather than aborting, so library users (and our
// tests) can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace splace {

/// Thrown when a precondition/postcondition stated by the library is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Thrown when input data (topology files, parameters) is malformed.
class InvalidInput : public std::runtime_error {
 public:
  explicit InvalidInput(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace splace

#define SPLACE_EXPECTS(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::splace::detail::contract_fail("precondition", #cond, __FILE__,   \
                                      __LINE__);                          \
  } while (false)

#define SPLACE_ENSURES(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::splace::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                      __LINE__);                          \
  } while (false)
