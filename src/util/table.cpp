#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_util.hpp"

namespace splace {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row_values(const std::vector<double>& cells,
                                  int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace splace
