// Small string helpers shared by the I/O and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace splace {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 2);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace splace
