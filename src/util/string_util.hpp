// Small string helpers shared by the I/O and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace splace {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Concatenates any mix of strings / string_views / char literals by
/// appending into one result. Prefer this over chained `operator+`: it
/// allocates once, and GCC 12's -Wrestrict false-fires on inlined
/// concatenation chains at -O3 (GCC PR105329), which the -Werror leg in
/// scripts/run_all.sh would turn into a build break.
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out += ... += parts);
  return out;
}

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 2);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace splace
