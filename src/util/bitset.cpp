#include "util/bitset.hpp"

#include <bit>

#include "util/error.hpp"

namespace splace {

void DynamicBitset::check_index(std::size_t i) const {
  SPLACE_EXPECTS(i < size_);
}

void DynamicBitset::check_same_universe(const DynamicBitset& other) const {
  SPLACE_EXPECTS(size_ == other.size_);
}

void DynamicBitset::set(std::size_t i) {
  check_index(i);
  words_[i / kBits] |= (std::uint64_t{1} << (i % kBits));
}

void DynamicBitset::reset(std::size_t i) {
  check_index(i);
  words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
}

bool DynamicBitset::test(std::size_t i) const {
  check_index(i);
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::none() const {
  for (std::uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

void DynamicBitset::clear() {
  for (std::uint64_t& w : words_) w = 0;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

std::size_t DynamicBitset::union_count(const DynamicBitset& other) const {
  check_same_universe(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] | other.words_[i]));
  return total;
}

std::size_t DynamicBitset::intersection_count(const DynamicBitset& other) const {
  check_same_universe(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  return total;
}

void DynamicBitset::for_each(const std::function<void(std::size_t)>& fn) const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(w));
      fn(wi * kBits + bit);
      w &= w - 1;
    }
  }
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t DynamicBitset::hash() const {
  std::uint64_t h = 1469598103934665603ull ^ size_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace splace
