#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace splace {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SPLACE_EXPECTS(!sorted.empty());
  SPLACE_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::size_t log2_us_bucket(double seconds) {
  const double micros = seconds * 1e6;
  if (micros <= 1.0) return 0;
  return static_cast<std::size_t>(std::ceil(std::log2(micros)));
}

BoxStats box_stats(std::vector<double> values) {
  SPLACE_EXPECTS(!values.empty());
  std::sort(values.begin(), values.end());
  BoxStats b;
  b.min = values.front();
  b.q1 = quantile_sorted(values, 0.25);
  b.median = quantile_sorted(values, 0.5);
  b.q3 = quantile_sorted(values, 0.75);
  b.max = values.back();
  return b;
}

void Histogram::add(std::size_t value, std::size_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

double Histogram::fraction(std::size_t value) const {
  if (total_ == 0) return 0.0;
  auto it = counts_.find(value);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

std::size_t Histogram::max_value() const {
  if (counts_.empty()) return 0;
  return counts_.rbegin()->first;
}

}  // namespace splace
