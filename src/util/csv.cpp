#include "util/csv.hpp"

#include "util/string_util.hpp"

namespace splace {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row_values(const std::vector<double>& cells,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  write_row(row);
}

}  // namespace splace
