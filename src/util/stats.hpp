// Descriptive statistics used by the benchmark harness: summary moments,
// five-number box-plot statistics (for the paper's Fig. 4), and histograms
// (for the paper's Fig. 8 degree-of-uncertainty distributions).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace splace {

/// Moments and extremes of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double min = 0;
  double max = 0;
};

Summary summarize(const std::vector<double>& values);

/// Five-number summary used for box plots (paper Fig. 4).
struct BoxStats {
  double min = 0;
  double q1 = 0;      ///< first quartile (linear interpolation)
  double median = 0;
  double q3 = 0;      ///< third quartile
  double max = 0;
};

/// Computes box-plot statistics; requires a non-empty sample.
BoxStats box_stats(std::vector<double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Bucket index of a duration on the log2-microsecond scale used by the
/// serving engine's latency histograms: bucket b covers (2^(b-1), 2^b] µs,
/// bucket 0 everything up to 1 µs. Shared by the engine metrics and the
/// request-trace aggregations so every histogram means the same thing.
std::size_t log2_us_bucket(double seconds);

/// Discrete histogram: value -> count, with normalized fractions on demand.
class Histogram {
 public:
  void add(std::size_t value, std::size_t weight = 1);

  std::size_t total() const { return total_; }
  const std::map<std::size_t, std::size_t>& counts() const { return counts_; }

  /// Fraction of observations equal to `value` (0 if total()==0).
  double fraction(std::size_t value) const;

  /// Largest observed value (0 if empty).
  std::size_t max_value() const;

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace splace
