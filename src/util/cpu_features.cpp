#include "util/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace splace {

const char* to_string(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::Scalar: return "scalar";
    case KernelVariant::Avx2: return "avx2";
  }
  return "?";
}

namespace {

bool detect_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang resolve this via cpuid on first use; cached by the builtin.
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool detect_force_scalar() {
  const char* value = std::getenv("SPLACE_FORCE_SCALAR");
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

}  // namespace

bool cpu_supports(KernelVariant variant) {
  static const bool avx2 = detect_avx2();
  return variant == KernelVariant::Scalar || avx2;
}

bool scalar_forced_by_env() {
  static const bool forced = detect_force_scalar();
  return forced;
}

}  // namespace splace
