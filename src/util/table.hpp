// Aligned ASCII table rendering for the benchmark harness. Every reproduced
// table/figure prints its rows/series through this class so the bench output
// is directly comparable with the paper.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace splace {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with to_string / format_double.
  void add_row_values(const std::vector<double>& cells, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace splace
