// Minimal CSV emission so benchmark series can be redirected into plotting
// tools. Values containing separators/quotes are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace splace {

/// Streams rows of a CSV document to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row_values(const std::vector<double>& cells, int precision = 4);

  /// Escapes one cell per RFC 4180 (quote iff it contains , " or newline).
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace splace
