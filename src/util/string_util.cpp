#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace splace {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace splace
