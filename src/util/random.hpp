// Deterministic pseudo-random number generation for reproducible experiments.
//
// The library never uses std::random_device or global state: every randomized
// component (topology generator, random-placement baseline, property tests)
// takes an explicit Rng seeded by the caller, so a given seed always produces
// the same topology, placement, and benchmark row on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace splace {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Samples `count` distinct elements from `pool` (order randomized).
  /// Requires count <= pool.size().
  template <typename T>
  std::vector<T> sample(std::vector<T> pool, std::size_t count) {
    SPLACE_EXPECTS(count <= pool.size());
    shuffle(pool);
    pool.resize(count);
    return pool;
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
};

}  // namespace splace
