#include "util/random.hpp"

#include <bit>
#include <numeric>

namespace splace {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro's state must not be all-zero; splitmix64 makes this vanishingly
  // unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  SPLACE_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == max()) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % bound;
}

std::size_t Rng::index(std::size_t n) {
  SPLACE_EXPECTS(n > 0);
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  SPLACE_EXPECTS(total > 0.0);
  double draw = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0) return i;
  return 0;
}

}  // namespace splace
