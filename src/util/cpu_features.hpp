// Runtime CPU-feature detection for the word-parallel monitoring kernels.
//
// The library ships one portable scalar implementation of every kernel plus
// an AVX2 variant compiled into its own translation unit with -mavx2. Which
// one runs is decided once per process: the AVX2 path is taken only when the
// CPU reports the feature AND the SPLACE_FORCE_SCALAR environment variable is
// unset/empty/"0" — the override lets CI and sanitizer legs pin the scalar
// kernel deterministically on any host. Both variants are bit-identical in
// output (integer set algebra only), so the choice is purely a speed knob.
#pragma once

namespace splace {

enum class KernelVariant {
  Scalar,  ///< portable fallback, always available
  Avx2,    ///< 256-bit SIMD variant (x86-64 with AVX2)
};

/// Short display name: "scalar" or "avx2".
const char* to_string(KernelVariant variant);

/// True iff this process's CPU can execute the variant.
bool cpu_supports(KernelVariant variant);

/// True iff SPLACE_FORCE_SCALAR is set to a non-empty value other than "0"
/// (read once and cached; later setenv calls are deliberately ignored so the
/// dispatch decision cannot change mid-run).
bool scalar_forced_by_env();

}  // namespace splace
