// A tiny leveled logger. The library itself logs nothing by default
// (level Off); benches/examples raise the level to narrate long runs.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace splace {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-wide logging configuration (single-threaded use by design:
/// the library is a deterministic algorithm suite, not a server).
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void set_sink(std::ostream* sink);  ///< nullptr restores std::clog
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace splace

#define SPLACE_LOG(splace_log_lvl)                            \
  if (::splace::Logger::level() < (splace_log_lvl)) {         \
  } else                                                      \
    ::splace::detail::LogLine(splace_log_lvl)

#define SPLACE_LOG_INFO SPLACE_LOG(::splace::LogLevel::Info)
#define SPLACE_LOG_WARN SPLACE_LOG(::splace::LogLevel::Warn)
#define SPLACE_LOG_ERROR SPLACE_LOG(::splace::LogLevel::Error)
#define SPLACE_LOG_DEBUG SPLACE_LOG(::splace::LogLevel::Debug)
