#include "util/logging.hpp"

#include <iostream>

namespace splace {

namespace {
LogLevel g_level = LogLevel::Off;
std::ostream* g_sink = nullptr;
}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::set_sink(std::ostream* sink) { g_sink = sink; }

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Off: return "OFF";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  if (g_level < level || level == LogLevel::Off) return;
  std::ostream& os = g_sink ? *g_sink : std::clog;
  os << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace splace
