#include "dynamic/delta.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace splace {

namespace {

[[noreturn]] void bad(const std::string& msg) {
  throw InvalidInput("topology delta: " + msg);
}

std::string link_str(const Edge& e) {
  // Built by append, not operator+ chaining: GCC 12's -Wrestrict issues a
  // false positive on chained string concatenation at -O3 (GCC PR105329),
  // which the -Werror leg would otherwise trip over.
  std::string s = "{";
  s += std::to_string(e.u);
  s += ", ";
  s += std::to_string(e.v);
  s += "}";
  return s;
}

Edge normalized(const Graph& g, Edge e) {
  if (!g.is_valid_node(e.u) || !g.is_valid_node(e.v))
    bad("link " + link_str(e) + " references an unknown node");
  if (e.u == e.v) bad("link " + link_str(e) + " is a self-loop");
  if (e.u > e.v) std::swap(e.u, e.v);
  return e;
}

void check_no_repeats(std::vector<Edge> links, const char* what) {
  std::sort(links.begin(), links.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  const auto dup = std::adjacent_find(links.begin(), links.end());
  if (dup != links.end())
    bad(std::string("link ") + link_str(*dup) + " repeated in " + what);
}

}  // namespace

Graph apply_delta(const Graph& g, const TopologyDelta& delta) {
  std::vector<Edge> adds;
  adds.reserve(delta.add_links.size());
  for (const Edge& e : delta.add_links) {
    const Edge n = normalized(g, e);
    if (g.has_edge(n.u, n.v)) bad("added link " + link_str(n) + " already exists");
    adds.push_back(n);
  }
  std::vector<Edge> removes;
  removes.reserve(delta.remove_links.size());
  for (const Edge& e : delta.remove_links) {
    const Edge n = normalized(g, e);
    if (!g.has_edge(n.u, n.v)) bad("removed link " + link_str(n) + " does not exist");
    removes.push_back(n);
  }
  check_no_repeats(adds, "add_links");
  check_no_repeats(removes, "remove_links");
  // Same link in both lists is impossible: an added link must be absent and
  // a removed link present in the same parent graph.

  Graph out = g;
  for (const Edge& e : removes) out.remove_edge(e.u, e.v);
  for (const Edge& e : adds) out.add_edge(e.u, e.v);
  return out;
}

std::vector<Service> apply_delta(const std::vector<Service>& services,
                                 const TopologyDelta& delta,
                                 std::size_t node_count) {
  auto check = [&](const ClientMutation& m) {
    if (m.service >= services.size())
      bad("client mutation references unknown service #" +
          std::to_string(m.service));
    if (m.client >= node_count)
      bad("client mutation references unknown node " +
          std::to_string(m.client));
  };
  for (const ClientMutation& m : delta.add_clients) check(m);
  for (const ClientMutation& m : delta.remove_clients) check(m);
  for (std::size_t i = 0; i < delta.add_clients.size(); ++i) {
    for (std::size_t j = i + 1; j < delta.add_clients.size(); ++j)
      if (delta.add_clients[i] == delta.add_clients[j])
        bad("client addition repeated");
    for (const ClientMutation& m : delta.remove_clients)
      if (delta.add_clients[i] == m)
        bad("client both added and removed for one service");
  }
  for (std::size_t i = 0; i < delta.remove_clients.size(); ++i)
    for (std::size_t j = i + 1; j < delta.remove_clients.size(); ++j)
      if (delta.remove_clients[i] == delta.remove_clients[j])
        bad("client removal repeated");

  std::vector<Service> out = services;
  for (const ClientMutation& m : delta.remove_clients) {
    auto& clients = out[m.service].clients;
    const auto it = std::find(clients.begin(), clients.end(), m.client);
    if (it == clients.end())
      bad("removed client " + std::to_string(m.client) +
          " not a client of service #" + std::to_string(m.service));
    clients.erase(it);
  }
  for (const ClientMutation& m : delta.add_clients) {
    auto& clients = out[m.service].clients;
    if (std::find(clients.begin(), clients.end(), m.client) != clients.end())
      bad("added client " + std::to_string(m.client) +
          " already a client of service #" + std::to_string(m.service));
    clients.push_back(m.client);
  }
  for (const ClientMutation& m : delta.remove_clients)
    if (out[m.service].clients.empty())
      bad("service #" + std::to_string(m.service) + " left without clients");
  return out;
}

std::shared_ptr<const ProblemInstance> derive_instance(
    const ProblemInstance& parent, const TopologyDelta& delta,
    DeriveStats* stats) {
  if (delta.empty()) bad("empty delta");
  return derive_instance(parent, delta, apply_delta(parent.graph(), delta),
                         apply_delta(parent.services(), delta,
                                     parent.node_count()),
                         stats);
}

std::shared_ptr<const ProblemInstance> derive_instance(
    const ProblemInstance& parent, const TopologyDelta& delta,
    Graph updated_graph, std::vector<Service> updated_services,
    DeriveStats* stats) {
  if (delta.empty()) bad("empty delta");
  bool full_rebuild = false;
  RoutingTable routing =
      parent.routing().update(updated_graph, delta, 0.5, &full_rebuild);

  std::vector<bool> client_mutated(updated_services.size(), false);
  for (const ClientMutation& m : delta.add_clients)
    client_mutated[m.service] = true;
  for (const ClientMutation& m : delta.remove_clients)
    client_mutated[m.service] = true;

  DerivedBuildStats build{};
  auto child = std::make_shared<const ProblemInstance>(ProblemInstance::derived(
      parent, std::move(updated_graph), std::move(routing),
      std::move(updated_services), client_mutated, &build));
  if (stats != nullptr) {
    stats->trees_total = child->node_count();
    stats->trees_reused = child->routing().shared_tree_count(parent.routing());
    stats->services_total = child->service_count();
    stats->services_reused = build.plans_shared;
    stats->path_sets_reused = build.path_sets_shared;
    stats->path_sets_rebuilt = build.path_sets_rebuilt;
    stats->full_routing_rebuild = full_rebuild;
  }
  return child;
}

}  // namespace splace
