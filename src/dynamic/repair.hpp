// Warm-start placement repair after a topology delta.
//
// A full greedy re-run after every mutation wastes the work the delta did
// not invalidate. repair_placement replays the parent's greedy trace
// (GreedyResult::order / gains) on the derived instance, re-scoring only
// services the delta touched: while every committed service is untouched,
// the state equals the parent run's state at that step, so untouched
// candidates keep their recorded gains and only touched candidates can
// change the arg-max. The replay therefore commits the provably-unchanged
// prefix for free and falls back to plain greedy from the first divergent
// step — producing exactly the placement a full greedy re-run would.
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/objective.hpp"
#include "placement/greedy.hpp"
#include "placement/service.hpp"

namespace splace {

struct RepairOptions {
  /// Bounded local-improvement passes after the greedy repair: each pass
  /// applies the best strictly-improving single-service move (first in
  /// (service, host) order among ties), stopping early when none exists.
  /// 0 = pure greedy repair.
  std::size_t improvement_passes = 0;
};

struct RepairResult {
  Placement placement;
  double objective_value = 0;
  std::size_t prefix_commits = 0;   ///< trace steps replayed without scoring
  bool trace_prefix_valid = false;  ///< whole trace replayed unchanged
  bool kept_stale = false;          ///< stale placement beat the greedy repair
  std::size_t gain_evaluations = 0; ///< ObjectiveState::gain calls made
  std::size_t improvement_moves = 0;
};

/// Per-service "may have changed" flags for a derived instance, via
/// ProblemInstance::shares_service_paths against its parent.
std::vector<bool> touched_services(const ProblemInstance& parent,
                                   const ProblemInstance& derived);

/// Repairs `parent_trace` (a greedy run on the parent instance) against
/// `derived` (the post-delta instance). Guarantees:
///   * the greedy phase reproduces, bit-identically, what
///     `greedy_placement(derived, kind, k)` would return — at the cost of
///     scoring only touched services while the trace prefix holds;
///   * the result is never worse in objective value than keeping the stale
///     `parent_trace.placement`, whenever that placement is still feasible.
/// `service_touched[s]` must be false only when service s's candidate hosts
/// and path sets are unchanged from the parent (see touched_services).
RepairResult repair_placement(const ProblemInstance& derived,
                              ObjectiveKind kind, std::size_t k,
                              const GreedyResult& parent_trace,
                              const std::vector<bool>& service_touched,
                              const RepairOptions& options = {});

}  // namespace splace
