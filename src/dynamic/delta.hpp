// Dynamic-topology subsystem: validated batch mutations against an existing
// problem instance, and instance derivation with structural reuse.
//
// The paper fixes the topology for the lifetime of a placement problem
// (Section II-A); a serving deployment does not get that luxury — links flap
// and client populations move. A TopologyDelta describes one batch of such
// churn; apply_delta validates and applies it, and derive_instance builds
// the post-churn ProblemInstance while sharing every BFS tree and every
// measurement path set the delta provably cannot have changed.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "placement/service.hpp"

namespace splace {

/// Adds or removes one client (by node id) of one service (by index).
struct ClientMutation {
  std::size_t service = 0;
  NodeId client = kInvalidNode;

  friend bool operator==(const ClientMutation&, const ClientMutation&) =
      default;
};

/// A batch of topology mutations to apply atomically to a problem instance.
///
/// Links are unordered {u, v} pairs in either orientation; client additions
/// append in list order (client order shapes path-set iteration order, so it
/// is part of the delta's meaning), removals erase the named client.
struct TopologyDelta {
  std::vector<Edge> add_links;
  std::vector<Edge> remove_links;
  std::vector<ClientMutation> add_clients;
  std::vector<ClientMutation> remove_clients;

  bool empty() const {
    return add_links.empty() && remove_links.empty() && add_clients.empty() &&
           remove_clients.empty();
  }
  std::size_t link_mutations() const {
    return add_links.size() + remove_links.size();
  }
};

/// Applies the delta's link mutations to a copy of `g`.
///
/// Throws InvalidInput unless every referenced node exists, every added link
/// is absent, every removed link is present, no link repeats within a list,
/// and no link appears in both lists.
Graph apply_delta(const Graph& g, const TopologyDelta& delta);

/// Applies the delta's client mutations to a copy of `services`.
///
/// Throws InvalidInput unless every service index and client node is valid,
/// every added client is new to its service (and not repeated in the list),
/// every removed client is present, no (service, client) pair appears in
/// both lists, and every touched service keeps at least one client.
std::vector<Service> apply_delta(const std::vector<Service>& services,
                                 const TopologyDelta& delta,
                                 std::size_t node_count);

/// Reuse telemetry for one derive_instance call.
struct DeriveStats {
  std::size_t trees_total = 0;      ///< BFS trees in the routing table
  std::size_t trees_reused = 0;     ///< shared with the parent instance
  std::size_t services_total = 0;
  std::size_t services_reused = 0;  ///< whole per-service plan shared
  std::size_t path_sets_reused = 0;
  std::size_t path_sets_rebuilt = 0;
  bool full_routing_rebuild = false;  ///< churn threshold fallback hit
};

/// Builds the problem instance that `parent` becomes under `delta`, sharing
/// unchanged BFS trees and measurement path sets with the parent. The result
/// is bit-identical (routes, candidate hosts, worst-case distances, QoS
/// hosts, path sets) to `ProblemInstance(apply_delta(graph, delta),
/// apply_delta(services, delta, n))` built from scratch.
///
/// Throws InvalidInput on an empty delta or a validation failure; requires a
/// parent using default shortest-path routing (no custom RouteProvider).
std::shared_ptr<const ProblemInstance> derive_instance(
    const ProblemInstance& parent, const TopologyDelta& delta,
    DeriveStats* stats = nullptr);

/// Same, but takes the already-applied graph and services (callers that
/// validated the delta up front — e.g. for content hashing — avoid applying
/// it twice). `updated_graph`/`updated_services` must equal the apply_delta
/// outputs for (parent, delta).
std::shared_ptr<const ProblemInstance> derive_instance(
    const ProblemInstance& parent, const TopologyDelta& delta,
    Graph updated_graph, std::vector<Service> updated_services,
    DeriveStats* stats = nullptr);

}  // namespace splace
