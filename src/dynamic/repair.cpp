#include "dynamic/repair.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

namespace {

/// First maximum over the given candidates in (service, host) order —
/// the same tie-break greedy_placement uses.
struct Best {
  double gain = 0;
  std::size_t service = 0;
  NodeId host = kInvalidNode;
  bool valid = false;

  /// Whether (service, host) sits before (s, h) in flattened scan order.
  bool before(std::size_t s, NodeId h) const {
    return service != s ? service < s : host < h;
  }
};

}  // namespace

std::vector<bool> touched_services(const ProblemInstance& parent,
                                   const ProblemInstance& derived) {
  SPLACE_EXPECTS(parent.service_count() == derived.service_count());
  std::vector<bool> touched(derived.service_count(), false);
  for (std::size_t s = 0; s < derived.service_count(); ++s)
    touched[s] = !ProblemInstance::shares_service_paths(parent, derived, s);
  return touched;
}

RepairResult repair_placement(const ProblemInstance& derived,
                              ObjectiveKind kind, std::size_t k,
                              const GreedyResult& parent_trace,
                              const std::vector<bool>& service_touched,
                              const RepairOptions& options) {
  const std::size_t n_services = derived.service_count();
  SPLACE_EXPECTS(parent_trace.placement.size() == n_services);
  SPLACE_EXPECTS(parent_trace.order.size() == n_services);
  SPLACE_EXPECTS(parent_trace.gains.size() == n_services);
  SPLACE_EXPECTS(service_touched.size() == n_services);

  RepairResult result;
  result.placement.assign(n_services, kInvalidNode);
  std::vector<bool> placed(n_services, false);
  std::unique_ptr<ObjectiveState> state =
      make_objective_state(kind, derived.node_count(), k);

  std::size_t placed_count = 0;
  auto commit = [&](std::size_t s, NodeId h) {
    placed[s] = true;
    ++placed_count;
    result.placement[s] = h;
    state->add_paths(derived.paths_for(s, h));
  };

  // Scores the unplaced candidates of touched services only.
  auto best_touched = [&]() {
    Best best;
    for (std::size_t s = 0; s < n_services; ++s) {
      if (placed[s] || !service_touched[s]) continue;
      for (NodeId h : derived.candidate_hosts(s)) {
        const double gain = state->gain(derived.arena_paths_for(s, h));
        ++result.gain_evaluations;
        if (!best.valid || gain > best.gain) best = Best{gain, s, h, true};
      }
    }
    return best;
  };

  // Phase 1: replay the trace. As long as every committed service is
  // untouched, the accumulated path set — hence every untouched candidate's
  // gain — is bit-identical to the parent run's at the same step, so the
  // recorded winner stands unless a touched candidate beats it (greater
  // gain, or equal gain from an earlier (service, host) position; untouched
  // ties already lost to the recorded winner in the parent run).
  std::size_t step = 0;
  bool diverged = false;
  for (; step < n_services; ++step) {
    const std::size_t s = parent_trace.order[step];
    if (service_touched[s]) {
      diverged = true;  // the recorded winner itself is stale
      break;
    }
    const NodeId h = parent_trace.placement[s];
    const double g = parent_trace.gains[step];
    const Best challenger = best_touched();
    if (challenger.valid &&
        (challenger.gain > g ||
         (challenger.gain == g && challenger.before(s, h)))) {
      commit(challenger.service, challenger.host);
      diverged = true;
      break;
    }
    commit(s, h);
    ++result.prefix_commits;
  }
  result.trace_prefix_valid = !diverged && step == n_services;

  // Phase 2: from the first divergence on, the state no longer matches the
  // parent run; continue as plain sequential greedy over every unplaced
  // service — exactly what a full re-run would do from this point.
  while (placed_count < n_services) {
    Best best;
    for (std::size_t s = 0; s < n_services; ++s) {
      if (placed[s]) continue;
      for (NodeId h : derived.candidate_hosts(s)) {
        const double gain = state->gain(derived.arena_paths_for(s, h));
        ++result.gain_evaluations;
        if (!best.valid || gain > best.gain) best = Best{gain, s, h, true};
      }
    }
    SPLACE_ENSURES(best.valid);
    commit(best.service, best.host);
  }
  result.objective_value = state->value();

  // Phase 3: never return something worse than the stale placement when the
  // stale placement is still feasible on the derived instance. (With a fully
  // valid trace the greedy result *is* the stale placement, so this cannot
  // override the equals-full-greedy guarantee.)
  const Placement& stale = parent_trace.placement;
  bool stale_feasible = true;
  for (std::size_t s = 0; s < n_services && stale_feasible; ++s)
    stale_feasible = derived.is_candidate(s, stale[s]);
  if (stale_feasible && result.placement != stale) {
    const double stale_value =
        evaluate_objective(kind, derived.paths_for_placement(stale), k);
    if (stale_value > result.objective_value) {
      result.placement = stale;
      result.objective_value = stale_value;
      result.kept_stale = true;
    }
  }

  // Phase 4: optional bounded improvement — best strictly-improving
  // single-service move per pass, deterministic first-max order.
  for (std::size_t pass = 0; pass < options.improvement_passes; ++pass) {
    Best move;
    for (std::size_t s = 0; s < n_services; ++s) {
      Placement trial = result.placement;
      for (NodeId h : derived.candidate_hosts(s)) {
        if (h == result.placement[s]) continue;
        trial[s] = h;
        const double value =
            evaluate_objective(kind, derived.paths_for_placement(trial), k);
        if (value > result.objective_value &&
            (!move.valid || value > move.gain))
          move = Best{value, s, h, true};
      }
    }
    if (!move.valid) break;
    result.placement[move.service] = move.host;
    result.objective_value = move.gain;
    ++result.improvement_moves;
  }

  return result;
}

}  // namespace splace
