// Timeline capture for the passive-monitoring simulator: per-epoch records
// of what was down, what the monitor observed, and what tomography
// concluded — enough to replay an incident post mortem or feed plotting
// pipelines (CSV export).
#pragma once

#include <ostream>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace splace::sim {

/// One monitoring epoch as the trace sees it.
struct EpochRecord {
  double time = 0;                      ///< epoch end time
  std::vector<NodeId> down_nodes;       ///< ground truth at epoch end
  std::size_t observed_paths = 0;       ///< paths that carried traffic
  std::size_t failed_paths = 0;         ///< of those, observed failed
  bool localization_ran = false;
  std::size_t candidates = 0;           ///< consistent sets found
  bool truth_among_candidates = false;
};

struct SimTrace {
  std::vector<EpochRecord> epochs;

  /// Epochs with at least one observed-failed path.
  std::size_t eventful_epochs() const;

  /// CSV: time,down,observed,failed,localized,candidates,truth.
  void to_csv(std::ostream& os) const;
};

/// Runs the simulator capturing the per-epoch timeline alongside the usual
/// aggregate report. Identical dynamics to sim::simulate for the same
/// config/seed (verified by tests).
struct TracedRun {
  SimReport report;
  SimTrace trace;
};

TracedRun simulate_traced(const ProblemInstance& instance,
                          const Placement& placement,
                          const SimConfig& config);

}  // namespace splace::sim
