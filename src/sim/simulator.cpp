#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "localization/localizer.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace::sim {

std::string SimConfig::validate() const {
  if (!(duration > 0)) return "SimConfig.duration must be positive";
  if (!(request_rate > 0)) return "SimConfig.request_rate must be positive";
  if (!(mtbf > 0)) return "SimConfig.mtbf must be positive";
  if (!(mttr > 0)) return "SimConfig.mttr must be positive";
  if (!(epoch > 0)) return "SimConfig.epoch must be positive";
  if (k < 1) return "SimConfig.k must be >= 1";
  if (observation_noise.false_positive < 0 ||
      observation_noise.false_positive >= 1) {
    return "SimConfig.observation_noise.false_positive must be in [0, 1)";
  }
  if (observation_noise.false_negative < 0 ||
      observation_noise.false_negative >= 1) {
    return "SimConfig.observation_noise.false_negative must be in [0, 1)";
  }
  return {};
}

namespace {

enum class EventKind { RequestArrival, NodeFail, NodeRepair, EpochEnd };

struct Event {
  double time = 0;
  std::uint64_t seq = 0;  ///< tie-break so ordering is deterministic
  EventKind kind = EventKind::EpochEnd;
  std::size_t subject = 0;  ///< request stream index or node id

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

double exponential(double mean, Rng& rng) {
  // Inverse-CDF sampling; uniform01() < 1 keeps the log argument positive.
  return -mean * std::log(1.0 - rng.uniform01());
}

/// Shared implementation; `trace` may be null.
SimReport simulate_impl(const ProblemInstance& instance,
                        const Placement& placement, const SimConfig& config,
                        SimTrace* trace);

}  // namespace

SimReport simulate(const ProblemInstance& instance,
                   const Placement& placement, const SimConfig& config) {
  return simulate_impl(instance, placement, config, nullptr);
}

TracedRun simulate_traced(const ProblemInstance& instance,
                          const Placement& placement,
                          const SimConfig& config) {
  TracedRun run;
  run.report = simulate_impl(instance, placement, config, &run.trace);
  return run;
}

namespace {

SimReport simulate_impl(const ProblemInstance& instance,
                        const Placement& placement, const SimConfig& config,
                        SimTrace* trace) {
  if (const std::string error = config.validate(); !error.empty())
    throw InvalidInput(error);
  SPLACE_EXPECTS(placement.size() == instance.service_count());

  // The monitor's path universe: all client-server paths of the placement.
  const PathSet paths = instance.paths_for_placement(placement);

  // Request streams: one Poisson process per (service, client), each mapped
  // to its path index in `paths`.
  std::vector<std::size_t> stream_path;
  for (std::size_t s = 0; s < placement.size(); ++s) {
    for (NodeId c : instance.services()[s].clients) {
      const MeasurementPath path(instance.node_count(),
                                 instance.route(c, placement[s]));
      // Locate the (deduplicated) index in `paths`.
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (paths[i] == path) {
          stream_path.push_back(i);
          break;
        }
      }
    }
  }

  Rng rng(config.seed);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  auto schedule = [&](double time, EventKind kind, std::size_t subject) {
    if (time <= config.duration)
      queue.push(Event{time, seq++, kind, subject});
  };

  // Prime the processes.
  for (std::size_t stream = 0; stream < stream_path.size(); ++stream)
    schedule(exponential(1.0 / config.request_rate, rng),
             EventKind::RequestArrival, stream);
  for (NodeId v = 0; v < instance.node_count(); ++v)
    schedule(exponential(config.mtbf, rng), EventKind::NodeFail, v);
  schedule(config.epoch, EventKind::EpochEnd, 0);

  // Live state.
  std::vector<bool> node_up(instance.node_count(), true);
  struct ActiveFailure {
    double fail_time = 0;
    bool detected = false;
  };
  std::vector<ActiveFailure> active(instance.node_count());

  // Per-epoch observation buffers.
  std::vector<bool> path_observed(paths.size(), false);
  std::vector<bool> path_failed(paths.size(), false);

  SimReport report;
  double detection_latency_sum = 0;
  double ambiguity_sum = 0;

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();

    switch (event.kind) {
      case EventKind::RequestArrival: {
        const std::size_t pi = stream_path[event.subject];
        ++report.requests_total;
        bool ok = true;
        for (NodeId v : paths[pi].nodes())
          if (!node_up[v]) {
            ok = false;
            break;
          }
        if (!ok) ++report.requests_failed;
        // What the monitor records may be misreported per the noise model.
        bool observed_fail = !ok;
        const double flip_prob = ok ? config.observation_noise.false_positive
                                    : config.observation_noise.false_negative;
        if (flip_prob > 0.0 && rng.bernoulli(flip_prob))
          observed_fail = !observed_fail;
        path_observed[pi] = true;
        path_failed[pi] = path_failed[pi] || observed_fail;
        schedule(event.time + exponential(1.0 / config.request_rate, rng),
                 EventKind::RequestArrival, event.subject);
        break;
      }

      case EventKind::NodeFail: {
        const NodeId v = static_cast<NodeId>(event.subject);
        if (node_up[v]) {
          node_up[v] = false;
          active[v] = ActiveFailure{event.time, false};
          ++report.failures_injected;
          schedule(event.time + exponential(config.mttr, rng),
                   EventKind::NodeRepair, v);
        }
        break;
      }

      case EventKind::NodeRepair: {
        const NodeId v = static_cast<NodeId>(event.subject);
        node_up[v] = true;
        schedule(event.time + exponential(config.mtbf, rng),
                 EventKind::NodeFail, v);
        break;
      }

      case EventKind::EpochEnd: {
        // Detection: an active failure is detected once some *observed*
        // failed path traverses it.
        for (NodeId v = 0; v < instance.node_count(); ++v) {
          if (node_up[v] || active[v].detected) continue;
          for (std::size_t pi = 0; pi < paths.size(); ++pi) {
            if (path_observed[pi] && path_failed[pi] &&
                paths[pi].traverses(v)) {
              active[v].detected = true;
              ++report.failures_detected;
              detection_latency_sum += event.time - active[v].fail_time;
              break;
            }
          }
        }

        // Localization over the observed sub-universe.
        bool any_failed = false;
        for (std::size_t pi = 0; pi < paths.size(); ++pi)
          if (path_observed[pi] && path_failed[pi]) any_failed = true;
        std::size_t down_count = 0;
        for (NodeId v = 0; v < instance.node_count(); ++v)
          if (!node_up[v]) ++down_count;

        EpochRecord record;
        if (trace) {
          record.time = event.time;
          for (NodeId v = 0; v < instance.node_count(); ++v)
            if (!node_up[v]) record.down_nodes.push_back(v);
          for (std::size_t pi = 0; pi < paths.size(); ++pi) {
            if (path_observed[pi]) ++record.observed_paths;
            if (path_observed[pi] && path_failed[pi]) ++record.failed_paths;
          }
        }

        if (any_failed && down_count <= config.k) {
          PathSet observed_paths(instance.node_count());
          std::vector<bool> states;
          for (std::size_t pi = 0; pi < paths.size(); ++pi) {
            if (!path_observed[pi]) continue;
            observed_paths.add(paths[pi]);
            states.push_back(path_failed[pi]);
          }
          DynamicBitset failed_bits(observed_paths.size());
          for (std::size_t i = 0; i < states.size(); ++i)
            if (states[i]) failed_bits.set(i);

          const LocalizationResult loc =
              localize(observed_paths, failed_bits, config.k);
          ++report.localizations_attempted;
          if (loc.unique()) ++report.localizations_unique;
          ambiguity_sum += static_cast<double>(loc.ambiguity());

          std::vector<NodeId> truth;
          for (NodeId v = 0; v < instance.node_count(); ++v)
            if (!node_up[v]) truth.push_back(v);
          const bool truth_found =
              std::find(loc.consistent_sets.begin(),
                        loc.consistent_sets.end(),
                        truth) != loc.consistent_sets.end();
          if (truth_found) ++report.localizations_containing_truth;
          if (trace) {
            record.localization_ran = true;
            record.candidates = loc.consistent_sets.size();
            record.truth_among_candidates = truth_found;
          }
        }
        if (trace) trace->epochs.push_back(std::move(record));

        std::fill(path_observed.begin(), path_observed.end(), false);
        std::fill(path_failed.begin(), path_failed.end(), false);
        schedule(event.time + config.epoch, EventKind::EpochEnd, 0);
        break;
      }
    }
  }

  if (report.requests_total > 0)
    report.availability =
        1.0 - static_cast<double>(report.requests_failed) /
                  static_cast<double>(report.requests_total);
  if (report.failures_detected > 0)
    report.mean_detection_latency =
        detection_latency_sum / static_cast<double>(report.failures_detected);
  if (report.localizations_attempted > 0)
    report.mean_ambiguity =
        ambiguity_sum / static_cast<double>(report.localizations_attempted);
  return report;
}

}  // namespace

}  // namespace splace::sim
