// Discrete-event simulation of passive service-layer monitoring.
//
// The paper's premise (Section I) is that client-server connection states
// are observed "as a byproduct of fulfilling the service". This module
// simulates exactly that operational loop so placements can be judged on
// runtime outcomes, not just the static measures:
//
//   * clients issue requests to their service hosts as Poisson processes;
//   * nodes fail and recover as alternating exponential (MTBF/MTTR)
//     processes;
//   * a request succeeds iff every node on its routed path is up; the
//     monitor sees only these per-request binary outcomes;
//   * at the end of every monitoring epoch, the monitor runs Boolean
//     tomography (localization/localizer.hpp) over the paths that carried
//     at least one request — paths with no traffic contribute nothing,
//     which is precisely what makes placement matter.
//
// Reported: request availability, failure detection rate and latency, and
// localization ambiguity. bench_sim compares QoS vs GD placements on these.
#pragma once

#include <cstdint>
#include <string>

#include "localization/probabilistic.hpp"
#include "placement/service.hpp"

namespace splace::sim {

struct SimConfig {
  double duration = 2000.0;      ///< simulated time horizon
  double request_rate = 1.0;     ///< per client-service pair (Poisson)
  double mtbf = 2000.0;          ///< per-node mean time between failures
  double mttr = 100.0;           ///< per-node mean time to repair
  double epoch = 5.0;            ///< monitoring/localization window
  std::size_t k = 1;             ///< localizer failure budget
  std::uint64_t seed = 1;
  /// Per-request observation noise: a request's success/failure may be
  /// misreported to the monitor (the service layer saw a timeout that was
  /// really congestion, etc.). Availability always uses the true outcome.
  NoiseModel observation_noise;

  /// Basic sanity: all rates/durations positive, noise rates in [0, 1).
  /// Empty when the config is usable; otherwise the first violation,
  /// naming the offending field (EngineConfig::validate() convention).
  /// simulate() throws InvalidInput with this message.
  std::string validate() const;
};

struct SimReport {
  // Traffic.
  std::size_t requests_total = 0;
  std::size_t requests_failed = 0;
  /// Fraction of requests served successfully.
  double availability = 0;

  // Failure process and detection.
  std::size_t failures_injected = 0;
  std::size_t failures_detected = 0;   ///< seen by >=1 failed observed path
  double mean_detection_latency = 0;   ///< over detected failures

  // Localization (epochs whose observations showed >=1 failed path and at
  // most k nodes were actually down).
  std::size_t localizations_attempted = 0;
  std::size_t localizations_unique = 0;
  std::size_t localizations_containing_truth = 0;
  double mean_ambiguity = 0;           ///< candidate sets beyond the first
};

/// Runs the simulation for one placement. Throws InvalidInput when
/// config.validate() reports a problem; requires a placement assigning a
/// candidate host to every service.
SimReport simulate(const ProblemInstance& instance, const Placement& placement,
                   const SimConfig& config);

}  // namespace splace::sim
