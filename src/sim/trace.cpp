#include "sim/trace.hpp"

#include "util/csv.hpp"

namespace splace::sim {

std::size_t SimTrace::eventful_epochs() const {
  std::size_t count = 0;
  for (const EpochRecord& e : epochs)
    if (e.failed_paths > 0) ++count;
  return count;
}

void SimTrace::to_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row({"time", "down_nodes", "observed_paths", "failed_paths",
                 "localization_ran", "candidates", "truth_among_candidates"});
  for (const EpochRecord& e : epochs) {
    std::string down;
    for (std::size_t i = 0; i < e.down_nodes.size(); ++i) {
      if (i) down += ' ';
      down += std::to_string(e.down_nodes[i]);
    }
    csv.write_row({std::to_string(e.time), down,
                   std::to_string(e.observed_paths),
                   std::to_string(e.failed_paths),
                   e.localization_ran ? "1" : "0",
                   std::to_string(e.candidates),
                   e.truth_among_candidates ? "1" : "0"});
  }
}

}  // namespace splace::sim
