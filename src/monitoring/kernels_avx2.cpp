// AVX2 variants of the monitoring kernels. This translation unit is the only
// one compiled with -mavx2 (see src/CMakeLists.txt), so AVX2 instructions
// can never leak into code that runs before dispatch; when the toolchain or
// target architecture lacks AVX2 support the TU degrades to a stub that
// reports the variant unavailable and dispatch stays on the scalar table.
#include "monitoring/kernels.hpp"

#if defined(SPLACE_KERNELS_AVX2)

#include <immintrin.h>

#include <bit>

#include "util/error.hpp"

namespace splace::kernels {

namespace {

/// Per-lane popcount of four u64 words via the nibble-lookup PSHUFB trick,
/// returned as four u64 partial sums (Mula's algorithm).
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

std::size_t avx2_coverage_new_bits(const std::uint64_t* covered,
                                   const std::uint32_t* union_words,
                                   const std::uint64_t* union_masks,
                                   std::size_t n_entries) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n_entries; i += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(union_words + i));
    const __m256i cov = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(covered), idx, 8);
    const __m256i masks = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(union_masks + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_andnot_si256(cov, masks)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (; i < n_entries; ++i)
    total += static_cast<std::size_t>(
        std::popcount(union_masks[i] & ~covered[union_words[i]]));
  return total;
}

void avx2_split_signatures(const PathArena& arena, std::uint32_t set,
                           std::vector<NodeSig>& out) {
  const std::uint32_t* rows = arena.set_rows(set);
  const std::size_t k = arena.set_size(set);
  SPLACE_EXPECTS(k <= 64);

  // Same k-way merge as the scalar kernel; only the per-block signature
  // gather is vectorized (and only for blocks at least 4 rows deep — the
  // zero padding of partial vectors contributes sig bits of 0, harmless).
  const std::uint32_t* words[64];
  const std::uint64_t* masks[64];
  std::size_t cursor[64];
  std::size_t limit[64];
  for (std::size_t pi = 0; pi < k; ++pi) {
    words[pi] = arena.row_words(rows[pi]);
    masks[pi] = arena.row_masks(rows[pi]);
    cursor[pi] = 0;
    limit[pi] = arena.row_word_count(rows[pi]);
  }

  out.clear();
  alignas(32) std::uint64_t block_masks[64];
  alignas(32) std::uint64_t block_pis[64];
  const __m256i one = _mm256_set1_epi64x(1);
  while (true) {
    std::uint32_t word = UINT32_MAX;
    for (std::size_t pi = 0; pi < k; ++pi)
      if (cursor[pi] < limit[pi] && words[pi][cursor[pi]] < word)
        word = words[pi][cursor[pi]];
    if (word == UINT32_MAX) break;

    std::size_t g = 0;
    std::uint64_t unioned = 0;
    for (std::size_t pi = 0; pi < k; ++pi) {
      if (cursor[pi] < limit[pi] && words[pi][cursor[pi]] == word) {
        const std::uint64_t mask = masks[pi][cursor[pi]++];
        unioned |= mask;
        block_masks[g] = mask;
        block_pis[g] = pi;
        ++g;
      }
    }

    if (g < 4) {
      std::uint64_t m = unioned;
      while (m != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(m));
        std::uint64_t sig = 0;
        for (std::size_t j = 0; j < g; ++j)
          sig |= ((block_masks[j] >> bit) & 1u) << block_pis[j];
        out.push_back(NodeSig{word * 64 + bit, sig});
        m &= m - 1;
      }
      continue;
    }

    for (std::size_t j = g; j % 4 != 0; ++j) {
      block_masks[j] = 0;
      block_pis[j] = 0;
    }
    const std::size_t vectors = (g + 3) / 4;
    std::uint64_t m = unioned;
    while (m != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(m));
      const __m256i shift = _mm256_set1_epi64x(static_cast<long long>(bit));
      __m256i acc = _mm256_setzero_si256();
      for (std::size_t v = 0; v < vectors; ++v) {
        const __m256i vm = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(block_masks + 4 * v));
        const __m256i vp = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(block_pis + 4 * v));
        const __m256i bits = _mm256_and_si256(_mm256_srlv_epi64(vm, shift), one);
        acc = _mm256_or_si256(acc, _mm256_sllv_epi64(bits, vp));
      }
      alignas(32) std::uint64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      out.push_back(
          NodeSig{word * 64 + bit, lanes[0] | lanes[1] | lanes[2] | lanes[3]});
      m &= m - 1;
    }
  }
}

constexpr Ops kAvx2Ops{KernelVariant::Avx2, &avx2_coverage_new_bits,
                       &avx2_split_signatures};

}  // namespace

const Ops* avx2_ops() {
  static const Ops* table =
      cpu_supports(KernelVariant::Avx2) ? &kAvx2Ops : nullptr;
  return table;
}

}  // namespace splace::kernels

#else  // !SPLACE_KERNELS_AVX2

namespace splace::kernels {

const Ops* avx2_ops() { return nullptr; }

}  // namespace splace::kernels

#endif
