// Composite monitoring objective: a non-negative weighted blend of the
// three measures, each normalized to [0, 1] by its instance-independent
// ceiling (|N| for coverage/identifiability, C(|N|+1, 2) for k = 1
// distinguishability; the general-k ceilings use |F_k|).
//
// Rationale: the paper finds GD best *overall*, but an operator may care
// about, say, 70% distinguishability + 30% coverage. A non-negative
// combination of monotone submodular functions is monotone submodular, so
// any blend with zero identifiability weight keeps the greedy 1/2
// guarantee; adding identifiability weight degrades it to a heuristic
// exactly as GI does.
#pragma once

#include <memory>

#include "monitoring/objective.hpp"

namespace splace {

struct ObjectiveWeights {
  double coverage = 0;
  double identifiability = 0;
  double distinguishability = 1;

  bool valid() const {
    return coverage >= 0 && identifiability >= 0 &&
           distinguishability >= 0 &&
           coverage + identifiability + distinguishability > 0;
  }

  /// True iff the blend is provably submodular (no identifiability mass).
  bool submodular() const { return identifiability == 0; }
};

/// Incremental state computing
///   w_c·|C(P)|/|N| + w_i·|S_k(P)|/|N| + w_d·|D_k(P)|/max_pairs(k).
/// Pluggable into greedy_placement / lazy_greedy_placement like any other
/// ObjectiveState. Requires weights.valid() and k >= 1.
std::unique_ptr<ObjectiveState> make_composite_objective_state(
    std::size_t node_count, std::size_t k, const ObjectiveWeights& weights);

/// One-shot evaluation of the blended objective over a path set.
double evaluate_composite(const PathSet& paths, std::size_t k,
                          const ObjectiveWeights& weights);

}  // namespace splace
