// Measurement paths and path sets (paper Section II-A).
//
// A measurement path is the *set of nodes* traversed by one client-server
// connection (endpoints included): its observed state is normal iff every
// traversed node is normal, so only the node set matters for monitoring.
// A PathSet is a duplicate-free collection of such paths — the paper's P.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace splace {

/// One end-to-end measurement path over a fixed node universe.
class MeasurementPath {
 public:
  /// Builds the path from the traversed node sequence (order is irrelevant
  /// for monitoring; duplicates are collapsed). Requires a non-empty node
  /// list — a degenerate single-node path (service co-located with its
  /// client) is explicitly allowed, matching the paper's footnote 3.
  MeasurementPath(std::size_t node_count, const std::vector<NodeId>& nodes);

  std::size_t node_universe() const { return members_.size(); }

  /// The traversed node set.
  const DynamicBitset& node_set() const { return members_; }

  /// Traversed nodes in ascending id order.
  const std::vector<NodeId>& nodes() const { return sorted_nodes_; }

  std::size_t length() const { return sorted_nodes_.size(); }

  bool traverses(NodeId v) const { return members_.test(v); }

  /// Paths are equal iff they traverse the same node set.
  friend bool operator==(const MeasurementPath& a, const MeasurementPath& b) {
    return a.members_ == b.members_;
  }

 private:
  DynamicBitset members_;
  std::vector<NodeId> sorted_nodes_;
};

/// A set (no duplicates) of measurement paths over a common node universe.
class PathSet {
 public:
  explicit PathSet(std::size_t node_count) : node_count_(node_count) {}

  std::size_t node_count() const { return node_count_; }
  std::size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }

  const MeasurementPath& operator[](std::size_t i) const { return paths_[i]; }
  const std::vector<MeasurementPath>& paths() const { return paths_; }

  /// Inserts a path; returns false (and keeps the set unchanged) when an
  /// equal path is already present. Requires a matching node universe.
  bool add(MeasurementPath path);

  /// Convenience: add(MeasurementPath(node_count(), nodes)).
  bool add_nodes(const std::vector<NodeId>& nodes);

  /// Set-union of another path set into this one; returns #paths added.
  std::size_t add_all(const PathSet& other);

  bool contains(const MeasurementPath& path) const;

  /// P_v for every node v: incidence[v] = set of path indices traversing v.
  std::vector<DynamicBitset> node_incidence() const;

  /// P_F: indices of paths traversing at least one node of `failure_set`.
  DynamicBitset affected_paths(const std::vector<NodeId>& failure_set) const;

 private:
  std::size_t node_count_;
  std::vector<MeasurementPath> paths_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_hash_;

  /// Index of an equal path, or size() if absent.
  std::size_t find(const MeasurementPath& path) const;
};

}  // namespace splace
