// Human-readable monitoring assessment of a placement: for every node, what
// the operator could conclude if it failed — the per-node story behind the
// aggregate |C|, |S_1|, |D_1| numbers and the Fig. 8 distribution.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "monitoring/equivalence_classes.hpp"
#include "monitoring/path.hpp"

namespace splace {

enum class NodeMonitoringStatus {
  Identifiable,   ///< failure detected and uniquely located
  Ambiguous,      ///< failure detected, location narrowed to a group
  Uncovered,      ///< failure invisible to every measurement path
};

struct NodeAssessment {
  NodeId node = kInvalidNode;
  NodeMonitoringStatus status = NodeMonitoringStatus::Uncovered;
  /// Peers indistinguishable from this node (empty when identifiable);
  /// for uncovered nodes: the other uncovered nodes.
  std::vector<NodeId> confusable_with;
  /// # paths that would fail if this node failed.
  std::size_t witnessing_paths = 0;
};

struct MonitoringAssessment {
  std::vector<NodeAssessment> nodes;  ///< one entry per node, ascending id
  std::size_t identifiable = 0;
  std::size_t ambiguous = 0;
  std::size_t uncovered = 0;

  /// Nodes with the given status, ascending id.
  std::vector<NodeId> with_status(NodeMonitoringStatus status) const;
};

/// Analyzes a path set at k = 1.
MonitoringAssessment assess(const PathSet& paths);

/// Pretty-prints the assessment: summary counts plus one line per
/// non-identifiable node (identifiable nodes are summarized, not listed,
/// to keep the report short). Stable, diff-friendly output.
void print_assessment(const MonitoringAssessment& assessment,
                      std::ostream& os);

/// Status name ("identifiable" / "ambiguous" / "uncovered").
std::string to_string(NodeMonitoringStatus status);

}  // namespace splace
