// Word-parallel kernels for the two dominant greedy inner loops, with
// runtime CPU dispatch (DESIGN.md §14).
//
// Both kernels read PathArena planes and do pure integer set algebra, so the
// scalar and AVX2 variants are bit-identical by construction — dispatch is a
// speed knob, never a behavior knob. The active variant is resolved once per
// process from the CPU's feature flags and the SPLACE_FORCE_SCALAR override
// (util/cpu_features.hpp); tests and benches may pin a variant explicitly.
//
//   coverage_new_bits   |(∪ P(C_s,h)) ∖ covered| — the coverage gain — as a
//                       single fused pass over a set's sparse union row; the
//                       legacy path copies a dense scratch bitset, ORs every
//                       path, and popcounts twice.
//   split_signatures    the per-node path-incidence signatures that drive
//                       EquivalenceClasses::split_delta, emitted ascending
//                       by node id straight from the sparse word rows —
//                       no O(|N|) stamp arrays, no MeasurementPath chasing.
//                       Signatures are state-independent per set, so the
//                       arena runs this kernel once at intern time and
//                       stores the result as the set's signature plane;
//                       split_delta evaluations consume the stored span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "monitoring/path_arena.hpp"
#include "util/cpu_features.hpp"

namespace splace::kernels {

/// One (node, signature) pair produced by split_signatures: `sig` bit i is
/// set iff extra path i (the i-th row of the set) traverses `node`.
struct NodeSig {
  std::uint32_t node;
  std::uint64_t sig;
};

/// The dispatchable kernel table. All functions are pure (no global state).
struct Ops {
  KernelVariant variant;

  /// Σ popcount(union_masks[i] & ~covered[union_words[i]]) — the number of
  /// nodes the set would newly cover. `covered` must hold every indexed word.
  std::size_t (*coverage_new_bits)(const std::uint64_t* covered,
                                   const std::uint32_t* union_words,
                                   const std::uint64_t* union_masks,
                                   std::size_t n_entries);

  /// Emits (node, signature) for every node on at least one of the set's
  /// rows, ascending by node id, into `out` (cleared first). Allocation-free
  /// beyond `out`'s growth: rows are word-sorted, so a k-way merge groups
  /// the 64-node blocks without sort or scratch. Requires set_size <= 64.
  void (*split_signatures)(const PathArena& arena, std::uint32_t set,
                           std::vector<NodeSig>& out);
};

/// The scalar kernel table (always available).
const Ops& scalar_ops();

/// The AVX2 kernel table, or nullptr when this build/CPU cannot run it.
const Ops* avx2_ops();

/// The active table: AVX2 when supported and not overridden, else scalar.
/// Resolved once per process (after any force_variant_for_testing override).
const Ops& ops();

/// The variant ops() currently resolves to.
KernelVariant active_variant();

/// Test/bench hook: pin dispatch to a variant (throws ContractViolation if
/// unsupported), or pass nullopt to restore automatic resolution. Not
/// thread-safe against concurrent ops() callers — flip only between runs.
void force_variant_for_testing(std::optional<KernelVariant> variant);

}  // namespace splace::kernels
