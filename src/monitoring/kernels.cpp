#include "monitoring/kernels.hpp"

#include <atomic>
#include <bit>

#include "util/error.hpp"

namespace splace::kernels {

namespace {

std::size_t scalar_coverage_new_bits(const std::uint64_t* covered,
                                     const std::uint32_t* union_words,
                                     const std::uint64_t* union_masks,
                                     std::size_t n_entries) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_entries; ++i)
    total += static_cast<std::size_t>(
        std::popcount(union_masks[i] & ~covered[union_words[i]]));
  return total;
}

void scalar_split_signatures(const PathArena& arena, std::uint32_t set,
                             std::vector<NodeSig>& out) {
  const std::uint32_t* rows = arena.set_rows(set);
  const std::size_t k = arena.set_size(set);
  SPLACE_EXPECTS(k <= 64);

  // K-way merge over the rows' word-sorted sparse spans: every iteration
  // handles one 64-node block, ORing the masks of the rows that touch it
  // (cursor order == path-index order) and emitting one signature per set
  // bit of the block's union.
  const std::uint32_t* words[64];
  const std::uint64_t* masks[64];
  std::size_t cursor[64];
  std::size_t limit[64];
  for (std::size_t pi = 0; pi < k; ++pi) {
    words[pi] = arena.row_words(rows[pi]);
    masks[pi] = arena.row_masks(rows[pi]);
    cursor[pi] = 0;
    limit[pi] = arena.row_word_count(rows[pi]);
  }

  out.clear();
  // Per-block gather buffers: the masks and path indices of the rows
  // touching the current word, in path-index order.
  std::uint64_t block_masks[64];
  std::uint32_t block_pis[64];
  while (true) {
    std::uint32_t word = UINT32_MAX;
    for (std::size_t pi = 0; pi < k; ++pi)
      if (cursor[pi] < limit[pi] && words[pi][cursor[pi]] < word)
        word = words[pi][cursor[pi]];
    if (word == UINT32_MAX) break;

    std::size_t g = 0;
    std::uint64_t unioned = 0;
    for (std::size_t pi = 0; pi < k; ++pi) {
      if (cursor[pi] < limit[pi] && words[pi][cursor[pi]] == word) {
        const std::uint64_t mask = masks[pi][cursor[pi]++];
        unioned |= mask;
        block_masks[g] = mask;
        block_pis[g] = static_cast<std::uint32_t>(pi);
        ++g;
      }
    }

    std::uint64_t m = unioned;
    while (m != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(m));
      std::uint64_t sig = 0;
      for (std::size_t j = 0; j < g; ++j)
        sig |= ((block_masks[j] >> bit) & 1u) << block_pis[j];
      out.push_back(NodeSig{word * 64 + bit, sig});
      m &= m - 1;
    }
  }
}

constexpr Ops kScalarOps{KernelVariant::Scalar, &scalar_coverage_new_bits,
                         &scalar_split_signatures};

const Ops* resolve_auto() {
  if (!scalar_forced_by_env() && avx2_ops() != nullptr) return avx2_ops();
  return &kScalarOps;
}

std::atomic<const Ops*> g_ops{nullptr};

}  // namespace

const Ops& scalar_ops() { return kScalarOps; }

const Ops& ops() {
  const Ops* table = g_ops.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = resolve_auto();
    g_ops.store(table, std::memory_order_release);
  }
  return *table;
}

KernelVariant active_variant() { return ops().variant; }

void force_variant_for_testing(std::optional<KernelVariant> variant) {
  if (!variant.has_value()) {
    g_ops.store(resolve_auto(), std::memory_order_release);
    return;
  }
  if (*variant == KernelVariant::Scalar) {
    g_ops.store(&kScalarOps, std::memory_order_release);
    return;
  }
  const Ops* avx2 = avx2_ops();
  if (avx2 == nullptr)
    throw ContractViolation("AVX2 kernels unavailable on this build/CPU");
  g_ops.store(avx2, std::memory_order_release);
}

}  // namespace splace::kernels
