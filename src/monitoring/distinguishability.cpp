#include "monitoring/distinguishability.hpp"

namespace splace {

std::size_t distinguishability(const SignatureGroups& groups) {
  const std::size_t total = groups.total_sets();
  std::size_t pairs = total * (total - 1) / 2;
  for (std::size_t g = 0; g < groups.group_count(); ++g) {
    const std::size_t size = groups.group(g).size();
    pairs -= size * (size - 1) / 2;
  }
  return pairs;
}

std::size_t distinguishability(const PathSet& paths, std::size_t k) {
  return distinguishability(SignatureGroups(paths, k));
}

std::size_t uncertainty_of(const PathSet& paths, std::size_t k,
                           const std::vector<NodeId>& failure_set) {
  return SignatureGroups(paths, k).indistinguishable_count(paths, failure_set);
}

double average_uncertainty(const PathSet& paths, std::size_t k) {
  const SignatureGroups groups(paths, k);
  // Every member of a group of size m has m-1 indistinguishable peers.
  std::size_t total = 0;
  for (std::size_t g = 0; g < groups.group_count(); ++g) {
    const std::size_t size = groups.group(g).size();
    total += size * (size - 1);
  }
  return static_cast<double>(total) /
         static_cast<double>(groups.total_sets());
}

double lemma3_closed_form(const PathSet& paths, std::size_t k) {
  const SignatureGroups groups(paths, k);
  const auto total = static_cast<double>(groups.total_sets());
  const double all_pairs = total * (total - 1) / 2;
  const auto dk = static_cast<double>(distinguishability(groups));
  return 2.0 / total * (all_pairs - dk);
}

}  // namespace splace
