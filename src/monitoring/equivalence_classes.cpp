#include "monitoring/equivalence_classes.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

EquivalenceClasses::SplitScratch::SplitScratch(std::size_t node_count) {
  sig.resize(node_count);
  sig_stamp.resize(node_count, 0);
  touched.reserve(node_count);
  groups.reserve(node_count);
  class_stamp.resize(node_count + 1, 0);  // ≤ node_count + 1 classes ever
  class_head.resize(node_count + 1);
  slots.reserve(256);
  touched_classes.reserve(128);
}

EquivalenceClasses::EquivalenceClasses(std::size_t node_count)
    : node_count_(node_count), class_index_(node_count + 1, 0) {
  std::vector<NodeId> all(node_count + 1);
  for (std::size_t x = 0; x <= node_count; ++x)
    all[x] = static_cast<NodeId>(x);
  classes_.push_back(std::move(all));
}

void EquivalenceClasses::check_vertex(NodeId x) const {
  SPLACE_EXPECTS(x <= node_count_);
}

void EquivalenceClasses::add_path(const MeasurementPath& path) {
  SPLACE_EXPECTS(path.node_universe() == node_count_);
  // Only classes containing at least one path node can split; find them via
  // the path's (short) node list instead of scanning all classes.
  std::vector<std::size_t> touched;
  for (NodeId v : path.nodes()) {
    const std::size_t ci = class_index_[v];
    if (std::find(touched.begin(), touched.end(), ci) == touched.end())
      touched.push_back(ci);
  }
  for (std::size_t ci : touched) {
    std::vector<NodeId>& cls = classes_[ci];
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (NodeId x : cls) {
      // v0 (x == node_count_) is never on a path.
      if (x < node_count_ && path.traverses(x))
        inside.push_back(x);
      else
        outside.push_back(x);
    }
    if (inside.empty() || outside.empty()) continue;  // no split
    cls = std::move(inside);
    // <= node_count_ + 1 classes ever, so the index always fits 32 bits.
    const auto new_index = static_cast<std::uint32_t>(classes_.size());
    for (NodeId x : outside) class_index_[x] = new_index;
    classes_.push_back(std::move(outside));
  }
}

void EquivalenceClasses::add_paths(const PathSet& paths) {
  for (const MeasurementPath& p : paths.paths()) add_path(p);
}

SplitDelta EquivalenceClasses::split_delta(const PathSet& extra,
                                           SplitScratch& scratch) const {
  SPLACE_EXPECTS(extra.node_count() == node_count_);
  SPLACE_EXPECTS(extra.size() <= 64);

  // Stamp-based validity: a signature is live iff its stamp matches the
  // current call, so nothing needs zeroing between calls. On (unlikely)
  // stamp wrap-around, zero every stamp array once — the counter is shared
  // with the arena overload's class stamps — and restart the epoch.
  scratch.sig.resize(node_count_);
  scratch.sig_stamp.resize(node_count_, 0);
  if (++scratch.stamp == 0) {
    std::fill(scratch.sig_stamp.begin(), scratch.sig_stamp.end(), 0u);
    std::fill(scratch.class_stamp.begin(), scratch.class_stamp.end(), 0u);
    scratch.stamp = 1;
  }
  const std::uint32_t stamp = scratch.stamp;

  // Signature of node v = bitmask of the extra paths traversing v. Members
  // of a class stay together iff they share a signature; every untouched
  // member (v0 included — it is never on a path) implicitly carries
  // signature 0, so the whole computation only ever visits path nodes:
  // O(Σ|p| log Σ|p|) per call, independent of class sizes.
  scratch.touched.clear();
  for (std::size_t pi = 0; pi < extra.size(); ++pi) {
    for (NodeId v : extra[pi].nodes()) {
      if (scratch.sig_stamp[v] != stamp) {
        scratch.sig_stamp[v] = stamp;
        scratch.sig[v] = 0;
        scratch.touched.push_back(v);
      }
      scratch.sig[v] |= std::uint64_t{1} << pi;
    }
  }
  scratch.groups.clear();
  for (NodeId v : scratch.touched)
    scratch.groups.emplace_back(class_index_[v], scratch.sig[v]);
  std::sort(scratch.groups.begin(), scratch.groups.end());
  return count_groups(scratch);
}

SplitDelta EquivalenceClasses::split_delta(ArenaPathsRef extra,
                                           SplitScratch& scratch) const {
  SPLACE_EXPECTS(extra.arena != nullptr);
  SPLACE_EXPECTS(extra.arena->node_count() == node_count_);
  SPLACE_EXPECTS(extra.size() <= 64);

  // The arena precomputed each touched node's extra-path incidence
  // signature at intern time (same bit positions as the PathSet overload:
  // set rows preserve PathSet::add order), so the hot path is pure
  // grouping. Group sort-free with a stamped per-class chain of
  // (signature, count) slots: per pair, one class_index_ lookup and a scan
  // of the class's few distinct signatures — cheaper than sorting the pair
  // list every evaluation, and order never matters to the counts.
  const PathArena& arena = *extra.arena;
  const std::size_t n_pairs = arena.set_sig_count(extra.set);
  const std::uint32_t* nodes = arena.set_sig_nodes(extra.set);
  const std::uint64_t* sigs = arena.set_sig_values(extra.set);

  scratch.class_stamp.resize(node_count_ + 1, 0);
  scratch.class_head.resize(node_count_ + 1);
  if (++scratch.stamp == 0) {
    std::fill(scratch.sig_stamp.begin(), scratch.sig_stamp.end(), 0u);
    std::fill(scratch.class_stamp.begin(), scratch.class_stamp.end(), 0u);
    scratch.stamp = 1;
  }
  const std::uint32_t stamp = scratch.stamp;

  scratch.slots.clear();
  scratch.touched_classes.clear();
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const std::size_t ci = class_index_[nodes[i]];
    if (scratch.class_stamp[ci] != stamp) {
      scratch.class_stamp[ci] = stamp;
      scratch.class_head[ci] = UINT32_MAX;
      scratch.touched_classes.push_back(ci);
    }
    const std::uint64_t sig = sigs[i];
    std::uint32_t it = scratch.class_head[ci];
    for (; it != UINT32_MAX; it = scratch.slots[it].next)
      if (scratch.slots[it].sig == sig) {
        ++scratch.slots[it].count;
        break;
      }
    if (it == UINT32_MAX) {
      scratch.slots.push_back(
          SplitScratch::SigCount{sig, 1, scratch.class_head[ci]});
      scratch.class_head[ci] =
          static_cast<std::uint32_t>(scratch.slots.size() - 1);
    }
  }

  // Identical arithmetic to count_groups — each (class, signature) slot is
  // one post-split group, exactly the runs the sorted tail would count.
  const std::size_t v0_class = class_index_[virtual_node()];
  SplitDelta delta;
  for (std::size_t ci : scratch.touched_classes) {
    const std::size_t class_size = classes_[ci].size();
    std::size_t touched_in_class = 0;
    std::size_t same_sig_pairs = 0;
    std::size_t singleton_runs = 0;
    for (std::uint32_t it = scratch.class_head[ci]; it != UINT32_MAX;
         it = scratch.slots[it].next) {
      const std::size_t run = scratch.slots[it].count;
      touched_in_class += run;
      same_sig_pairs += run * (run - 1) / 2;
      if (run == 1) ++singleton_runs;
    }
    if (class_size == 1) continue;  // singletons cannot split further
    const std::size_t zero_group = class_size - touched_in_class;
    same_sig_pairs += zero_group * (zero_group - 1) / 2;
    delta.newly_distinguishable +=
        class_size * (class_size - 1) / 2 - same_sig_pairs;
    delta.newly_identifiable += singleton_runs;
    if (zero_group == 1 && ci != v0_class) ++delta.newly_identifiable;
  }
  return delta;
}

SplitDelta EquivalenceClasses::count_groups(const SplitScratch& scratch) const {
  const std::size_t v0_class = class_index_[virtual_node()];
  SplitDelta delta;
  for (std::size_t i = 0; i < scratch.groups.size();) {
    const std::size_t ci = scratch.groups[i].first;
    const std::size_t class_size = classes_[ci].size();
    // Runs of equal (class, signature) are the touched post-split groups.
    std::size_t touched_in_class = 0;
    std::size_t same_sig_pairs = 0;
    std::size_t singleton_runs = 0;
    std::size_t j = i;
    while (j < scratch.groups.size() && scratch.groups[j].first == ci) {
      std::size_t r = j;
      while (r < scratch.groups.size() && scratch.groups[r].first == ci &&
             scratch.groups[r].second == scratch.groups[j].second)
        ++r;
      const std::size_t run = r - j;
      touched_in_class += run;
      same_sig_pairs += run * (run - 1) / 2;
      if (run == 1) ++singleton_runs;
      j = r;
    }
    i = j;
    if (class_size == 1) continue;  // singletons cannot split further
    // The untouched remainder of the class is one more post-split group.
    const std::size_t zero_group = class_size - touched_in_class;
    same_sig_pairs += zero_group * (zero_group - 1) / 2;
    delta.newly_distinguishable +=
        class_size * (class_size - 1) / 2 - same_sig_pairs;
    // A size->1 class had no identifiable member before, so every new
    // singleton group is newly identifiable: touched singleton runs are
    // always real nodes; the untouched remainder only counts when it is a
    // lone real node (not v0, which never leaves the untouched group).
    delta.newly_identifiable += singleton_runs;
    if (zero_group == 1 && ci != v0_class) ++delta.newly_identifiable;
  }
  return delta;
}

const std::vector<NodeId>& EquivalenceClasses::class_of(NodeId x) const {
  check_vertex(x);
  return classes_[class_index_[x]];
}

std::size_t EquivalenceClasses::class_size(NodeId x) const {
  return class_of(x).size();
}

bool EquivalenceClasses::indistinguishable(NodeId v, NodeId w) const {
  check_vertex(v);
  check_vertex(w);
  return class_index_[v] == class_index_[w];
}

std::size_t EquivalenceClasses::identifiable_count() const {
  std::size_t count = 0;
  for (const auto& cls : classes_)
    if (cls.size() == 1 && cls.front() != virtual_node()) ++count;
  return count;
}

std::size_t EquivalenceClasses::distinguishable_pairs() const {
  const std::size_t m = node_count_ + 1;
  std::size_t total = m * (m - 1) / 2;
  for (const auto& cls : classes_) total -= cls.size() * (cls.size() - 1) / 2;
  return total;
}

std::size_t EquivalenceClasses::degree_of_uncertainty(NodeId x) const {
  return class_size(x) - 1;
}

Histogram EquivalenceClasses::uncertainty_distribution() const {
  Histogram hist;
  for (const auto& cls : classes_) hist.add(cls.size() - 1, cls.size());
  return hist;
}

}  // namespace splace
