#include "monitoring/equivalence_classes.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

EquivalenceClasses::EquivalenceClasses(std::size_t node_count)
    : node_count_(node_count), class_index_(node_count + 1, 0) {
  std::vector<NodeId> all(node_count + 1);
  for (std::size_t x = 0; x <= node_count; ++x)
    all[x] = static_cast<NodeId>(x);
  classes_.push_back(std::move(all));
}

void EquivalenceClasses::check_vertex(NodeId x) const {
  SPLACE_EXPECTS(x <= node_count_);
}

void EquivalenceClasses::add_path(const MeasurementPath& path) {
  SPLACE_EXPECTS(path.node_universe() == node_count_);
  // Only classes containing at least one path node can split; find them via
  // the path's (short) node list instead of scanning all classes.
  std::vector<std::size_t> touched;
  for (NodeId v : path.nodes()) {
    const std::size_t ci = class_index_[v];
    if (std::find(touched.begin(), touched.end(), ci) == touched.end())
      touched.push_back(ci);
  }
  for (std::size_t ci : touched) {
    std::vector<NodeId>& cls = classes_[ci];
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (NodeId x : cls) {
      // v0 (x == node_count_) is never on a path.
      if (x < node_count_ && path.traverses(x))
        inside.push_back(x);
      else
        outside.push_back(x);
    }
    if (inside.empty() || outside.empty()) continue;  // no split
    cls = std::move(inside);
    const std::size_t new_index = classes_.size();
    for (NodeId x : outside) class_index_[x] = new_index;
    classes_.push_back(std::move(outside));
  }
}

void EquivalenceClasses::add_paths(const PathSet& paths) {
  for (const MeasurementPath& p : paths.paths()) add_path(p);
}

const std::vector<NodeId>& EquivalenceClasses::class_of(NodeId x) const {
  check_vertex(x);
  return classes_[class_index_[x]];
}

std::size_t EquivalenceClasses::class_size(NodeId x) const {
  return class_of(x).size();
}

bool EquivalenceClasses::indistinguishable(NodeId v, NodeId w) const {
  check_vertex(v);
  check_vertex(w);
  return class_index_[v] == class_index_[w];
}

std::size_t EquivalenceClasses::identifiable_count() const {
  std::size_t count = 0;
  for (const auto& cls : classes_)
    if (cls.size() == 1 && cls.front() != virtual_node()) ++count;
  return count;
}

std::size_t EquivalenceClasses::distinguishable_pairs() const {
  const std::size_t m = node_count_ + 1;
  std::size_t total = m * (m - 1) / 2;
  for (const auto& cls : classes_) total -= cls.size() * (cls.size() - 1) / 2;
  return total;
}

std::size_t EquivalenceClasses::degree_of_uncertainty(NodeId x) const {
  return class_size(x) - 1;
}

Histogram EquivalenceClasses::uncertainty_distribution() const {
  Histogram hist;
  for (const auto& cls : classes_) hist.add(cls.size() - 1, cls.size());
  return hist;
}

}  // namespace splace
