#include "monitoring/set_cover.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace splace {

std::optional<std::vector<std::size_t>> greedy_set_cover(
    const DynamicBitset& universe,
    const std::vector<DynamicBitset>& candidates) {
  DynamicBitset uncovered = universe;
  std::vector<std::size_t> chosen;
  while (uncovered.any()) {
    std::size_t best = candidates.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t gain = uncovered.intersection_count(candidates[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == candidates.size()) return std::nullopt;  // uncoverable
    chosen.push_back(best);
    uncovered.subtract(candidates[best]);
  }
  return chosen;
}

std::size_t minimum_set_cover_size(
    const DynamicBitset& universe,
    const std::vector<DynamicBitset>& candidates) {
  if (universe.none()) return 0;
  const std::size_t m = candidates.size();
  SPLACE_EXPECTS(m < 8 * sizeof(std::size_t));
  std::size_t best = kUncoverable;
  for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
    const auto size = static_cast<std::size_t>(std::popcount(mask));
    if (size >= best) continue;
    DynamicBitset covered(universe.size());
    for (std::size_t i = 0; i < m; ++i)
      if ((mask >> i) & 1u) covered |= candidates[i];
    if (universe.is_subset_of(covered)) best = size;
  }
  return best;
}

namespace {
std::size_t gsc_from_incidence(NodeId v,
                               const std::vector<DynamicBitset>& incidence) {
  const DynamicBitset& universe = incidence[v];
  if (universe.none()) return 0;
  std::vector<DynamicBitset> candidates;
  candidates.reserve(incidence.size() - 1);
  for (NodeId w = 0; w < incidence.size(); ++w)
    if (w != v) candidates.push_back(incidence[w]);
  const auto cover = greedy_set_cover(universe, candidates);
  return cover ? cover->size() : kUncoverable;
}
}  // namespace

std::size_t gsc(NodeId v, const PathSet& paths) {
  SPLACE_EXPECTS(v < paths.node_count());
  return gsc_from_incidence(v, paths.node_incidence());
}

std::vector<std::size_t> gsc_all(const PathSet& paths) {
  const std::vector<DynamicBitset> incidence = paths.node_incidence();
  std::vector<std::size_t> out(paths.node_count());
  for (NodeId v = 0; v < paths.node_count(); ++v)
    out[v] = gsc_from_incidence(v, incidence);
  return out;
}

std::size_t msc_exact(NodeId v, const PathSet& paths) {
  SPLACE_EXPECTS(v < paths.node_count());
  const std::vector<DynamicBitset> incidence = paths.node_incidence();
  if (incidence[v].none()) return 0;
  std::vector<DynamicBitset> candidates;
  for (NodeId w = 0; w < paths.node_count(); ++w)
    if (w != v) candidates.push_back(incidence[w]);
  return minimum_set_cover_size(incidence[v], candidates);
}

IdentifiabilityBounds identifiability_bounds(const PathSet& paths,
                                             std::size_t k) {
  IdentifiabilityBounds bounds;
  const std::vector<DynamicBitset> incidence = paths.node_incidence();
  for (NodeId v = 0; v < paths.node_count(); ++v) {
    const std::size_t g = gsc_from_incidence(v, incidence);
    const std::size_t pv = incidence[v].count();
    if (g == kUncoverable) {
      if (pv > 0) {
        ++bounds.lower;
        ++bounds.greedy;
        ++bounds.upper;
      }
      continue;
    }
    const double ratio = std::log(static_cast<double>(std::max<std::size_t>(
                             pv, 1))) + 1.0;
    if (static_cast<double>(g) / ratio >= static_cast<double>(k + 1))
      ++bounds.lower;
    if (g >= k + 1) ++bounds.greedy;
    if (g >= k) ++bounds.upper;
  }
  return bounds;
}

}  // namespace splace
