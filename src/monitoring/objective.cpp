#include "monitoring/objective.hpp"

#include "monitoring/coverage.hpp"
#include "monitoring/distinguishability.hpp"
#include "monitoring/equivalence_classes.hpp"
#include "monitoring/failure_partition.hpp"
#include "monitoring/identifiability.hpp"
#include "monitoring/kernels.hpp"
#include "util/error.hpp"

namespace splace {

std::string to_string(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::Coverage: return "coverage";
    case ObjectiveKind::Identifiability: return "identifiability";
    case ObjectiveKind::Distinguishability: return "distinguishability";
  }
  return "?";
}

namespace {

class CoverageState final : public ObjectiveState {
 public:
  explicit CoverageState(std::size_t node_count)
      : covered_(node_count), scratch_(node_count) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<CoverageState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    covered_ |= path.node_set();
  }

  double value() const override {
    return static_cast<double>(covered_.count());
  }

  using ObjectiveState::gain;

  double gain(const PathSet& extra) const override {
    // New-bit popcount against a reusable scratch union: the copy-assign
    // reuses scratch_'s word storage, so the hot path never allocates.
    scratch_ = covered_;
    for (const MeasurementPath& p : extra.paths()) scratch_ |= p.node_set();
    return static_cast<double>(scratch_.count() - covered_.count());
  }

  double gain(ArenaPathsRef extra) const override {
    // One fused pass over the set's precomputed sparse union row — no
    // scratch copy, no per-path OR, no second popcount.
    SPLACE_EXPECTS(extra.arena->node_count() == covered_.size());
    return static_cast<double>(kernels::ops().coverage_new_bits(
        covered_.word_data(), extra.arena->set_union_words(extra.set),
        extra.arena->set_union_masks(extra.set),
        extra.arena->set_union_word_count(extra.set)));
  }

 private:
  DynamicBitset covered_;
  mutable DynamicBitset scratch_;
};

/// k = 1 identifiability/distinguishability on the incremental partition.
class EquivalenceState final : public ObjectiveState {
 public:
  EquivalenceState(std::size_t node_count, ObjectiveKind kind)
      : kind_(kind), classes_(node_count), scratch_(node_count) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<EquivalenceState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    classes_.add_path(path);
  }

  double value() const override {
    return kind_ == ObjectiveKind::Identifiability
               ? static_cast<double>(classes_.identifiable_count())
               : static_cast<double>(classes_.distinguishable_pairs());
  }

  using ObjectiveState::gain;

  double gain(const PathSet& extra) const override {
    // Class-split deltas on scratch buffers — no partition copy. The
    // signature word limits this to 64 extra paths; larger sets take the
    // generic clone-based fallback. Algorithm 2's per-candidate sets DO
    // cross that line when a service has more than 64 clients (one path
    // per client), so the fallback is a live path, not dead code.
    if (extra.size() > 64) return ObjectiveState::gain(extra);
    const SplitDelta delta = classes_.split_delta(extra, scratch_);
    return delta_value(delta);
  }

  double gain(ArenaPathsRef extra) const override {
    if (extra.size() > 64) return ObjectiveState::gain(extra);
    const SplitDelta delta = classes_.split_delta(extra, scratch_);
    return delta_value(delta);
  }

 private:
  ObjectiveKind kind_;
  EquivalenceClasses classes_;
  mutable EquivalenceClasses::SplitScratch scratch_;

  double delta_value(const SplitDelta& delta) const {
    return kind_ == ObjectiveKind::Identifiability
               ? static_cast<double>(delta.newly_identifiable)
               : static_cast<double>(delta.newly_distinguishable);
  }
};

/// General-k exact state on the incremental failure-set partition
/// (O(|F_k|) per added path instead of full re-enumeration per evaluation).
class EnumerationState final : public ObjectiveState {
 public:
  EnumerationState(std::size_t node_count, ObjectiveKind kind, std::size_t k)
      : kind_(kind), partition_(node_count, k) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<EnumerationState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    partition_.add_path(path);
  }

  double value() const override {
    return kind_ == ObjectiveKind::Identifiability
               ? static_cast<double>(partition_.identifiability())
               : static_cast<double>(partition_.distinguishability());
  }

 private:
  ObjectiveKind kind_;
  FailureSetPartition partition_;
};

}  // namespace

std::unique_ptr<ObjectiveState> make_objective_state(ObjectiveKind kind,
                                                     std::size_t node_count,
                                                     std::size_t k) {
  SPLACE_EXPECTS(k >= 1);
  switch (kind) {
    case ObjectiveKind::Coverage:
      return std::make_unique<CoverageState>(node_count);
    case ObjectiveKind::Identifiability:
    case ObjectiveKind::Distinguishability:
      if (k == 1) return std::make_unique<EquivalenceState>(node_count, kind);
      return std::make_unique<EnumerationState>(node_count, kind, k);
  }
  throw ContractViolation("unknown objective kind");
}

double evaluate_objective(ObjectiveKind kind, const PathSet& paths,
                          std::size_t k) {
  const std::unique_ptr<ObjectiveState> state =
      make_objective_state(kind, paths.node_count(), k);
  state->add_paths(paths);
  return state->value();
}

}  // namespace splace
