#include "monitoring/path_arena.hpp"

#include <algorithm>
#include <bit>

#include "monitoring/kernels.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

/// FNV-1a over a (word, mask) sequence — the row/set content hashes.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  h ^= value;
  return h * 1099511628211ull;
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

}  // namespace

PathSet ArenaPathsRef::materialize() const {
  return arena->materialize_set(set);
}

PathArena::PathArena(std::size_t node_count)
    : node_count_(node_count), words_per_row_((node_count + 63) / 64) {
  build_masks_.assign(words_per_row_, 0);
}

std::uint32_t PathArena::intern_path(const std::vector<NodeId>& nodes) {
  SPLACE_EXPECTS(!nodes.empty());
  // Accumulate the node set into the dense scratch, tracking touched words;
  // the scratch is wiped word-by-word afterwards so it stays all-zero.
  build_words_.clear();
  for (NodeId v : nodes) {
    SPLACE_EXPECTS(v < node_count_);
    const std::uint32_t w = v / 64;
    if (build_masks_[w] == 0) build_words_.push_back(w);
    build_masks_[w] |= std::uint64_t{1} << (v % 64);
  }
  std::sort(build_words_.begin(), build_words_.end());

  std::uint64_t hash = kFnvSeed;
  for (std::uint32_t w : build_words_) {
    hash = fnv1a(hash, w);
    hash = fnv1a(hash, build_masks_[w]);
  }

  std::uint32_t row = 0;
  bool found = false;
  std::vector<std::uint32_t>& bucket = rows_by_hash_[hash];
  for (std::uint32_t candidate : bucket) {
    const std::size_t n = row_word_count(candidate);
    if (n != build_words_.size()) continue;
    bool equal = true;
    const std::uint32_t* words = row_words(candidate);
    const std::uint64_t* masks = row_masks(candidate);
    for (std::size_t i = 0; i < n && equal; ++i)
      equal = words[i] == build_words_[i] &&
              masks[i] == build_masks_[build_words_[i]];
    if (equal) {
      row = candidate;
      found = true;
      break;
    }
  }
  if (!found) {
    row = static_cast<std::uint32_t>(row_count());
    for (std::uint32_t w : build_words_) {
      row_words_.push_back(w);
      row_masks_.push_back(build_masks_[w]);
    }
    row_offsets_.push_back(static_cast<std::uint32_t>(row_words_.size()));
    bucket.push_back(row);
  }
  for (std::uint32_t w : build_words_) build_masks_[w] = 0;
  return row;
}

std::uint32_t PathArena::intern_set(const std::vector<std::uint32_t>& rows) {
  SPLACE_EXPECTS(!rows.empty());
  // Collapse duplicate rows, preserving first-occurrence order — the same
  // dedup PathSet::add performs (equal node set == equal row id).
  std::vector<std::uint32_t> distinct;
  distinct.reserve(rows.size());
  for (std::uint32_t r : rows) {
    check_row(r);
    if (std::find(distinct.begin(), distinct.end(), r) == distinct.end())
      distinct.push_back(r);
  }

  std::uint64_t hash = kFnvSeed;
  for (std::uint32_t r : distinct) hash = fnv1a(hash, r);
  std::vector<std::uint32_t>& bucket = sets_by_hash_[hash];
  for (std::uint32_t candidate : bucket) {
    if (set_size(candidate) != distinct.size()) continue;
    const std::uint32_t* stored = set_rows(candidate);
    if (std::equal(distinct.begin(), distinct.end(), stored)) return candidate;
  }

  const auto set = static_cast<std::uint32_t>(set_count());
  set_rows_.insert(set_rows_.end(), distinct.begin(), distinct.end());
  set_offsets_.push_back(static_cast<std::uint32_t>(set_rows_.size()));
  bucket.push_back(set);

  // Union row: k-way merge of the member rows' sorted sparse words.
  std::vector<std::size_t> cursor(distinct.size());
  std::vector<std::size_t> limit(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    cursor[i] = row_offsets_[distinct[i]];
    limit[i] = row_offsets_[distinct[i] + 1];
  }
  while (true) {
    std::uint32_t next = UINT32_MAX;
    for (std::size_t i = 0; i < distinct.size(); ++i)
      if (cursor[i] < limit[i]) next = std::min(next, row_words_[cursor[i]]);
    if (next == UINT32_MAX) break;
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < distinct.size(); ++i)
      if (cursor[i] < limit[i] && row_words_[cursor[i]] == next)
        mask |= row_masks_[cursor[i]++];
    set_union_words_.push_back(next);
    set_union_masks_.push_back(mask);
  }
  set_union_offsets_.push_back(
      static_cast<std::uint32_t>(set_union_words_.size()));

  // Signature plane: the per-node path-incidence signatures are a pure
  // function of the set's rows, so compute them once here (through the
  // dispatched word-parallel kernel — both variants are bit-identical) and
  // let every split_delta evaluation consume the stored span directly.
  if (distinct.size() <= 64) {
    std::vector<kernels::NodeSig> sigs;
    kernels::ops().split_signatures(*this, set, sigs);
    for (const kernels::NodeSig& ns : sigs) {
      set_sig_nodes_.push_back(ns.node);
      set_sig_values_.push_back(ns.sig);
    }
  }
  set_sig_offsets_.push_back(
      static_cast<std::uint32_t>(set_sig_nodes_.size()));
  return set;
}

void PathArena::check_row(std::uint32_t row) const {
  SPLACE_EXPECTS(row < row_count());
}

void PathArena::check_set(std::uint32_t set) const {
  SPLACE_EXPECTS(set < set_count());
}

std::size_t PathArena::row_word_count(std::uint32_t row) const {
  check_row(row);
  return row_offsets_[row + 1] - row_offsets_[row];
}

const std::uint32_t* PathArena::row_words(std::uint32_t row) const {
  check_row(row);
  return row_words_.data() + row_offsets_[row];
}

const std::uint64_t* PathArena::row_masks(std::uint32_t row) const {
  check_row(row);
  return row_masks_.data() + row_offsets_[row];
}

std::size_t PathArena::row_node_count(std::uint32_t row) const {
  const std::uint64_t* masks = row_masks(row);
  const std::size_t n = row_word_count(row);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(std::popcount(masks[i]));
  return total;
}

std::vector<NodeId> PathArena::row_nodes(std::uint32_t row) const {
  const std::uint32_t* words = row_words(row);
  const std::uint64_t* masks = row_masks(row);
  const std::size_t n = row_word_count(row);
  std::vector<NodeId> nodes;
  nodes.reserve(row_node_count(row));
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t m = masks[i];
    while (m != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(m));
      nodes.push_back(words[i] * 64 + bit);
      m &= m - 1;
    }
  }
  return nodes;
}

std::size_t PathArena::set_size(std::uint32_t set) const {
  check_set(set);
  return set_offsets_[set + 1] - set_offsets_[set];
}

const std::uint32_t* PathArena::set_rows(std::uint32_t set) const {
  check_set(set);
  return set_rows_.data() + set_offsets_[set];
}

std::size_t PathArena::set_union_word_count(std::uint32_t set) const {
  check_set(set);
  return set_union_offsets_[set + 1] - set_union_offsets_[set];
}

const std::uint32_t* PathArena::set_union_words(std::uint32_t set) const {
  check_set(set);
  return set_union_words_.data() + set_union_offsets_[set];
}

const std::uint64_t* PathArena::set_union_masks(std::uint32_t set) const {
  check_set(set);
  return set_union_masks_.data() + set_union_offsets_[set];
}

std::size_t PathArena::set_sig_count(std::uint32_t set) const {
  check_set(set);
  return set_sig_offsets_[set + 1] - set_sig_offsets_[set];
}

const std::uint32_t* PathArena::set_sig_nodes(std::uint32_t set) const {
  check_set(set);
  return set_sig_nodes_.data() + set_sig_offsets_[set];
}

const std::uint64_t* PathArena::set_sig_values(std::uint32_t set) const {
  check_set(set);
  return set_sig_values_.data() + set_sig_offsets_[set];
}

PathSet PathArena::materialize_set(std::uint32_t set) const {
  PathSet paths(node_count_);
  const std::uint32_t* rows = set_rows(set);
  const std::size_t n = set_size(set);
  for (std::size_t i = 0; i < n; ++i)
    paths.add(MeasurementPath(node_count_, row_nodes(rows[i])));
  SPLACE_ENSURES(paths.size() == n);  // distinct rows == distinct node sets
  return paths;
}

std::size_t PathArena::bytes() const {
  return row_offsets_.size() * sizeof(std::uint32_t) +
         row_words_.size() * sizeof(std::uint32_t) +
         row_masks_.size() * sizeof(std::uint64_t) +
         set_offsets_.size() * sizeof(std::uint32_t) +
         set_rows_.size() * sizeof(std::uint32_t) +
         set_union_offsets_.size() * sizeof(std::uint32_t) +
         set_union_words_.size() * sizeof(std::uint32_t) +
         set_union_masks_.size() * sizeof(std::uint64_t) +
         set_sig_offsets_.size() * sizeof(std::uint32_t) +
         set_sig_nodes_.size() * sizeof(std::uint32_t) +
         set_sig_values_.size() * sizeof(std::uint64_t);
}

}  // namespace splace
