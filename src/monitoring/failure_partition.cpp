#include "monitoring/failure_partition.hpp"

#include <algorithm>

#include "monitoring/failure_sets.hpp"
#include "util/error.hpp"

namespace splace {

FailureSetPartition::FailureSetPartition(std::size_t node_count,
                                         std::size_t k)
    : node_count_(node_count), k_(k) {
  for_each_failure_set(node_count, k, [this](const std::vector<NodeId>& f) {
    sets_.push_back(f);
  });
  std::vector<std::uint32_t> all(sets_.size());
  for (std::uint32_t i = 0; i < sets_.size(); ++i) all[i] = i;
  class_index_.assign(sets_.size(), 0);
  classes_.push_back(std::move(all));
}

void FailureSetPartition::add_path(const MeasurementPath& path) {
  SPLACE_EXPECTS(path.node_universe() == node_count_);
  const std::size_t original_classes = classes_.size();
  for (std::size_t c = 0; c < original_classes; ++c) {
    std::vector<std::uint32_t>& cls = classes_[c];
    std::vector<std::uint32_t> hit;
    std::vector<std::uint32_t> miss;
    for (std::uint32_t idx : cls) {
      bool intersects = false;
      for (NodeId v : sets_[idx]) {
        if (path.traverses(v)) {
          intersects = true;
          break;
        }
      }
      (intersects ? hit : miss).push_back(idx);
    }
    if (hit.empty() || miss.empty()) continue;
    cls = std::move(hit);
    const std::uint32_t new_index = static_cast<std::uint32_t>(classes_.size());
    for (std::uint32_t idx : miss) class_index_[idx] = new_index;
    classes_.push_back(std::move(miss));
  }
}

void FailureSetPartition::add_paths(const PathSet& paths) {
  for (const MeasurementPath& p : paths.paths()) add_path(p);
}

std::size_t FailureSetPartition::distinguishability() const {
  const std::size_t total = sets_.size();
  std::size_t pairs = total * (total - 1) / 2;
  for (const auto& cls : classes_) pairs -= cls.size() * (cls.size() - 1) / 2;
  return pairs;
}

std::size_t FailureSetPartition::identifiability() const {
  std::vector<bool> bad(node_count_, false);
  std::vector<std::size_t> occurrences(node_count_, 0);
  std::vector<NodeId> touched;
  for (const auto& cls : classes_) {
    if (cls.size() < 2) continue;
    touched.clear();
    for (std::uint32_t idx : cls) {
      for (NodeId v : sets_[idx]) {
        if (occurrences[v] == 0) touched.push_back(v);
        ++occurrences[v];
      }
    }
    for (NodeId v : touched) {
      if (occurrences[v] < cls.size()) bad[v] = true;
      occurrences[v] = 0;
    }
  }
  std::size_t count = 0;
  for (NodeId v = 0; v < node_count_; ++v)
    if (!bad[v]) ++count;
  return count;
}

std::size_t FailureSetPartition::find_set_index(
    const std::vector<NodeId>& failure_set) const {
  SPLACE_EXPECTS(failure_set.size() <= k_);
  SPLACE_EXPECTS(std::is_sorted(failure_set.begin(), failure_set.end()));
  // Enumeration is ordered by size then lexicographically; binary search
  // within the size stratum would work, but a linear scan is fine for the
  // sizes this structure targets. Keep it simple and verifiable.
  for (std::size_t i = 0; i < sets_.size(); ++i)
    if (sets_[i] == failure_set) return i;
  throw ContractViolation("failure set outside the enumerated F_k");
}

std::size_t FailureSetPartition::uncertainty_of(
    const std::vector<NodeId>& failure_set) const {
  const std::size_t idx = find_set_index(failure_set);
  return classes_[class_index_[idx]].size() - 1;
}

}  // namespace splace
