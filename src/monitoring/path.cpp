#include "monitoring/path.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

MeasurementPath::MeasurementPath(std::size_t node_count,
                                 const std::vector<NodeId>& nodes)
    : members_(node_count) {
  SPLACE_EXPECTS(!nodes.empty());
  for (NodeId v : nodes) {
    SPLACE_EXPECTS(v < node_count);
    members_.set(v);
  }
  sorted_nodes_.reserve(nodes.size());
  members_.for_each([this](std::size_t v) {
    sorted_nodes_.push_back(static_cast<NodeId>(v));
  });
}

bool PathSet::add(MeasurementPath path) {
  SPLACE_EXPECTS(path.node_universe() == node_count_);
  if (find(path) != paths_.size()) return false;
  by_hash_[path.node_set().hash()].push_back(paths_.size());
  paths_.push_back(std::move(path));
  return true;
}

bool PathSet::add_nodes(const std::vector<NodeId>& nodes) {
  return add(MeasurementPath(node_count_, nodes));
}

std::size_t PathSet::add_all(const PathSet& other) {
  SPLACE_EXPECTS(other.node_count_ == node_count_);
  std::size_t added = 0;
  for (const MeasurementPath& p : other.paths_)
    if (add(p)) ++added;
  return added;
}

bool PathSet::contains(const MeasurementPath& path) const {
  return find(path) != paths_.size();
}

std::size_t PathSet::find(const MeasurementPath& path) const {
  auto it = by_hash_.find(path.node_set().hash());
  if (it == by_hash_.end()) return paths_.size();
  for (std::size_t idx : it->second)
    if (paths_[idx] == path) return idx;
  return paths_.size();
}

std::vector<DynamicBitset> PathSet::node_incidence() const {
  std::vector<DynamicBitset> incidence(node_count_,
                                       DynamicBitset(paths_.size()));
  for (std::size_t i = 0; i < paths_.size(); ++i)
    for (NodeId v : paths_[i].nodes()) incidence[v].set(i);
  return incidence;
}

DynamicBitset PathSet::affected_paths(
    const std::vector<NodeId>& failure_set) const {
  DynamicBitset affected(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    for (NodeId v : failure_set) {
      SPLACE_EXPECTS(v < node_count_);
      if (paths_[i].traverses(v)) {
        affected.set(i);
        break;
      }
    }
  }
  return affected;
}

}  // namespace splace
