#include "monitoring/composite.hpp"

#include "monitoring/failure_sets.hpp"
#include "util/error.hpp"

namespace splace {

namespace {

/// C(|F_k|, 2) as a double (the k = 1 case reduces to C(|N|+1, 2)).
double max_pairs(std::size_t node_count, std::size_t k) {
  double total = 0;
  double binom = 1;
  for (std::size_t s = 0; s <= std::min(k, node_count); ++s) {
    total += binom;
    binom = binom * static_cast<double>(node_count - s) /
            static_cast<double>(s + 1);
  }
  return total * (total - 1) / 2.0;
}

class CompositeState final : public ObjectiveState {
 public:
  CompositeState(std::size_t node_count, std::size_t k,
                 const ObjectiveWeights& weights)
      : weights_(weights),
        node_scale_(1.0 / static_cast<double>(node_count)),
        pair_scale_(1.0 / max_pairs(node_count, k)),
        coverage_(make_objective_state(ObjectiveKind::Coverage, node_count,
                                       k)),
        identifiability_(make_objective_state(ObjectiveKind::Identifiability,
                                              node_count, k)),
        distinguishability_(make_objective_state(
            ObjectiveKind::Distinguishability, node_count, k)) {}

  CompositeState(const CompositeState& other)
      : weights_(other.weights_),
        node_scale_(other.node_scale_),
        pair_scale_(other.pair_scale_),
        coverage_(other.coverage_->clone()),
        identifiability_(other.identifiability_->clone()),
        distinguishability_(other.distinguishability_->clone()) {}

  std::unique_ptr<ObjectiveState> clone() const override {
    return std::make_unique<CompositeState>(*this);
  }

  void add_path(const MeasurementPath& path) override {
    // Only advance the components with non-zero weight — the others never
    // influence value() and identifiability is the expensive one.
    if (weights_.coverage > 0) coverage_->add_path(path);
    if (weights_.identifiability > 0) identifiability_->add_path(path);
    if (weights_.distinguishability > 0)
      distinguishability_->add_path(path);
  }

  double value() const override {
    double total = 0;
    if (weights_.coverage > 0)
      total += weights_.coverage * coverage_->value() * node_scale_;
    if (weights_.identifiability > 0)
      total +=
          weights_.identifiability * identifiability_->value() * node_scale_;
    if (weights_.distinguishability > 0)
      total += weights_.distinguishability *
               distinguishability_->value() * pair_scale_;
    return total;
  }

  // The blend is linear, so its marginal gain is the weighted sum of the
  // children's marginal gains — each an exact integer delta. Forwarding
  // reaches the children's scratch-based fast paths instead of cloning all
  // three states, and makes the two overloads bit-identical by construction
  // (identical weighted sums of identical integer deltas).
  using ObjectiveState::gain;

  double gain(const PathSet& extra) const override {
    return blended_gain(extra);
  }

  double gain(ArenaPathsRef extra) const override {
    return blended_gain(extra);
  }

 private:
  ObjectiveWeights weights_;
  double node_scale_;
  double pair_scale_;
  std::unique_ptr<ObjectiveState> coverage_;
  std::unique_ptr<ObjectiveState> identifiability_;
  std::unique_ptr<ObjectiveState> distinguishability_;

  template <typename Paths>
  double blended_gain(const Paths& extra) const {
    double total = 0;
    if (weights_.coverage > 0)
      total += weights_.coverage * coverage_->gain(extra) * node_scale_;
    if (weights_.identifiability > 0)
      total += weights_.identifiability * identifiability_->gain(extra) *
               node_scale_;
    if (weights_.distinguishability > 0)
      total += weights_.distinguishability *
               distinguishability_->gain(extra) * pair_scale_;
    return total;
  }
};

}  // namespace

std::unique_ptr<ObjectiveState> make_composite_objective_state(
    std::size_t node_count, std::size_t k, const ObjectiveWeights& weights) {
  SPLACE_EXPECTS(weights.valid());
  SPLACE_EXPECTS(k >= 1);
  SPLACE_EXPECTS(node_count >= 1);
  return std::make_unique<CompositeState>(node_count, k, weights);
}

double evaluate_composite(const PathSet& paths, std::size_t k,
                          const ObjectiveWeights& weights) {
  auto state =
      make_composite_objective_state(paths.node_count(), k, weights);
  state->add_paths(paths);
  return state->value();
}

}  // namespace splace
