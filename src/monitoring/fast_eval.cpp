#include "monitoring/fast_eval.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

FastK1Evaluator::FastK1Evaluator(
    std::size_t node_count, const std::vector<std::vector<PathSet>>& options)
    : node_count_(node_count), scratch_(node_count + 1) {
  std::size_t offset = 0;
  masks_.reserve(options.size());
  for (const std::vector<PathSet>& slot_options : options) {
    SPLACE_EXPECTS(!slot_options.empty());
    slot_bits_.push_back(offset);
    std::size_t width = 0;
    std::vector<std::vector<std::uint64_t>> slot_masks;
    slot_masks.reserve(slot_options.size());
    for (const PathSet& paths : slot_options) {
      SPLACE_EXPECTS(paths.node_count() == node_count);
      width = std::max(width, paths.size());
      std::vector<std::uint64_t> node_mask(node_count, 0);
      for (std::size_t pi = 0; pi < paths.size(); ++pi)
        for (NodeId v : paths[pi].nodes())
          node_mask[v] |= std::uint64_t{1} << (offset + pi);
      slot_masks.push_back(std::move(node_mask));
    }
    offset += width;
    SPLACE_EXPECTS(offset <= 64);
    masks_.push_back(std::move(slot_masks));
  }
}

FastK1Evaluator::Metrics FastK1Evaluator::evaluate(
    const std::vector<std::size_t>& choice) const {
  SPLACE_EXPECTS(choice.size() == slot_count());
  std::vector<std::uint64_t>& sigs = scratch_;
  std::fill(sigs.begin(), sigs.end(), 0);  // last entry stays 0: that is v0
  for (std::size_t slot = 0; slot < choice.size(); ++slot) {
    SPLACE_EXPECTS(choice[slot] < masks_[slot].size());
    const std::vector<std::uint64_t>& mask = masks_[slot][choice[slot]];
    for (std::size_t v = 0; v < node_count_; ++v) sigs[v] |= mask[v];
  }

  Metrics m;
  for (std::size_t v = 0; v < node_count_; ++v)
    if (sigs[v] != 0) ++m.coverage;

  std::sort(sigs.begin(), sigs.end());
  const std::size_t total = sigs.size();  // |N| + 1 vertices of Q
  std::size_t pairs = total * (total - 1) / 2;
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= total; ++i) {
    if (i == total || sigs[i] != sigs[run_start]) {
      const std::size_t run = i - run_start;
      pairs -= run * (run - 1) / 2;
      if (run == 1 && sigs[run_start] != 0) ++m.identifiability;
      run_start = i;
    }
  }
  m.distinguishability = pairs;
  return m;
}

}  // namespace splace
