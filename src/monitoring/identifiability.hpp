// Identifiability measure |S_k(P)| (paper Section II-B.2, Definition 2).
//
// A node v is k-identifiable iff every two failure sets of size ≤ k that
// differ in v are distinguishable — then v's state can always be determined
// as long as at most k nodes fail. Exact computation groups F_k by signature
// and looks for a "conflict" group containing both a set with v and a set
// without v. Scalable surrogates live in set_cover.hpp (GSC bounds); the
// k = 1 fast path lives in equivalence_classes.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/failure_sets.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// Exact set S_k(P) via failure-set enumeration (cost O(|F_k| (k + |P|))).
DynamicBitset identifiable_nodes(const PathSet& paths, std::size_t k);

/// Exact |S_k(P)|.
std::size_t identifiability(const PathSet& paths, std::size_t k);

/// Exact S_k reusing precomputed signature groups.
DynamicBitset identifiable_nodes(const SignatureGroups& groups,
                                 std::size_t node_count);

/// Single-node check straight from Definition 2 (quadratic in |F_k|; used by
/// tests as an independent oracle).
bool is_k_identifiable(NodeId v, const PathSet& paths, std::size_t k);

/// Set-level identifiability (Theorem 19 remark): a failure set F with
/// |F| ≤ k is k-identifiable iff no other failure set in F_k produces the
/// same path signature. Returns the number of F ∈ F_k that are *not*
/// k-identifiable.
std::size_t non_identifiable_failure_sets(const PathSet& paths, std::size_t k);

}  // namespace splace
