#include "monitoring/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "monitoring/failure_sets.hpp"
#include "util/error.hpp"

namespace splace {

std::vector<NodeId> sample_failure_set(std::size_t node_count, std::size_t k,
                                       Rng& rng) {
  SPLACE_EXPECTS(node_count >= 1);
  // Uniform over F_k: first choose the size with probability
  // C(n, s) / |F_k|, then a uniform s-subset.
  const std::size_t k_eff = std::min(k, node_count);
  std::vector<double> weights(k_eff + 1);
  double binom = 1;  // C(n, 0)
  for (std::size_t s = 0; s <= k_eff; ++s) {
    weights[s] = binom;
    binom = binom * static_cast<double>(node_count - s) /
            static_cast<double>(s + 1);
  }
  const std::size_t size = rng.weighted_index(weights);
  if (size == 0) return {};
  std::vector<NodeId> pool(node_count);
  for (NodeId v = 0; v < node_count; ++v) pool[v] = v;
  std::vector<NodeId> chosen = rng.sample(std::move(pool), size);
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

DistinguishabilityEstimate estimate_distinguishability(const PathSet& paths,
                                                       std::size_t k,
                                                       std::size_t samples,
                                                       Rng& rng) {
  SPLACE_EXPECTS(samples >= 1);
  SPLACE_EXPECTS(paths.node_count() >= 1);
  SPLACE_EXPECTS(k >= 1);  // k = 0 leaves a single candidate set (∅)

  std::size_t distinguishable = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<NodeId> a = sample_failure_set(paths.node_count(), k, rng);
    std::vector<NodeId> b;
    do {
      b = sample_failure_set(paths.node_count(), k, rng);
    } while (b == a);  // unordered pairs of *distinct* sets
    if (!(paths.affected_paths(a) == paths.affected_paths(b)))
      ++distinguishable;
  }

  DistinguishabilityEstimate estimate;
  estimate.samples = samples;
  estimate.fraction = static_cast<double>(distinguishable) /
                      static_cast<double>(samples);
  estimate.std_error = std::sqrt(
      estimate.fraction * (1.0 - estimate.fraction) /
      static_cast<double>(samples));

  // |F_k| in floating point (exact failure_set_count may saturate).
  double total = 0;
  double binom = 1;
  for (std::size_t s = 0; s <= std::min(k, paths.node_count()); ++s) {
    total += binom;
    binom = binom * static_cast<double>(paths.node_count() - s) /
            static_cast<double>(s + 1);
  }
  estimate.total_sets = total;
  estimate.estimated_pairs = estimate.fraction * total * (total - 1) / 2.0;
  return estimate;
}

}  // namespace splace
