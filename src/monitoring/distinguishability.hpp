// Distinguishability measure |D_k(P)| (paper Section II-B.3) and the
// localization-uncertainty quantities of Lemma 3.
//
// |D_k(P)| counts unordered pairs of failure sets in F_k whose observable
// path-state signatures differ. Exact computation groups F_k by signature:
// |D_k| = C(|F_k|, 2) − Σ_group C(|group|, 2). For k = 1 prefer
// EquivalenceClasses::distinguishable_pairs(), which is equivalent and
// incremental.
#pragma once

#include <cstddef>

#include "monitoring/failure_sets.hpp"
#include "monitoring/path.hpp"

namespace splace {

/// Exact |D_k(P)| via failure-set enumeration (cost O(|F_k| · |P|)).
std::size_t distinguishability(const PathSet& paths, std::size_t k);

/// Exact |D_k(P)| reusing precomputed signature groups.
std::size_t distinguishability(const SignatureGroups& groups);

/// |I_k(F; P)|: # failure sets of size ≤ k, other than F, indistinguishable
/// from F.
std::size_t uncertainty_of(const PathSet& paths, std::size_t k,
                           const std::vector<NodeId>& failure_set);

/// Average uncertainty (1/|F_k|) Σ_{F ∈ F_k} |I_k(F; P)| — the left side of
/// Lemma 3.
double average_uncertainty(const PathSet& paths, std::size_t k);

/// Lemma 3's closed form: (2/|F_k|) (C(|F_k|, 2) − |D_k(P)|).
double lemma3_closed_form(const PathSet& paths, std::size_t k);

}  // namespace splace
