// Literal implementation of the paper's Algorithm 1 ("Construct Equivalence
// Graph"): an adjacency-matrix graph Q over N ∪ {v0} that starts complete and
// loses the edge (v, w) as soon as some measurement path distinguishes the
// single-failure sets {v} and {w}.
//
// This is the paper-faithful O(|N|^2 |P|) reference; EquivalenceClasses is
// the optimized equivalent used by the placement algorithms. Tests verify
// they agree on every derived quantity.
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/path.hpp"
#include "util/bitset.hpp"
#include "util/stats.hpp"

namespace splace {

class EquivalenceGraph {
 public:
  /// Line 1 of Algorithm 1: complete graph over {v0} ∪ N.
  explicit EquivalenceGraph(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }
  NodeId virtual_node() const { return static_cast<NodeId>(node_count_); }

  /// Lines 3-6 of Algorithm 1 for one path.
  void add_path(const MeasurementPath& path);

  /// Runs Algorithm 1 over a whole path set.
  void add_paths(const PathSet& paths);

  /// Edge present in Q ⇔ {v} and {w} (or no-failure for v0) remain
  /// indistinguishable.
  bool has_edge(NodeId v, NodeId w) const;

  /// Degree of x in Q (the paper's degree of uncertainty).
  std::size_t degree(NodeId x) const;

  /// # edges currently in Q.
  std::size_t edge_count() const;

  /// |S_1(P)|: isolated vertices of Q excluding v0.
  std::size_t identifiable_count() const;

  /// |D_1(P)|: # vertex pairs *not* linked in Q.
  std::size_t distinguishable_pairs() const;

  /// Fig. 8 distribution over all vertices of Q including v0.
  Histogram uncertainty_distribution() const;

 private:
  std::size_t node_count_;
  std::vector<DynamicBitset> adjacency_;  ///< (node_count+1)^2 symmetric

  void remove_edge(NodeId v, NodeId w);
  void check_vertex(NodeId x) const;
};

}  // namespace splace
