// Pointer-free CSR/arena storage for every candidate measurement path of a
// problem instance — the cache-dense hot-path representation behind the
// word-parallel kernels (DESIGN.md §14).
//
// The legacy layout (one PathSet of MeasurementPaths per (service, host),
// each path owning a dense DynamicBitset plus a node vector) costs
// O(|N|/64) words per path: ~7.5 GB for a 50k-node instance with a few
// thousand candidate hosts. The arena stores each *distinct* path once, as a
// sparse word row — the (word index, 64-bit mask) pairs of its node bitset —
// in three contiguous planes:
//
//   rows   row_offsets_[r] .. row_offsets_[r+1] indexes row_words_ (u32 word
//          ids, ascending) and row_masks_ (u64 masks) — one distinct path's
//          sparse node bitset. Paths are interned: equal node sets share one
//          row id, across every service and host.
//   sets   set_offsets_[s] .. set_offsets_[s+1] indexes set_rows_ (u32 row
//          ids, first-occurrence order) — one P(C_s, h). Sets are interned
//          too: an identical row list shares one set id.
//   unions set_union_offsets_[s] .. indexes set_union_words_/_masks_ — the
//          precomputed sparse union bitset ∪ P(C_s, h), consumed directly by
//          the coverage new-bit kernel.
//
// Everything is index-based (no per-path heap objects), so a snapshot's
// arena is shared read-only across any number of threads, and the whole
// structure copies with a handful of memcpys when a derived instance needs
// to extend it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "monitoring/path.hpp"

namespace splace {

class PathArena;

/// Lightweight non-owning handle to one path set stored in an arena — what
/// the greedy hot path passes to ObjectiveState::gain instead of a PathSet.
struct ArenaPathsRef {
  const PathArena* arena = nullptr;
  std::uint32_t set = 0;

  std::size_t size() const;

  /// Rebuilds the equivalent legacy PathSet (same paths, same order) —
  /// the slow-path bridge for code that still wants MeasurementPath objects.
  PathSet materialize() const;
};

class PathArena {
 public:
  explicit PathArena(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }
  /// ceil(node_count / 64): every stored word index is < words_per_row().
  std::size_t words_per_row() const { return words_per_row_; }

  std::size_t row_count() const { return row_offsets_.size() - 1; }
  std::size_t set_count() const { return set_offsets_.size() - 1; }

  /// Interns one path given its traversed nodes (order/duplicates
  /// irrelevant — only the node set matters, mirroring MeasurementPath).
  /// Returns the row id; an equal node set returns the existing id.
  /// Requires a non-empty node list with every id < node_count().
  std::uint32_t intern_path(const std::vector<NodeId>& nodes);

  /// Interns one path set from row ids in insertion order; duplicate rows
  /// collapse exactly like PathSet::add. Returns the set id; an identical
  /// (deduplicated) row sequence returns the existing id. Builds the set's
  /// sparse union row. Requires every row id valid and >= 1 row.
  std::uint32_t intern_set(const std::vector<std::uint32_t>& rows);

  /// Row span accessors: n_words entries of parallel (word id, mask) arrays.
  std::size_t row_word_count(std::uint32_t row) const;
  const std::uint32_t* row_words(std::uint32_t row) const;
  const std::uint64_t* row_masks(std::uint32_t row) const;

  /// Number of set bits of a row (the path's length in nodes).
  std::size_t row_node_count(std::uint32_t row) const;
  /// Decodes a row's node ids, ascending.
  std::vector<NodeId> row_nodes(std::uint32_t row) const;

  /// Set span accessors.
  std::size_t set_size(std::uint32_t set) const;
  const std::uint32_t* set_rows(std::uint32_t set) const;

  /// Sparse union bitset of a set's rows.
  std::size_t set_union_word_count(std::uint32_t set) const;
  const std::uint32_t* set_union_words(std::uint32_t set) const;
  const std::uint64_t* set_union_masks(std::uint32_t set) const;

  /// Precomputed per-node path-incidence signatures of a set, ascending by
  /// node id: bit i of set_sig_values[j] is set iff row i of the set covers
  /// node set_sig_nodes[j]. Signatures are a pure function of the set, so
  /// they are built ONCE at intern time (by the dispatched split kernel) and
  /// the split_delta hot path just consumes the span — no per-evaluation
  /// merge. Empty for sets of more than 64 rows (no 64-bit signature).
  std::size_t set_sig_count(std::uint32_t set) const;
  const std::uint32_t* set_sig_nodes(std::uint32_t set) const;
  const std::uint64_t* set_sig_values(std::uint32_t set) const;

  ArenaPathsRef ref(std::uint32_t set) const { return ArenaPathsRef{this, set}; }

  /// Legacy bridge: the PathSet equivalent of a stored set.
  PathSet materialize_set(std::uint32_t set) const;

  /// Total heap bytes of every plane (the "bytes/node" numerator reported
  /// by bench_scale; excludes the intern maps, which exist only for builds).
  std::size_t bytes() const;

 private:
  std::size_t node_count_;
  std::size_t words_per_row_;

  std::vector<std::uint32_t> row_offsets_{0};
  std::vector<std::uint32_t> row_words_;
  std::vector<std::uint64_t> row_masks_;

  std::vector<std::uint32_t> set_offsets_{0};
  std::vector<std::uint32_t> set_rows_;

  std::vector<std::uint32_t> set_union_offsets_{0};
  std::vector<std::uint32_t> set_union_words_;
  std::vector<std::uint64_t> set_union_masks_;

  std::vector<std::uint32_t> set_sig_offsets_{0};
  std::vector<std::uint32_t> set_sig_nodes_;
  std::vector<std::uint64_t> set_sig_values_;

  /// Content hash -> candidate ids (collision chains resolved by compare).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> rows_by_hash_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> sets_by_hash_;

  /// Scratch for intern_path: dense word accumulation of the incoming path.
  std::vector<std::uint64_t> build_masks_;
  std::vector<std::uint32_t> build_words_;

  void check_row(std::uint32_t row) const;
  void check_set(std::uint32_t set) const;
};

inline std::size_t ArenaPathsRef::size() const {
  return arena->set_size(set);
}

}  // namespace splace
