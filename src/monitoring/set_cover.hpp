// Minimum set cover machinery behind the identifiability bounds
// (paper Section III-B, Theorem 4, Corollary 5, eq. (4)).
//
// MSC(v; P) is the minimum number of nodes other than v whose combined paths
// cover P_v (all paths through v). Computing it is NP-complete, so the paper
// bounds it with the classic greedy set-cover GSC(v; P), which satisfies
// GSC/(ln|P_v|+1) ≤ MSC ≤ GSC.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// Reported when no selection of candidate sets covers the universe
/// (MSC = ∞: v's paths cannot all be disrupted without failing v itself,
/// making every identifiability condition on v hold for any k).
inline constexpr std::size_t kUncoverable =
    std::numeric_limits<std::size_t>::max();

/// Greedy set cover: repeatedly picks the candidate covering the most
/// still-uncovered universe elements (smallest index wins ties).
/// Returns the chosen candidate indices, or nullopt if uncoverable.
std::optional<std::vector<std::size_t>> greedy_set_cover(
    const DynamicBitset& universe, const std::vector<DynamicBitset>& candidates);

/// Exact minimum set cover size by exhaustive search (tests / tiny inputs
/// only); kUncoverable if no cover exists.
std::size_t minimum_set_cover_size(const DynamicBitset& universe,
                                   const std::vector<DynamicBitset>& candidates);

/// GSC(v; P): size of the greedy cover of P_v by {P_w : w ≠ v};
/// kUncoverable when P_v cannot be covered. A node with no paths (P_v = ∅)
/// reports 0 — such a node is never identifiable and callers must gate on
/// coverage first, exactly as the paper's conditions implicitly do.
std::size_t gsc(NodeId v, const PathSet& paths);

/// GSC for every node at once (shares the incidence computation).
std::vector<std::size_t> gsc_all(const PathSet& paths);

/// Exact MSC(v; P) by exhaustive search (tests / tiny inputs only).
std::size_t msc_exact(NodeId v, const PathSet& paths);

/// Identifiability bounds from eq. (4), with ln|P_v|+1 as the greedy
/// set-cover approximation ratio:
///   lower  = #{ v : GSC(v)/(ln|P_v|+1) ≥ k+1 }      (⇒ MSC ≥ k+1 ⇒ v ∈ S_k)
///   greedy = #{ v : GSC(v) ≥ k+1 }   (heuristic count treating GSC ≈ MSC;
///            the paper observes GSC ≈ MSC in most cases)
///   upper  = #{ v : GSC(v) ≥ k }                    (⊇ {v : MSC ≥ k} ⊇ S_k)
/// satisfying lower ≤ |S_k(P)| ≤ upper. Nodes with P_v = ∅ have GSC = 0 and
/// drop out automatically for k ≥ 1.
struct IdentifiabilityBounds {
  std::size_t lower = 0;
  std::size_t greedy = 0;
  std::size_t upper = 0;
};

IdentifiabilityBounds identifiability_bounds(const PathSet& paths,
                                             std::size_t k);

}  // namespace splace
