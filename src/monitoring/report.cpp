#include "monitoring/report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

std::string to_string(NodeMonitoringStatus status) {
  switch (status) {
    case NodeMonitoringStatus::Identifiable: return "identifiable";
    case NodeMonitoringStatus::Ambiguous: return "ambiguous";
    case NodeMonitoringStatus::Uncovered: return "uncovered";
  }
  return "?";
}

std::vector<NodeId> MonitoringAssessment::with_status(
    NodeMonitoringStatus status) const {
  std::vector<NodeId> out;
  for (const NodeAssessment& a : nodes)
    if (a.status == status) out.push_back(a.node);
  return out;
}

MonitoringAssessment assess(const PathSet& paths) {
  const std::size_t n = paths.node_count();
  EquivalenceClasses classes(n);
  classes.add_paths(paths);
  const std::vector<DynamicBitset> incidence = paths.node_incidence();

  MonitoringAssessment result;
  result.nodes.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    NodeAssessment a;
    a.node = v;
    a.witnessing_paths = incidence[v].count();
    if (a.witnessing_paths == 0) {
      a.status = NodeMonitoringStatus::Uncovered;
      ++result.uncovered;
    } else if (classes.class_size(v) == 1) {
      a.status = NodeMonitoringStatus::Identifiable;
      ++result.identifiable;
    } else {
      a.status = NodeMonitoringStatus::Ambiguous;
      ++result.ambiguous;
    }
    if (a.status != NodeMonitoringStatus::Identifiable) {
      for (NodeId peer : classes.class_of(v))
        if (peer != v && peer != classes.virtual_node())
          a.confusable_with.push_back(peer);
      std::sort(a.confusable_with.begin(), a.confusable_with.end());
    }
    result.nodes.push_back(std::move(a));
  }
  return result;
}

void print_assessment(const MonitoringAssessment& assessment,
                      std::ostream& os) {
  const std::size_t total = assessment.nodes.size();
  os << "monitoring assessment: " << assessment.identifiable << "/" << total
     << " identifiable, " << assessment.ambiguous << " ambiguous, "
     << assessment.uncovered << " uncovered\n";
  for (const NodeAssessment& a : assessment.nodes) {
    if (a.status == NodeMonitoringStatus::Identifiable) continue;
    os << "  node " << a.node << ": " << to_string(a.status);
    if (a.status == NodeMonitoringStatus::Ambiguous) {
      os << " (" << a.witnessing_paths << " paths; confusable with";
      for (NodeId peer : a.confusable_with) os << ' ' << peer;
      os << ')';
    } else if (!a.confusable_with.empty()) {
      os << " (like nodes";
      for (NodeId peer : a.confusable_with) os << ' ' << peer;
      os << ')';
    }
    os << '\n';
  }
}

}  // namespace splace
