#include "monitoring/identifiability.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace splace {

DynamicBitset identifiable_nodes(const SignatureGroups& groups,
                                 std::size_t node_count) {
  // v is NOT k-identifiable iff some signature group holds both a failure
  // set containing v and one excluding v. Within a group of size m, that is
  // "v occurs in between 1 and m-1 member sets".
  DynamicBitset identifiable(node_count);
  for (NodeId v = 0; v < node_count; ++v) identifiable.set(v);

  std::vector<std::size_t> occurrences(node_count, 0);
  for (std::size_t g = 0; g < groups.group_count(); ++g) {
    const auto& members = groups.group(g);
    if (members.size() < 2) continue;
    std::vector<NodeId> touched;
    for (const std::vector<NodeId>& f : members) {
      for (NodeId v : f) {
        if (occurrences[v] == 0) touched.push_back(v);
        ++occurrences[v];
      }
    }
    for (NodeId v : touched) {
      if (occurrences[v] < members.size()) identifiable.reset(v);
      occurrences[v] = 0;
    }
  }

  // A node traversed by no path at all is indistinguishable from the empty
  // failure set ({v} and ∅ share the all-normal signature); the grouping
  // above already handles this because both land in the same group. Nothing
  // more to do.
  return identifiable;
}

DynamicBitset identifiable_nodes(const PathSet& paths, std::size_t k) {
  return identifiable_nodes(SignatureGroups(paths, k), paths.node_count());
}

std::size_t identifiability(const PathSet& paths, std::size_t k) {
  return identifiable_nodes(paths, k).count();
}

bool is_k_identifiable(NodeId v, const PathSet& paths, std::size_t k) {
  SPLACE_EXPECTS(v < paths.node_count());
  // Literal Definition 2: compare every pair of failure sets differing in v.
  std::vector<std::vector<NodeId>> with_v;
  std::vector<DynamicBitset> with_v_sig;
  std::vector<std::vector<NodeId>> without_v;
  std::vector<DynamicBitset> without_v_sig;
  for_each_failure_set(paths.node_count(), k,
                       [&](const std::vector<NodeId>& f) {
                         const bool has_v =
                             std::find(f.begin(), f.end(), v) != f.end();
                         if (has_v) {
                           with_v.push_back(f);
                           with_v_sig.push_back(paths.affected_paths(f));
                         } else {
                           without_v.push_back(f);
                           without_v_sig.push_back(paths.affected_paths(f));
                         }
                       });
  for (std::size_t i = 0; i < with_v.size(); ++i)
    for (std::size_t j = 0; j < without_v.size(); ++j)
      if (with_v_sig[i] == without_v_sig[j]) return false;
  return true;
}

std::size_t non_identifiable_failure_sets(const PathSet& paths,
                                          std::size_t k) {
  const SignatureGroups groups(paths, k);
  std::size_t count = 0;
  for (std::size_t g = 0; g < groups.group_count(); ++g)
    if (groups.group(g).size() > 1) count += groups.group(g).size();
  return count;
}

}  // namespace splace
