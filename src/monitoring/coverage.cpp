#include "monitoring/coverage.hpp"

namespace splace {

DynamicBitset covered_set(const PathSet& paths) {
  DynamicBitset covered(paths.node_count());
  for (const MeasurementPath& p : paths.paths()) covered |= p.node_set();
  return covered;
}

std::size_t coverage(const PathSet& paths) {
  return covered_set(paths).count();
}

}  // namespace splace
