// Incremental partition of the failure-set space F_k by observable
// signature — the general-k analogue of EquivalenceClasses.
//
// Two failure sets are indistinguishable wrt P iff they hit exactly the same
// paths. That equivalence refines as paths are added: a new path p splits
// every class into {F : F ∩ p ≠ ∅} and {F : F ∩ p = ∅}. Maintaining the
// partition costs O(|F_k|) per path, turning the greedy algorithm's
// general-k objective evaluations from full re-enumeration
// (O(|F_k|·|P|) per evaluation) into cheap clone-and-refine steps — the
// same trick Section V-D.1 describes for k = 1.
//
// Derived quantities:
//   |D_k(P)|  = C(|F_k|, 2) − Σ_class C(|class|, 2)
//   |S_k(P)|  = # nodes v with no class containing both a set ∋ v and a
//               set ∌ v
//   |I_k(F;P)| = |class(F)| − 1
#pragma once

#include <cstddef>
#include <vector>

#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

class FailureSetPartition {
 public:
  /// Enumerates F_k over `node_count` nodes (cost O(|F_k|·k)); starts with
  /// the single all-indistinguishable class. Keep |F_k| moderate — this is
  /// an exact structure, not a bound.
  FailureSetPartition(std::size_t node_count, std::size_t k);

  std::size_t node_count() const { return node_count_; }
  std::size_t k() const { return k_; }
  std::size_t total_sets() const { return sets_.size(); }
  std::size_t class_count() const { return classes_.size(); }

  /// Refines by one measurement path / a whole path set.
  void add_path(const MeasurementPath& path);
  void add_paths(const PathSet& paths);

  /// |D_k(P)| for the paths added so far.
  std::size_t distinguishability() const;

  /// |S_k(P)| (cost O(Σ_F |F|) per call).
  std::size_t identifiability() const;

  /// |I_k(F; P)|: peers indistinguishable from the given failure set.
  /// Requires |failure_set| ≤ k, sorted, distinct, valid ids.
  std::size_t uncertainty_of(const std::vector<NodeId>& failure_set) const;

  /// Members (indices into the internal F_k enumeration) of class `c`.
  const std::vector<std::uint32_t>& class_members(std::size_t c) const {
    return classes_[c];
  }

  /// The failure set at enumeration index i.
  const std::vector<NodeId>& failure_set(std::size_t i) const {
    return sets_[i];
  }

 private:
  std::size_t node_count_;
  std::size_t k_;
  std::vector<std::vector<NodeId>> sets_;         ///< F_k enumeration
  std::vector<std::vector<std::uint32_t>> classes_;
  std::vector<std::uint32_t> class_index_;        ///< set idx -> class pos

  std::size_t find_set_index(const std::vector<NodeId>& failure_set) const;
};

}  // namespace splace
