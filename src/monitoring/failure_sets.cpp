#include "monitoring/failure_sets.hpp"

#include <limits>

#include "util/error.hpp"

namespace splace {

std::size_t failure_set_count(std::size_t n, std::size_t k) {
  std::size_t total = 0;
  std::size_t binom = 1;  // C(n, 0)
  for (std::size_t i = 0; i <= k && i <= n; ++i) {
    if (total > std::numeric_limits<std::size_t>::max() - binom)
      return std::numeric_limits<std::size_t>::max();
    total += binom;
    // C(n, i+1) = C(n, i) * (n-i) / (i+1); watch for overflow.
    if (i < n) {
      const std::size_t numer = n - i;
      if (binom > std::numeric_limits<std::size_t>::max() / numer)
        return std::numeric_limits<std::size_t>::max();
      binom = binom * numer / (i + 1);
    }
  }
  return total;
}

namespace {
void enumerate_rec(std::size_t n, std::size_t size, NodeId first,
                   std::vector<NodeId>& current,
                   const std::function<void(const std::vector<NodeId>&)>& fn) {
  if (current.size() == size) {
    fn(current);
    return;
  }
  const std::size_t remaining = size - current.size();
  for (NodeId v = first; v + remaining <= n; ++v) {
    current.push_back(v);
    enumerate_rec(n, size, v + 1, current, fn);
    current.pop_back();
  }
}
}  // namespace

void for_each_failure_set(
    std::size_t n, std::size_t k,
    const std::function<void(const std::vector<NodeId>&)>& fn) {
  std::vector<NodeId> current;
  for (std::size_t size = 0; size <= k && size <= n; ++size)
    enumerate_rec(n, size, 0, current, fn);
}

std::vector<std::vector<NodeId>> enumerate_failure_sets(std::size_t n,
                                                        std::size_t k) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(failure_set_count(n, k));
  for_each_failure_set(n, k,
                       [&out](const std::vector<NodeId>& f) { out.push_back(f); });
  return out;
}

SignatureGroups::SignatureGroups(const PathSet& paths, std::size_t k) : k_(k) {
  for_each_failure_set(
      paths.node_count(), k, [&](const std::vector<NodeId>& f) {
        ++total_sets_;
        DynamicBitset sig = paths.affected_paths(f);
        const std::size_t g = find_group(sig);
        if (g == groups_.size()) {
          by_hash_[sig.hash()].push_back(groups_.size());
          groups_.emplace_back();
          groups_.back().push_back(f);
          signatures_.push_back(std::move(sig));
        } else {
          groups_[g].push_back(f);
        }
      });
}

std::size_t SignatureGroups::find_group(const DynamicBitset& signature) const {
  auto it = by_hash_.find(signature.hash());
  if (it == by_hash_.end()) return groups_.size();
  for (std::size_t g : it->second)
    if (signatures_[g] == signature) return g;
  return groups_.size();
}

const std::vector<std::vector<NodeId>>& SignatureGroups::group_of(
    const PathSet& paths, const std::vector<NodeId>& failure_set) const {
  SPLACE_EXPECTS(failure_set.size() <= k_);
  const DynamicBitset sig = paths.affected_paths(failure_set);
  const std::size_t g = find_group(sig);
  SPLACE_ENSURES(g < groups_.size());
  return groups_[g];
}

std::size_t SignatureGroups::indistinguishable_count(
    const PathSet& paths, const std::vector<NodeId>& failure_set) const {
  return group_of(paths, failure_set).size() - 1;
}

}  // namespace splace
