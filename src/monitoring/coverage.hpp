// Coverage measure |C(P)| (paper Section II-B.1): the number of nodes
// traversed by at least one measurement path — i.e., the nodes whose failures
// are detectable at all.
#pragma once

#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// C(P): the set of covered nodes.
DynamicBitset covered_set(const PathSet& paths);

/// |C(P)|.
std::size_t coverage(const PathSet& paths);

}  // namespace splace
