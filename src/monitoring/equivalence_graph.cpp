#include "monitoring/equivalence_graph.hpp"

#include "util/error.hpp"

namespace splace {

EquivalenceGraph::EquivalenceGraph(std::size_t node_count)
    : node_count_(node_count),
      adjacency_(node_count + 1, DynamicBitset(node_count + 1)) {
  for (NodeId v = 0; v <= node_count_; ++v)
    for (NodeId w = 0; w <= node_count_; ++w)
      if (v != w) adjacency_[v].set(w);
}

void EquivalenceGraph::check_vertex(NodeId x) const {
  SPLACE_EXPECTS(x <= node_count_);
}

void EquivalenceGraph::remove_edge(NodeId v, NodeId w) {
  adjacency_[v].reset(w);
  adjacency_[w].reset(v);
}

void EquivalenceGraph::add_path(const MeasurementPath& path) {
  SPLACE_EXPECTS(path.node_universe() == node_count_);
  for (NodeId v : path.nodes()) {
    // Line 4: a traversed node becomes distinguishable from "no failure".
    remove_edge(v, virtual_node());
    // Lines 5-6: a traversed node becomes distinguishable from every
    // non-traversed node.
    for (NodeId w = 0; w < node_count_; ++w)
      if (w != v && !path.traverses(w)) remove_edge(v, w);
  }
}

void EquivalenceGraph::add_paths(const PathSet& paths) {
  for (const MeasurementPath& p : paths.paths()) add_path(p);
}

bool EquivalenceGraph::has_edge(NodeId v, NodeId w) const {
  check_vertex(v);
  check_vertex(w);
  SPLACE_EXPECTS(v != w);
  return adjacency_[v].test(w);
}

std::size_t EquivalenceGraph::degree(NodeId x) const {
  check_vertex(x);
  return adjacency_[x].count();
}

std::size_t EquivalenceGraph::edge_count() const {
  std::size_t total = 0;
  for (const DynamicBitset& row : adjacency_) total += row.count();
  return total / 2;
}

std::size_t EquivalenceGraph::identifiable_count() const {
  std::size_t count = 0;
  for (NodeId v = 0; v < node_count_; ++v)
    if (adjacency_[v].none()) ++count;
  return count;
}

std::size_t EquivalenceGraph::distinguishable_pairs() const {
  const std::size_t m = node_count_ + 1;
  return m * (m - 1) / 2 - edge_count();
}

Histogram EquivalenceGraph::uncertainty_distribution() const {
  Histogram hist;
  for (NodeId x = 0; x <= node_count_; ++x) hist.add(degree(x));
  return hist;
}

}  // namespace splace
