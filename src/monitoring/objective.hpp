// Monitoring objective functions f(P) in incremental form.
//
// The greedy placement (Algorithm 2) must evaluate f(P ∪ P(C_s, h)) for many
// candidate (service, host) pairs per iteration. ObjectiveState captures the
// paper's reuse trick (Section V-D.1): keep the state for the already-placed
// paths and evaluate candidates against it. Candidate evaluation goes
// through gain(), which concrete states implement allocation-free on scratch
// buffers (clone-based value_with() remains as the generic fallback).
//
// Kinds:
//   Coverage            |C(P)|                       (monotone submodular)
//   Identifiability     |S_k(P)|                     (monotone, NOT submodular)
//   Distinguishability  |D_k(P)|                     (monotone submodular)
//
// For k = 1 the identifiability/distinguishability states run on
// EquivalenceClasses (incremental); for k > 1 they re-derive from a stored
// PathSet via exact enumeration (use on small instances only).
#pragma once

#include <memory>
#include <string>

#include "monitoring/path.hpp"
#include "monitoring/path_arena.hpp"

namespace splace {

enum class ObjectiveKind { Coverage, Identifiability, Distinguishability };

/// Short display name ("coverage", "identifiability", "distinguishability").
std::string to_string(ObjectiveKind kind);

/// Incremental evaluation state for one objective over a growing path set.
class ObjectiveState {
 public:
  virtual ~ObjectiveState() = default;

  /// Deep copy, used for hypothetical candidate evaluation.
  virtual std::unique_ptr<ObjectiveState> clone() const = 0;

  /// Extends the path set this state describes.
  virtual void add_path(const MeasurementPath& path) = 0;

  /// Current f(P).
  virtual double value() const = 0;

  void add_paths(const PathSet& paths) {
    for (const MeasurementPath& p : paths.paths()) add_path(p);
  }

  /// Marginal gain f(P ∪ extra) − f(P) without mutating this state.
  ///
  /// This is the greedy hot path: Algorithm 2 calls it once per candidate
  /// (service, host) pair per iteration. The base implementation clones the
  /// whole state; concrete states override it with allocation-free delta
  /// computations on reusable scratch buffers. Overrides must return exactly
  /// `value_with(extra) - value()` (all objectives are integer counts, so
  /// the subtraction is exact in double).
  virtual double gain(const PathSet& extra) const {
    return value_with(extra) - value();
  }

  /// Marginal gain of an arena-resident path set — the word-parallel hot
  /// path at scale. Must equal gain(extra.materialize()) bit for bit; states
  /// with kernel-backed implementations override it, everything else falls
  /// back through the legacy bridge.
  virtual double gain(ArenaPathsRef extra) const {
    return gain(extra.materialize());
  }

  /// f(P ∪ extra) without mutating this state (clone + add + read).
  double value_with(const PathSet& extra) const {
    const std::unique_ptr<ObjectiveState> trial = clone();
    trial->add_paths(extra);
    return trial->value();
  }
};

/// Creates the evaluation state for `kind` over `node_count` nodes with
/// failure bound `k` (ignored by Coverage). Requires k >= 1.
std::unique_ptr<ObjectiveState> make_objective_state(ObjectiveKind kind,
                                                     std::size_t node_count,
                                                     std::size_t k = 1);

/// One-shot evaluation of an objective over a complete path set.
double evaluate_objective(ObjectiveKind kind, const PathSet& paths,
                          std::size_t k = 1);

}  // namespace splace
