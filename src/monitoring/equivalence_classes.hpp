// Partition-refinement form of the paper's equivalence graph Q
// (Section III-B.1).
//
// Two single-node failure sets {v}, {w} are indistinguishable iff P_v = P_w,
// which is an equivalence relation: Q (plus the virtual no-failure node v0)
// is a disjoint union of cliques, i.e., a partition of N ∪ {v0} by
// path-incidence signature. Adding a measurement path p refines the partition
// by splitting every class into (class ∩ p, class ∖ p) — O(|N|) per path,
// much cheaper than maintaining the O(|N|^2) adjacency of Algorithm 1 and
// exactly the incremental reuse the paper suggests for the greedy
// distinguishability heuristic (Section V-D.1).
//
// All k = 1 quantities fall out of the class sizes:
//   |S_1(P)|  = # singleton classes not containing v0;
//   |D_1(P)|  = C(|N|+1, 2) − Σ_class C(|class|, 2);
//   degree of uncertainty of x (Fig. 8) = |class(x)| − 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "monitoring/path.hpp"
#include "monitoring/path_arena.hpp"
#include "util/stats.hpp"

namespace splace {

/// How a hypothetical path-set addition would refine the partition.
struct SplitDelta {
  std::size_t newly_identifiable = 0;        ///< Δ|S_1|
  std::size_t newly_distinguishable = 0;     ///< Δ|D_1|
};

class EquivalenceClasses {
 public:
  /// Reusable scratch buffers for split_delta(). One instance per thread;
  /// after warm-up no call allocates (buffers only ever grow). Constructing
  /// with the node count sizes every buffer up front so even the first call
  /// never reallocates mid-evaluation.
  class SplitScratch {
   public:
    SplitScratch() = default;
    explicit SplitScratch(std::size_t node_count);

   private:
    friend class EquivalenceClasses;
    std::vector<std::uint64_t> sig;        ///< per-node path signature
    std::vector<std::uint32_t> sig_stamp;  ///< validity stamp for `sig`
    std::vector<NodeId> touched;           ///< nodes on any extra path
    /// (class index, signature) per touched node — the sort/group buffer.
    std::vector<std::pair<std::size_t, std::uint64_t>> groups;
    std::uint32_t stamp = 0;

    /// Sort-free grouping state for the arena overload: per touched class, a
    /// chained list of (signature, member count) slots.
    struct SigCount {
      std::uint64_t sig;
      std::uint32_t count;
      std::uint32_t next;  ///< next slot of the same class, or UINT32_MAX
    };
    std::vector<std::uint32_t> class_stamp;  ///< validity stamp per class
    std::vector<std::uint32_t> class_head;   ///< class -> first slot index
    std::vector<SigCount> slots;
    std::vector<std::size_t> touched_classes;
  };

  /// Starts from the no-measurement state: one class = N ∪ {v0}.
  explicit EquivalenceClasses(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }

  /// The virtual no-failure vertex id (== node_count()).
  NodeId virtual_node() const { return static_cast<NodeId>(node_count_); }

  /// Refines the partition with one measurement path.
  void add_path(const MeasurementPath& path);

  /// Refines with every path of a set.
  void add_paths(const PathSet& paths);

  /// Computes how adding `extra` would change |S_1| and |D_1| WITHOUT
  /// mutating (or copying) the partition: every node on an extra path gets a
  /// path-incidence signature, and each touched class splits into its
  /// signature groups. Allocation-free once `scratch` is warm — the greedy
  /// candidate-evaluation hot path. Requires |extra| ≤ 64 (one signature
  /// word); callers fall back to clone-based evaluation beyond that.
  SplitDelta split_delta(const PathSet& extra, SplitScratch& scratch) const;

  /// Arena fast path of split_delta: per-node signatures come from the
  /// arena's precomputed signature plane (built once per set by the
  /// word-parallel split kernel), grouped by a stamped per-class counter
  /// instead of a sort — the result is bit-identical to
  /// split_delta(extra.materialize(), scratch).
  SplitDelta split_delta(ArenaPathsRef extra, SplitScratch& scratch) const;

  std::size_t class_count() const { return classes_.size(); }

  /// Members of the class containing vertex x (x may be virtual_node()).
  const std::vector<NodeId>& class_of(NodeId x) const;

  /// |class(x)|.
  std::size_t class_size(NodeId x) const;

  /// True iff {v} and {w} are indistinguishable so far (same class);
  /// w or v may be virtual_node(). Mirrors "edge present in Q".
  bool indistinguishable(NodeId v, NodeId w) const;

  /// |S_1(P)|: # real nodes whose single-failure state is identifiable.
  std::size_t identifiable_count() const;

  /// |D_1(P)|: # distinguishable unordered pairs among N ∪ {v0}.
  std::size_t distinguishable_pairs() const;

  /// Degree of x in Q = |class(x)| − 1 (paper's "degree of uncertainty").
  std::size_t degree_of_uncertainty(NodeId x) const;

  /// Fig. 8 distribution: histogram of degree of uncertainty over all
  /// vertices of Q including v0.
  Histogram uncertainty_distribution() const;

 private:
  std::size_t node_count_;
  std::vector<std::vector<NodeId>> classes_;
  std::vector<std::uint32_t> class_index_;  ///< vertex -> class position

  void check_vertex(NodeId x) const;

  /// Shared tail of both split_delta overloads: counts the post-split groups
  /// from the sorted (class index, signature) pairs in scratch.groups.
  SplitDelta count_groups(const SplitScratch& scratch) const;
};

}  // namespace splace
