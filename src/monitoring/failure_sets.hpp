// Enumeration of candidate failure sets F_k = { F ⊆ N : |F| ≤ k }
// (paper Section II-B.3) and their observable signatures P_F.
//
// |F_k| grows as O(|N|^k); the exact general-k measures built on this
// enumeration are intended for moderate instances (tests, small networks,
// ground truth for the scalable k = 1 machinery and the GSC bounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "monitoring/path.hpp"
#include "util/bitset.hpp"

namespace splace {

/// |F_k| = Σ_{i=0..k} C(n, i); saturates at SIZE_MAX on overflow.
std::size_t failure_set_count(std::size_t n, std::size_t k);

/// Calls `fn(F)` once for every F ⊆ {0..n-1} with |F| ≤ k, in increasing
/// size then lexicographic order, starting with the empty set.
void for_each_failure_set(
    std::size_t n, std::size_t k,
    const std::function<void(const std::vector<NodeId>&)>& fn);

/// Materializes F_k (use only when failure_set_count is small).
std::vector<std::vector<NodeId>> enumerate_failure_sets(std::size_t n,
                                                        std::size_t k);

/// Groups every F ∈ F_k by its path-state signature P_F.
/// Result: one entry per distinct signature, listing the member failure sets
/// (by index into the enumeration order) and, per member, whether it is the
/// empty set. Powers exact |D_k|, |S_k| and I_k(F; P).
class SignatureGroups {
 public:
  SignatureGroups(const PathSet& paths, std::size_t k);

  std::size_t k() const { return k_; }
  std::size_t total_sets() const { return total_sets_; }
  std::size_t group_count() const { return groups_.size(); }

  /// Failure sets (node lists) of group g.
  const std::vector<std::vector<NodeId>>& group(std::size_t g) const {
    return groups_[g];
  }

  /// The signature group containing the given failure set.
  /// Requires |failure_set| ≤ k and valid node ids.
  const std::vector<std::vector<NodeId>>& group_of(
      const PathSet& paths, const std::vector<NodeId>& failure_set) const;

  /// |I_k(F; P)|: # failure sets (≠ F) indistinguishable from F.
  std::size_t indistinguishable_count(
      const PathSet& paths, const std::vector<NodeId>& failure_set) const;

 private:
  std::size_t k_;
  std::size_t total_sets_ = 0;
  std::vector<std::vector<std::vector<NodeId>>> groups_;
  // signature hash -> candidate group indices (rare collisions resolved by
  // comparing stored signatures).
  std::vector<DynamicBitset> signatures_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_hash_;

  std::size_t find_group(const DynamicBitset& signature) const;
};

}  // namespace splace
