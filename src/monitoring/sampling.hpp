// Monte-Carlo estimation of the distinguishability measure for failure
// budgets where |F_k| makes exact enumeration impossible.
//
// |D_k(P)| / C(|F_k|, 2) is the probability that two failure sets drawn
// uniformly (without replacement) from F_k are distinguishable. Sampling
// pairs and testing P_F ≠ P_F' gives an unbiased estimate of that fraction
// with a standard binomial confidence interval — enough to compare
// placements at k = 3..5 on networks where |F_k| is astronomical.
#pragma once

#include <cstddef>

#include "monitoring/path.hpp"
#include "util/random.hpp"

namespace splace {

struct DistinguishabilityEstimate {
  double fraction = 0;        ///< estimated P(pair distinguishable)
  double std_error = 0;       ///< binomial standard error of `fraction`
  std::size_t samples = 0;    ///< pairs actually tested
  /// |F_k| as a double (may round for huge k) and the implied estimate of
  /// |D_k| = fraction * C(|F_k|, 2).
  double total_sets = 0;
  double estimated_pairs = 0;
};

/// Estimates the distinguishable fraction over `samples` uniformly drawn
/// unordered pairs of distinct failure sets of size ≤ k. Requires
/// samples >= 1 and at least two distinct failure sets (n >= 1).
DistinguishabilityEstimate estimate_distinguishability(const PathSet& paths,
                                                       std::size_t k,
                                                       std::size_t samples,
                                                       Rng& rng);

/// Draws one failure set uniformly from F_k (all subsets of size ≤ k
/// equally likely), returned sorted. Exposed for tests.
std::vector<NodeId> sample_failure_set(std::size_t node_count, std::size_t k,
                                       Rng& rng);

}  // namespace splace
