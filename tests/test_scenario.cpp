#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "placement/baselines.hpp"
#include "placement/greedy.hpp"
#include "util/error.hpp"

namespace splace {
namespace {

TEST(ScenarioParse, MinimalNamedTopology) {
  const Scenario s = parse_scenario(
      "topology tiscali\n"
      "services 3\n");
  EXPECT_EQ(s.topology, "tiscali");
  EXPECT_EQ(s.auto_services, 3u);
  EXPECT_DOUBLE_EQ(s.alpha, 0.6);  // default
  EXPECT_EQ(s.algorithm, "gd");    // default
}

TEST(ScenarioParse, FullDocument) {
  const Scenario s = parse_scenario(
      "# a comment\n"
      "topology abovenet\n"
      "alpha 0.4   # inline comment\n"
      "k 2\n"
      "algorithm gc\n"
      "seed 7\n"
      "capacity 1.5\n"
      "service web 1 2 3\n"
      "service dns 4\n");
  EXPECT_EQ(s.topology, "abovenet");
  EXPECT_DOUBLE_EQ(s.alpha, 0.4);
  EXPECT_EQ(s.k, 2u);
  EXPECT_EQ(s.algorithm, "gc");
  EXPECT_EQ(s.seed, 7u);
  ASSERT_TRUE(s.capacity.has_value());
  EXPECT_DOUBLE_EQ(*s.capacity, 1.5);
  ASSERT_EQ(s.services.size(), 2u);
  EXPECT_EQ(s.services[0].name, "web");
  EXPECT_EQ(s.services[0].clients, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(s.services[1].clients, (std::vector<NodeId>{4}));
}

TEST(ScenarioParse, InlineEdges) {
  const Scenario s = parse_scenario(
      "edges 0-1 1-2 2-3\n"
      "service a 0 3\n");
  EXPECT_TRUE(s.topology.empty());
  ASSERT_EQ(s.edges.size(), 3u);
  EXPECT_EQ(s.edges[1].u, 1u);
  EXPECT_EQ(s.edges[1].v, 2u);
}

TEST(ScenarioParse, Errors) {
  // Missing topology.
  EXPECT_THROW(parse_scenario("services 2\n"), InvalidInput);
  // No services at all.
  EXPECT_THROW(parse_scenario("topology tiscali\n"), InvalidInput);
  // Both explicit and auto services.
  EXPECT_THROW(parse_scenario("topology tiscali\nservices 2\nservice a 1\n"),
               InvalidInput);
  // Bad numbers / ranges.
  EXPECT_THROW(parse_scenario("topology t\nalpha 1.5\nservices 1\n"),
               InvalidInput);
  EXPECT_THROW(parse_scenario("topology t\nalpha abc\nservices 1\n"),
               InvalidInput);
  EXPECT_THROW(parse_scenario("topology t\nk 0\nservices 1\n"),
               InvalidInput);
  // Unknown key / algorithm.
  EXPECT_THROW(parse_scenario("topology t\nbogus 1\nservices 1\n"),
               InvalidInput);
  EXPECT_THROW(parse_scenario("topology t\nalgorithm magic\nservices 1\n"),
               InvalidInput);
  // Malformed edge tokens.
  EXPECT_THROW(parse_scenario("edges 0_1\nservice a 0\n"), InvalidInput);
  EXPECT_THROW(parse_scenario("edges 1-1\nservice a 0\n"), InvalidInput);
  // Duplicate topology declarations.
  EXPECT_THROW(
      parse_scenario("topology a\ntopology b\nservices 1\n"), InvalidInput);
  // Wrong arity.
  EXPECT_THROW(parse_scenario("topology\nservices 1\n"), InvalidInput);
  EXPECT_THROW(parse_scenario("topology a b\nservices 1\n"), InvalidInput);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  try {
    parse_scenario("topology tiscali\nalpha nope\nservices 1\n");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioBuild, NamedTopologyAutoServices) {
  const Scenario s = parse_scenario(
      "topology tiscali\n"
      "alpha 0.5\n"
      "services 3\n"
      "clients-per-service 2\n");
  const ProblemInstance inst = build_scenario_instance(s);
  EXPECT_EQ(inst.node_count(), 51u);
  EXPECT_EQ(inst.service_count(), 3u);
  for (const Service& svc : inst.services()) {
    EXPECT_EQ(svc.clients.size(), 2u);
    EXPECT_DOUBLE_EQ(svc.alpha, 0.5);
  }
}

TEST(ScenarioBuild, InlineTopologyExplicitServices) {
  const Scenario s = parse_scenario(
      "edges 0-1 1-2 2-3 3-4\n"
      "alpha 1.0\n"
      "service probe 0 4\n");
  const ProblemInstance inst = build_scenario_instance(s);
  EXPECT_EQ(inst.node_count(), 5u);
  EXPECT_EQ(inst.services()[0].clients, (std::vector<NodeId>{0, 4}));
}

TEST(ScenarioBuild, RejectsOutOfRangeClients) {
  const Scenario s = parse_scenario(
      "edges 0-1\n"
      "service a 5\n");
  EXPECT_THROW(build_scenario_instance(s), InvalidInput);
}

TEST(ScenarioBuild, RejectsDuplicateInlineEdges) {
  const Scenario s = parse_scenario(
      "edges 0-1 1-0\n"
      "service a 0\n");
  EXPECT_THROW(build_scenario_instance(s), InvalidInput);
}

TEST(ScenarioRun, MatchesDirectInvocation) {
  const Scenario s = parse_scenario(
      "topology abovenet\n"
      "alpha 0.4\n"
      "algorithm gd\n"
      "services 5\n");
  const ScenarioResult result = run_scenario(s);

  const ProblemInstance inst =
      make_instance(topology::catalog_entry("Abovenet"), 0.4);
  const GreedyResult direct =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  EXPECT_EQ(result.placement, direct.placement);
  EXPECT_EQ(static_cast<double>(result.metrics.distinguishability),
            direct.objective_value);
}

TEST(ScenarioRun, QosAlgorithm) {
  const Scenario s = parse_scenario(
      "topology tiscali\n"
      "algorithm qos\n"
      "services 3\n");
  const ScenarioResult result = run_scenario(s);
  const ProblemInstance inst =
      make_instance(topology::catalog_entry("Tiscali"), 0.6);
  EXPECT_EQ(result.placement, best_qos_placement(inst));
}

TEST(ScenarioRun, CapacityConstrained) {
  const Scenario s = parse_scenario(
      "topology tiscali\n"
      "alpha 1.0\n"
      "capacity 1\n"
      "services 3\n");
  const ScenarioResult result = run_scenario(s);
  // Unit capacity forces distinct hosts.
  std::vector<NodeId> hosts = result.placement;
  std::sort(hosts.begin(), hosts.end());
  EXPECT_TRUE(std::adjacent_find(hosts.begin(), hosts.end()) == hosts.end());
}

TEST(ScenarioRun, CapacityInfeasibleThrows) {
  const Scenario s = parse_scenario(
      "topology tiscali\n"
      "capacity 0\n"
      "services 3\n");
  EXPECT_THROW(run_scenario(s), InvalidInput);
}

TEST(ScenarioRun, K2Metrics) {
  const Scenario s = parse_scenario(
      "edges 0-1 1-2 2-3 3-0 0-2\n"
      "alpha 1.0\n"
      "k 2\n"
      "service a 1 3\n");
  const ScenarioResult result = run_scenario(s);
  EXPECT_GT(result.metrics.distinguishability, 0u);
}

}  // namespace
}  // namespace splace
