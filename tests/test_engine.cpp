// Functional tests for the serving engine: snapshot registry semantics,
// canonical request keys, LRU cache behavior, admission control / deadline /
// bad-request rejection, the determinism contract (engine responses are
// bit-identical to direct library calls for every thread count and cache
// configuration), and the replay front end.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "engine/replay.hpp"
#include "localization/localizer.hpp"
#include "localization/observation.hpp"
#include "placement/baselines.hpp"
#include "placement/greedy.hpp"
#include "topology/catalog.hpp"
#include "util/error.hpp"

namespace splace::engine {
namespace {

std::vector<NodeId> nodes_of(const DynamicBitset& bits) {
  std::vector<NodeId> out;
  for (std::size_t i : bits.to_indices())
    out.push_back(static_cast<NodeId>(i));
  return out;
}

/// A small instance shared by most tests: the paper's Abovenet setup.
struct Fixture {
  std::shared_ptr<SnapshotRegistry> registry =
      std::make_shared<SnapshotRegistry>();
  std::shared_ptr<const TopologySnapshot> snapshot;

  Fixture() {
    const topology::CatalogEntry& entry = topology::catalog_entry("abovenet");
    Graph g = topology::build(entry);
    const std::vector<NodeId> clients =
        topology::candidate_clients(entry, g);
    snapshot = registry->add("abovenet", std::move(g),
                             make_services(entry, clients, 0.6));
  }

  const ProblemInstance& instance() const { return snapshot->instance(); }
};

TEST(EngineSnapshot, ContentHashIsStableAndSensitive) {
  const topology::CatalogEntry& entry = topology::catalog_entry("abovenet");
  Graph g1 = topology::build(entry);
  Graph g2 = topology::build(entry);
  const std::vector<NodeId> clients = topology::candidate_clients(entry, g1);
  const std::vector<Service> services = make_services(entry, clients, 0.6);
  EXPECT_EQ(topology_content_hash(g1, services),
            topology_content_hash(g2, services));

  std::vector<Service> changed = services;
  changed[0].alpha = 0.7;
  EXPECT_NE(topology_content_hash(g1, services),
            topology_content_hash(g1, changed));
}

TEST(EngineSnapshot, RegistryDeduplicatesByContent) {
  Fixture fx;
  const topology::CatalogEntry& entry = topology::catalog_entry("abovenet");
  Graph g = topology::build(entry);
  const std::vector<NodeId> clients = topology::candidate_clients(entry, g);
  const auto again = fx.registry->add("tenant-b", std::move(g),
                                      make_services(entry, clients, 0.6));
  // Same content, different tenant name: one shared snapshot (and one
  // shared routing table), reachable under both names.
  EXPECT_EQ(again.get(), fx.snapshot.get());
  EXPECT_EQ(fx.registry->size(), 1u);
  EXPECT_EQ(fx.registry->find_by_name("tenant-b").get(), fx.snapshot.get());
  EXPECT_EQ(fx.registry->find(fx.snapshot->hash()).get(), fx.snapshot.get());
  EXPECT_EQ(fx.registry->find(fx.snapshot->hash() + 1), nullptr);
}

TEST(EngineRequest, CanonicalKeysNormalize) {
  PlaceRequest a;
  a.snapshot = 7;
  a.algorithm = Algorithm::GD;
  a.seed = 1;
  a.threads = 1;
  PlaceRequest b = a;
  b.seed = 99;     // seed irrelevant for GD
  b.threads = 8;   // threads never change results
  b.deadline_seconds = 2.5;
  EXPECT_EQ(canonical_key(a), canonical_key(b));

  PlaceRequest rd = a;
  rd.algorithm = Algorithm::RD;
  PlaceRequest rd2 = rd;
  rd2.seed = 99;  // seed DOES matter for RD
  EXPECT_NE(canonical_key(rd), canonical_key(rd2));

  LocalizeRequest l1;
  l1.snapshot = 7;
  l1.placement = {1, 2};
  l1.failed_paths = {3, 1, 3};
  LocalizeRequest l2 = l1;
  l2.failed_paths = {1, 3};  // observation is a set
  EXPECT_EQ(canonical_key(l1), canonical_key(l2));
}

TEST(EngineCache, LruEvictsAndCounts) {
  ResultCache cache(2);
  auto result = std::make_shared<const EngineResult>();
  EXPECT_EQ(cache.find("a"), nullptr);
  cache.insert("a", result);
  cache.insert("b", result);
  EXPECT_NE(cache.find("a"), nullptr);  // promotes a to MRU
  cache.insert("c", result);            // evicts b (LRU)
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 3.0 / 5.0);
}

TEST(EngineCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert("a", std::make_shared<const EngineResult>());
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 0u);  // disabled lookups are not misses
}

TEST(Engine, PlaceMatchesDirectLibraryCallAcrossThreadCounts) {
  Fixture fx;
  const GreedyResult direct =
      greedy_placement(fx.instance(), ObjectiveKind::Distinguishability, 1);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t cache : {0u, 64u}) {
      Engine engine(fx.registry, EngineConfig{threads, 256, cache});
      PlaceRequest request;
      request.snapshot = fx.snapshot->hash();
      request.algorithm = Algorithm::GD;
      request.threads = threads;
      // Submit twice: the second may be served from cache and must still
      // be bit-identical.
      EngineResult first = engine.submit(request).get();
      EngineResult second = engine.submit(request).get();
      for (const EngineResult* result : {&first, &second}) {
        ASSERT_TRUE(result->ok()) << result->message;
        EXPECT_EQ(result->place.placement, direct.placement);
        EXPECT_EQ(result->place.objective_value, direct.objective_value);
      }
      if (cache > 0) {
        EXPECT_TRUE(second.cache_hit);
      }
    }
  }
}

TEST(Engine, EvaluateAndLocalizeMatchDirectLibraryCalls) {
  Fixture fx;
  const Placement placement = best_qos_placement(fx.instance());
  const PathSet paths = fx.instance().paths_for_placement(placement);
  const MetricReport direct_metrics = evaluate_paths(paths, 1);

  Engine engine(fx.registry, EngineConfig{2, 256, 64});
  EvaluateRequest evaluate;
  evaluate.snapshot = fx.snapshot->hash();
  evaluate.placement = placement;
  const EngineResult evaluated = engine.submit(evaluate).get();
  ASSERT_TRUE(evaluated.ok()) << evaluated.message;
  EXPECT_EQ(evaluated.metrics.coverage, direct_metrics.coverage);
  EXPECT_EQ(evaluated.metrics.identifiability,
            direct_metrics.identifiability);
  EXPECT_EQ(evaluated.metrics.distinguishability,
            direct_metrics.distinguishability);

  Rng rng(7);
  const FailureScenario scenario = random_scenario(paths, 2, rng);
  const LocalizationResult direct =
      localize(paths, scenario.failed_paths, 1);
  LocalizeRequest request;
  request.snapshot = fx.snapshot->hash();
  request.placement = placement;
  for (std::size_t p : scenario.failed_paths.to_indices())
    request.failed_paths.push_back(static_cast<std::uint32_t>(p));
  const EngineResult localized = engine.submit(request).get();
  ASSERT_TRUE(localized.ok()) << localized.message;
  EXPECT_EQ(localized.localization.suspects, nodes_of(direct.suspects));
  EXPECT_EQ(localized.localization.exonerated, nodes_of(direct.exonerated));
  EXPECT_EQ(localized.localization.consistent_sets, direct.consistent_sets);
  EXPECT_EQ(localized.localization.minimal_explanation,
            direct.minimal_explanation);
}

TEST(Engine, BadRequestsAreRejectedNotThrown) {
  Fixture fx;
  Engine engine(fx.registry, EngineConfig{1, 256, 0});

  PlaceRequest unknown;
  unknown.snapshot = fx.snapshot->hash() + 1;
  EngineResult result = engine.submit(unknown).get();
  EXPECT_EQ(result.outcome, Outcome::RejectedBadRequest);
  EXPECT_FALSE(result.message.empty());

  EvaluateRequest short_placement;
  short_placement.snapshot = fx.snapshot->hash();
  short_placement.placement = {0};  // wrong size
  result = engine.submit(short_placement).get();
  EXPECT_EQ(result.outcome, Outcome::RejectedBadRequest);

  LocalizeRequest bad_path;
  bad_path.snapshot = fx.snapshot->hash();
  bad_path.placement = best_qos_placement(fx.instance());
  bad_path.failed_paths = {100000};
  result = engine.submit(bad_path).get();
  EXPECT_EQ(result.outcome, Outcome::RejectedBadRequest);

  PlaceRequest bad_k;
  bad_k.snapshot = fx.snapshot->hash();
  bad_k.k = 0;
  result = engine.submit(bad_k).get();
  EXPECT_EQ(result.outcome, Outcome::RejectedBadRequest);

  const EngineMetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.rejected_bad_request, 4u);
  EXPECT_EQ(metrics.completed, 0u);
}

TEST(Engine, QueueFullRejectsInsteadOfBlocking) {
  // One worker, depth 1: while the first (slow) request is in flight, a
  // burst of further submissions must be rejected immediately.
  Fixture fx;
  Engine engine(fx.registry, EngineConfig{1, 1, 0});
  PlaceRequest slow;
  slow.snapshot = fx.snapshot->hash();
  slow.algorithm = Algorithm::GD;
  std::vector<std::future<EngineResult>> futures;
  for (int i = 0; i < 50; ++i) futures.push_back(engine.submit(slow));
  std::size_t ok = 0, queue_full = 0;
  for (auto& future : futures) {
    const EngineResult result = future.get();
    if (result.ok()) ++ok;
    else if (result.outcome == Outcome::RejectedQueueFull) ++queue_full;
  }
  EXPECT_EQ(ok + queue_full, 50u);
  EXPECT_GE(ok, 1u);
  EXPECT_GE(queue_full, 1u);
  EXPECT_EQ(engine.metrics().rejected_queue_full, queue_full);
  EXPECT_EQ(engine.metrics().queue_high_water, 1u);
}

TEST(Engine, ExpiredDeadlineRejects) {
  Fixture fx;
  Engine engine(fx.registry, EngineConfig{1, 256, 0});
  // Occupy the single worker so the deadline request queues behind it.
  PlaceRequest slow;
  slow.snapshot = fx.snapshot->hash();
  slow.algorithm = Algorithm::GD;
  auto slow_future = engine.submit(slow);

  EvaluateRequest dated;
  dated.snapshot = fx.snapshot->hash();
  dated.placement = best_qos_placement(fx.instance());
  dated.deadline_seconds = 1e-9;
  const EngineResult result = engine.submit(dated).get();
  EXPECT_EQ(result.outcome, Outcome::RejectedDeadline);
  EXPECT_TRUE(slow_future.get().ok());
  EXPECT_EQ(engine.metrics().rejected_deadline, 1u);
}

TEST(Engine, MetricsCountersAndJson) {
  Fixture fx;
  Engine engine(fx.registry, EngineConfig{2, 256, 64});
  EvaluateRequest request;
  request.snapshot = fx.snapshot->hash();
  request.placement = best_qos_placement(fx.instance());
  EXPECT_TRUE(engine.submit(request).get().ok());
  EXPECT_TRUE(engine.submit(request).get().ok());  // cache hit

  const EngineMetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.submitted, 2u);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_EQ(metrics.evaluate.count, 2u);
  EXPECT_EQ(metrics.queue_depth, 0u);
  EXPECT_GE(metrics.queue_high_water, 1u);
  EXPECT_GT(metrics.elapsed_seconds, 0.0);
  EXPECT_GT(metrics.throughput(), 0.0);

  const std::string json = to_json(metrics);
  EXPECT_NE(json.find("\"submitted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(EngineReplay, ParsesSpecAndRejectsMalformedInput) {
  const ReplaySpec spec = parse_replay(std::string(
      "# comment\n"
      "threads 2\nqueue-depth 8\ncache 16\nrepeat 3\n"
      "snapshot net topology abovenet alpha 0.4 services 2 clients 3\n"
      "place net gd k 1\n"
      "evaluate net qos\n"
      "localize net 2\n"));
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.queue_depth, 8u);
  EXPECT_EQ(spec.cache_capacity, 16u);
  EXPECT_EQ(spec.repeat, 3u);
  ASSERT_EQ(spec.snapshots.size(), 1u);
  EXPECT_EQ(spec.snapshots[0].topology, "abovenet");
  EXPECT_DOUBLE_EQ(spec.snapshots[0].alpha, 0.4);
  ASSERT_EQ(spec.requests.size(), 3u);
  EXPECT_EQ(spec.requests[2].failures, 2u);

  EXPECT_THROW(parse_replay(std::string("bogus 1\n")), InvalidInput);
  EXPECT_THROW(parse_replay(std::string("place net gd\n")), InvalidInput);
  EXPECT_THROW(
      parse_replay(std::string(
          "snapshot net topology abovenet alpha 7\nplace net gd\n")),
      InvalidInput);
}

TEST(EngineReplay, RunAccountsForEveryRequest) {
  const ReplaySpec spec = parse_replay(std::string(
      "threads 2\ncache 32\nrepeat 4\n"
      "snapshot net topology abovenet alpha 0.4 services 2 clients 3\n"
      "place net gd\nevaluate net qos\nlocalize net 1\n"));
  const ReplayReport report = run_replay(spec);
  EXPECT_EQ(report.total, 12u);
  EXPECT_EQ(report.ok, 12u);
  EXPECT_EQ(report.rejected_queue_full + report.rejected_deadline +
                report.rejected_bad_request,
            0u);
  // The repeated place/evaluate lines must hit the cache once their first
  // instances complete; with 2 workers at most two identical requests can
  // compute concurrently before the insert lands.
  EXPECT_GE(report.cache_hits, 4u);
  EXPECT_GT(report.requests_per_second, 0.0);
  EXPECT_EQ(report.metrics.completed, 12u);
}

}  // namespace
}  // namespace splace::engine
