// Tests for the request-lifecycle tracing layer and the adaptive cache
// capacity controller: TraceRecorder semantics (ids, ordering, bounded
// buffers), per-request stage spans through the engine, greedy round
// profiling, EngineConfig validation, per-type eviction accounting, the
// adaptive controller's window/hysteresis policy, and — critically — that
// neither tracing nor adaptation ever changes a response payload.
#include "engine/trace.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/adaptive.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "placement/greedy.hpp"
#include "util/error.hpp"

namespace splace::engine {
namespace {

/// Grid topology with two 2-client services — small enough that every test
/// request completes in microseconds.
struct Fixture {
  std::shared_ptr<SnapshotRegistry> registry =
      std::make_shared<SnapshotRegistry>();
  std::shared_ptr<const TopologySnapshot> snapshot;

  Fixture() {
    Graph g = grid_graph(4, 4);
    std::vector<Service> services(2);
    services[0].name = "web";
    services[0].clients = {0, 15};
    services[0].alpha = 1.0;
    services[1].name = "dns";
    services[1].clients = {3, 12};
    services[1].alpha = 1.0;
    snapshot = registry->add("grid", std::move(g), std::move(services));
  }

  PlaceRequest place(Algorithm algorithm = Algorithm::GD) const {
    PlaceRequest request;
    request.snapshot = snapshot->hash();
    request.algorithm = algorithm;
    return request;
  }
};

TEST(TraceRecorder, IdsAreUniqueAndDrainSortsByThem) {
  TraceRecorder recorder(true, 64);
  EXPECT_TRUE(recorder.enabled());
  // Record out of order; drain must return ascending ids.
  for (const std::uint64_t id : {3u, 1u, 2u}) {
    RequestTrace trace;
    trace.id = id;
    recorder.record(std::move(trace));
  }
  EXPECT_EQ(recorder.next_id(), 1u);
  EXPECT_EQ(recorder.next_id(), 2u);
  const std::vector<RequestTrace> drained = recorder.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 1u);
  EXPECT_EQ(drained[1].id, 2u);
  EXPECT_EQ(drained[2].id, 3u);
  EXPECT_EQ(recorder.drain().size(), 0u);
  EXPECT_EQ(recorder.stats().drained, 3u);
}

TEST(TraceRecorder, BoundedBufferDropsAndCounts) {
  // Capacity 1 rounds up to one slot per shard; a single thread always hits
  // the same shard, so the second record from this thread must drop.
  TraceRecorder recorder(true, 1);
  recorder.record(RequestTrace{});
  recorder.record(RequestTrace{});
  const TraceStats stats = recorder.stats();
  EXPECT_EQ(stats.recorded, 1u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_TRUE(stats.enabled);
}

TEST(TraceRecorder, DisabledRecorderDrainsEmpty) {
  TraceRecorder recorder(false, 0);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_TRUE(recorder.drain().empty());
  EXPECT_EQ(recorder.stats().capacity, 0u);
}

TEST(EngineTrace, DisabledByDefaultAndZeroOverheadPathDrainsNothing) {
  Fixture fx;
  Engine engine(fx.registry, EngineConfig{});
  EXPECT_FALSE(engine.tracing_enabled());
  ASSERT_TRUE(engine.submit(fx.place()).get().ok());
  EXPECT_TRUE(engine.drain_traces().empty());
  EXPECT_FALSE(engine.metrics().tracing.enabled);
}

TEST(EngineTrace, EveryRequestRecordsAllSevenSpans) {
  Fixture fx;
  EngineConfig config;
  config.threads = 2;
  config.tracing = true;
  Engine engine(fx.registry, config);

  // A miss, a guaranteed submit-time hit of the same key, and a rejection.
  ASSERT_TRUE(engine.submit(fx.place()).get().ok());
  const EngineResult hit = engine.submit(fx.place()).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  PlaceRequest bad = fx.place();
  bad.snapshot += 1;  // unknown hash
  EXPECT_EQ(engine.submit(bad).get().outcome, Outcome::RejectedBadRequest);

  const std::vector<RequestTrace> traces = engine.drain_traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, 1u);
  EXPECT_EQ(traces[1].id, 2u);
  EXPECT_EQ(traces[2].id, 3u);

  // Miss: computed on a worker — queue wait, compute, insert and delivery
  // all ran; resolve was timed inside execute.
  const RequestTrace& miss = traces[0];
  EXPECT_EQ(miss.outcome, Outcome::Ok);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_GT(miss.total_seconds, 0.0);
  EXPECT_GT(miss.stage(Stage::Compute), 0.0);
  EXPECT_GE(miss.stage(Stage::SnapshotResolve), 0.0);
  EXPECT_GT(miss.stage(Stage::CacheInsert), 0.0);
  EXPECT_GT(miss.stage(Stage::FutureDelivery), 0.0);
  for (double span : miss.stage_seconds) EXPECT_GE(span, 0.0);

  // Submit-time hit: answered before admission — the queue/compute spans
  // stay exactly 0, only the probe ran.
  const RequestTrace& cached = traces[1];
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_GT(cached.stage(Stage::CacheProbe), 0.0);
  EXPECT_EQ(cached.stage(Stage::QueueWait), 0.0);
  EXPECT_EQ(cached.stage(Stage::Compute), 0.0);
  EXPECT_EQ(cached.stage(Stage::CacheInsert), 0.0);

  // Rejection: traced with its outcome, no compute.
  EXPECT_EQ(traces[2].outcome, Outcome::RejectedBadRequest);
  EXPECT_EQ(traces[2].stage(Stage::CacheInsert), 0.0);

  const TraceStats stats = engine.metrics().tracing;
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.drained, 3u);
  EXPECT_EQ(stats.recorded, 0u);
}

TEST(EngineTrace, GreedyPlaceTracesPerRoundProfiles) {
  Fixture fx;
  EngineConfig config;
  config.tracing = true;
  Engine engine(fx.registry, config);
  const EngineResult result = engine.submit(fx.place(Algorithm::GD)).get();
  ASSERT_TRUE(result.ok());
  const std::vector<RequestTrace> traces = engine.drain_traces();
  ASSERT_EQ(traces.size(), 1u);
  // One committed round per service, in commit order, with positive timing
  // and the full candidate count evaluated each round.
  const std::vector<GreedyRoundProfile>& rounds = traces[0].greedy_rounds;
  ASSERT_EQ(rounds.size(), fx.snapshot->instance().service_count());
  double gain_total = 0;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    EXPECT_GT(rounds[r].candidates, 0u);
    EXPECT_GT(rounds[r].evaluations, 0u);
    EXPECT_GE(rounds[r].seconds, 0.0);
    EXPECT_EQ(rounds[r].host, result.place.placement[rounds[r].service]);
    gain_total += rounds[r].gain;
  }
  EXPECT_NEAR(gain_total, result.place.objective_value, 1e-9);
}

TEST(EngineTrace, ProfileHookIsOffByDefaultInDirectCalls) {
  Fixture fx;
  const ProblemInstance& instance = fx.snapshot->instance();
  // No hook: nothing observable changes (and nothing is invoked).
  const GreedyResult plain =
      greedy_placement(instance, ObjectiveKind::Distinguishability, 1);
  std::vector<GreedyRoundProfile> profiles;
  PlacementOptions options;
  options.profile_round = [&](const GreedyRoundProfile& p) {
    profiles.push_back(p);
  };
  const GreedyResult profiled = greedy_placement(
      instance, ObjectiveKind::Distinguishability, 1, options);
  EXPECT_EQ(plain.placement, profiled.placement);
  EXPECT_EQ(profiles.size(), instance.service_count());
}

TEST(EngineTrace, TracingNeverChangesResponses) {
  Fixture fx;
  std::vector<Request> mix;
  mix.push_back(fx.place(Algorithm::GD));
  mix.push_back(fx.place(Algorithm::GC));
  mix.push_back(fx.place(Algorithm::RD));
  EvaluateRequest eval;
  eval.snapshot = fx.snapshot->hash();
  eval.placement =
      greedy_placement(fx.snapshot->instance(),
                       ObjectiveKind::Distinguishability, 1)
          .placement;
  mix.push_back(eval);

  auto run = [&](bool tracing) {
    EngineConfig config;
    config.threads = 2;
    config.tracing = tracing;
    Engine engine(fx.registry, config);
    std::vector<EngineResult> results;
    for (std::future<EngineResult>& f : engine.submit(mix))
      results.push_back(f.get());
    return results;
  };
  const std::vector<EngineResult> off = run(false);
  const std::vector<EngineResult> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].outcome, on[i].outcome);
    EXPECT_EQ(off[i].place.placement, on[i].place.placement);
    EXPECT_EQ(off[i].place.objective_value, on[i].place.objective_value);
    EXPECT_EQ(off[i].metrics.coverage, on[i].metrics.coverage);
  }
}

TEST(EngineTrace, JsonExportCarriesEveryStageByName) {
  RequestTrace trace;
  trace.id = 42;
  trace.greedy_rounds.push_back(GreedyRoundProfile{0, 5, 5, 0.001, 1, 7, 3.0});
  const std::string json = to_json(std::vector<RequestTrace>{trace});
  for (const char* name :
       {"admission", "queue_wait", "snapshot_resolve", "cache_probe",
        "compute", "cache_insert", "future_delivery", "greedy_rounds"})
    EXPECT_NE(json.find(name), std::string::npos) << name;
}

TEST(EngineConfigValidation, RejectsInsteadOfClamping) {
  Fixture fx;
  EngineConfig config;
  config.max_queue_depth = 0;
  EXPECT_THROW(Engine(fx.registry, config), InvalidInput);

  config = EngineConfig{};
  config.adaptive_cache = true;
  config.cache_min_capacity = 100;
  config.cache_max_capacity = 50;  // max < min
  EXPECT_THROW(Engine(fx.registry, config), InvalidInput);

  config = EngineConfig{};
  config.adaptive_cache = true;
  config.cache_capacity = 0;  // disabled cache cannot adapt
  EXPECT_THROW(Engine(fx.registry, config), InvalidInput);

  config = EngineConfig{};
  config.adaptive_cache = true;
  config.working_set_headroom = 0.5;
  config.cache_capacity = 128;
  EXPECT_THROW(Engine(fx.registry, config), InvalidInput);

  config = EngineConfig{};
  config.tracing = true;
  config.trace_capacity = 0;
  EXPECT_THROW(Engine(fx.registry, config), InvalidInput);

  EXPECT_FALSE(EngineConfig{}.validate().empty() == false);
  EXPECT_TRUE(EngineConfig{}.validate().empty());
}

TEST(CacheAccounting, EvictionsChargePerTypeAndBytes) {
  ResultCache cache(2);
  auto place_result = std::make_shared<const EngineResult>();
  auto localize = std::make_shared<EngineResult>();
  localize->type = RequestType::Localize;
  localize->localization.suspects = {1, 2, 3};
  cache.insert("p", place_result);
  cache.insert("l", std::shared_ptr<const EngineResult>(localize));
  cache.insert("x", place_result);  // evicts "p" (LRU, a Place result)
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.evictions_by_type[static_cast<std::size_t>(
                RequestType::Place)],
            1u);
  EXPECT_GE(stats.evicted_bytes_estimate,
            std::string("p").size() + sizeof(EngineResult));

  cache.insert("y", place_result);  // evicts "l" (a Localize result)
  stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.evictions_by_type[static_cast<std::size_t>(
                RequestType::Localize)],
            1u);
  // The localize payload's vector contributes to the byte estimate.
  EXPECT_GE(stats.evicted_bytes_estimate,
            2 * sizeof(EngineResult) + 3 * sizeof(NodeId));
}

TEST(CacheAccounting, SetCapacityShrinkEvictsLruButKeepsHandedOutResults) {
  ResultCache cache(4);
  for (const char* key : {"a", "b", "c", "d"})
    cache.insert(key, std::make_shared<const EngineResult>());
  const std::shared_ptr<const EngineResult> promised = cache.find("a");
  ASSERT_NE(promised, nullptr);
  cache.set_capacity(1);
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().capacity, 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  // "a" was promoted by the find, so it is the one survivor…
  EXPECT_NE(cache.find("a"), nullptr);
  // …and even fully evicted entries stay alive for their holders.
  const std::shared_ptr<const EngineResult> kept = promised;
  EXPECT_EQ(kept->outcome, Outcome::Ok);
  cache.set_capacity(8);
  EXPECT_EQ(cache.stats().capacity, 8u);
}

TEST(AdaptiveController, WindowCountsDistinctKeysPerType) {
  AdaptiveCacheController controller(true, 1, 100, 4, 1.0, 1000);
  ResultCache cache(10);
  controller.observe("a", RequestType::Place, cache);
  controller.observe("a", RequestType::Place, cache);
  controller.observe("b", RequestType::Localize, cache);
  AdaptiveCacheStats stats = controller.stats();
  EXPECT_EQ(stats.working_set, 2u);
  EXPECT_EQ(
      stats.working_set_by_type[static_cast<std::size_t>(RequestType::Place)],
      1u);
  EXPECT_EQ(stats.working_set_by_type[static_cast<std::size_t>(
                RequestType::Localize)],
            1u);
  // Slide "a" fully out of the 4-slot window.
  for (int i = 0; i < 4; ++i)
    controller.observe("c", RequestType::Evaluate, cache);
  stats = controller.stats();
  EXPECT_EQ(stats.working_set, 1u);
  EXPECT_EQ(
      stats.working_set_by_type[static_cast<std::size_t>(RequestType::Place)],
      0u);
  EXPECT_EQ(stats.observed, 7u);
}

TEST(AdaptiveController, ResizesPastHysteresisAndClampsToBounds) {
  // Interval 4, headroom 1.0: a decision fires every 4th observation.
  AdaptiveCacheController controller(true, 2, 6, 16, 1.0, 4);
  ResultCache cache(2);
  for (int i = 0; i < 4; ++i)
    controller.observe("k" + std::to_string(i), RequestType::Place, cache);
  // Working set 4 > capacity 2 by more than 1/8: grow to 4.
  AdaptiveCacheStats stats = controller.stats();
  ASSERT_EQ(stats.resizes.size(), 1u);
  EXPECT_EQ(stats.resizes[0].old_capacity, 2u);
  EXPECT_EQ(stats.resizes[0].new_capacity, 4u);
  EXPECT_EQ(stats.resizes[0].working_set, 4u);
  EXPECT_EQ(cache.capacity(), 4u);
  // 8 distinct keys want 8, but the bound is 6: clamp.
  for (int i = 0; i < 4; ++i)
    controller.observe("m" + std::to_string(i), RequestType::Place, cache);
  EXPECT_EQ(cache.capacity(), 6u);
  // Stable working set: the next decision is within hysteresis, no event.
  const std::size_t resizes_before = controller.stats().resizes.size();
  for (int i = 0; i < 4; ++i)
    controller.observe("m" + std::to_string(i), RequestType::Place, cache);
  EXPECT_EQ(controller.stats().resizes.size(), resizes_before);
}

TEST(AdaptiveController, DisabledControllerIgnoresObservations) {
  AdaptiveCacheController controller(false, 0, 0, 0, 0.0, 0);
  ResultCache cache(3);
  controller.observe("a", RequestType::Place, cache);
  EXPECT_EQ(controller.stats().observed, 0u);
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_FALSE(controller.stats().enabled);
}

TEST(AdaptiveEngine, ResizesUnderLoadAndNeverChangesResponses) {
  Fixture fx;
  // Localize traffic with fresh failure sets: a large working set against a
  // tiny initial capacity forces upward resizes.
  const Placement placement =
      greedy_placement(fx.snapshot->instance(),
                       ObjectiveKind::Distinguishability, 1)
          .placement;
  std::vector<Request> mix;
  for (std::uint32_t i = 0; i < 64; ++i) {
    EvaluateRequest eval;
    eval.snapshot = fx.snapshot->hash();
    eval.placement = placement;
    eval.k = 1 + i % 4;  // distinct k => distinct canonical keys
    mix.push_back(eval);
  }
  mix.push_back(fx.place(Algorithm::GD));

  auto run = [&](bool adaptive) {
    EngineConfig config;
    config.threads = 4;
    config.cache_capacity = adaptive ? 2 : 1024;
    config.adaptive_cache = adaptive;
    config.cache_min_capacity = 2;
    config.cache_max_capacity = 64;
    config.working_set_window = 32;
    config.adaptation_interval = 8;
    Engine engine(fx.registry, config);
    std::vector<EngineResult> results;
    for (std::future<EngineResult>& f : engine.submit(mix))
      results.push_back(f.get());
    return std::make_pair(std::move(results), engine.metrics());
  };

  const auto [fixed_results, fixed_metrics] = run(false);
  const auto [adaptive_results, adaptive_metrics] = run(true);

  // Every response identical to the fixed-capacity engine's, cache churn
  // and resizes notwithstanding.
  ASSERT_EQ(fixed_results.size(), adaptive_results.size());
  for (std::size_t i = 0; i < fixed_results.size(); ++i) {
    ASSERT_TRUE(adaptive_results[i].ok());
    EXPECT_EQ(fixed_results[i].metrics.coverage,
              adaptive_results[i].metrics.coverage);
    EXPECT_EQ(fixed_results[i].metrics.distinguishability,
              adaptive_results[i].metrics.distinguishability);
    EXPECT_EQ(fixed_results[i].place.placement,
              adaptive_results[i].place.placement);
  }

  EXPECT_TRUE(adaptive_metrics.adaptive.enabled);
  EXPECT_GE(adaptive_metrics.adaptive.observed, mix.size());
  EXPECT_FALSE(adaptive_metrics.adaptive.resizes.empty());
  EXPECT_GE(adaptive_metrics.cache.capacity, 2u);
  EXPECT_LE(adaptive_metrics.cache.capacity, 64u);
  // The metrics JSON exports the adaptive section.
  const std::string json = to_json(adaptive_metrics);
  EXPECT_NE(json.find("\"adaptive_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"resize_events\""), std::string::npos);
  EXPECT_NE(json.find("\"final_capacity\""), std::string::npos);
}

TEST(AdaptiveEngine, InFlightResultsSurviveConcurrentShrink) {
  Fixture fx;
  EngineConfig config;
  config.threads = 4;
  config.cache_capacity = 2;
  config.adaptive_cache = true;
  config.cache_min_capacity = 2;
  config.cache_max_capacity = 8;
  config.working_set_window = 16;
  config.adaptation_interval = 4;
  Engine engine(fx.registry, config);

  // Hammer with distinct keys so the controller keeps re-deciding while
  // requests are in flight; every future must still deliver a full result
  // (shared_ptr payloads make eviction safe for promised entries).
  std::vector<Request> wave;
  for (std::uint32_t i = 0; i < 128; ++i) {
    EvaluateRequest eval;
    eval.snapshot = fx.snapshot->hash();
    eval.placement = {static_cast<NodeId>(i % 16),
                      static_cast<NodeId>((i * 7) % 16)};
    eval.k = 1;
    wave.push_back(eval);
  }
  std::vector<std::future<EngineResult>> futures = engine.submit(wave);
  std::size_t ok = 0;
  for (std::future<EngineResult>& f : futures) {
    const EngineResult result = f.get();
    if (result.ok()) {
      ++ok;
      EXPECT_GT(result.metrics.coverage, 0u);
    }
  }
  EXPECT_EQ(ok, futures.size());
}

}  // namespace
}  // namespace splace::engine
