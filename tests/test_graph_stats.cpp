#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "topology/rocketfuel.hpp"
#include "util/random.hpp"

namespace splace {
namespace {

TEST(DegreeProfileStats, PathGraph) {
  const DegreeProfile p = degree_profile(path_graph(5));
  EXPECT_EQ(p.histogram.at(1), 2u);
  EXPECT_EQ(p.histogram.at(2), 3u);
  EXPECT_EQ(p.min, 1u);
  EXPECT_EQ(p.max, 2u);
  EXPECT_DOUBLE_EQ(p.mean, 8.0 / 5.0);
}

TEST(DegreeProfileStats, EmptyGraph) {
  const DegreeProfile p = degree_profile(Graph{});
  EXPECT_TRUE(p.histogram.empty());
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
}

TEST(DegreeProfileStats, MeanIsHandshakeLemma) {
  Rng rng(1);
  const Graph g = random_connected(20, 35, rng);
  const DegreeProfile p = degree_profile(g);
  EXPECT_DOUBLE_EQ(p.mean, 2.0 * 35 / 20);
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete_graph(5)), 1.0);
}

TEST(Clustering, TreeIsZero) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(star_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path_graph(5)), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3. Triples: node0: C(2,2)=1, node1: 1,
  // node2: C(3,2)=3, node3: 0 -> 5 triples; 1 triangle -> 3 closed.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 3.0 / 5.0);
}

TEST(Clustering, InUnitInterval) {
  Rng rng(2);
  for (int t = 0; t < 5; ++t) {
    const Graph g = erdos_renyi(25, 0.3, rng);
    const double c = clustering_coefficient(g);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(MeanDistance, PathGraphClosedForm) {
  // Path on 3 nodes: distances (ordered pairs): 1,1,1,1,2,2 -> mean 8/6.
  EXPECT_DOUBLE_EQ(mean_distance(path_graph(3)), 8.0 / 6.0);
}

TEST(MeanDistance, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(mean_distance(complete_graph(6)), 1.0);
}

TEST(MeanDistance, IgnoresDisconnectedPairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(mean_distance(g), 1.0);
}

TEST(Assortativity, RegularGraphUndefinedIsZero) {
  // Every node of a ring has degree 2: zero variance -> 0 by convention.
  EXPECT_DOUBLE_EQ(degree_assortativity(ring_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(Graph(3)), 0.0);
}

TEST(Assortativity, StarIsStronglyDisassortative) {
  // Hubs connect only to leaves: the canonical disassortative case (= -1).
  EXPECT_NEAR(degree_assortativity(star_graph(8)), -1.0, 1e-12);
}

TEST(Assortativity, WithinMinusOneOne) {
  Rng rng(3);
  for (int t = 0; t < 5; ++t) {
    const Graph g = random_connected(20, 40, rng);
    const double r = degree_assortativity(g);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(TopologyCharacter, StandInsAreHubbyAndDisassortative) {
  // POP-level ISP maps are disassortative (hubs attach to leaves); verify
  // the stand-ins share that signature.
  for (const Graph& g :
       {topology::abovenet(), topology::tiscali(), topology::att()}) {
    EXPECT_LT(degree_assortativity(g), 0.05) << g.node_count();
    const DegreeProfile p = degree_profile(g);
    EXPECT_GT(static_cast<double>(p.max), 2.0 * p.mean);
  }
}

}  // namespace
}  // namespace splace
