#include "localization/augmentation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "localization/localizer.hpp"
#include "localization/observation.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace splace {
namespace {

TEST(ProbeSeparates, ExactlyOneSideHit) {
  const MeasurementPath probe(5, {0, 1});
  EXPECT_TRUE(probe_separates(probe, {0}, {2}));
  EXPECT_FALSE(probe_separates(probe, {0}, {1}));   // both hit
  EXPECT_FALSE(probe_separates(probe, {2}, {3}));   // neither hit
  EXPECT_TRUE(probe_separates(probe, {0, 2}, {3})); // one side hit
  EXPECT_TRUE(probe_separates(probe, {}, {1}));     // empty vs hit
}

TEST(PlanAugmentation, TrivialWithOneCandidate) {
  const AugmentationPlan plan = plan_augmentation({}, {{1}});
  EXPECT_TRUE(plan.fully_disambiguates);
  EXPECT_TRUE(plan.probes.empty());
}

TEST(PlanAugmentation, SingleProbeSplitsPair) {
  std::vector<MeasurementPath> pool{MeasurementPath(4, {0})};
  const AugmentationPlan plan = plan_augmentation(pool, {{0}, {1}});
  EXPECT_TRUE(plan.fully_disambiguates);
  EXPECT_EQ(plan.probes, (std::vector<std::size_t>{0}));
}

TEST(PlanAugmentation, ReportsIrreducibleAmbiguity) {
  // No probe distinguishes {0} from {1} when every pool path covers both.
  std::vector<MeasurementPath> pool{MeasurementPath(4, {0, 1}),
                                    MeasurementPath(4, {0, 1, 2})};
  const AugmentationPlan plan = plan_augmentation(pool, {{0}, {1}});
  EXPECT_FALSE(plan.fully_disambiguates);
  EXPECT_EQ(plan.remaining_pairs, 1u);
}

TEST(PlanAugmentation, GreedyPicksHighestGainFirst) {
  // Probe 0 separates only one pair; probe 1 separates both -> picked first
  // and alone suffices.
  std::vector<MeasurementPath> pool{MeasurementPath(6, {0}),
                                    MeasurementPath(6, {0, 1})};
  const std::vector<std::vector<NodeId>> candidates{{0}, {1}, {2}};
  // pairs: (0,1): probe0 separates ({0} hit, {1} no) yes; probe1 no (both
  // hit? {1} hit by probe1, {0} hit -> no). (0,2): probe0 yes, probe1 yes.
  // (1,2): probe0 no, probe1 yes ({1} hit, {2} not).
  const AugmentationPlan plan = plan_augmentation(pool, candidates);
  EXPECT_TRUE(plan.fully_disambiguates);
  // probe0 separates 2 pairs, probe1 separates 2 pairs; tie -> smaller
  // index (probe0), then probe1 finishes (1,2).
  ASSERT_EQ(plan.probes.size(), 2u);
  EXPECT_EQ(plan.probes[0], 0u);
  EXPECT_EQ(plan.probes[1], 1u);
}

TEST(PlanAugmentation, NeverWorseThanExactByLogFactor) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 5 + rng.index(3);
    std::vector<MeasurementPath> pool;
    for (int p = 0; p < 6; ++p)
      pool.emplace_back(n, testing::random_path_nodes(n, 1 + rng.index(3),
                                                      rng));
    std::vector<std::vector<NodeId>> candidates;
    for (int c = 0; c < 4; ++c)
      candidates.push_back(testing::random_path_nodes(n, 1, rng));

    const AugmentationPlan greedy = plan_augmentation(pool, candidates);
    if (!greedy.fully_disambiguates) {
      // Then no subset works either (greedy stops only when nothing helps
      // and separation is monotone).
      EXPECT_THROW(minimum_augmentation_exact(pool, candidates),
                   InvalidInput);
      continue;
    }
    const auto exact = minimum_augmentation_exact(pool, candidates);
    EXPECT_GE(greedy.probes.size(), exact.size());
    // Greedy set cover bound: |greedy| <= (ln(pairs)+1)|OPT|; with <= 6
    // pairs that is <= 2.8 |OPT|.
    EXPECT_LE(static_cast<double>(greedy.probes.size()),
              2.8 * static_cast<double>(std::max<std::size_t>(exact.size(),
                                                              1)));
  }
}

TEST(ProbePool, OnePathPerReachableTarget) {
  Rng rng(4);
  const Graph g = random_connected(10, 16, rng);
  const RoutingTable routing(g);
  const auto pool = probe_pool(routing, {0, 5});
  EXPECT_EQ(pool.size(), 20u);
  EXPECT_THROW(probe_pool(routing, {99}), ContractViolation);
}

TEST(Augmentation, EndToEndDisambiguatesRealObservation) {
  // Build an ambiguous passive observation, plan probes, verify that the
  // probes' (hypothetical) outcomes isolate the truth.
  Rng rng(5);
  const Graph g = random_connected(12, 18, rng);
  const RoutingTable routing(g);

  PathSet passive(g.node_count());
  passive.add(MeasurementPath(g.node_count(), routing.route(0, 6)));
  passive.add(MeasurementPath(g.node_count(), routing.route(1, 7)));

  // Find a failing node that leaves ambiguity.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const FailureScenario scenario = observe(passive, {v});
    if (scenario.failed_paths.none()) continue;
    const LocalizationResult loc = localize(passive, scenario, 1);
    if (loc.unique()) continue;

    const auto pool = probe_pool(routing, {0, 1, 2});
    const AugmentationPlan plan =
        plan_augmentation(pool, loc.consistent_sets);
    if (!plan.fully_disambiguates) continue;

    // Simulate the probe outcomes under the true failure and check that
    // exactly one candidate matches all of them.
    std::size_t matching = 0;
    for (const auto& candidate : loc.consistent_sets) {
      bool consistent = true;
      for (std::size_t p : plan.probes) {
        auto hits = [&](const std::vector<NodeId>& f) {
          for (NodeId x : f)
            if (pool[p].traverses(x)) return true;
          return false;
        };
        if (hits(candidate) != hits(scenario.failed_nodes)) {
          consistent = false;
          break;
        }
      }
      if (consistent) ++matching;
    }
    EXPECT_EQ(matching, 1u);
    return;  // one full end-to-end case is enough
  }
  GTEST_SKIP() << "no ambiguous scenario found for this seed";
}

}  // namespace
}  // namespace splace
