// Heavier deterministic stress checks: larger universes, denser path sets,
// and structured topologies (fat-tree, Waxman) pushed through the full
// pipeline. These guard the O(·) claims and word-boundary handling that
// small unit tests cannot reach.
#include <gtest/gtest.h>

#include "core/splace.hpp"
#include "test_helpers.hpp"

namespace splace {
namespace {

TEST(Stress, EquivalencePartitionOnLargeUniverse) {
  // 1000 nodes (crosses many 64-bit words), 300 random paths.
  Rng rng(1);
  const std::size_t n = 1000;
  EquivalenceClasses classes(n);
  EquivalenceGraph literal(0);  // too big for the literal form; skip it
  (void)literal;
  PathSet paths(n);
  for (int i = 0; i < 300; ++i)
    paths.add_nodes(testing::random_path_nodes(n, 1 + rng.index(12), rng));
  classes.add_paths(paths);

  // Invariants scale-independently.
  EXPECT_EQ(classes.identifiable_count(), identifiability(paths, 1));
  std::size_t degree_sum = 0;
  for (NodeId x = 0; x <= n; ++x)
    degree_sum += classes.degree_of_uncertainty(x);
  EXPECT_EQ(degree_sum,
            2 * ((n + 1) * n / 2 - classes.distinguishable_pairs()));
}

TEST(Stress, FatTreePipelineEndToEnd) {
  // k=6 fat tree: 45 switches; clients on edge switches of distinct pods.
  Graph g = fat_tree(6);
  std::vector<Service> services;
  for (int s = 0; s < 3; ++s) {
    Service svc;
    svc.name = "tenant" + std::to_string(s);
    svc.alpha = 1.0;
    // Edge switches of pod p sit at cores + p*6 + 3..5.
    const std::size_t pod_a = static_cast<std::size_t>(2 * s);
    const std::size_t pod_b = pod_a + 1;
    svc.clients = {static_cast<NodeId>(9 + pod_a * 6 + 3),
                   static_cast<NodeId>(9 + pod_b * 6 + 4)};
    services.push_back(std::move(svc));
  }
  const ProblemInstance inst(std::move(g), services);
  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  const MetricReport m = evaluate_placement_k1(inst, gd.placement);
  EXPECT_GT(m.coverage, 0u);
  EXPECT_GT(m.distinguishability, 0u);
  // Localize a core-switch failure.
  const PathSet paths = inst.paths_for_placement(gd.placement);
  const LocalizationResult loc = localize(paths, observe(paths, {0}), 1);
  EXPECT_TRUE(std::find(loc.consistent_sets.begin(),
                        loc.consistent_sets.end(),
                        std::vector<NodeId>{0}) != loc.consistent_sets.end()
              || observe(paths, {0}).failed_paths.none());
}

TEST(Stress, WaxmanLargestComponentPipeline) {
  Rng rng(2);
  const Graph g = waxman(80, 0.6, 0.4, rng);
  // Waxman can be disconnected; run on it only if the largest component is
  // big enough, using clients from one BFS tree.
  if (largest_component_size(g) < 20) GTEST_SKIP();
  const ComponentLabeling labels = connected_components(g);
  // Find the largest component's label.
  std::vector<std::size_t> sizes(labels.component_count, 0);
  for (std::size_t l : labels.label) ++sizes[l];
  const std::size_t big = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (labels.label[v] == big) members.push_back(v);

  Service svc;
  svc.alpha = 1.0;
  svc.clients = {members[0], members[members.size() / 2], members.back()};
  Graph copy = g;
  const ProblemInstance inst(std::move(copy), {svc});
  const GreedyResult gd = greedy_placement(inst, ObjectiveKind::Coverage);
  EXPECT_GT(gd.objective_value, 0.0);
}

TEST(Stress, PathSetDedupScales) {
  // 5000 insertions collapsing to few distinct paths must stay exact.
  PathSet set(64);
  Rng rng(3);
  std::size_t accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<NodeId> nodes{static_cast<NodeId>(rng.index(8))};
    if (set.add_nodes(nodes)) ++accepted;
  }
  EXPECT_EQ(set.size(), accepted);
  EXPECT_LE(set.size(), 8u);
}

TEST(Stress, GreedyOnAttWithAllObjectivesUnderOneSecondEach) {
  const topology::CatalogEntry& entry = topology::catalog_entry("AT&T");
  const ProblemInstance inst = make_instance(entry, 1.0);
  for (ObjectiveKind kind :
       {ObjectiveKind::Coverage, ObjectiveKind::Identifiability,
        ObjectiveKind::Distinguishability}) {
    const auto start = std::chrono::steady_clock::now();
    const GreedyResult result = greedy_placement(inst, kind);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_GT(result.objective_value, 0.0);
    EXPECT_LT(elapsed.count(), 5) << to_string(kind);
  }
}

TEST(Stress, LocalizationWithManyFailures) {
  // k = 3 consistent-set enumeration over a busy instance stays correct.
  const topology::CatalogEntry& entry = topology::catalog_entry("Abovenet");
  const ProblemInstance inst = make_instance(entry, 0.6);
  const PathSet paths = inst.paths_for_placement(
      greedy_placement(inst, ObjectiveKind::Distinguishability).placement);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const FailureScenario scenario = random_scenario(paths, 3, rng);
    const LocalizationResult loc = localize(paths, scenario, 3);
    EXPECT_TRUE(std::find(loc.consistent_sets.begin(),
                          loc.consistent_sets.end(), scenario.failed_nodes)
                != loc.consistent_sets.end());
  }
}

TEST(Stress, LinkTransformOnLargestNetwork) {
  const Graph g = topology::att();
  const LinkNodeTransform transform(g);
  EXPECT_EQ(transform.augmented().node_count(), 108u + 141u);
  const RoutingTable routing(transform.augmented());
  EXPECT_EQ(routing.diameter(), 2 * RoutingTable(g).diameter());
}

}  // namespace
}  // namespace splace
