#include "localization/fusion.hpp"

#include <gtest/gtest.h>

#include "localization/observation.hpp"
#include "monitoring/failure_sets.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace splace {
namespace {

DynamicBitset bits(std::size_t n, const std::vector<std::size_t>& idx) {
  DynamicBitset b(n);
  for (std::size_t i : idx) b.set(i);
  return b;
}

TEST(Fusion, StartsWithAllOfFk) {
  const PathSet paths = testing::make_paths(4, {{0, 1}, {2}});
  const EvidenceFusion fusion(paths, 2);
  EXPECT_EQ(fusion.candidates().size(), failure_set_count(4, 2));
  EXPECT_FALSE(fusion.unique());
}

TEST(Fusion, ValidatesEvidenceDimensions) {
  const PathSet paths = testing::make_paths(4, {{0, 1}, {2}});
  EvidenceFusion fusion(paths, 1);
  EpochEvidence bad;
  bad.exercised = DynamicBitset(1);
  bad.failed = DynamicBitset(1);
  EXPECT_THROW(fusion.add_evidence(bad), ContractViolation);

  EpochEvidence not_subset;
  not_subset.exercised = bits(2, {0});
  not_subset.failed = bits(2, {1});  // failed path not exercised
  EXPECT_THROW(fusion.add_evidence(not_subset), ContractViolation);
}

TEST(Fusion, FullObservationMatchesLocalizer) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.index(4);
    const PathSet paths =
        testing::random_path_set(n, 2 + rng.index(6), 3, rng);
    const FailureScenario scenario = random_scenario(paths, 1, rng);

    EvidenceFusion fusion(paths, 1);
    fusion.add_evidence(
        EvidenceFusion::full_observation(paths, scenario.failed_paths));
    const LocalizationResult loc = localize(paths, scenario, 1);
    EXPECT_EQ(fusion.candidates(), loc.consistent_sets);
  }
}

TEST(Fusion, PartialObservationIsWeaker) {
  // Exercising fewer paths can only leave MORE candidates.
  const PathSet paths = testing::make_paths(4, {{0}, {1}, {2}, {3}});
  const FailureScenario scenario = observe(paths, {2});

  EvidenceFusion full(paths, 1);
  full.add_evidence(
      EvidenceFusion::full_observation(paths, scenario.failed_paths));

  EvidenceFusion partial(paths, 1);
  EpochEvidence e;
  e.exercised = bits(4, {2});  // only path 2 exercised
  e.failed = bits(4, {2});
  partial.add_evidence(e);

  EXPECT_TRUE(full.unique());
  EXPECT_GE(partial.candidates().size(), full.candidates().size());
  // With singleton paths even the partial view pins {2}; a shared-path
  // instance shows the actual weakening:
  const PathSet shared = testing::make_paths(3, {{0, 1}, {1, 2}});
  EvidenceFusion weak(shared, 1);
  EpochEvidence only_first;
  only_first.exercised = bits(2, {0});
  only_first.failed = bits(2, {0});
  weak.add_evidence(only_first);
  // Path {0,1} failed, path {1,2} unobserved: {0}, {1} both possible.
  EXPECT_EQ(weak.candidates().size(), 2u);
}

TEST(Fusion, SequentialEpochsShrinkMonotonically) {
  Rng rng(2);
  const PathSet paths = testing::random_path_set(8, 8, 3, rng);
  const FailureScenario scenario = random_scenario(paths, 1, rng);

  EvidenceFusion fusion(paths, 1);
  std::size_t last = fusion.candidates().size();
  // Reveal paths a few at a time, always consistently with the truth.
  for (std::size_t start = 0; start < paths.size(); start += 3) {
    EpochEvidence e;
    e.exercised = DynamicBitset(paths.size());
    e.failed = DynamicBitset(paths.size());
    for (std::size_t i = start; i < std::min(paths.size(), start + 3); ++i) {
      e.exercised.set(i);
      if (scenario.failed_paths.test(i)) e.failed.set(i);
    }
    fusion.add_evidence(e);
    EXPECT_LE(fusion.candidates().size(), last);
    last = fusion.candidates().size();
    // Truth always survives consistent evidence.
    EXPECT_TRUE(std::find(fusion.candidates().begin(),
                          fusion.candidates().end(),
                          scenario.failed_nodes) !=
                fusion.candidates().end());
  }
}

TEST(Fusion, ContradictoryEvidenceEmptiesCandidates) {
  const PathSet paths = testing::make_paths(3, {{0}, {0, 1}});
  EvidenceFusion fusion(paths, 1);
  EpochEvidence impossible;
  impossible.exercised = bits(2, {0, 1});
  impossible.failed = bits(2, {0});  // {0} failed but superset path normal
  fusion.add_evidence(impossible);
  EXPECT_TRUE(fusion.contradictory());
}

TEST(Fusion, DifferentEpochViewsCombineToUnique) {
  // Two nodes share path A; path B separates them but is exercised only in
  // a later epoch: fusion becomes unique exactly then.
  const PathSet paths = testing::make_paths(3, {{0, 1}, {1, 2}});
  const FailureScenario scenario = observe(paths, {1});

  EvidenceFusion fusion(paths, 1);
  EpochEvidence first;
  first.exercised = bits(2, {0});
  first.failed = bits(2, {0});
  fusion.add_evidence(first);
  EXPECT_FALSE(fusion.unique());  // {0} and {1} both explain epoch 1

  EpochEvidence second;
  second.exercised = bits(2, {1});
  second.failed = bits(2, {1});  // path {1,2} failed too -> must be node 1
  fusion.add_evidence(second);
  ASSERT_TRUE(fusion.unique());
  EXPECT_EQ(fusion.candidates().front(), scenario.failed_nodes);
}

}  // namespace
}  // namespace splace
