#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "placement/baselines.hpp"
#include "placement/greedy.hpp"
#include "test_helpers.hpp"
#include "util/string_util.hpp"

namespace splace {
namespace {

sim::SimConfig trace_config() {
  sim::SimConfig config;
  config.duration = 300.0;
  config.request_rate = 2.0;
  config.mtbf = 200.0;
  config.mttr = 25.0;
  config.epoch = 2.0;
  config.seed = 3;
  return config;
}

TEST(SimTrace, SameAggregateReportAsUntraced) {
  Rng rng(1);
  const auto inst = testing::random_instance(12, 20, 3, 2, 1.0, rng);
  const Placement placement = best_qos_placement(inst);
  const sim::SimReport plain = sim::simulate(inst, placement, trace_config());
  const sim::TracedRun traced =
      sim::simulate_traced(inst, placement, trace_config());
  EXPECT_EQ(traced.report.requests_total, plain.requests_total);
  EXPECT_EQ(traced.report.failures_injected, plain.failures_injected);
  EXPECT_EQ(traced.report.failures_detected, plain.failures_detected);
  EXPECT_EQ(traced.report.localizations_attempted,
            plain.localizations_attempted);
  EXPECT_DOUBLE_EQ(traced.report.mean_ambiguity, plain.mean_ambiguity);
}

TEST(SimTrace, OneRecordPerEpoch) {
  Rng rng(2);
  const auto inst = testing::random_instance(10, 16, 2, 2, 1.0, rng);
  const sim::SimConfig config = trace_config();
  const sim::TracedRun run =
      sim::simulate_traced(inst, best_qos_placement(inst), config);
  // Epochs fire at epoch, 2*epoch, ... <= duration.
  const auto expected =
      static_cast<std::size_t>(config.duration / config.epoch);
  EXPECT_EQ(run.trace.epochs.size(), expected);
  // Times strictly increasing by epoch.
  for (std::size_t i = 1; i < run.trace.epochs.size(); ++i)
    EXPECT_GT(run.trace.epochs[i].time, run.trace.epochs[i - 1].time);
}

TEST(SimTrace, RecordsAreInternallyConsistent) {
  Rng rng(3);
  const auto inst = testing::random_instance(12, 22, 3, 2, 1.0, rng);
  const sim::TracedRun run = sim::simulate_traced(
      inst,
      greedy_placement(inst, ObjectiveKind::Distinguishability).placement,
      trace_config());
  std::size_t attempted = 0;
  std::size_t truthful = 0;
  for (const sim::EpochRecord& e : run.trace.epochs) {
    EXPECT_LE(e.failed_paths, e.observed_paths);
    if (e.localization_ran) {
      ++attempted;
      EXPECT_GT(e.failed_paths, 0u);
      // candidates may be 0: a failure mid-epoch can yield an observation
      // no *static* failure set explains (one path saw the node up, another
      // saw it down). Truth membership then must be false.
      if (e.candidates == 0) {
        EXPECT_FALSE(e.truth_among_candidates);
      }
      if (e.truth_among_candidates) ++truthful;
    }
  }
  EXPECT_EQ(attempted, run.report.localizations_attempted);
  EXPECT_EQ(truthful, run.report.localizations_containing_truth);
}

TEST(SimTrace, EventfulEpochCountsFailedObservations) {
  Rng rng(4);
  const auto inst = testing::random_instance(10, 16, 2, 2, 1.0, rng);
  const sim::TracedRun run =
      sim::simulate_traced(inst, best_qos_placement(inst), trace_config());
  std::size_t manual = 0;
  for (const sim::EpochRecord& e : run.trace.epochs)
    if (e.failed_paths > 0) ++manual;
  EXPECT_EQ(run.trace.eventful_epochs(), manual);
}

TEST(SimTrace, CsvShape) {
  Rng rng(5);
  const auto inst = testing::random_instance(10, 16, 2, 2, 1.0, rng);
  const sim::TracedRun run =
      sim::simulate_traced(inst, best_qos_placement(inst), trace_config());
  std::ostringstream oss;
  run.trace.to_csv(oss);
  const auto lines = split(oss.str(), '\n');
  EXPECT_EQ(lines[0],
            "time,down_nodes,observed_paths,failed_paths,localization_ran,"
            "candidates,truth_among_candidates");
  // header + one row per epoch + trailing empty.
  EXPECT_EQ(lines.size(), run.trace.epochs.size() + 2);
}

TEST(SimTrace, DeterministicForSameSeed) {
  Rng rng(6);
  const auto inst = testing::random_instance(10, 18, 2, 2, 1.0, rng);
  const Placement placement = best_qos_placement(inst);
  std::ostringstream a;
  std::ostringstream b;
  sim::simulate_traced(inst, placement, trace_config()).trace.to_csv(a);
  sim::simulate_traced(inst, placement, trace_config()).trace.to_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace splace
