// End-to-end pipeline tests: catalog topology -> problem instance ->
// placement -> failure injection -> localization, exercising the public API
// the way the examples and benches do.
#include <gtest/gtest.h>

#include "core/splace.hpp"

namespace splace {
namespace {

TEST(Integration, TiscaliFullPipeline) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance inst = make_instance(entry, 0.6);

  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  const PathSet paths = inst.paths_for_placement(gd.placement);
  EXPECT_EQ(paths.node_count(), 51u);
  EXPECT_GE(paths.size(), 3u);  // >= services (dedup may merge client paths)

  // Every 1-identifiable node's failure is uniquely localized.
  const DynamicBitset s1 = identifiable_nodes(paths, 1);
  std::size_t checked = 0;
  for (NodeId v = 0; v < inst.node_count() && checked < 10; ++v) {
    if (!s1.test(v)) continue;
    ++checked;
    const LocalizationResult loc = localize(paths, observe(paths, {v}), 1);
    EXPECT_TRUE(loc.unique()) << "node " << v;
    EXPECT_EQ(loc.consistent_sets.front(), (std::vector<NodeId>{v}));
  }
  EXPECT_GT(checked, 0u);
}

TEST(Integration, MonitoringAwareBeatsQosOnLocalizationUncertainty) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance inst = make_instance(entry, 0.8);

  const Placement qos = best_qos_placement(inst);
  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);

  // Lemma 3 link: higher |D_1| <=> lower average localization uncertainty.
  const PathSet qos_paths = inst.paths_for_placement(qos);
  const PathSet gd_paths = inst.paths_for_placement(gd.placement);
  EXPECT_GE(distinguishability(gd_paths, 1),
            distinguishability(qos_paths, 1));
  EXPECT_LE(average_uncertainty(gd_paths, 1),
            average_uncertainty(qos_paths, 1));
}

TEST(Integration, AbovenetGreedyNearOptimal) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Abovenet");
  const ProblemInstance inst = make_instance(entry, 0.4);
  const auto bf = brute_force_k1(inst);
  ASSERT_TRUE(bf.has_value());
  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  EXPECT_GE(2.0 * gd.objective_value,
            static_cast<double>(bf->distinguishability.value));
}

TEST(Integration, UncertaintyDistributionIsBimodalShaped) {
  // Fig. 8 structure: spike at 0 (identifiable covered nodes) and mass at
  // the uncovered-cluster degree.
  const topology::CatalogEntry& entry = topology::catalog_entry("AT&T");
  const ProblemInstance inst = make_instance(entry, 0.6);
  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  const Histogram hist = uncertainty_distribution_k1(inst, gd.placement);
  EXPECT_EQ(hist.total(), inst.node_count() + 1);
  EXPECT_GT(hist.fraction(0), 0.0);  // some identifiable nodes
  // The uncovered cluster sits at degree = #uncovered (nodes + v0 − 1).
  const MetricReport report = evaluate_placement_k1(inst, gd.placement);
  const std::size_t uncovered = inst.node_count() - report.coverage;
  EXPECT_GT(hist.fraction(uncovered), 0.0);
}

TEST(Integration, EquivalenceGraphLiteralAgreesOnRealTopology) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Abovenet");
  const ProblemInstance inst = make_instance(entry, 0.5);
  const GreedyResult gc = greedy_placement(inst, ObjectiveKind::Coverage);
  const PathSet paths = inst.paths_for_placement(gc.placement);

  EquivalenceGraph q(inst.node_count());
  q.add_paths(paths);
  EquivalenceClasses classes(inst.node_count());
  classes.add_paths(paths);
  EXPECT_EQ(q.identifiable_count(), classes.identifiable_count());
  EXPECT_EQ(q.distinguishable_pairs(), classes.distinguishable_pairs());
}

TEST(Integration, CapacityConstrainedPipeline) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  ProblemInstance inst = make_instance(entry, 1.0);
  CapacityConstraints constraints;
  constraints.host_capacity.assign(inst.node_count(), 1.0);
  const auto result = greedy_capacity_placement(
      inst, constraints, ObjectiveKind::Distinguishability);
  EXPECT_TRUE(result.complete);
  // No host hosts two unit-demand services.
  std::vector<int> count(inst.node_count(), 0);
  for (NodeId h : result.placement) ++count[h];
  for (int c : count) EXPECT_LE(c, 1);
}

TEST(Integration, InterestPipelineOnCoreNodes) {
  const topology::CatalogEntry& entry = topology::catalog_entry("Tiscali");
  const ProblemInstance inst = make_instance(entry, 1.0);
  // Interest: the non-dangling core.
  DynamicBitset interest(inst.node_count());
  for (NodeId v = 0; v < inst.node_count(); ++v)
    if (inst.graph().degree(v) > 1) interest.set(v);
  auto state = make_interest_objective_state(
      ObjectiveKind::Distinguishability, inst.node_count(), 1, interest);
  const GreedyResult result = greedy_placement(inst, std::move(state));
  EXPECT_GT(result.objective_value, 0.0);
}

TEST(Integration, SerializationRoundTripOfGeneratedTopology) {
  const Graph g = topology::abovenet();
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(topology::stats_of(back).links, topology::stats_of(g).links);
  EXPECT_TRUE(is_connected(back));
}

}  // namespace
}  // namespace splace
