#include "placement/service.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "monitoring/coverage.hpp"
#include "placement/candidates.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace splace {
namespace {

ProblemInstance path_instance(double alpha) {
  // Path 0-1-2-3-4, one service, clients {0, 4}.
  Service svc;
  svc.name = "s";
  svc.clients = {0, 4};
  svc.alpha = alpha;
  return ProblemInstance(path_graph(5), {svc});
}

TEST(Instance, BasicAccessors) {
  const ProblemInstance inst = path_instance(0.5);
  EXPECT_EQ(inst.node_count(), 5u);
  EXPECT_EQ(inst.service_count(), 1u);
  EXPECT_EQ(inst.services()[0].clients, (std::vector<NodeId>{0, 4}));
}

TEST(Instance, CandidateHostsMatchFormula) {
  // d̄(h) = (max(h,4-h) − 2)/2; α=0.5 admits d ≤ 3 → hosts {1,2,3}.
  const ProblemInstance inst = path_instance(0.5);
  EXPECT_EQ(inst.candidate_hosts(0), (std::vector<NodeId>{1, 2, 3}));
}

TEST(Instance, AlphaZeroSingleHost) {
  const ProblemInstance inst = path_instance(0.0);
  EXPECT_EQ(inst.candidate_hosts(0), (std::vector<NodeId>{2}));
}

TEST(Instance, AlphaOneAllHosts) {
  const ProblemInstance inst = path_instance(1.0);
  EXPECT_EQ(inst.candidate_hosts(0).size(), 5u);
}

TEST(Instance, WorstDistance) {
  const ProblemInstance inst = path_instance(1.0);
  EXPECT_EQ(inst.worst_distance(0, 2), 2u);
  EXPECT_EQ(inst.worst_distance(0, 0), 4u);
}

TEST(Instance, PathsForHostOnePathPerClient) {
  const ProblemInstance inst = path_instance(1.0);
  const PathSet& paths = inst.paths_for(0, 2);
  EXPECT_EQ(paths.size(), 2u);  // client 0 and client 4
  EXPECT_TRUE(paths.contains(MeasurementPath(5, {0, 1, 2})));
  EXPECT_TRUE(paths.contains(MeasurementPath(5, {2, 3, 4})));
}

TEST(Instance, CoLocatedClientGivesDegeneratePath) {
  const ProblemInstance inst = path_instance(1.0);
  const PathSet& paths = inst.paths_for(0, 0);
  // Client 0 at host 0: path {0}; client 4: path {0,1,2,3,4}.
  EXPECT_TRUE(paths.contains(MeasurementPath(5, {0})));
  EXPECT_TRUE(paths.contains(MeasurementPath(5, {0, 1, 2, 3, 4})));
}

TEST(Instance, PathsForNonCandidateThrows) {
  const ProblemInstance inst = path_instance(0.0);
  EXPECT_FALSE(inst.is_candidate(0, 0));
  EXPECT_THROW(inst.paths_for(0, 0), ContractViolation);
}

TEST(Instance, IsCandidateConsistent) {
  const ProblemInstance inst = path_instance(0.5);
  for (NodeId h = 0; h < 5; ++h) {
    const auto& hosts = inst.candidate_hosts(0);
    const bool expected =
        std::find(hosts.begin(), hosts.end(), h) != hosts.end();
    EXPECT_EQ(inst.is_candidate(0, h), expected);
  }
}

TEST(Instance, BestQosHostMinimizesWorstDistance) {
  const ProblemInstance inst = path_instance(1.0);
  EXPECT_EQ(inst.best_qos_host(0), 2u);
}

TEST(Instance, BestQosHostSmallestIdOnTies) {
  // Ring of 4, clients {0,2}: hosts 1 and 3 tie at distance 1.
  Service svc;
  svc.clients = {0, 2};
  svc.alpha = 1.0;
  const ProblemInstance inst(ring_graph(4), {svc});
  EXPECT_EQ(inst.best_qos_host(0), 1u);
}

TEST(Instance, BestQosHostAlwaysCandidate) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = testing::random_instance(14, 24, 3, 2, 0.0, rng);
    for (std::size_t s = 0; s < inst.service_count(); ++s)
      EXPECT_TRUE(inst.is_candidate(s, inst.best_qos_host(s)));
  }
}

TEST(Instance, PlacementPathsAreUnion) {
  Service a;
  a.clients = {0};
  a.alpha = 1.0;
  Service b;
  b.clients = {4};
  b.alpha = 1.0;
  const ProblemInstance inst(path_graph(5), {a, b});
  const PathSet paths = inst.paths_for_placement({2, 2});
  // Paths {0,1,2} and {2,3,4}.
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_EQ(coverage(paths), 5u);
}

TEST(Instance, PlacementPathsDeduplicateAcrossServices) {
  Service a;
  a.clients = {0};
  a.alpha = 1.0;
  Service b = a;  // identical clients
  const ProblemInstance inst(path_graph(3), {a, b});
  const PathSet paths = inst.paths_for_placement({2, 2});
  EXPECT_EQ(paths.size(), 1u);  // both produce {0,1,2}
}

TEST(Instance, ValidationErrors) {
  Service ok;
  ok.clients = {0};
  ok.alpha = 0.5;
  EXPECT_THROW(ProblemInstance(path_graph(3), {}), ContractViolation);

  Service no_clients;
  no_clients.alpha = 0.5;
  EXPECT_THROW(ProblemInstance(path_graph(3), {no_clients}),
               ContractViolation);

  Service bad_alpha = ok;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(ProblemInstance(path_graph(3), {bad_alpha}),
               ContractViolation);

  Service bad_client = ok;
  bad_client.clients = {7};
  EXPECT_THROW(ProblemInstance(path_graph(3), {bad_client}),
               ContractViolation);

  Placement wrong_size{0};
  const ProblemInstance inst(path_graph(3), {ok, ok});
  EXPECT_THROW(inst.paths_for_placement(wrong_size), ContractViolation);
}

TEST(Instance, PathsMatchRoutingTable) {
  Rng rng(44);
  const auto inst = testing::random_instance(16, 28, 2, 3, 1.0, rng);
  for (std::size_t s = 0; s < inst.service_count(); ++s) {
    for (NodeId h : inst.candidate_hosts(s)) {
      const PathSet& paths = inst.paths_for(s, h);
      for (NodeId c : inst.services()[s].clients) {
        const MeasurementPath expected(inst.node_count(),
                                       inst.routing().route(c, h));
        EXPECT_TRUE(paths.contains(expected));
      }
    }
  }
}

}  // namespace
}  // namespace splace
