// Property tests pinned to the paper's formal statements: Lemma 3,
// Theorem 4 / Corollary 5 (via exact MSC), Lemmas 13/17 + Theorem 11
// (greedy guarantees), Propositions 15/16 (non-submodularity), and
// Theorem 19 (distinguishability approximates identifiability).
#include <gtest/gtest.h>

#include <cmath>

#include "monitoring/distinguishability.hpp"
#include "monitoring/identifiability.hpp"
#include "core/metrics_report.hpp"
#include "monitoring/set_cover.hpp"
#include "placement/brute_force.hpp"
#include "placement/greedy.hpp"
#include "test_helpers.hpp"

namespace splace {
namespace {

// ---------------------------------------------------------------------------
// Theorem 4 with *exact* MSC: (a) MSC >= k+1 => k-identifiable;
// (b) k-identifiable => MSC >= k.
// ---------------------------------------------------------------------------

class Theorem4 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem4, ExactMscConditions) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.index(4);
  const PathSet paths =
      testing::random_path_set(n, 1 + rng.index(7), 3, rng);
  for (std::size_t k = 1; k <= 2; ++k) {
    const DynamicBitset sk = identifiable_nodes(paths, k);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t msc = msc_exact(v, paths);
      const bool covered = paths.affected_paths({v}).any();
      if (covered && (msc == kUncoverable || msc >= k + 1)) {
        EXPECT_TRUE(sk.test(v)) << "v=" << v << " k=" << k << " msc=" << msc;
      }
      if (sk.test(v)) {
        EXPECT_TRUE(msc == kUncoverable || msc >= k)
            << "v=" << v << " k=" << k << " msc=" << msc;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem4,
                         ::testing::Range<std::uint64_t>(0, 20));

// Corollary 5: S_{k+1} ⊆ S̄_k (= {v covered : MSC ≥ k}) and S̄_k ⊇ S_k.
class Corollary5 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Corollary5, SandwichWithExactMsc) {
  Rng rng(100 + GetParam());
  const std::size_t n = 4 + rng.index(4);
  const PathSet paths =
      testing::random_path_set(n, 1 + rng.index(7), 3, rng);
  for (std::size_t k = 1; k <= 2; ++k) {
    DynamicBitset sbar(n);  // {v covered with MSC >= k}
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t msc = msc_exact(v, paths);
      const bool covered = paths.affected_paths({v}).any();
      if (covered && (msc == kUncoverable || msc >= k)) sbar.set(v);
    }
    EXPECT_TRUE(identifiable_nodes(paths, k + 1).is_subset_of(sbar));
    EXPECT_TRUE(identifiable_nodes(paths, k).is_subset_of(sbar));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Corollary5,
                         ::testing::Range<std::uint64_t>(0, 20));

// ---------------------------------------------------------------------------
// Theorem 19: let σ0 (σ*) be the non-1-identifiable node counts under the
// max-D_1 (max-S_1) placements. Then σ0 ≤ min((σ*+1)σ*, |N|) and
// σ* ≥ (sqrt(1+4σ0) − 1)/2.
// ---------------------------------------------------------------------------

class Theorem19 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem19, DistinguishabilityApproximatesIdentifiability) {
  Rng rng(200 + GetParam());
  const auto inst = testing::random_instance(9, 16, 3, 2, 1.0, rng);
  const auto bf = brute_force_k1(inst);
  ASSERT_TRUE(bf.has_value());
  const std::size_t n = inst.node_count();

  // σ0: non-identifiable nodes under the max-distinguishability placement.
  const MetricReport md =
      evaluate_placement_k1(inst, bf->distinguishability.placement);
  const std::size_t sigma0 = n - md.identifiability;
  // σ*: minimum achievable non-identifiable count.
  const std::size_t sigma_star = n - bf->identifiability.value;

  EXPECT_LE(sigma0, std::min((sigma_star + 1) * sigma_star, n));
  const double lower =
      (std::sqrt(1.0 + 4.0 * static_cast<double>(sigma0)) - 1.0) / 2.0;
  EXPECT_GE(static_cast<double>(sigma_star) + 1e-9, lower);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem19,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Theorem 11 via Corollaries 14/18 on exhaustive instances, all alphas.
// ---------------------------------------------------------------------------

class GreedyGuarantee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyGuarantee, HalfApproximationBothSubmodularObjectives) {
  Rng rng(300 + GetParam());
  const double alpha = 0.25 * static_cast<double>(rng.index(5));
  const auto inst = testing::random_instance(10, 18, 3, 2, alpha, rng);
  const auto bf = brute_force_k1(inst);
  ASSERT_TRUE(bf.has_value());

  const GreedyResult gc = greedy_placement(inst, ObjectiveKind::Coverage);
  EXPECT_GE(2.0 * gc.objective_value,
            static_cast<double>(bf->coverage.value));

  const GreedyResult gd =
      greedy_placement(inst, ObjectiveKind::Distinguishability);
  EXPECT_GE(2.0 * gd.objective_value,
            static_cast<double>(bf->distinguishability.value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyGuarantee,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Proposition 16: the MSC-based upper-bound set size |S̄_k| is monotone in P
// (exact-MSC version of the paper's surrogate measure).
// ---------------------------------------------------------------------------

TEST(Proposition16, SurrogateMonotoneInPaths) {
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    PathSet paths(6);
    std::size_t last = 0;
    for (int i = 0; i < 6; ++i) {
      paths.add_nodes(testing::random_path_nodes(6, 1 + rng.index(3), rng));
      std::size_t count = 0;
      for (NodeId v = 0; v < 6; ++v) {
        const std::size_t msc = msc_exact(v, paths);
        const bool covered = paths.affected_paths({v}).any();
        if (covered && (msc == kUncoverable || msc >= 2)) ++count;
      }
      EXPECT_GE(count, last);
      last = count;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 19 remark (set-level): the number of non-k-identifiable failure
// sets under max-D placement is bounded relative to the optimum. We verify
// the underlying relation used in the proof: a placement with larger |D_k|
// has no more indistinguishable *pairs*, and #non-identifiable sets ≤
// 2 × #indistinguishable pairs.
// ---------------------------------------------------------------------------

TEST(Theorem19Remark, NonIdentifiableSetsBoundedByPairs) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.index(3);
    const std::size_t k = 1 + rng.index(2);
    const PathSet paths =
        testing::random_path_set(n, 1 + rng.index(8), 3, rng);
    const std::size_t total = failure_set_count(n, k);
    const std::size_t indist_pairs =
        total * (total - 1) / 2 - distinguishability(paths, k);
    EXPECT_LE(non_identifiable_failure_sets(paths, k), 2 * indist_pairs);
  }
}

}  // namespace
}  // namespace splace
