// Dynamic-topology subsystem tests: delta validation, reuse-aware routing
// updates (bit-identical to from-scratch rebuilds), derived problem
// instances (structural sharing with from-scratch equivalence), and
// warm-start placement repair (equal to a full greedy re-run, never worse
// than the stale placement).
#include "dynamic/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "dynamic/repair.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "monitoring/objective.hpp"
#include "placement/greedy.hpp"
#include "topology/catalog.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace {
namespace {

// ---------------------------------------------------------------- helpers

void expect_routing_equal(const RoutingTable& a, const RoutingTable& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId r = 0; r < a.node_count(); ++r) {
    EXPECT_EQ(a.tree(r).dist, b.tree(r).dist) << "dist mismatch, root " << r;
    EXPECT_EQ(a.tree(r).parent, b.tree(r).parent)
        << "parent mismatch, root " << r;
  }
}

void expect_instances_equal(const ProblemInstance& a,
                            const ProblemInstance& b) {
  ASSERT_EQ(a.service_count(), b.service_count());
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t s = 0; s < a.service_count(); ++s) {
    ASSERT_EQ(a.candidate_hosts(s), b.candidate_hosts(s)) << "service " << s;
    EXPECT_EQ(a.best_qos_host(s), b.best_qos_host(s)) << "service " << s;
    for (NodeId h : a.candidate_hosts(s)) {
      EXPECT_EQ(a.worst_distance(s, h), b.worst_distance(s, h))
          << "service " << s << " host " << h;
      const PathSet& pa = a.paths_for(s, h);
      const PathSet& pb = b.paths_for(s, h);
      ASSERT_EQ(pa.size(), pb.size()) << "service " << s << " host " << h;
      for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(pa[i].nodes(), pb[i].nodes())
            << "service " << s << " host " << h << " path " << i;
    }
  }
}

bool delta_lists_link(const TopologyDelta& delta, NodeId u, NodeId v) {
  const auto matches = [&](const Edge& e) {
    return (e.u == u && e.v == v) || (e.u == v && e.v == u);
  };
  return std::any_of(delta.add_links.begin(), delta.add_links.end(),
                     matches) ||
         std::any_of(delta.remove_links.begin(), delta.remove_links.end(),
                     matches);
}

/// Random link-churn delta: `removes` present links (connectivity-
/// preserving) and `adds` absent links, no repeats or conflicts.
TopologyDelta random_link_delta(const Graph& g, std::size_t adds,
                                std::size_t removes, Rng& rng) {
  TopologyDelta delta;
  Graph scratch = g;
  for (std::size_t attempt = 0;
       attempt < 50 * removes && delta.remove_links.size() < removes;
       ++attempt) {
    const Edge e = scratch.edges()[static_cast<std::size_t>(
        rng.uniform(0, scratch.edges().size() - 1))];
    if (delta_lists_link(delta, e.u, e.v)) continue;
    Graph trial = scratch;
    trial.remove_edge(e.u, e.v);
    if (!is_connected(trial)) continue;
    scratch = std::move(trial);
    delta.remove_links.push_back(e);
  }
  const NodeId n = static_cast<NodeId>(g.node_count());
  for (std::size_t attempt = 0;
       attempt < 200 * adds && delta.add_links.size() < adds; ++attempt) {
    const NodeId u = static_cast<NodeId>(rng.uniform(0, n - 1));
    const NodeId v = static_cast<NodeId>(rng.uniform(0, n - 1));
    if (u == v || scratch.has_edge(u, v) || delta_lists_link(delta, u, v))
      continue;
    scratch.add_edge(u, v);
    delta.add_links.push_back(Edge{u, v});
  }
  return delta;
}

ProblemInstance catalog_instance(const std::string& name, double alpha) {
  const topology::CatalogEntry& entry = topology::catalog_entry(name);
  Graph g = topology::build(entry);
  const std::vector<NodeId> clients = topology::candidate_clients(entry, g);
  std::vector<Service> services = make_services(entry, clients, alpha);
  return ProblemInstance(std::move(g), std::move(services));
}

// ----------------------------------------------------------- apply_delta

TEST(DynamicDelta, AppliesLinkMutations) {
  Graph g = ring_graph(5);  // 0-1-2-3-4-0
  TopologyDelta delta;
  delta.add_links.push_back(Edge{3, 1});  // reversed orientation is fine
  delta.remove_links.push_back(Edge{0, 4});
  const Graph out = apply_delta(g, delta);
  EXPECT_EQ(out.edge_count(), g.edge_count());
  EXPECT_TRUE(out.has_edge(1, 3));
  EXPECT_FALSE(out.has_edge(0, 4));
  // The input graph is untouched.
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(DynamicDelta, RejectsInvalidLinkMutations) {
  const Graph g = ring_graph(5);
  const auto apply_one = [&](TopologyDelta delta) {
    return apply_delta(g, delta);
  };
  TopologyDelta bad_node;
  bad_node.add_links.push_back(Edge{0, 9});
  EXPECT_THROW(apply_one(bad_node), InvalidInput);
  TopologyDelta self_loop;
  self_loop.add_links.push_back(Edge{2, 2});
  EXPECT_THROW(apply_one(self_loop), InvalidInput);
  TopologyDelta add_present;
  add_present.add_links.push_back(Edge{0, 1});
  EXPECT_THROW(apply_one(add_present), InvalidInput);
  TopologyDelta remove_absent;
  remove_absent.remove_links.push_back(Edge{0, 2});
  EXPECT_THROW(apply_one(remove_absent), InvalidInput);
  TopologyDelta repeat;
  repeat.add_links.push_back(Edge{0, 2});
  repeat.add_links.push_back(Edge{2, 0});  // same link, other orientation
  EXPECT_THROW(apply_one(repeat), InvalidInput);
  TopologyDelta both;
  both.add_links.push_back(Edge{0, 1});
  both.remove_links.push_back(Edge{1, 0});
  EXPECT_THROW(apply_one(both), InvalidInput);
}

TEST(DynamicDelta, AppliesClientMutations) {
  std::vector<Service> services(2);
  services[0].name = "a";
  services[0].clients = {0, 1};
  services[1].name = "b";
  services[1].clients = {2, 3};
  TopologyDelta delta;
  delta.add_clients.push_back(ClientMutation{0, 4});
  delta.remove_clients.push_back(ClientMutation{1, 2});
  const std::vector<Service> out = apply_delta(services, delta, 5);
  EXPECT_EQ(out[0].clients, (std::vector<NodeId>{0, 1, 4}));
  EXPECT_EQ(out[1].clients, (std::vector<NodeId>{3}));
  // Input untouched.
  EXPECT_EQ(services[0].clients, (std::vector<NodeId>{0, 1}));
}

TEST(DynamicDelta, RejectsInvalidClientMutations) {
  std::vector<Service> services(1);
  services[0].clients = {0, 1};
  const auto apply_one = [&](TopologyDelta delta) {
    return apply_delta(services, delta, 4);
  };
  TopologyDelta bad_service;
  bad_service.add_clients.push_back(ClientMutation{3, 2});
  EXPECT_THROW(apply_one(bad_service), InvalidInput);
  TopologyDelta bad_node;
  bad_node.add_clients.push_back(ClientMutation{0, 9});
  EXPECT_THROW(apply_one(bad_node), InvalidInput);
  TopologyDelta already;
  already.add_clients.push_back(ClientMutation{0, 1});
  EXPECT_THROW(apply_one(already), InvalidInput);
  TopologyDelta absent;
  absent.remove_clients.push_back(ClientMutation{0, 3});
  EXPECT_THROW(apply_one(absent), InvalidInput);
  TopologyDelta conflict;
  conflict.add_clients.push_back(ClientMutation{0, 2});
  conflict.remove_clients.push_back(ClientMutation{0, 2});
  EXPECT_THROW(apply_one(conflict), InvalidInput);
  TopologyDelta clientless;
  clientless.remove_clients.push_back(ClientMutation{0, 0});
  clientless.remove_clients.push_back(ClientMutation{0, 1});
  EXPECT_THROW(apply_one(clientless), InvalidInput);
}

// ------------------------------------------------- RoutingTable::update

TEST(DynamicRoutingUpdate, SingleAddMatchesRebuildAndShares) {
  Rng rng(7);
  const Graph g = preferential_attachment(80, 2, rng);
  RoutingTable base(g);
  TopologyDelta delta;
  // A shortcut between two far-apart nodes: affects some trees, not all.
  delta.add_links.push_back(Edge{0, 79});
  const Graph updated = apply_delta(g, delta);
  bool fell_back = false;
  const RoutingTable incremental = base.update(updated, delta, 0.9,
                                               &fell_back);
  expect_routing_equal(incremental, RoutingTable(updated));
  EXPECT_FALSE(fell_back);
  EXPECT_GT(incremental.shared_tree_count(base), 0u);
}

TEST(DynamicRoutingUpdate, RandomizedSequencesAreBitIdentical) {
  struct Case {
    const char* name;
    Graph graph;
  };
  Rng gen(11);
  std::vector<Case> cases;
  cases.push_back({"er", erdos_renyi(40, 0.12, gen)});
  cases.push_back({"ba", preferential_attachment(60, 2, gen)});
  cases.push_back({"rc", random_connected(50, 80, gen)});
  {
    const topology::CatalogEntry& entry = topology::catalog_entry("abovenet");
    cases.push_back({"abovenet", topology::build(entry)});
  }
  for (Case& c : cases) {
    Rng rng(101);
    Graph g = std::move(c.graph);
    RoutingTable table(g);
    for (std::size_t round = 0; round < 6; ++round) {
      const TopologyDelta delta = random_link_delta(g, 2, 1, rng);
      if (delta.empty()) continue;
      const Graph updated = apply_delta(g, delta);
      const RoutingTable incremental = table.update(updated, delta);
      SCOPED_TRACE(std::string(c.name) + " round " +
                   std::to_string(round));
      expect_routing_equal(incremental, RoutingTable(updated));
      g = updated;
      table = incremental;
    }
  }
}

TEST(DynamicRoutingUpdate, ClientOnlyDeltaSharesEveryTree) {
  const Graph g = grid_graph(5, 5);
  RoutingTable base(g);
  TopologyDelta delta;
  delta.add_clients.push_back(ClientMutation{0, 3});
  const RoutingTable updated = base.update(g, delta);
  EXPECT_EQ(updated.shared_tree_count(base), g.node_count());
}

TEST(DynamicRoutingUpdate, ThresholdFallbackStaysCorrect) {
  Rng rng(3);
  const Graph g = random_connected(30, 45, rng);
  RoutingTable base(g);
  TopologyDelta delta;
  delta.add_links.push_back(Edge{0, 29});
  const Graph updated = apply_delta(g, delta);
  bool fell_back = false;
  // Zero threshold: any affected root forces the full-rebuild path.
  const RoutingTable incremental =
      base.update(updated, delta, 0.0, &fell_back);
  EXPECT_TRUE(fell_back);
  expect_routing_equal(incremental, RoutingTable(updated));
}

// ---------------------------------------------------------------- derive

TEST(DynamicDerive, MatchesScratchBuildAndReusesStructure) {
  const ProblemInstance parent = catalog_instance("tiscali", 0.6);
  Rng rng(19);
  TopologyDelta delta = random_link_delta(parent.graph(), 1, 1, rng);
  ASSERT_FALSE(delta.empty());
  // Touch one service's client set too.
  const std::vector<Service>& services = parent.services();
  NodeId fresh = kInvalidNode;
  for (NodeId v = 0; v < parent.node_count(); ++v) {
    if (std::find(services[0].clients.begin(), services[0].clients.end(),
                  v) == services[0].clients.end()) {
      fresh = v;
      break;
    }
  }
  ASSERT_NE(fresh, kInvalidNode);
  delta.add_clients.push_back(ClientMutation{0, fresh});

  DeriveStats stats;
  const std::shared_ptr<const ProblemInstance> derived =
      derive_instance(parent, delta, &stats);
  const ProblemInstance scratch(
      apply_delta(parent.graph(), delta),
      apply_delta(parent.services(), delta, parent.node_count()));
  expect_instances_equal(*derived, scratch);

  EXPECT_EQ(stats.trees_total, parent.node_count());
  EXPECT_GT(stats.trees_reused, 0u);
  EXPECT_EQ(stats.services_total, parent.service_count());
  EXPECT_GT(stats.path_sets_reused + stats.path_sets_rebuilt, 0u);
}

TEST(DynamicDerive, RandomizedChurnChainsMatchScratch) {
  Rng gen(5);
  Graph g = preferential_attachment(40, 2, gen);
  std::vector<Service> services(4);
  for (std::size_t s = 0; s < services.size(); ++s) {
    services[s].name = "svc" + std::to_string(s);
    services[s].alpha = 0.6;
    for (std::size_t c = 0; c < 3; ++c)
      services[s].clients.push_back(
          static_cast<NodeId>((5 * s + 7 * c + 1) % g.node_count()));
  }
  auto current = std::make_shared<const ProblemInstance>(g, services);
  Rng rng(23);
  for (std::size_t round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    TopologyDelta delta =
        random_link_delta(current->graph(), round % 2, 1, rng);
    if (round == 2) {
      // Mix in client churn: move one client of service 1.
      const Service& svc = current->services()[1];
      delta.remove_clients.push_back(ClientMutation{1, svc.clients[0]});
      for (NodeId v = 0; v < current->node_count(); ++v) {
        if (std::find(svc.clients.begin(), svc.clients.end(), v) ==
            svc.clients.end()) {
          delta.add_clients.push_back(ClientMutation{1, v});
          break;
        }
      }
    }
    if (delta.empty()) continue;
    const std::shared_ptr<const ProblemInstance> derived =
        derive_instance(*current, delta);
    const ProblemInstance scratch(
        apply_delta(current->graph(), delta),
        apply_delta(current->services(), delta, current->node_count()));
    expect_instances_equal(*derived, scratch);
    current = derived;
  }
}

TEST(DynamicDerive, UntouchedServicesShareWholePlans) {
  const ProblemInstance parent = catalog_instance("abovenet", 0.6);
  TopologyDelta delta;
  delta.add_clients.push_back(
      ClientMutation{0, [&] {
        for (NodeId v = 0; v < parent.node_count(); ++v) {
          const auto& clients = parent.services()[0].clients;
          if (std::find(clients.begin(), clients.end(), v) == clients.end())
            return v;
        }
        return kInvalidNode;
      }()});
  DeriveStats stats;
  const std::shared_ptr<const ProblemInstance> derived =
      derive_instance(parent, delta, &stats);
  // No link churn: routing is fully shared and every other service's plan
  // is the parent's object.
  EXPECT_EQ(stats.trees_reused, stats.trees_total);
  EXPECT_EQ(stats.services_reused, stats.services_total - 1);
  EXPECT_FALSE(ProblemInstance::shares_service_paths(parent, *derived, 0));
  for (std::size_t s = 1; s < parent.service_count(); ++s)
    EXPECT_TRUE(ProblemInstance::shares_service_paths(parent, *derived, s));
}

TEST(DynamicDerive, RejectsEmptyDelta) {
  const ProblemInstance parent = catalog_instance("abovenet", 0.6);
  EXPECT_THROW(derive_instance(parent, TopologyDelta{}), InvalidInput);
}

// ---------------------------------------------------------------- repair

GreedyResult full_greedy(const ProblemInstance& inst, ObjectiveKind kind) {
  return greedy_placement(inst, kind, 1);
}

TEST(DynamicRepair, EqualsFullGreedyAcrossRandomChurn) {
  const ProblemInstance parent = catalog_instance("abovenet", 0.6);
  for (const ObjectiveKind kind :
       {ObjectiveKind::Distinguishability, ObjectiveKind::Coverage}) {
    const GreedyResult trace = full_greedy(parent, kind);
    Rng rng(kind == ObjectiveKind::Coverage ? 31u : 57u);
    for (std::size_t round = 0; round < 4; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      const TopologyDelta delta =
          random_link_delta(parent.graph(), 1 + round % 2, round % 2, rng);
      if (delta.empty()) continue;
      const std::shared_ptr<const ProblemInstance> derived =
          derive_instance(parent, delta);
      const RepairResult repaired = repair_placement(
          *derived, kind, 1, trace, touched_services(parent, *derived));
      const GreedyResult reference = full_greedy(*derived, kind);
      EXPECT_EQ(repaired.placement, reference.placement);
      EXPECT_DOUBLE_EQ(repaired.objective_value, reference.objective_value);
      EXPECT_FALSE(repaired.kept_stale);
    }
  }
}

TEST(DynamicRepair, TouchedOnlyScoringBeatsFullRerunWork) {
  const ProblemInstance parent = catalog_instance("tiscali", 0.6);
  const ObjectiveKind kind = ObjectiveKind::Distinguishability;
  const GreedyResult trace = full_greedy(parent, kind);
  // Touch only the service the trace placed LAST: while the trace prefix
  // replays, only that service's candidates are ever scored (the prefix
  // ends early if the touched service's grown gain wins a step outright —
  // still the full-greedy answer, by the equivalence contract).
  const std::size_t last = trace.order.back();
  const Service& svc = parent.services()[last];
  TopologyDelta delta;
  for (NodeId v = 0; v < parent.node_count(); ++v) {
    const auto& clients = svc.clients;
    if (std::find(clients.begin(), clients.end(), v) == clients.end()) {
      delta.add_clients.push_back(ClientMutation{last, v});
      break;
    }
  }
  ASSERT_FALSE(delta.empty());
  const std::shared_ptr<const ProblemInstance> derived =
      derive_instance(parent, delta);
  const std::vector<bool> touched = touched_services(parent, *derived);
  for (std::size_t s = 0; s < parent.service_count(); ++s)
    EXPECT_EQ(touched[s], s == last);
  const RepairResult repaired =
      repair_placement(*derived, kind, 1, trace, touched);
  const GreedyResult reference = full_greedy(*derived, kind);
  EXPECT_EQ(repaired.placement, reference.placement);
  EXPECT_DOUBLE_EQ(repaired.objective_value, reference.objective_value);
  EXPECT_GE(repaired.prefix_commits, 1u);

  // The warm start must do strictly less scoring than the full re-run it
  // replaces: count the reference run's per-step unplaced-candidate scans.
  std::size_t full_rerun_evaluations = 0;
  std::vector<bool> placed(derived->service_count(), false);
  for (const std::size_t s : reference.order) {
    for (std::size_t t = 0; t < derived->service_count(); ++t)
      if (!placed[t])
        full_rerun_evaluations += derived->candidate_hosts(t).size();
    placed[s] = true;
  }
  EXPECT_LT(repaired.gain_evaluations, full_rerun_evaluations);
}

TEST(DynamicRepair, NeverWorseThanStalePlacement) {
  const ProblemInstance parent = catalog_instance("abovenet", 0.6);
  const ObjectiveKind kind = ObjectiveKind::Distinguishability;
  const GreedyResult trace = full_greedy(parent, kind);
  Rng rng(77);
  for (std::size_t round = 0; round < 5; ++round) {
    const TopologyDelta delta =
        random_link_delta(parent.graph(), 1, 1, rng);
    if (delta.empty()) continue;
    const std::shared_ptr<const ProblemInstance> derived =
        derive_instance(parent, delta);
    const RepairResult repaired = repair_placement(
        *derived, kind, 1, trace, touched_services(parent, *derived));
    bool stale_feasible = true;
    for (std::size_t s = 0; s < derived->service_count(); ++s)
      stale_feasible = stale_feasible &&
                       derived->is_candidate(s, trace.placement[s]);
    if (!stale_feasible) continue;
    const double stale_value = evaluate_objective(
        kind, derived->paths_for_placement(trace.placement), 1);
    EXPECT_GE(repaired.objective_value, stale_value);
  }
}

TEST(DynamicRepair, ImprovementPassesNeverHurt) {
  const ProblemInstance parent = catalog_instance("abovenet", 0.4);
  const ObjectiveKind kind = ObjectiveKind::Coverage;
  const GreedyResult trace = full_greedy(parent, kind);
  Rng rng(13);
  const TopologyDelta delta = random_link_delta(parent.graph(), 2, 0, rng);
  ASSERT_FALSE(delta.empty());
  const std::shared_ptr<const ProblemInstance> derived =
      derive_instance(parent, delta);
  const std::vector<bool> touched = touched_services(parent, *derived);
  const RepairResult plain =
      repair_placement(*derived, kind, 1, trace, touched);
  RepairOptions options;
  options.improvement_passes = 3;
  const RepairResult polished =
      repair_placement(*derived, kind, 1, trace, touched, options);
  EXPECT_GE(polished.objective_value, plain.objective_value);
  if (polished.improvement_moves == 0) {
    EXPECT_EQ(polished.placement, plain.placement);
  }
  const double check = evaluate_objective(
      kind, derived->paths_for_placement(polished.placement), 1);
  EXPECT_DOUBLE_EQ(polished.objective_value, check);
}

}  // namespace
}  // namespace splace
