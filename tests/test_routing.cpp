#include "graph/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace splace {
namespace {

TEST(Routing, DistancesSymmetric) {
  Rng rng(1);
  const Graph g = random_connected(25, 50, rng);
  const RoutingTable routes(g);
  for (NodeId a = 0; a < 25; ++a)
    for (NodeId b = 0; b < 25; ++b)
      EXPECT_EQ(routes.distance(a, b), routes.distance(b, a));
}

TEST(Routing, RouteIsShortestAndValid) {
  Rng rng(2);
  const Graph g = random_connected(20, 35, rng);
  const RoutingTable routes(g);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      const auto route = routes.route(a, b);
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(route.front(), a);
      EXPECT_EQ(route.back(), b);
      EXPECT_EQ(route.size(), routes.distance(a, b) + 1u);
      for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_TRUE(g.has_edge(route[i - 1], route[i]));
    }
  }
}

TEST(Routing, RouteOrientationIndependentNodeSet) {
  Rng rng(3);
  const Graph g = random_connected(18, 30, rng);
  const RoutingTable routes(g);
  for (NodeId a = 0; a < 18; ++a) {
    for (NodeId b = a + 1; b < 18; ++b) {
      auto ab = routes.route(a, b);
      auto ba = routes.route(b, a);
      std::reverse(ba.begin(), ba.end());
      EXPECT_EQ(ab, ba) << "pair " << a << "," << b;
    }
  }
}

TEST(Routing, RouteNodeSetMatchesRoute) {
  Rng rng(4);
  const Graph g = random_connected(15, 25, rng);
  const RoutingTable routes(g);
  const auto route = routes.route(2, 9);
  const DynamicBitset set = routes.route_node_set(2, 9);
  EXPECT_EQ(set.count(), route.size());
  for (NodeId v : route) EXPECT_TRUE(set.test(v));
}

TEST(Routing, SelfRoute) {
  const Graph g = path_graph(4);
  const RoutingTable routes(g);
  EXPECT_EQ(routes.route(2, 2), (std::vector<NodeId>{2}));
  EXPECT_EQ(routes.distance(2, 2), 0u);
}

TEST(Routing, DeterministicAcrossInstances) {
  Rng rng(5);
  const Graph g = random_connected(22, 44, rng);
  const RoutingTable r1(g);
  const RoutingTable r2(g);
  for (NodeId a = 0; a < 22; ++a)
    for (NodeId b = 0; b < 22; ++b)
      EXPECT_EQ(r1.route(a, b), r2.route(a, b));
}

TEST(Routing, UnreachablePairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const RoutingTable routes(g);
  EXPECT_FALSE(routes.reachable(0, 2));
  EXPECT_EQ(routes.distance(0, 3), kUnreachable);
  EXPECT_THROW(routes.route(0, 2), ContractViolation);
}

TEST(Routing, DiameterOfRing) {
  const RoutingTable routes(ring_graph(8));
  EXPECT_EQ(routes.diameter(), 4u);
}

TEST(Routing, DiameterIgnoresDisconnection) {
  Graph g(3);
  g.add_edge(0, 1);
  const RoutingTable routes(g);
  EXPECT_EQ(routes.diameter(), 1u);
}

TEST(Routing, InvalidNodeThrows) {
  const RoutingTable routes(path_graph(3));
  EXPECT_THROW(routes.distance(0, 3), ContractViolation);
  EXPECT_THROW(routes.route(3, 0), ContractViolation);
}

}  // namespace
}  // namespace splace
