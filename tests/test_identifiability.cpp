#include "monitoring/identifiability.hpp"

#include <gtest/gtest.h>

#include "monitoring/equivalence_classes.hpp"
#include "test_helpers.hpp"

namespace splace {
namespace {

TEST(Identifiability, NoPathsNothingIdentifiable) {
  const PathSet paths(5);
  EXPECT_EQ(identifiability(paths, 1), 0u);
  EXPECT_EQ(identifiability(paths, 2), 0u);
}

TEST(Identifiability, SingletonPathsIdentifyEverything) {
  const PathSet paths = testing::make_paths(4, {{0}, {1}, {2}, {3}});
  for (std::size_t k = 1; k <= 4; ++k)
    EXPECT_EQ(identifiability(paths, k), 4u) << "k=" << k;
}

TEST(Identifiability, SharedPathNodesNotIdentifiable) {
  // {0,1} covered together only: neither identifiable; 2 uncovered.
  const PathSet paths = testing::make_paths(3, {{0, 1}});
  EXPECT_EQ(identifiability(paths, 1), 0u);
  const DynamicBitset s1 = identifiable_nodes(paths, 1);
  EXPECT_TRUE(s1.none());
}

TEST(Identifiability, UncoveredNodeNeverIdentifiable) {
  const PathSet paths = testing::make_paths(3, {{0}, {1}});
  const DynamicBitset s1 = identifiable_nodes(paths, 1);
  EXPECT_TRUE(s1.test(0));
  EXPECT_TRUE(s1.test(1));
  EXPECT_FALSE(s1.test(2));  // {2} ~ ∅
}

TEST(Identifiability, K1MatchesEquivalencePartition) {
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 4 + rng.index(8);
    const PathSet paths = testing::random_path_set(n, 8, 4, rng);
    EquivalenceClasses classes(n);
    classes.add_paths(paths);
    EXPECT_EQ(identifiability(paths, 1), classes.identifiable_count());
    const DynamicBitset s1 = identifiable_nodes(paths, 1);
    for (NodeId v = 0; v < n; ++v)
      EXPECT_EQ(s1.test(v), classes.class_size(v) == 1) << "node " << v;
  }
}

// Grouped implementation must agree with the literal Definition 2 oracle.
class DefinitionOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DefinitionOracle, GroupedMatchesPairwiseDefinition) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.index(4);
  const std::size_t k = 1 + rng.index(2);
  const PathSet paths =
      testing::random_path_set(n, 1 + rng.index(7), 3, rng);
  const DynamicBitset grouped = identifiable_nodes(paths, k);
  for (NodeId v = 0; v < n; ++v)
    EXPECT_EQ(grouped.test(v), is_k_identifiable(v, paths, k))
        << "node " << v << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefinitionOracle,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(Identifiability, HigherKIsHarder) {
  // S_{k+1} ⊆ S_k: identifiability under more simultaneous failures is a
  // stronger requirement.
  Rng rng(23);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 4 + rng.index(5);
    const PathSet paths =
        testing::random_path_set(n, 1 + rng.index(8), 3, rng);
    const DynamicBitset s1 = identifiable_nodes(paths, 1);
    const DynamicBitset s2 = identifiable_nodes(paths, 2);
    const DynamicBitset s3 = identifiable_nodes(paths, 3);
    EXPECT_TRUE(s2.is_subset_of(s1));
    EXPECT_TRUE(s3.is_subset_of(s2));
  }
}

TEST(Identifiability, MonotoneInPaths) {
  Rng rng(24);
  for (int trial = 0; trial < 10; ++trial) {
    PathSet paths(6);
    std::size_t last = 0;
    for (int i = 0; i < 8; ++i) {
      paths.add_nodes(testing::random_path_nodes(6, 1 + rng.index(4), rng));
      const std::size_t now = identifiability(paths, 2);
      EXPECT_GE(now, last);
      last = now;
    }
  }
}

// Paper Fig. 3 / Proposition 15: |S_k| is NOT submodular. The marginal gain
// of p0 = {v2} increases after p1 = {v1,v2} is present.
TEST(Identifiability, PaperFig3NonSubmodularityWitness) {
  const std::size_t n = 3;  // v1=0, v2=1, v3=2
  const std::vector<NodeId> p0{1};
  const std::vector<NodeId> p1{0, 1};
  const std::vector<NodeId> p2{1, 2};

  auto s1_of = [n](const std::vector<std::vector<NodeId>>& paths) {
    return identifiability(testing::make_paths(n, paths), 1);
  };

  // Paper's values: S_1(∅)=0, S_1({p0})={v2}, S_1({p1})=∅,
  // S_1({p0,p1})={v1,v2}, S_1({p1,p2})={v1,v2,v3} ... gains of adding p0:
  const std::size_t gain_empty = s1_of({p0}) - s1_of({});
  const std::size_t gain_after_p1 = s1_of({p0, p1}) - s1_of({p1});
  EXPECT_EQ(s1_of({}), 0u);
  EXPECT_EQ(s1_of({p0}), 1u);
  EXPECT_EQ(s1_of({p1}), 0u);
  EXPECT_EQ(s1_of({p0, p1}), 2u);
  EXPECT_EQ(s1_of({p1, p2}), 3u);
  EXPECT_EQ(s1_of({p0, p1, p2}), 3u);
  // Submodularity would require gain_after_p1 <= gain_empty; here 2 > 1.
  EXPECT_GT(gain_after_p1, gain_empty);
}

TEST(NonIdentifiableFailureSets, CountsAmbiguousSets) {
  // Path {0,1} over 3 nodes, k=1: groups {∅,{2}} and {{0},{1}} -> all 4 of
  // these sets are ambiguous; 5 total sets, so 4 non-identifiable.
  const PathSet paths = testing::make_paths(3, {{0, 1}});
  EXPECT_EQ(non_identifiable_failure_sets(paths, 1), 4u);
}

TEST(NonIdentifiableFailureSets, ZeroWhenFullySeparated) {
  const PathSet paths = testing::make_paths(3, {{0}, {1}, {2}});
  EXPECT_EQ(non_identifiable_failure_sets(paths, 2), 0u);
}

TEST(NonIdentifiableFailureSets, AllWhenNoPaths) {
  const PathSet paths(4);
  EXPECT_EQ(non_identifiable_failure_sets(paths, 1),
            failure_set_count(4, 1));
}

}  // namespace
}  // namespace splace
