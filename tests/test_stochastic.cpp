#include "placement/stochastic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "placement/greedy.hpp"
#include "placement/lazy_greedy.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace splace {
namespace {

const ObjectiveKind kKinds[] = {ObjectiveKind::Coverage,
                                ObjectiveKind::Identifiability,
                                ObjectiveKind::Distinguishability};

std::size_t total_candidates(const ProblemInstance& inst) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < inst.service_count(); ++s)
    total += inst.candidate_hosts(s).size();
  return total;
}

TEST(StochasticGreedy, FullPoolIsBitIdenticalToPlainGreedy) {
  Rng rng(101);
  for (int trial = 0; trial < 4; ++trial) {
    const ProblemInstance inst =
        testing::random_instance(24 + 4 * static_cast<std::size_t>(trial), 60,
                                 4, 3, 0.8, rng);
    for (ObjectiveKind kind : kKinds) {
      const GreedyResult exact = greedy_placement(inst, kind);
      PlacementOptions options;
      options.stochastic_pool = 0;
      const StochasticGreedyResult st =
          stochastic_greedy_placement(inst, kind, 1, options);
      EXPECT_EQ(st.placement, exact.placement) << to_string(kind);
      EXPECT_EQ(st.objective_value, exact.objective_value);
      EXPECT_EQ(st.order, exact.order);
      EXPECT_EQ(st.gains, exact.gains);
    }
  }
}

TEST(StochasticGreedy, OversizedPoolIsAlsoExact) {
  Rng rng(102);
  const ProblemInstance inst = testing::random_instance(30, 70, 4, 3, 0.8, rng);
  PlacementOptions options;
  options.stochastic_pool = total_candidates(inst) + 100;
  for (ObjectiveKind kind : kKinds) {
    const GreedyResult exact = greedy_placement(inst, kind);
    const StochasticGreedyResult st =
        stochastic_greedy_placement(inst, kind, 1, options);
    EXPECT_EQ(st.placement, exact.placement) << to_string(kind);
    EXPECT_EQ(st.objective_value, exact.objective_value);
  }
}

TEST(StochasticGreedy, SampledRunsAreDeterministic) {
  Rng rng(103);
  const ProblemInstance inst = testing::random_instance(30, 70, 5, 3, 0.8, rng);
  PlacementOptions options;
  options.stochastic_pool = 4;
  const StochasticGreedyResult a = stochastic_greedy_placement(
      inst, ObjectiveKind::Distinguishability, 1, options);
  const StochasticGreedyResult b = stochastic_greedy_placement(
      inst, ObjectiveKind::Distinguishability, 1, options);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.objective_value, b.objective_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.sampled, b.sampled);
}

TEST(StochasticGreedy, SampledPlacementIsValidAndEvaluatesFewer) {
  Rng rng(104);
  const ProblemInstance inst = testing::random_instance(32, 80, 5, 3, 0.9, rng);
  PlacementOptions exhaustive;
  const StochasticGreedyResult full = stochastic_greedy_placement(
      inst, ObjectiveKind::Coverage, 1, exhaustive);

  PlacementOptions options;
  options.stochastic_pool = 3;
  const StochasticGreedyResult st = stochastic_greedy_placement(
      inst, ObjectiveKind::Coverage, 1, options);

  ASSERT_EQ(st.placement.size(), inst.service_count());
  for (std::size_t s = 0; s < inst.service_count(); ++s) {
    const auto& hosts = inst.candidate_hosts(s);
    EXPECT_TRUE(std::find(hosts.begin(), hosts.end(), st.placement[s]) !=
                hosts.end())
        << "service " << s << " placed on a non-candidate host";
  }
  // Each round evaluates at most the sample; the exhaustive run evaluates
  // every unplaced pair every round.
  EXPECT_LE(st.evaluations,
            options.stochastic_pool * inst.service_count());
  EXPECT_LT(st.evaluations, full.evaluations);
  EXPECT_GT(st.objective_value, 0);
  EXPECT_LE(st.objective_value, full.objective_value);
}

TEST(StochasticGreedy, SeedChangesSampleNotValidity) {
  Rng rng(105);
  const ProblemInstance inst = testing::random_instance(30, 70, 5, 3, 0.9, rng);
  PlacementOptions a;
  a.stochastic_pool = 2;
  PlacementOptions b = a;
  b.stochastic_seed = 12345;
  const StochasticGreedyResult ra = stochastic_greedy_placement(
      inst, ObjectiveKind::Distinguishability, 1, a);
  const StochasticGreedyResult rb = stochastic_greedy_placement(
      inst, ObjectiveKind::Distinguishability, 1, b);
  // Different seeds may or may not change the placement; both must be
  // complete assignments with positive objective.
  EXPECT_EQ(ra.placement.size(), inst.service_count());
  EXPECT_EQ(rb.placement.size(), inst.service_count());
  EXPECT_GT(ra.objective_value, 0);
  EXPECT_GT(rb.objective_value, 0);
}

TEST(StochasticGreedy, TraceIsConsistent) {
  Rng rng(106);
  const ProblemInstance inst = testing::random_instance(28, 60, 4, 3, 0.8, rng);
  PlacementOptions options;
  options.stochastic_pool = 5;
  const StochasticGreedyResult st = stochastic_greedy_placement(
      inst, ObjectiveKind::Coverage, 1, options);
  ASSERT_EQ(st.order.size(), inst.service_count());
  ASSERT_EQ(st.gains.size(), inst.service_count());
  // Every service committed exactly once; gains sum to the objective
  // (coverage gains are exact integer marginals).
  std::vector<std::size_t> sorted = st.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t s = 0; s < sorted.size(); ++s) EXPECT_EQ(sorted[s], s);
  double total = 0;
  for (double g : st.gains) total += g;
  EXPECT_DOUBLE_EQ(total, st.objective_value);
  EXPECT_GE(st.sampled, st.evaluations);
}

TEST(StochasticGreedy, MatchesLazyGreedyOnFullPool) {
  Rng rng(107);
  const ProblemInstance inst = testing::random_instance(30, 70, 4, 3, 0.8, rng);
  for (ObjectiveKind kind :
       {ObjectiveKind::Coverage, ObjectiveKind::Distinguishability}) {
    const LazyGreedyResult lazy = lazy_greedy_placement(inst, kind);
    const StochasticGreedyResult st =
        stochastic_greedy_placement(inst, kind, 1);
    EXPECT_EQ(st.placement, lazy.placement) << to_string(kind);
    EXPECT_EQ(st.objective_value, lazy.objective_value);
  }
}

}  // namespace
}  // namespace splace
