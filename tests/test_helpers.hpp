// Shared fixtures/builders for the splace test suite.
#pragma once

#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "monitoring/path.hpp"
#include "placement/service.hpp"
#include "util/random.hpp"

namespace splace::testing {

/// Builds a PathSet over `node_count` nodes from literal node lists.
inline PathSet make_paths(std::size_t node_count,
                          const std::vector<std::vector<NodeId>>& paths) {
  PathSet set(node_count);
  for (const auto& p : paths) set.add_nodes(p);
  return set;
}

/// Random non-empty path: `len` distinct nodes drawn uniformly.
inline std::vector<NodeId> random_path_nodes(std::size_t node_count,
                                             std::size_t len, Rng& rng) {
  std::vector<NodeId> pool(node_count);
  for (NodeId v = 0; v < node_count; ++v) pool[v] = v;
  return rng.sample(std::move(pool), len);
}

/// Random path set: `num_paths` paths of random length in [1, max_len].
inline PathSet random_path_set(std::size_t node_count, std::size_t num_paths,
                               std::size_t max_len, Rng& rng) {
  PathSet set(node_count);
  for (std::size_t i = 0; i < num_paths; ++i) {
    const std::size_t len =
        1 + rng.index(std::min(max_len, node_count));
    set.add_nodes(random_path_nodes(node_count, len, rng));
  }
  return set;
}

/// Small random placement instance: connected topology, `n_services`
/// services with random clients, uniform alpha.
inline ProblemInstance random_instance(std::size_t nodes, std::size_t edges,
                                       std::size_t n_services,
                                       std::size_t clients_per_service,
                                       double alpha, Rng& rng) {
  Graph g = random_connected(nodes, edges, rng);
  std::vector<Service> services;
  for (std::size_t s = 0; s < n_services; ++s) {
    Service svc;
    // Append instead of operator+: GCC 12's -Wrestrict false-fires on
    // chained string concatenation at -O3 (GCC PR105329), tripping the
    // -Werror leg.
    svc.name = "s";
    svc.name += std::to_string(s);
    svc.alpha = alpha;
    svc.clients =
        random_path_nodes(nodes, clients_per_service, rng);
    services.push_back(std::move(svc));
  }
  return ProblemInstance(std::move(g), std::move(services));
}

}  // namespace splace::testing
